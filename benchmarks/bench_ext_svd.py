"""EXT-2 — D&C SVD (extension; the paper's conclusion).

"As the Singular Value Decomposition follows the same scheme as the
symmetric eigenproblem ... it is also a good candidate for applying the
ideas of this paper."  The extension routes the bidiagonal SVD through
the Golub-Kahan TGK tridiagonal and the task-flow D&C; this bench checks
correctness against NumPy and shows the task-flow parallelism carries
over (simulated 16-core speedup of the TGK eigensolve)."""

import numpy as np
import pytest

from repro.core import DCOptions, DCContext, submit_dc, tgk_tridiagonal
from repro.core.svd import svd_bidiagonal
from repro.runtime import SequentialScheduler, SimulatedMachine, TaskGraph
from common import PAPER_MACHINE, save_table


def run():
    rng = np.random.default_rng(0)
    n = 400
    q = rng.normal(size=n)
    r = rng.normal(size=n - 1)
    B = np.diag(q) + np.diag(r, 1)

    U, s, Vt = svd_bidiagonal(q, r)
    s_ref = np.linalg.svd(B, compute_uv=False)
    acc = float(np.max(np.abs(s - s_ref)))
    resid = float(np.max(np.abs((U * s[None, :]) @ Vt - B)))

    # Task-flow parallelism of the underlying TGK eigensolve.
    d, e = tgk_tridiagonal(q, r)
    ctx = DCContext(d, e, DCOptions(minpart=128, nb=48))
    g = TaskGraph()
    submit_dc(g, ctx)
    SequentialScheduler().run(g)
    t1 = SimulatedMachine(PAPER_MACHINE, n_workers=1,
                          execute=False).run(g).makespan
    t16 = SimulatedMachine(PAPER_MACHINE, n_workers=16,
                           execute=False).run(g).makespan
    rows = [f"bidiagonal n={n} (TGK size {2 * n})",
            f"max |sigma - numpy|   : {acc:.2e}",
            f"reconstruction resid  : {resid:.2e}",
            f"TGK eigensolve speedup: {t1 / t16:.2f}x on 16 simulated "
            f"cores"]
    save_table("ext_svd", "\n".join(rows))
    return acc, resid, t1 / t16


def test_svd_extension(benchmark):
    acc, resid, speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert acc < 1e-12
    assert resid < 1e-11
    # The task-flow ideas carry over to the SVD, as the paper predicts.
    assert speedup > 6.0
