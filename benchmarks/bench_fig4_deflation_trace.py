"""F4 — Fig. 4: trace on a type-5-like matrix with ~100 % deflation.

Paper: with almost-total deflation the merge degenerates to vector
copies (PermuteV / CopyBackDeflated), the solver becomes memory-bound
and the speedup is bandwidth-limited — but the schedule stays busy.

(The paper's Fig. 4 uses its type 5; in our realization type 2 is the
cleanest ~100 %-deflation case, as in the paper's own Fig. 5 legend.)"""

import pytest

from common import save_table, solved_graph


def test_fig4_high_deflation_is_memory_bound(benchmark):
    def run():
        sg = solved_graph(2, 1500, minpart=128, nb=64)
        return sg, sg.trace(n_workers=16)

    sg, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    kt = trace.kernel_times()
    total = sum(kt.values())
    copy_time = kt.get("PermuteV", 0) + kt.get("CopyBackDeflated", 0) \
        + kt.get("SortEigenvectors", 0) + kt.get("LASET", 0)
    gemm_time = kt.get("UpdateVect", 0)

    rows = [f"type 2 (~100% deflation), n=1500, simulated 16 cores",
            f"makespan        : {trace.makespan * 1e3:.2f} ms",
            f"copy kernels    : {copy_time / total:.0%} of busy time",
            f"UpdateVect GEMM : {gemm_time / total:.0%} of busy time",
            f"idle fraction   : {trace.idle_fraction:.0%}"]
    save_table("fig4_deflation_trace", "\n".join(rows))

    # The merge is copy-dominated, not GEMM-dominated.
    assert copy_time > 3 * gemm_time
    # Bandwidth-limited speedup: between ~3 and ~10 on two sockets.
    t1 = sg.makespan(n_workers=1)
    sp = t1 / trace.makespan
    assert 2.5 < sp < 12.0


def test_fig4_speedup_lower_than_low_deflation_case(benchmark):
    def run():
        hi = solved_graph(2, 1500, minpart=128, nb=64)
        lo = solved_graph(4, 1500, minpart=128, nb=64)
        return (hi.makespan(1) / hi.makespan(16),
                lo.makespan(1) / lo.makespan(16))

    sp_hi_defl, sp_lo_defl = benchmark.pedantic(run, rounds=1, iterations=1)
    # Paper: "the speedup expected will not be as high as the previous
    # case" — the compute-bound type scales better.
    assert sp_lo_defl > sp_hi_defl
