"""Eigenvalue-only mode benchmark: throughput and tracked high water.

Compares the three ways this repo computes a full spectrum —

``dc-V``    task-flow D&C with eigenvectors (``jobz='V'``, the default),
``dc-N``    task-flow D&C eigenvalues-only (``jobz='N'``: the reduced
            boundary-row-strip DAG, O(n) auxiliary state),
``mrrr``    the sequential MRRR baseline (O(n) workspace by design) —

on the type-4 Table III matrix at n in {2500, 5000, 10000}.  Two
series per solver:

* **throughput** — wall time of one warm solve (threads backend for the
  D&C modes; MRRR is sequential).  Informational on shared runners.
* **tracked high water** — the ``workspace.high_water_bytes`` gauge the
  telemetry subsystem records at the root merge (D&C modes), i.e. the
  *observed* auxiliary peak, not a model; MRRR is reported from the
  ``analysis.memory`` model (it allocates per-representation vectors,
  nothing is gauged).  Deterministic.

The acceptance gate (checked by ``--smoke`` against the committed
``BENCH_jobz.json``): the n=5000 tracked high water of ``dc-N`` must be
at most 10% of ``dc-V``'s.  The smoke run also re-measures a small
shape live — gauge ratio plus bitwise eigenvalue parity between the
modes — so the gate cannot rot while the committed JSON stays green.

Usage::

    PYTHONPATH=src python benchmarks/bench_jobz.py           # full run
    PYTHONPATH=src python benchmarks/bench_jobz.py --smoke   # CI check
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import load_bench_json, matrix, save_table, \
    write_bench_json  # noqa: E402

import numpy as np  # noqa: E402

from repro import dc_eigh, mrrr_eigh  # noqa: E402
from repro.analysis import mrrr_workspace_bytes  # noqa: E402
from repro.core import DCOptions  # noqa: E402
from repro.obs import Collector  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_jobz.json")

MTYPE = 4
GRID_SIZES = [2500, 5000, 10000]
#: Largest size the sequential Python MRRR baseline runs at.  Its
#: clusters on the uniformly-spaced type-4 spectrum tighten with n —
#: n=2500 takes ~20 s but n=5000 already exceeds 15 *minutes* — so the
#: larger wall-time cells are reported as missing rather than run; the
#: workspace-model cells are still filled in.
MRRR_MAX_N = 2500
GATE_N = 5000
GATE_RATIO = 0.10
SMOKE_N = 800


def _dc(d, e, jobz: str) -> tuple[float, int]:
    """(warm wall seconds, tracked high-water bytes) of one D&C solve."""
    col = Collector()
    opts = DCOptions(jobz=jobz, telemetry=col)
    t0 = time.perf_counter()
    dc_eigh(d, e, options=opts, backend="threads")
    dt = time.perf_counter() - t0
    return dt, int(col.gauges["workspace.high_water_bytes"])


def measure_size(n: int, with_mrrr: bool = True) -> dict:
    d, e = matrix(MTYPE, n)
    rec: dict = {"mtype": MTYPE, "n": n, "solve_s": {},
                 "high_water_bytes": {}}
    for jobz in ("V", "N"):
        dt, hw = _dc(d, e, jobz)
        rec["solve_s"][f"dc-{jobz}"] = dt
        rec["high_water_bytes"][f"dc-{jobz}"] = hw
    if with_mrrr:
        t0 = time.perf_counter()
        mrrr_eigh(d, e)
        rec["solve_s"]["mrrr"] = time.perf_counter() - t0
    rec["high_water_bytes"]["mrrr"] = mrrr_workspace_bytes(n)
    rec["hw_ratio_n_over_v"] = (rec["high_water_bytes"]["dc-N"]
                                / rec["high_water_bytes"]["dc-V"])
    return rec


def gate_verdict(grid: list[dict]) -> dict:
    """N tracked high water <= 10% of V at the gate size."""
    at_gate = [r for r in grid if r["n"] == GATE_N]
    ok = bool(at_gate) and all(r["hw_ratio_n_over_v"] <= GATE_RATIO
                               for r in at_gate)
    return {"gate_n": GATE_N, "max_ratio": GATE_RATIO,
            "ratios": {str(r["n"]): r["hw_ratio_n_over_v"] for r in grid},
            "ok": ok}


def _table(grid: list[dict]) -> str:
    lines = [f"type {MTYPE} matrix, threads backend "
             f"({os.cpu_count()} cpus); high water = tracked "
             "workspace.high_water_bytes gauge (mrrr: model)",
             f"{'n':>6} | {'dc-V':>10} {'dc-N':>10} {'mrrr':>10} | "
             f"{'hw dc-V':>12} {'hw dc-N':>12} {'hw mrrr':>12} | N/V"]
    for r in grid:
        s, hw = r["solve_s"], r["high_water_bytes"]
        lines.append(
            f"{r['n']:>6} | "
            f"{s['dc-V']:>9.2f}s {s['dc-N']:>9.2f}s "
            + (f"{s['mrrr']:>9.2f}s" if "mrrr" in s else f"{'--':>10}")
            + f" | {hw['dc-V'] / 1e6:>10.2f}MB {hw['dc-N'] / 1e6:>10.2f}MB "
            f"{hw['mrrr'] / 1e6:>10.2f}MB | "
            f"{100 * r['hw_ratio_n_over_v']:.2f}%")
    return "\n".join(lines)


def run_full() -> dict:
    print(f"[grid] type {MTYPE}, n in {GRID_SIZES} "
          f"(mrrr wall time capped at n={MRRR_MAX_N})")
    grid = []
    for n in GRID_SIZES:
        rec = measure_size(n, with_mrrr=n <= MRRR_MAX_N)
        s = rec["solve_s"]
        mr = (f"mrrr {s['mrrr']:7.2f}s" if "mrrr" in s
              else "mrrr  (skipped)")
        print(f"  n={n:6d}: dc-V {s['dc-V']:7.2f}s  dc-N {s['dc-N']:7.2f}s"
              f"  {mr}  "
              f"high-water N/V {100 * rec['hw_ratio_n_over_v']:.2f}%",
              flush=True)
        grid.append(rec)
    gate = gate_verdict(grid)
    print(f"[gate] dc-N high water <= {100 * GATE_RATIO:.0f}% of dc-V at "
          f"n={GATE_N}: " + ("OK" if gate["ok"] else "FAIL"))
    save_table("jobz", _table(grid))
    return {"grid": grid, "gate": gate}


def check_smoke(baseline_path: str = BASELINE) -> list[str]:
    """Deterministic CI check: committed gate + live small-shape gate."""
    failures: list[str] = []
    if not os.path.exists(baseline_path):
        failures.append(f"missing committed baseline {baseline_path}")
    else:
        base = load_bench_json(baseline_path)
        gate = gate_verdict(base.get("grid", []))
        if not gate["ok"]:
            failures.append(
                f"committed grid fails the gate: dc-N high water > "
                f"{100 * GATE_RATIO:.0f}% of dc-V at n={GATE_N} "
                f"({gate['ratios']})")

    # Live re-measurement: the tracked gauge ratio must hold on a small
    # shape too (the O(n) vs O(n^2) separation only widens with n), and
    # the two modes must agree bitwise on the eigenvalues.
    rec = measure_size(SMOKE_N, with_mrrr=False)
    print(f"  live n={SMOKE_N}: high-water N/V "
          f"{100 * rec['hw_ratio_n_over_v']:.2f}%")
    if rec["hw_ratio_n_over_v"] > GATE_RATIO:
        failures.append(
            f"live n={SMOKE_N}: dc-N high water is "
            f"{100 * rec['hw_ratio_n_over_v']:.2f}% of dc-V "
            f"(gate {100 * GATE_RATIO:.0f}%)")
    d, e = matrix(MTYPE, SMOKE_N)
    lam_v, _ = dc_eigh(d, e)
    lam_n, _ = dc_eigh(d, e, options=DCOptions(jobz="N"))
    if not np.array_equal(lam_v, lam_n):
        failures.append(
            f"live n={SMOKE_N}: jobz='N' eigenvalues are not bitwise "
            "identical to jobz='V'")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small live check; fail on regression vs the "
                         "committed BENCH_jobz.json")
    ap.add_argument("--out", default=None,
                    help="directory for the JSON (default: repo root)")
    args = ap.parse_args(argv)

    if args.smoke:
        print(f"[smoke] live shape n={SMOKE_N} + committed gate")
        failures = check_smoke()
        if failures:
            print("\nREGRESSIONS DETECTED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nsmoke OK (committed gate holds, live ratio + bitwise "
              "parity hold)")
        return 0

    payload = run_full()
    path = write_bench_json("BENCH_jobz", payload,
                            directory=args.out or REPO_ROOT)
    print(f"[saved to {path}]")
    return 0 if payload["gate"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
