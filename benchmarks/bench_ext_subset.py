"""EXT-1 — subset computation (extension; paper Sec. I discussion).

The paper notes MRRR's main asset is subset computation (Θ(nk)) and
that classical D&C either lacks it or only trims the last update step
([6]).  This repository implements both: D&C with the [6]-style
restricted final update, and true MRRR subsetting that skips unwanted
clusters.  The bench sweeps the subset size and reports the measured
work reduction of each approach."""

import numpy as np
import pytest

from repro import dc_eigh, mrrr_eigh
from common import matrix, save_table

N = 300


def run_sweep():
    d, e = matrix(6, N)
    rows = [f"{'k':>6s} {'DC UpdateVect flops':>20s} {'MRRR Getvec tasks':>18s}"]
    data = {}
    for k in (5, 30, 100, N):
        sub = np.linspace(0, N - 1, k).astype(int)
        res_dc = dc_eigh(d, e, backend="simulated", subset=sub,
                         full_result=True)
        upd = res_dc.trace.kernel_times().get("UpdateVect", 0.0)
        res_mr = mrrr_eigh(d, e, subset=sub, full_result=True)
        getvecs = sum(1 for w in res_mr.records if w.name == "Getvec")
        rows.append(f"{k:>6d} {upd:>20.3e} {getvecs:>18d}")
        data[k] = (upd, getvecs)
    rows.append("(D&C: only the final merge's update shrinks — the [6] "
                "optimization; MRRR: work scales with k — Θ(nk))")
    save_table("ext_subset", "\n".join(rows))
    return data


def test_subset_work_scales(benchmark):
    data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # D&C's final-update restriction saves real work for small subsets.
    assert data[5][0] < 0.75 * data[N][0]
    # MRRR's vector work scales with the subset size.
    assert data[5][1] < data[N][1] / 4
    assert data[30][1] <= data[100][1] <= data[N][1]


def test_subset_results_consistent(benchmark):
    def run():
        d, e = matrix(6, N)
        sub = np.arange(10, 40)
        lam_dc, v_dc = dc_eigh(d, e, subset=sub)
        lam_mr, v_mr = mrrr_eigh(d, e, subset=sub)
        return d, e, sub, lam_dc, v_dc, lam_mr, v_mr

    d, e, sub, lam_dc, v_dc, lam_mr, v_mr = benchmark.pedantic(
        run, rounds=1, iterations=1)
    np.testing.assert_allclose(lam_dc, lam_mr, atol=1e-10)
    # Vectors agree up to sign.
    dots = np.abs(np.sum(v_dc * v_mr, axis=0))
    np.testing.assert_allclose(dots, 1.0, atol=1e-8)
