"""F10 — Fig. 10: application matrices.

Paper: on matrices from real applications (LAPACK stetester collection)
the task-flow D&C outperforms MR³-SMP on almost all cases while giving
better accuracy.  Here the collection is replaced by synthetic
application-class generators (glued Wilkinson, Lanczos-reduced PDE
operators, clustered and graded spectra — see
repro.matrices.application)."""

import pytest

from repro import dc_eigh, mrrr_eigh
from repro.analysis import (mrrr_makespan, orthogonality_error,
                            tridiagonal_residual)
from repro.core import DCOptions
from repro.matrices import application_matrices
from common import PAPER_MACHINE, save_table
from common import SolvedGraph


def run_application_set():
    results = []
    for name, d, e in application_matrices(max_n=420):
        sg = SolvedGraph(d, e, DCOptions(minpart=64, nb=32))
        t_dc = sg.makespan(n_workers=16, machine=PAPER_MACHINE)
        t_mr = mrrr_makespan(d, e, n_workers=16, machine=PAPER_MACHINE)
        lam, V = sg.ctx.result()
        lam_mr, v_mr = mrrr_eigh(d, e)
        results.append((name, len(d), t_dc, t_mr,
                        orthogonality_error(V),
                        orthogonality_error(v_mr)))
    return results


def test_fig10_application_matrices(benchmark):
    results = benchmark.pedantic(run_application_set, rounds=1,
                                 iterations=1)
    rows = [f"{'matrix':<26s} {'n':>5s} {'t_DC':>9s} {'t_MR3':>9s} "
            f"{'ratio':>6s} {'orthDC':>9s} {'orthMR3':>9s}"]
    dc_wins = 0
    for name, n, t_dc, t_mr, o_dc, o_mr in results:
        rows.append(f"{name:<26s} {n:>5d} {t_dc * 1e3:>7.2f}ms "
                    f"{t_mr * 1e3:>7.2f}ms {t_mr / t_dc:>6.2f} "
                    f"{o_dc:>9.1e} {o_mr:>9.1e}")
        if t_dc < t_mr:
            dc_wins += 1
    rows.append("(paper: D&C outperforms MR3-SMP on almost all "
                "application cases, with better accuracy)")
    save_table("fig10_application", "\n".join(rows))

    # D&C faster on most of the set, accuracy at least as good overall.
    assert dc_wins >= len(results) - 1
    worst_dc = max(r[4] for r in results)
    worst_mr = max(r[5] for r in results)
    assert worst_dc <= worst_mr * 2.0
