"""A2 — GATHERV ablation (design choice of Sec. IV).

Without GATHERV, a join kernel would need one declared dependency per
panel (Θ(n/nb) tracking work per task); with it, every task declares a
constant number of accesses.  This bench sweeps the panel count and
reports declared-accesses-per-task — flat for the GATHERV design,
linearly growing for the emulated per-panel alternative."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, submit_dc
from repro.runtime import TaskGraph
from common import matrix, save_table

PANEL_KERNELS = ("PermuteV", "LAED4", "ComputeLocalW", "ComputeVect",
                 "UpdateVect", "CopyBackDeflated")


def build_stats(nb: int, n: int = 1024):
    d, e = matrix(6, n)
    g = TaskGraph()
    submit_dc(g, DCContext(d, e, DCOptions(minpart=512, nb=nb)))
    root_panels = (n + nb - 1) // nb
    worst = max(len(t.accesses) for t in g.tasks
                if t.name in PANEL_KERNELS)
    return root_panels, worst, g.n_tasks


def test_gatherv_keeps_declared_accesses_constant(benchmark):
    def run():
        return {nb: build_stats(nb) for nb in (512, 128, 32, 8)}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{'nb':>6s} {'panels':>8s} {'tasks':>7s} "
            f"{'max accesses/panel task':>24s} "
            f"{'w/o GATHERV (emulated)':>24s}"]
    for nb, (panels, worst, ntasks) in stats.items():
        rows.append(f"{nb:>6d} {panels:>8d} {ntasks:>7d} {worst:>24d} "
                    f"{panels + 3:>24d}")
    rows.append("(GATHERV: O(1) declared deps per task; per-panel "
                "qualifiers would grow with the panel count)")
    save_table("ablation_gatherv", "\n".join(rows))

    counts = [worst for (_, worst, _) in stats.values()]
    # Declared access counts do not grow as panels multiply by 64x.
    assert max(counts) == min(counts)
    assert max(counts) <= 6


def test_join_tasks_single_inout(benchmark):
    """Paper: 'the join task has a single INOUT dependency on the full
    matrix' — constant declared accesses for Compute_deflation/ReduceW."""
    def run():
        d, e = matrix(6, 1024)
        g = TaskGraph()
        submit_dc(g, DCContext(d, e, DCOptions(minpart=128, nb=16)))
        return g

    g = benchmark.pedantic(run, rounds=1, iterations=1)
    for t in g.tasks:
        if t.name in ("Compute_deflation", "ReduceW"):
            assert len(t.accesses) <= 3
