"""F8 — Fig. 8: time(MR³-SMP) / time(D&C) across the fifteen types.

Paper: the comparison is matrix-dependent — D&C wins big (up to ~25×)
when eigenvalues cluster or deflation is high (types 1/2, Wilkinson...),
while MRRR can win (D&C at most ~2× slower) when eigenvalues are well
separated and little deflation occurs.

Both solvers are timed on the same simulated 16-core machine: the D&C
task-flow DAG vs the replayed MR³-SMP work tree (real per-matrix
deflation/cluster structure in both)."""

import pytest

from repro.analysis import mrrr_makespan
from common import PAPER_MACHINE, matrix, save_table, solved_graph

N = 300
ALL_TYPES = tuple(range(1, 16))


def run_all_types():
    ratios = {}
    for mtype in ALL_TYPES:
        d, e = matrix(mtype, N)
        t_mrrr = mrrr_makespan(d, e, n_workers=16, machine=PAPER_MACHINE)
        tf = solved_graph(mtype, N, minpart=64, nb=32)
        ratios[mtype] = t_mrrr / tf.makespan(16)
    return ratios


def test_fig8_mrrr_vs_dc_all_types(benchmark):
    ratios = benchmark.pedantic(run_all_types, rounds=1, iterations=1)
    rows = [f"n={N}, simulated 16 cores; ratio = time_MR3 / time_DC",
            f"{'type':>5s} {'ratio':>8s}  verdict"]
    for t, r in ratios.items():
        rows.append(f"{t:>5d} {r:>8.2f}  "
                    + ("D&C faster" if r > 1 else "MRRR faster"))
    rows.append("(paper: D&C faster on most types, up to ~25x; MRRR can "
                "win by <2x on well-separated spectra)")
    save_table("fig8_vs_mrrr", "\n".join(rows))

    # The heavy-clustered types are where D&C wins big.
    assert ratios[1] > 2.0
    assert ratios[2] > 2.0
    # D&C wins on the majority of types (paper's conclusion).
    assert sum(1 for r in ratios.values() if r > 1.0) >= 8
    # But not uniformly: the comparison is matrix-dependent; no type
    # should show MRRR more than ~4x faster.
    assert min(ratios.values()) > 0.25


def test_fig8_size_trend_and_crossover(benchmark):
    """Size trends: D&C's advantage on clustered spectra (type 2)
    persists with size, while on the well-separated low-deflation
    type 4 the ratio drifts below 1 — MRRR wins modestly, exactly the
    paper's 'at max 2x slower' regime."""
    def run():
        out = {}
        for mtype, sizes in ((2, (200, 400)), (4, (300, 1200))):
            for n in sizes:
                d, e = matrix(mtype, n)
                t_mrrr = mrrr_makespan(d, e, n_workers=16,
                                       machine=PAPER_MACHINE)
                tf = solved_graph(mtype, n, minpart=64, nb=32)
                out[(mtype, n)] = t_mrrr / tf.makespan(16)
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{'type':>5s} {'n':>6s} {'time_MR3/time_DC':>17s}"]
    for (t, n), v in r.items():
        rows.append(f"{t:>5d} {n:>6d} {v:>17.2f}")
    rows.append("(crossover: MRRR overtakes D&C on type 4 at large n, "
                "by less than the paper's 2x bound)")
    save_table("fig8_size_trend", "\n".join(rows))

    assert r[(2, 200)] > 1.0 and r[(2, 400)] > 1.0   # clustered: D&C wins
    assert r[(4, 1200)] < r[(4, 300)]                # gap narrows with n
    assert r[(4, 1200)] > 0.5                        # MRRR wins < 2x
