"""EXT-3 — heterogeneous execution prototype (paper future work).

"For future work, we plan to study the implementation for both
heterogeneous and distributed architectures, in the MAGMA and DPLASMA
libraries."  Related work [16] offloads the secular equation and the
GEMMs to GPUs.  This bench runs the unchanged D&C task DAG on the
simulated CPU machine vs the same machine plus one accelerator using
the [16] offload split, across the three deflation regimes."""

import pytest

from repro.runtime import Accelerator, HeteroMachine, SimulatedMachine
from common import PAPER_MACHINE, save_table, solved_graph


def run():
    table = {}
    for mtype in (2, 3, 4):
        sg = solved_graph(mtype, 1200, minpart=128, nb=48)
        t_cpu = sg.makespan(n_workers=16)
        het = HeteroMachine(PAPER_MACHINE, accelerators=1,
                            accel=Accelerator(gflops=900, n_streams=4),
                            execute=False)
        t_het = het.run(sg.graph).makespan
        table[mtype] = (t_cpu, t_het)
    return table


def test_heterogeneous_offload(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{'type':>5s} {'16 cores':>10s} {'+1 GPU':>10s} {'gain':>6s}"]
    for t, (c, h) in table.items():
        rows.append(f"{t:>5d} {c * 1e3:>8.2f}ms {h * 1e3:>8.2f}ms "
                    f"{c / h:>6.2f}")
    rows.append("(offload split of [16]: secular equation + GEMMs on "
                "the accelerator)")
    save_table("ext_heterogeneous", "\n".join(rows))

    # GEMM-heavy (low deflation) solves gain the most from the GPU;
    # copy-dominated (type 2) solves gain little.
    gain = {t: c / h for t, (c, h) in table.items()}
    assert gain[4] > 1.25
    assert gain[4] > gain[2]
    # The GPU never hurts.
    assert min(gain.values()) > 0.9
