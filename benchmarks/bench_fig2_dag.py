"""F2 — Fig. 2: the task DAG of the D&C tridiagonal eigensolver.

Rebuilds the exact scenario of the figure — n = 1000, minimal partition
size 300, panel size nb = 500 — and reports the task census, the DAG
depth and the matrix-independence property."""

import numpy as np

from repro.core import DCContext, DCOptions, submit_dc
from repro.runtime import TaskGraph
from common import matrix, save_table


def build(d, e):
    g = TaskGraph()
    ctx = DCContext(d, e, DCOptions(minpart=300, nb=500))
    submit_dc(g, ctx)
    return g


def test_fig2_dag_structure(benchmark):
    d, e = matrix(6, 1000)
    g = benchmark.pedantic(build, args=(d, e), rounds=1, iterations=1)

    counts = g.kernel_counts()
    levels = g.levels()
    rows = [f"tasks={g.n_tasks}  edges={g.n_edges}  "
            f"dag-depth={len(levels)}",
            f"{'kernel':<20s} {'tasks':>6s}"]
    for k in sorted(counts):
        rows.append(f"{k:<20s} {counts[k]:>6d}")
    rows.append("")
    rows.append("tasks per DAG level (Fig. 2 rows): "
                + str([len(l) for l in levels]))
    save_table("fig2_dag", "\n".join(rows))

    # Figure census: 4 leaves, 3 merges, root has two panels of 500.
    assert counts["STEDC"] == 4
    assert counts["Compute_deflation"] == 3
    assert counts["LAED4"] == 4        # 1 + 1 + 2 panels
    assert counts["UpdateVect"] == 4
    g.validate_acyclic()


def test_fig2_dag_matrix_independent(benchmark):
    def build_two():
        d1, e1 = matrix(6, 1000)
        d2 = np.ones(1000)
        e2 = np.full(999, 1e-15)
        return build(d1, e1), build(d2, e2)

    g1, g2 = benchmark.pedantic(build_two, rounds=1, iterations=1)
    assert [t.name for t in g1.tasks] == [t.name for t in g2.tasks]
    assert g1.n_edges == g2.n_edges
