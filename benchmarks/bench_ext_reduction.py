"""EXT-5 — task-flow reduction stage (paper context, ref. [3]).

The paper's pipeline starts from PLASMA's task-based reduction to
tridiagonal form [3].  This bench runs our task-flow one-stage
reduction on the simulated 16-core machine and shows (a) it
parallelizes (the O(n²)-per-step symv/update work spreads over tiles
while the panel chain stays serial — the very limitation that motivated
[3]'s two-stage approach), and (b) in the full dense pipeline the
reduction dominates the tridiagonal eigensolve, the paper's Sec. I
framing for why the tridiagonal stage had been neglected."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, submit_dc, taskflow_tridiagonalize
from repro.runtime import Machine, SequentialScheduler, SimulatedMachine, TaskGraph
from common import PAPER_MACHINE, save_table


def run():
    rng = np.random.default_rng(0)
    n = 384
    A = rng.normal(size=(n, n))
    A = 0.5 * (A + A.T)
    tri, tr16, g = taskflow_tridiagonalize(A, backend="simulated",
                                           machine=PAPER_MACHINE,
                                           tile=max(16, n // 16),
                                           full_result=True)
    t1 = SimulatedMachine(PAPER_MACHINE, n_workers=1,
                          execute=False).run(g).makespan
    t16 = tr16.makespan
    # Tridiagonal solve stage on the same machine.
    ctx = DCContext(tri.d, tri.e, DCOptions(minpart=64, nb=32))
    g2 = TaskGraph()
    submit_dc(g2, ctx)
    SequentialScheduler().run(g2)
    t_dc = SimulatedMachine(PAPER_MACHINE, n_workers=16,
                            execute=False).run(g2).makespan
    return n, t1, t16, t_dc


def test_reduction_stage(benchmark):
    n, t1, t16, t_dc = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"dense symmetric pipeline, n={n}, simulated 16 cores",
            f"reduction 1 core      : {t1 * 1e3:8.2f} ms",
            f"reduction 16 cores    : {t16 * 1e3:8.2f} ms "
            f"(speedup {t1 / t16:.1f}x; panel chain caps it — the "
            f"motivation for [3]'s two-stage scheme)",
            f"tridiagonal D&C stage : {t_dc * 1e3:8.2f} ms",
            f"reduction / D&C ratio : {t16 / t_dc:8.1f}x"]
    save_table("ext_reduction", "\n".join(rows))

    assert t1 / t16 > 2.0           # the quadratic work parallelizes
    assert t1 / t16 < 16.0          # but the panel chain is serial
    assert t16 > t_dc               # reduction dominates the pipeline
