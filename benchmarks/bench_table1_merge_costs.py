"""T1 — Table I: cost of the merge operations.

Verifies the Θ-model of Table I against the measured per-merge work of
real solves: for the final merge of each matrix we report n, k and the
model's operation counts, and check the measured GEMM/secular work
scales as the model predicts (Θ(nk²) and Θ(k²))."""

import numpy as np
import pytest

from repro import dc_eigh
from repro.analysis import merge_step_costs
from common import matrix, save_table


def run_table1():
    rows = [f"{'type':>5s} {'n':>6s} {'k':>6s} {'defl':>6s} "
            f"{'secular Θ(k²)':>14s} {'update Θ(nk²)':>14s} "
            f"{'permute Θ(n²)':>14s}"]
    data = []
    for mtype in (2, 3, 4):
        for n in (256, 512, 1024):
            d, e = matrix(mtype, n)
            res = dc_eigh(d, e, full_result=True)
            st = res.info.ctx.merge_stats[-1]     # final merge
            costs = merge_step_costs(st.n, st.k)
            rows.append(
                f"{mtype:>5d} {st.n:>6d} {st.k:>6d} "
                f"{st.deflation_ratio:>6.0%} "
                f"{costs['Solve the secular equation']:>14.3g} "
                f"{costs['Compute eigenvectors V = V~X']:>14.3g} "
                f"{costs['Permute eigenvectors (copy)']:>14.3g}")
            data.append((mtype, n, st.n, st.k))
    save_table("table1_merge_costs", "\n".join(rows))
    return data


def test_table1_merge_cost_model(benchmark):
    data = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    # Scaling checks: doubling n with similar deflation ratio roughly
    # quadruples the secular cost and octuples the update cost.
    by_type = {}
    for mtype, n, nn, k in data:
        by_type.setdefault(mtype, []).append((n, k))
    for mtype, pairs in by_type.items():
        pairs.sort()
        (n1, k1), (n2, k2) = pairs[0], pairs[-1]
        if k1 > 0 and k2 > 0:
            # k grows roughly linearly with n for a fixed spectrum type.
            ratio = (k2 / k1) / (n2 / n1)
            assert 0.2 < ratio < 5.0


def test_table1_last_merge_dominates(benchmark):
    """Eq. 8 corollary: the last merge holds most of the quadratic+cubic
    work (its k is the largest by far)."""
    def run():
        d, e = matrix(4, 1024)
        res = dc_eigh(d, e, full_result=True)
        return res.info.ctx.merge_stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    work = [2.0 * s.n * s.k * s.k for s in stats]
    assert max(work) == work[-1]
    assert work[-1] > 0.5 * sum(work)
