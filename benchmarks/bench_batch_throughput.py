"""Batch throughput benchmark: SolverSession vs the one-shot solve loop.

Three sections, all written to ``BENCH_batch.json``:

``throughput``
    Wall-clock solves/sec for a batch of same-shape type-4 matrices on
    the threads backend: the historical serial loop
    (``dc_eigh_many(use_session=False)`` — one scheduler spin-up, one
    workspace allocation and one thread join per problem) against a
    :class:`~repro.core.session.SolverSession` (persistent worker pool,
    pooled workspaces, concurrent submissions fused into one super-DAG).
``fused``
    The deterministic overlap demonstration on the paper's 16-core
    virtual machine: simulated makespans of k independent solves run
    back-to-back versus the same k task graphs fused with
    :meth:`TaskGraph.fuse` and simulated as one super-DAG.  Panel tasks
    of one problem fill the virtual cores idled by another problem's
    serial merge spine, so the fused makespan is strictly smaller than
    the sum — independent of how many physical cores the benchmark host
    has.
``latency``
    Per-solve latency percentiles (p50/p90/p99) of the session's
    concurrent submissions, from the ``SolveHandle`` timestamps.

``--smoke`` (the CI gate) re-runs a small fixed configuration and fails
when

* the fused simulated super-DAG shows no overlap win
  (``overlap_speedup < 1.05``) — deterministic, so it gates CI, or
* session throughput regresses more than 2x against the committed
  ``BENCH_batch.json``.

The wall-clock session-vs-loop ratio is printed but **informational by
default**: real-time throughput comparisons on shared 1-2 core CI
runners are inherently noisy and would flake unrelated PRs.  Set
``REPRO_BATCH_ENFORCE_RATIO=1`` (e.g. locally, or when refreshing the
baseline on a quiet multicore box) to enforce ``session >= (1 - tol) *
loop`` with ``tol = REPRO_BATCH_TOL`` (default 0.15) and two
re-measurements before failing.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import (PAPER_MACHINE, load_bench_json, matrix,
                    write_bench_json)  # noqa: E402

from repro.core import DCOptions, SolverSession, dc_eigh_many  # noqa: E402
from repro.core.graph_cache import (graph_template_cache,
                                    template_key)  # noqa: E402
from repro.core.merge import DCContext  # noqa: E402
from repro.runtime import (SequentialScheduler, SimulatedMachine,
                           TaskGraph)  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_batch.json")

SMOKE_N = 256
SMOKE_BATCH = 12
SMOKE_WORKERS = 4
MTYPE = 4


def _problems(n: int, count: int) -> list:
    return [matrix(MTYPE, n, seed=s) for s in range(count)]


def _batch_per_s(problems, *, use_session: bool, n_workers: int,
                 repeats: int = 3) -> float:
    """Best-of-``repeats`` batch throughput in solves/sec."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = dc_eigh_many(problems, backend="threads",
                           n_workers=n_workers, use_session=use_session)
        best = min(best, time.perf_counter() - t0)
        assert all(isinstance(r, tuple) for r in out)
    return len(problems) / best


def bench_throughput(n: int, batch: int, n_workers: int,
                     repeats: int = 3) -> dict:
    problems = _problems(n, batch)
    loop = _batch_per_s(problems, use_session=False, n_workers=n_workers,
                        repeats=repeats)
    sess = _batch_per_s(problems, use_session=True, n_workers=n_workers,
                        repeats=repeats)
    out = {"n": n, "batch": batch, "n_workers": n_workers,
           "loop_per_s": loop, "session_per_s": sess,
           "session_over_loop": sess / loop}
    print(f"[throughput] n={n} batch={batch} workers={n_workers}: "
          f"loop {loop:.2f}/s  session {sess:.2f}/s  "
          f"ratio {sess / loop:.3f}")
    return out


def bench_fused(n: int, k: int = 4) -> dict:
    """Simulated super-DAG overlap: k independent solves vs one fusion.

    Each graph is executed once sequentially so deflation-dependent task
    costs are known, then replayed on the 16-core virtual machine with
    ``execute=False`` — individually (back-to-back) and fused.
    """
    opts = DCOptions(reuse_graph=True)
    graphs = []
    individual = 0.0
    for s in range(k):
        d, e = matrix(MTYPE, n, seed=s)
        ctx = DCContext(d, e, opts)
        graph, _ = graph_template_cache.get_or_build(
            ctx, template_key(n, opts))
        SequentialScheduler().run(graph)
        individual += SimulatedMachine(PAPER_MACHINE, n_workers=16,
                                       execute=False).run(graph).makespan
        graphs.append(graph)
    fused_graph = TaskGraph.fuse(graphs)
    fused = SimulatedMachine(PAPER_MACHINE, n_workers=16,
                             execute=False).run(fused_graph).makespan
    out = {"n": n, "k": k, "individual_makespan_s": individual,
           "fused_makespan_s": fused,
           "overlap_speedup": individual / fused}
    print(f"[fused] n={n} k={k}: back-to-back {individual:.4f}s "
          f"fused {fused:.4f}s  overlap x{individual / fused:.2f}")
    return out


def bench_latency(n: int, batch: int, n_workers: int) -> dict:
    problems = _problems(n, batch)
    with SolverSession(backend="threads", n_workers=n_workers) as session:
        handles = [session.submit(d, e) for d, e in problems]
        for h in handles:
            h.result()
        lats = sorted(h.latency_s for h in handles)
        stats = session.stats()

    def pct(q: float) -> float:
        return lats[min(len(lats) - 1, int(round(q * (len(lats) - 1))))]

    out = {"n": n, "batch": batch, "n_workers": n_workers,
           "p50_s": pct(0.50), "p90_s": pct(0.90), "p99_s": pct(0.99),
           "mean_s": sum(lats) / len(lats),
           "workspace": stats.get("workspace"),
           "graph_cache": stats["graph_cache"]}
    print(f"[latency] n={n} batch={batch}: p50 {out['p50_s'] * 1e3:.1f}ms "
          f"p90 {out['p90_s'] * 1e3:.1f}ms p99 {out['p99_s'] * 1e3:.1f}ms")
    return out


def bench_smoke() -> dict:
    print(f"[smoke] n={SMOKE_N} batch={SMOKE_BATCH} "
          f"workers={SMOKE_WORKERS}")
    return {
        "throughput": bench_throughput(SMOKE_N, SMOKE_BATCH, SMOKE_WORKERS),
        "fused": bench_fused(SMOKE_N, k=4),
    }


def check_gate(smoke: dict) -> list[str]:
    """The CI assertions; returns failure messages (empty = pass)."""
    failures: list[str] = []
    tol = float(os.environ.get("REPRO_BATCH_TOL", "0.15"))
    enforce = os.environ.get("REPRO_BATCH_ENFORCE_RATIO", "") == "1"
    th = smoke["throughput"]
    if th["session_per_s"] < (1.0 - tol) * th["loop_per_s"]:
        msg = (f"session throughput {th['session_per_s']:.2f}/s below loop "
               f"{th['loop_per_s']:.2f}/s beyond {tol:.0%} noise tolerance")
        if enforce:
            # Wall-clock ratios are noisy: re-measure before failing.
            for _ in range(2):
                print("[smoke] ratio below tolerance; re-measuring")
                th = bench_throughput(SMOKE_N, SMOKE_BATCH, SMOKE_WORKERS)
                if th["session_per_s"] >= (1.0 - tol) * th["loop_per_s"]:
                    break
            else:
                failures.append(msg)
        else:
            print(f"[smoke] INFO (not gated; wall-clock is noisy on "
                  f"shared runners): {msg}")
    fused = smoke["fused"]
    if fused["overlap_speedup"] < 1.05:
        failures.append(
            f"fused super-DAG shows no overlap win: "
            f"x{fused['overlap_speedup']:.3f} < x1.05")
    if os.path.exists(BASELINE):
        base = load_bench_json(BASELINE).get("smoke", {})
        base_th = base.get("throughput", {})
        if base_th.get("session_per_s"):
            if th["session_per_s"] * 2 < base_th["session_per_s"]:
                failures.append(
                    f"session throughput regressed >2x vs baseline "
                    f"({th['session_per_s']:.2f}/s vs "
                    f"{base_th['session_per_s']:.2f}/s)")
    else:
        print(f"[smoke] no baseline at {BASELINE}; skipping comparison")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="CI gate: small fixed configuration, "
                         "non-zero exit on failed assertions")
    ap.add_argument("--out", default=REPO_ROOT,
                    help="directory for BENCH_batch.json (full runs)")
    args = ap.parse_args(argv)

    if args.smoke:
        smoke = bench_smoke()
        failures = check_gate(smoke)
        if failures:
            for f in failures:
                print(f"SMOKE FAILURE: {f}", file=sys.stderr)
            return 1
        print("\nsmoke OK (fused super-DAG overlaps; throughput within "
              "regression bound)")
        return 0

    payload = {
        "throughput": [
            bench_throughput(300, 16, 4),
            bench_throughput(600, 16, 4),
        ],
        "fused": [bench_fused(300, k=4), bench_fused(600, k=4)],
        "latency": bench_latency(300, 16, 4),
        "smoke": bench_smoke(),
    }
    write_bench_json("BENCH_batch", payload, directory=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
