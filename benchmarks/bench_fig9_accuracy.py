"""F9 — Fig. 9: numerical stability of D&C vs MRRR.

Paper: (a) eigenvector orthogonality ‖I − VVᵀ‖/n and (b) reduction
residual ‖T − VΛVᵀ‖/(‖T‖n); D&C is consistently more accurate than
MRRR, by one to two digits (theory: O(√n·ε) vs O(n·ε))."""

import numpy as np
import pytest

from repro import dc_eigh, mrrr_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual
from repro.matrices import MATRIX_TYPES
from common import matrix, save_table

N = 250


def run_accuracy():
    out = {}
    for mtype in MATRIX_TYPES:
        d, e = matrix(mtype, N)
        lam_dc, v_dc = dc_eigh(d, e)
        lam_mr, v_mr = mrrr_eigh(d, e)
        out[mtype] = (orthogonality_error(v_dc),
                      tridiagonal_residual(d, e, lam_dc, v_dc),
                      orthogonality_error(v_mr),
                      tridiagonal_residual(d, e, lam_mr, v_mr))
    return out


def test_fig9_accuracy(benchmark):
    acc = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    rows = [f"n={N}; orthogonality |I-V'V|/n and residual "
            f"|T-VLV'|/(|T| n)",
            f"{'type':>5s} {'DC orth':>10s} {'DC resid':>10s} "
            f"{'MR3 orth':>10s} {'MR3 resid':>10s}"]
    for t, (do, dr, mo, mr) in acc.items():
        rows.append(f"{t:>5d} {do:>10.1e} {dr:>10.1e} "
                    f"{mo:>10.1e} {mr:>10.1e}")
    save_table("fig9_accuracy", "\n".join(rows))

    dc_orth = np.array([v[0] for v in acc.values()])
    mr_orth = np.array([v[2] for v in acc.values()])
    dc_res = np.array([v[1] for v in acc.values()])
    mr_res = np.array([v[3] for v in acc.values()])
    n = N
    eps = np.finfo(float).eps
    # Everything is numerically sane.
    assert dc_orth.max() < 100 * n * eps
    assert mr_orth.max() < 1000 * n * eps
    assert dc_res.max() < 100 * n * eps
    # D&C is at least as accurate as MRRR in the worst case, with a
    # clear gap in the geometric mean (paper: 1-2 digits).
    assert dc_orth.max() <= mr_orth.max()
    gmean_ratio = np.exp(np.mean(np.log((mr_orth + 1e-20)
                                        / (dc_orth + 1e-20))))
    assert gmean_ratio > 2.0


def test_fig9_multiple_threads_do_not_degrade(benchmark):
    """Paper: 'multiple threads do not degrade the results'."""
    def run():
        d, e = matrix(6, N)
        lam_s, v_s = dc_eigh(d, e, backend="sequential")
        lam_t, v_t = dc_eigh(d, e, backend="threads", n_workers=4)
        return lam_s, v_s, lam_t, v_t

    lam_s, v_s, lam_t, v_t = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_array_equal(lam_s, lam_t)
    np.testing.assert_array_equal(v_s, v_t)
