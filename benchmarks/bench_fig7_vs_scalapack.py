"""F7 — Fig. 7: speedup of the task-flow D&C over MKL ScaLAPACK pdstedc.

Paper (16 ranks on the same node): ScaLAPACK already parallelizes the
independent subproblems and distributes the merges, so the gap is
smaller than against LAPACK — around 2× for ≥ 20 % deflation, up to 4×
for ~100 % deflation (where pdstedc pays data exchanges for work the
task-flow does as local copies)."""

import pytest

from repro.baselines import scalapack_dc_makespan
from common import PAPER_MACHINE, matrix, save_table, solved_graph

SIZES = (600, 1200, 1800)


def run_sweep():
    table = {}
    for mtype in (2, 3, 4):
        for n in SIZES:
            d, e = matrix(mtype, n)
            t_sca = scalapack_dc_makespan(d, e, n_ranks=16,
                                          machine=PAPER_MACHINE)
            tf = solved_graph(mtype, n, minpart=128, nb=48)
            table[(mtype, n)] = t_sca / tf.makespan(16)
    return table


def test_fig7_speedup_vs_scalapack(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [f"{'n':>6s} " + "".join(f"{f'type{t}':>9s}" for t in (2, 3, 4))
            + "   (time_ScaLAPACK / time_taskflow)"]
    for n in SIZES:
        rows.append(f"{n:>6d} "
                    + "".join(f"{table[(t, n)]:>9.2f}" for t in (2, 3, 4)))
    rows.append("(paper: ~2x at >=20% deflation, up to ~4x at ~100%)")
    save_table("fig7_vs_scalapack", "\n".join(rows))

    for n in SIZES:
        for t in (2, 3, 4):
            # Task-flow wins, but by less than against LAPACK.
            assert table[(t, n)] > 1.0
        # High deflation widens the gap (communication vs local copies).
        assert table[(2, n)] > table[(4, n)]


def test_fig7_smaller_gap_than_fig6(benchmark):
    def run():
        d, e = matrix(3, 1200)
        t_sca = scalapack_dc_makespan(d, e, n_ranks=16,
                                      machine=PAPER_MACHINE)
        tf = solved_graph(3, 1200, minpart=128, nb=48)
        fj = solved_graph(3, 1200, minpart=128, nb=48,
                          fork_join=True, level_barrier=True)
        return t_sca / tf.makespan(16), fj.makespan(16) / tf.makespan(16)

    vs_sca, vs_mkl = benchmark.pedantic(run, rounds=1, iterations=1)
    # ScaLAPACK is the stronger baseline (paper's Fig. 7 vs Fig. 6).
    assert vs_sca < vs_mkl
