"""T2 — Table II: the kernel set of the execution traces.

The paper's Table II lists the ten kernels whose colors appear in the
DAG and trace figures.  This bench runs one simulated solve and checks
the trace contains exactly those kernels (plus the cheap scale/partition
wrappers), reporting the per-kernel time breakdown."""

from repro import dc_eigh
from common import matrix, save_table

PAPER_TABLE2 = {
    "UpdateVect", "ComputeVect", "LAED4", "ComputeLocalW",
    "SortEigenvectors", "STEDC", "LASET", "Compute_deflation",
    "PermuteV", "CopyBackDeflated",
}

#: Kernels of this implementation that the paper does not list
#: separately (scale/partition wrappers appear as DAG nodes in Fig. 2;
#: ApplyGivens is folded into the deflation step in the paper's text).
#: ReduceW exists as a task but Table II folds it into ComputeLocalW's
#: color in the paper's legend.
EXTRA_KERNELS = {"ScaleT", "ScaleBack", "Partition", "ApplyGivens",
                 "LevelBarrier", "ReduceW"}


def test_table2_trace_kernels(benchmark):
    def run():
        d, e = matrix(4, 512)
        res = dc_eigh(d, e, backend="simulated", full_result=True)
        return res.trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    seen = set(trace.kernel_counts())
    assert PAPER_TABLE2 <= seen
    assert seen - PAPER_TABLE2 <= EXTRA_KERNELS

    kt = trace.kernel_times()
    total = sum(kt.values())
    rows = [f"{'kernel':<20s} {'time %':>8s} {'tasks':>7s}"]
    for k, v in sorted(kt.items(), key=lambda kv: -kv[1]):
        rows.append(f"{k:<20s} {v / total:>8.1%} "
                    f"{trace.kernel_counts()[k]:>7d}")
    save_table("table2_kernels", "\n".join(rows))
