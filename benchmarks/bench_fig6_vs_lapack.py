"""F6 — Fig. 6: speedup of the task-flow D&C over MKL-LAPACK dstedc.

Paper (16 cores, sizes 2 500-25 000): 4-6× when deflation is large
(types 2/3 — the subproblems and secular equation parallelize), ~2×
when deflation is small (type 4 — both models are GEMM-bound and the
multithreaded BLAS already covers the cubic part).

Here both models run on the same simulated machine: the task-flow DAG
vs the fork/join (parallel-GEMM-only, level-synchronized) DAG."""

import pytest

from common import save_table, solved_graph

SIZES = (600, 1200, 1800)


def run_sweep():
    table = {}
    for mtype in (2, 3, 4):
        for n in SIZES:
            tf = solved_graph(mtype, n, minpart=128, nb=48)
            fj = solved_graph(mtype, n, minpart=128, nb=48,
                              fork_join=True, level_barrier=True)
            table[(mtype, n)] = fj.makespan(16) / tf.makespan(16)
    return table


def test_fig6_speedup_vs_lapack(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [f"{'n':>6s} " + "".join(f"{f'type{t}':>9s}" for t in (2, 3, 4))
            + "   (time_MKL / time_taskflow)"]
    for n in SIZES:
        rows.append(f"{n:>6d} "
                    + "".join(f"{table[(t, n)]:>9.2f}" for t in (2, 3, 4)))
    rows.append("(paper: 4-6x for types 2/3, ~2x for type 4)")
    save_table("fig6_vs_lapack", "\n".join(rows))

    for n in SIZES:
        # The task-flow variant always wins...
        for t in (2, 3, 4):
            assert table[(t, n)] > 1.2
        # ...and wins MORE when deflation is high (quadratic parts
        # dominate and only the task-flow parallelizes them).
        assert table[(2, n)] > table[(4, n)]


def test_fig6_largest_size_type4_bounded(benchmark):
    """Low deflation at large n: both models are GEMM-bound, the gap
    narrows toward ~2x (paper's 'marginally decrease' remark)."""
    def run():
        tf = solved_graph(4, 1800, minpart=128, nb=48)
        fj = solved_graph(4, 1800, minpart=128, nb=48,
                          fork_join=True, level_barrier=True)
        return fj.makespan(16) / tf.makespan(16)

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 1.2 < ratio < 8.0
