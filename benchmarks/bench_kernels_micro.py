"""Microbenchmarks of the numerical kernels (pytest-benchmark proper:
multiple rounds, statistics).  These are the per-kernel throughputs the
simulator's cost model abstracts; tracking them guards against
performance regressions in the vectorized implementations."""

import numpy as np
import pytest

from repro.kernels import (deflate, eigenvector_columns, local_w_product,
                           reduce_w, solve_secular, steqr)
from repro.mrrr import bisect_eigenvalues, getvec_batch, ldl_factor


@pytest.fixture(scope="module")
def secular_system():
    rng = np.random.default_rng(0)
    k = 500
    d = np.sort(rng.normal(size=k)) + np.arange(k) * 1e-3
    z = rng.uniform(0.1, 1.0, size=k)
    z /= np.linalg.norm(z)
    return d, z, 1.0


def test_bench_secular_solver(benchmark, secular_system):
    d, z, rho = secular_system
    roots = benchmark(solve_secular, d, z, rho)
    assert roots.lam.shape == (500,)


def test_bench_secular_panel(benchmark, secular_system):
    """One LAED4 panel task: 64 roots of a k=500 system."""
    d, z, rho = secular_system
    idx = np.arange(64)
    roots = benchmark(solve_secular, d, z, rho, idx)
    assert roots.lam.shape == (64,)


def test_bench_deflation(benchmark):
    rng = np.random.default_rng(1)
    n = 1000
    d = np.concatenate([np.sort(rng.normal(size=n // 2)),
                        np.sort(rng.normal(size=n // 2))])
    z = rng.normal(size=n)
    res = benchmark(deflate, d, z, 1.3, n // 2)
    assert res.k > 0


def test_bench_stabilization(benchmark, secular_system):
    d, z, rho = secular_system
    roots = solve_secular(d, z, rho)
    k = d.shape[0]

    def run():
        part = local_w_product(d, roots.orig, roots.tau, np.arange(k))
        return reduce_w([part], z, rho)

    zhat = benchmark(run)
    np.testing.assert_allclose(zhat, z, atol=1e-11)


def test_bench_eigenvector_columns(benchmark, secular_system):
    d, z, rho = secular_system
    roots = solve_secular(d, z, rho)
    part = local_w_product(d, roots.orig, roots.tau, np.arange(len(d)))
    zhat = reduce_w([part], z, rho)
    X = benchmark(eigenvector_columns, d, roots.orig, roots.tau, zhat)
    assert X.shape == (500, 500)


def test_bench_steqr_leaf(benchmark):
    rng = np.random.default_rng(2)
    d = rng.normal(size=64)
    e = rng.normal(size=63)
    lam, V = benchmark(steqr, d, e)
    assert lam.shape == (64,)


def test_bench_sturm_bisection(benchmark):
    rng = np.random.default_rng(3)
    n = 400
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam = benchmark(bisect_eigenvalues, d, e)
    assert lam.shape == (n,)


def test_bench_getvec_batch(benchmark):
    rng = np.random.default_rng(4)
    n = 300
    d = rng.normal(size=n) + 6.0
    e = rng.normal(size=n - 1) * 0.5
    rep = ldl_factor(d, e, 0.0)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    lam_all = np.linalg.eigvalsh(T)
    gaps = np.minimum(np.diff(lam_all, prepend=lam_all[0] - 1),
                      np.diff(lam_all, append=lam_all[-1] + 1))
    Z, lam_out, resid = benchmark(getvec_batch, rep, lam_all, gaps)
    assert Z.shape == (n, n)
