"""Process-pool scalability: threads vs processes past the GIL wall.

The quadratic merge phases that dominate mid-size solves — LAED4 secular
panels, deflation analysis, permutation/copy-back assembly — are pure
Python + small NumPy slices and hold the GIL, so the threads backend
cannot overlap them no matter how many workers it has.  The processes
backend runs the same task graph on worker *processes* with
shared-memory workspaces, so these phases scale on real cores.

For each configuration this benchmark solves a Table III type-4 matrix
on the sequential, threads and processes backends (2 workers each,
bitwise-identical results asserted) and reports, per parallel backend:

``wall_s``
    End-to-end solve wall seconds.
``gil_busy_s``
    Summed duration of GIL-bound kernel events (LAED4, PermuteV,
    Compute_deflation, CopyBackDeflated, ComputeVect, ApplyGivens).
``gil_union_s``
    Wall-clock footprint of those events (interval union across
    workers): with the GIL this collapses to ~``gil_busy_s``; with real
    parallelism it approaches ``gil_busy_s / n_workers``.
``gil_overlap``
    ``gil_busy_s / gil_union_s`` — achieved parallelism inside the
    GIL-bound phases (1.0 = fully serialized).

All timings are honest about the producing host: the committed
``BENCH_procs.json`` records ``cpu_count`` in its provenance, and on a
single-core host the process pool cannot (and does not claim to) beat
threads on wall clock — the committed evidence there is the per-phase
interval-union/overlap structure, which CI re-measures on multi-core
runners.

``--smoke`` (the CI gate):

1. validates the committed ``BENCH_procs.json`` (structure + the
   ``gil_union_s <= gil_busy_s`` invariant for every entry), and
2. on hosts with >= 2 cores, live-measures the n=2500 configuration and
   fails unless the processes backend beats threads by > 1.15x on the
   GIL-bound phase union wall (the phases the tentpole exists to
   parallelize).  On single-core hosts the live check is skipped.

Usage::

    PYTHONPATH=src python benchmarks/bench_procs_scalability.py          # full
    PYTHONPATH=src python benchmarks/bench_procs_scalability.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import load_bench_json, matrix, save_table, \
    write_bench_json  # noqa: E402

import numpy as np  # noqa: E402

from repro.core import DCOptions, dc_eigh  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_procs.json")

#: Kernels that execute Python bytecode (secular iterations, deflation
#: bookkeeping) or small slice math under the GIL on the threads
#: backend.  STEDC / UpdateVect GEMMs release the GIL and are excluded.
GIL_KERNELS = frozenset({"LAED4", "PermuteV", "Compute_deflation",
                         "CopyBackDeflated", "ComputeVect", "ApplyGivens"})

SMOKE_N = 2500
SMOKE_MTYPE = 4
SMOKE_MIN_SPEEDUP = 1.15
N_WORKERS = 2


def _interval_union(spans: list[tuple[float, float]]) -> float:
    total = 0.0
    end = -float("inf")
    for t0, t1 in sorted(spans):
        if t1 <= end:
            continue
        total += t1 - max(t0, end)
        end = t1
    return total


def gil_phase_stats(trace) -> dict:
    """Busy/union/overlap of the GIL-bound kernel events of a trace."""
    spans = [(ev.t_start, ev.t_end) for ev in trace.events
             if ev.name in GIL_KERNELS]
    busy = sum(t1 - t0 for t0, t1 in spans)
    union = _interval_union(spans)
    return {"gil_busy_s": busy, "gil_union_s": union,
            "gil_overlap": busy / union if union else 1.0,
            "gil_events": len(spans)}


def _timed_solve(d, e, backend: str):
    t0 = time.perf_counter()
    res = dc_eigh(d, e, backend=backend, n_workers=N_WORKERS,
                  options=DCOptions(reuse_graph=True), full_result=True)
    return time.perf_counter() - t0, res


def bench_config(mtype: int, n: int) -> dict:
    d, e = matrix(mtype, n)
    seq_s, ref = _timed_solve(d, e, "sequential")
    row = {"mtype": mtype, "n": n, "n_workers": N_WORKERS,
           "sequential_wall_s": seq_s}
    for backend in ("threads", "processes"):
        wall, res = _timed_solve(d, e, backend)
        np.testing.assert_array_equal(ref.lam, res.lam)
        np.testing.assert_array_equal(ref.V, res.V)
        row[backend] = {"wall_s": wall, **gil_phase_stats(res.trace)}
    row["procs_vs_threads_wall"] = \
        row["threads"]["wall_s"] / row["processes"]["wall_s"]
    row["procs_vs_threads_gil_union"] = \
        row["threads"]["gil_union_s"] / row["processes"]["gil_union_s"]
    return row


def _format(rows: list[dict]) -> str:
    lines = [f"{'n':>6} {'seq_s':>8} {'thr_s':>8} {'proc_s':>8} "
             f"{'thr_gil_ovl':>11} {'proc_gil_ovl':>12} {'gil_speedup':>11}"]
    for r in rows:
        lines.append(
            f"{r['n']:>6} {r['sequential_wall_s']:>8.3f} "
            f"{r['threads']['wall_s']:>8.3f} "
            f"{r['processes']['wall_s']:>8.3f} "
            f"{r['threads']['gil_overlap']:>11.2f} "
            f"{r['processes']['gil_overlap']:>12.2f} "
            f"{r['procs_vs_threads_gil_union']:>11.2f}")
    lines.append(f"(host cpu_count={os.cpu_count()}; gil_speedup is the "
                 "threads/processes ratio of GIL-phase union wall)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Smoke gate
# ---------------------------------------------------------------------------

def check_baseline() -> list[str]:
    """Structural validation of the committed BENCH_procs.json."""
    failures: list[str] = []
    try:
        results = load_bench_json(BASELINE)
    except (OSError, ValueError) as exc:
        return [f"cannot load {BASELINE}: {exc}"]
    rows = results.get("configs")
    if not rows:
        return [f"{BASELINE}: no 'configs' entries"]
    for r in rows:
        tag = f"config n={r.get('n')}"
        for backend in ("threads", "processes"):
            b = r.get(backend)
            if not b:
                failures.append(f"{tag}: missing {backend} block")
                continue
            for key in ("wall_s", "gil_busy_s", "gil_union_s",
                        "gil_overlap", "gil_events"):
                if key not in b:
                    failures.append(f"{tag}: {backend} missing {key}")
            if b.get("wall_s", 0) <= 0 or b.get("gil_events", 0) <= 0:
                failures.append(f"{tag}: {backend} has empty measurements")
            # A union of intervals can never exceed their summed length.
            if b.get("gil_union_s", 0) > b.get("gil_busy_s", 0) * 1.0001:
                failures.append(f"{tag}: {backend} union > busy "
                                "(impossible interval accounting)")
        if "procs_vs_threads_gil_union" not in r:
            failures.append(f"{tag}: missing procs_vs_threads_gil_union")
    return failures


def smoke_live() -> list[str]:
    """Re-measure the GIL-phase speedup on this host (needs >= 2 cores)."""
    cores = os.cpu_count() or 1
    if cores < 2:
        print(f"[smoke] host has {cores} core(s): the process pool has "
              "nothing to scale onto; skipping the live speedup gate "
              "(structure of the committed baseline still checked).")
        return []
    row = bench_config(SMOKE_MTYPE, SMOKE_N)
    speedup = row["procs_vs_threads_gil_union"]
    print(f"[smoke] n={SMOKE_N} type {SMOKE_MTYPE}: GIL-phase union "
          f"threads={row['threads']['gil_union_s']:.3f}s "
          f"processes={row['processes']['gil_union_s']:.3f}s "
          f"-> speedup {speedup:.2f}x "
          f"(overlap {row['processes']['gil_overlap']:.2f})")
    if speedup <= SMOKE_MIN_SPEEDUP:
        return [f"GIL-phase union speedup {speedup:.2f}x <= "
                f"{SMOKE_MIN_SPEEDUP}x on a {cores}-core host: the "
                "process pool is not overlapping the GIL-bound phases"]
    return []


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="validate the committed baseline and (on multi-"
                         "core hosts) gate the live GIL-phase speedup")
    ap.add_argument("--out", default=None,
                    help="directory for the JSON (default: repo root)")
    args = ap.parse_args(argv)

    if args.smoke:
        failures = check_baseline() + smoke_live()
        if failures:
            print("\nPROCESS-POOL SMOKE FAILURES:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nsmoke OK")
        return 0

    rows = [bench_config(SMOKE_MTYPE, n) for n in (1200, 2500)]
    save_table("procs_scalability", _format(rows))
    write_bench_json("BENCH_procs", {"configs": rows},
                     directory=args.out or REPO_ROOT)
    return 0


if __name__ == "__main__":
    sys.exit(main())
