"""F1 — Fig. 1: the D&C merging tree.

Reproduces the partitioning of the running example (n=1000, minimal
partition size 300 → four leaves of 250, two merge levels) and prints
the tree for a sweep of sizes."""

from repro.core import build_tree
from common import save_table


def describe(n, minpart):
    t = build_tree(n, minpart)
    leaves = [l.n for l in t.leaves()]
    levels = t.merges_by_level()
    return (f"n={n:<6d} minpart={minpart:<5d} leaves={leaves} "
            f"merge-levels={[len(l) for l in levels]}")


def test_fig1_merging_tree(benchmark):
    lines = benchmark.pedantic(
        lambda: [describe(1000, 300), describe(1000, 64),
                 describe(4096, 64), describe(25000, 300)],
        rounds=1, iterations=1)
    save_table("fig1_tree", "\n".join(lines))

    t = build_tree(1000, 300)
    assert [l.n for l in t.leaves()] == [250, 250, 250, 250]
    assert t.height == 2
    # Bottom-up merge order: two 500-merges then the root 1000-merge.
    sizes = [[nd.n for nd in lev] for lev in t.merges_by_level()]
    assert sizes == [[500, 500], [1000]]
