"""A1 — Eq. 8 ablation: worst-case complexity and the dominant merge.

Verifies the complexity claims of Sec. III: without deflation the D&C
costs 4n³/3 + Θ(n²) with the final merge ≈ n³ (75 %), the two
penultimate merges n³/4 each... and that real matrices undercut the
bound thanks to deflation ("less than O(n^2.4) in practice")."""

import numpy as np
import pytest

from repro import dc_eigh
from repro.analysis import total_merge_flops, worst_case_flops
from common import matrix, save_table


def run():
    rows = [f"{'type':>5s} {'n':>6s} {'measured':>12s} {'4n³/3':>12s} "
            f"{'fraction':>9s}"]
    fractions = {}
    for mtype in (2, 4):
        for n in (512, 1024):
            d, e = matrix(mtype, n)
            res = dc_eigh(d, e, full_result=True)
            measured = total_merge_flops(res.info.ctx.merge_stats)
            bound = worst_case_flops(n)
            fractions[(mtype, n)] = measured / bound
            rows.append(f"{mtype:>5d} {n:>6d} {measured:>12.3g} "
                        f"{bound:>12.3g} {measured / bound:>9.1%}")
    save_table("ablation_complexity", "\n".join(rows))
    return fractions


def test_eq8_deflation_undercuts_worst_case(benchmark):
    fr = benchmark.pedantic(run, rounds=1, iterations=1)
    for key, f in fr.items():
        assert f < 1.1                      # never above the bound (+slack)
    # ~100%-deflation type does far less work than the ~20% one.
    assert fr[(2, 1024)] < fr[(4, 1024)] / 5


def test_eq8_last_merge_share(benchmark):
    """In the no-deflation limit the last merge is 3/4 of the total;
    with deflation it still dominates."""
    def run_one():
        d, e = matrix(4, 1024)
        res = dc_eigh(d, e, full_result=True)
        stats = res.info.ctx.merge_stats
        work = [2.0 * s.n * s.k * s.k for s in stats]
        return work

    work = benchmark.pedantic(run_one, rounds=1, iterations=1)
    assert work[-1] / sum(work) > 0.5
    # Eq. 8 structure on the analytic side.
    n = 4096
    levels = [n ** 3 / 4 ** i for i in range(12)]
    assert sum(levels) == pytest.approx(worst_case_flops(n), rel=1e-4)
