"""EXT-4 — distributed-memory task-flow prototype (paper future work,
DPLASMA direction).

Runs the unchanged D&C DAG across 1/2/4 simulated nodes with
owner-computes tree placement and α–β network transfers.  The study's
outcome motivates exactly why the paper left distribution to future
work: independent subtrees scale across nodes, but the final merge
concentrates on one node's cores and ships O(n²) eigenvector data over
the wire, capping multi-node speedup — worse for high-deflation
matrices whose work is all data movement."""

import pytest

from repro.runtime import ClusterMachine, Machine, Network, tree_placement
from common import PAPER_MACHINE, save_table, solved_graph


def run():
    table = {}
    for mtype in (2, 4):
        sg = solved_graph(mtype, 1200, minpart=128, nb=48)
        base = None
        for nodes in (1, 2, 4):
            cm = ClusterMachine(n_nodes=nodes, machine=PAPER_MACHINE,
                                placement=tree_placement(1200, nodes),
                                execute=False)
            t = cm.run(sg.graph).makespan
            if base is None:
                base = t
            table[(mtype, nodes)] = (base / t, cm.bytes_on_wire / 1e6)
    return table


def test_distributed_prototype(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [f"{'type':>5s} {'nodes':>6s} {'speedup':>8s} {'MB moved':>9s}"]
    for (mtype, nodes), (sp, mb) in table.items():
        rows.append(f"{mtype:>5d} {nodes:>6d} {sp:>8.2f} {mb:>9.1f}")
    rows.append("(compute-bound matrices gain from extra nodes; "
                "copy-dominated ones LOSE — the wire traffic exceeds "
                "the work being distributed.  This is the trade-off "
                "that makes the distributed port a study of its own, "
                "which the paper defers to future work.)")
    save_table("ext_distributed", "\n".join(rows))

    # Compute-bound (type 4): distribution helps, sub-linearly.
    assert 1.2 < table[(4, 2)][0] < 2.0
    assert table[(4, 4)][0] < 3.0
    # Copy-dominated (type 2): communication outweighs the distributed
    # work — multi-node is SLOWER than one node.
    assert table[(2, 2)][0] < 1.0
    # Communication volume grows with the node count.
    for mtype in (2, 4):
        assert table[(mtype, 4)][1] >= table[(mtype, 2)][1]
