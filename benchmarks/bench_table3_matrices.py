"""T3 — Table III: the fifteen matrix types.

Generates every type, solves it with the task-flow D&C and reports the
deflation behaviour — confirming the regimes the paper attributes to
types 2/3/4 (~100 %, ~50 %, ~20 % deflation at the dominant merges)."""

import numpy as np

from repro import dc_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual
from repro.matrices import MATRIX_TYPES, matrix_description
from common import matrix, save_table


def run_all_types(n=256):
    rows = [f"{'type':>5s} {'defl(final)':>12s} {'orth':>10s} "
            f"{'resid':>10s}  description"]
    defl = {}
    for mtype in MATRIX_TYPES:
        d, e = matrix(mtype, n)
        res = dc_eigh(d, e, full_result=True)
        defl[mtype] = res.total_deflation
        rows.append(f"{mtype:>5d} {res.total_deflation:>12.0%} "
                    f"{orthogonality_error(res.V):>10.1e} "
                    f"{tridiagonal_residual(d, e, res.lam, res.V):>10.1e}"
                    f"  {matrix_description(mtype)}")
    save_table("table3_matrices", "\n".join(rows))
    return defl


def test_table3_all_types(benchmark):
    defl = benchmark.pedantic(run_all_types, rounds=1, iterations=1)
    # Paper: type 2 ~100 %, type 3 ~50 %, type 4 ~20 % deflation.
    assert defl[2] > 0.9
    assert 0.25 < defl[3] < 0.75
    assert defl[4] < 0.35
    # Ordering of the three regimes.
    assert defl[2] > defl[3] > defl[4]
