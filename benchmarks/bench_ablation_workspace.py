"""A4 — extra-workspace overlap option (Sec. IV).

With extra workspace, PermuteV may overlap LAED4 and CopyBackDeflated
may overlap ComputeVect; without it they serialize on the shared
buffer.  Paper: "the effect of this option can be seen on a machine
with large number of cores".  The bench compares both modes on 16 and
64 simulated cores."""

import pytest

from repro.runtime import Machine
from common import save_table, solved_graph

BIG_MACHINE = Machine(n_cores=64, n_sockets=4)


def run_modes(n=1500):
    out = {}
    for extra in (True, False):
        sg = solved_graph(3, n, minpart=128, nb=32,
                          extra_workspace=extra)
        out[(extra, 16)] = sg.makespan(n_workers=16)
        out[(extra, 64)] = sg.makespan(n_workers=64, machine=BIG_MACHINE)
    return out


def test_extra_workspace_overlap(benchmark):
    t = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    gain16 = t[(False, 16)] / t[(True, 16)]
    gain64 = t[(False, 64)] / t[(True, 64)]
    rows = [f"{'cores':>6s} {'no extra ws':>12s} {'extra ws':>12s} "
            f"{'gain':>6s}",
            f"{16:>6d} {t[(False, 16)] * 1e3:>10.2f}ms "
            f"{t[(True, 16)] * 1e3:>10.2f}ms {gain16:>6.2f}",
            f"{64:>6d} {t[(False, 64)] * 1e3:>10.2f}ms "
            f"{t[(True, 64)] * 1e3:>10.2f}ms {gain64:>6.2f}",
            "(paper: the option matters on machines with many cores)"]
    save_table("ablation_workspace", "\n".join(rows))

    # Extra workspace never hurts...
    assert gain16 > 0.98
    assert gain64 > 0.98
    # ...and (per the paper) matters more with more cores.
    assert gain64 >= gain16 * 0.98


def test_numbers_identical_either_way(benchmark):
    import numpy as np

    def run():
        a = solved_graph(3, 600, minpart=128, nb=32, extra_workspace=True)
        b = solved_graph(3, 600, minpart=128, nb=32, extra_workspace=False)
        return a.ctx.result(), b.ctx.result()

    (lam_a, v_a), (lam_b, v_b) = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    np.testing.assert_array_equal(lam_a, lam_b)
    np.testing.assert_array_equal(v_a, v_b)
