"""F3 — Fig. 3: execution traces under the three optimization levels.

Paper (type 4, n=10000, 16 cores): sequential 18 s → (a) parallel GEMM
only 4.3 s (≈ MKL, speedup 4.2) → (b) parallel merge kernels 1.8 s
(2.4× over (a)) → (c) independent subproblems overlapped, final speedup
≈ 12× over sequential.

Here: type 4 at n = 1500 on the simulated 16-core machine.  Absolute
times differ (different machine model); the *ratios* are the claim."""

import pytest

from common import PAPER_MACHINE, save_table, solved_graph


def run_configs():
    n = 1500
    cfgs = {
        "sequential": dict(fork_join=True, level_barrier=True),
        "(a) parallel-gemm": dict(fork_join=True, level_barrier=True),
        "(b) parallel-merge": dict(level_barrier=True),
        "(c) full-taskflow": dict(),
    }
    times = {}
    for name, kw in cfgs.items():
        sg = solved_graph(4, n, minpart=128, nb=64, **kw)
        workers = 1 if name == "sequential" else 16
        times[name] = sg.makespan(n_workers=workers)
    return times


def test_fig3_optimization_levels(benchmark):
    times = benchmark.pedantic(run_configs, rounds=1, iterations=1)
    seq = times["sequential"]
    rows = [f"{'configuration':<22s} {'makespan':>10s} {'speedup':>8s}"
            f"   (paper: 18s / 4.3s / 1.8s / ~1.5s)"]
    for name, t in times.items():
        rows.append(f"{name:<22s} {t * 1e3:>8.2f}ms {seq / t:>8.2f}")
    save_table("fig3_traces", "\n".join(rows))

    # Shape assertions mirroring the paper's progression.
    t_a = times["(a) parallel-gemm"]
    t_b = times["(b) parallel-merge"]
    t_c = times["(c) full-taskflow"]
    assert t_a < seq                      # GEMM parallelization helps
    assert t_b < t_a / 1.5                # merge parallelization ~2x more
    assert t_c <= t_b * 1.02              # removing barriers helps again
    assert seq / t_c > 8.0                # paper: ~12x total


def test_fig3_trace_has_no_levelgaps_in_full_taskflow(benchmark):
    """In (c) the penultimate merges overlap (paper's last observation)."""
    def run():
        sg = solved_graph(4, 1500, minpart=128, nb=64)
        return sg.trace(n_workers=16)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    # Two penultimate Compute_deflation tasks run before the other
    # branch's merge is finished: check their executions overlap with
    # UpdateVect tasks of the sibling branch.
    defl = [ev for ev in trace.events if ev.name == "Compute_deflation"]
    upd = [ev for ev in trace.events if ev.name == "UpdateVect"]
    overlapping = any(
        d.tag != u.tag and d.t_start < u.t_end and u.t_start < d.t_end
        for d in defl for u in upd)
    assert overlapping
