"""F5 — Fig. 5: scalability from 1 to 16 threads (types 2, 3, 4).

Paper: low-deflation matrices reach ~12× on 16 cores; ~100 %-deflation
matrices are memory-bound — ~4 threads saturate the first socket's
bandwidth and the speedup only recovers once the second socket is used
(> 8 threads)."""

import pytest

from common import save_table, solved_graph

THREADS = (1, 2, 4, 8, 12, 16)


def run_curves(n=1500):
    curves = {}
    for mtype in (2, 3, 4):
        sg = solved_graph(mtype, n, minpart=128, nb=48)
        t1 = sg.makespan(n_workers=1)
        curves[mtype] = {p: t1 / sg.makespan(n_workers=p) for p in THREADS}
    return curves


def test_fig5_scalability(benchmark):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    rows = [f"{'type':>6s} " + "".join(f"{p:>8d}" for p in THREADS)]
    for mtype, sp in curves.items():
        rows.append(f"type {mtype:>2d}"
                    + "".join(f"{sp[p]:>8.2f}" for p in THREADS))
    rows.append("(paper: type4 ~12x at 16; type2 saturates ~4-5 on one "
                "socket, recovers >8 threads)")
    save_table("fig5_scalability", "\n".join(rows))

    # Low deflation (type 4): strong scaling.
    assert curves[4][16] > 8.0
    # High deflation (type 2): bandwidth-limited, clearly below type 4.
    assert curves[2][16] < curves[4][16]
    # Socket saturation: going 4 -> 8 threads gains little for type 2...
    gain_4_to_8 = curves[2][8] / curves[2][4]
    assert gain_4_to_8 < 1.6
    # ...and the second socket (8 -> 16) helps again.
    assert curves[2][16] > curves[2][8] * 1.1
    # Everything scales monotonically from 1 to 2 threads.
    for mtype in (2, 3, 4):
        assert curves[mtype][2] > 1.5
