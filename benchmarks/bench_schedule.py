"""Scheduling benchmark: b-level priorities + adaptive panel widths.

Measures the deterministic simulated makespan of the Fig-6 matrix
shapes (types 2/3/4) on the 16-core machine under the four scheduling
ablations:

``none``      priorities off, global panel width (the pre-scheduling
              baseline: every task at priority 0, FIFO-ish order).
``blevel``    b-level priorities only (critical path first), global
              panel width.
``adaptive``  priorities off, level-adaptive panel widths.
``full``      b-level priorities + adaptive widths (the defaults a
              solver session would pick with ``adaptive_nb=True``).

All timings are *virtual* (discrete-event simulation on the calibrated
machine model), so results are bit-for-bit reproducible on any host —
unlike wall-clock gates, this cannot be flaky on shared CI runners.

The gate machine uses the calibrated per-task dispatch overhead of this
Python runtime (``DEFAULT_CALIBRATION.task_overhead_s``, ~15 us) rather
than the paper machine's 2 us: priorities and panel widths matter
exactly when dispatch overhead is not negligible, and 15 us is what the
ThreadScheduler actually costs per task (measured by
``repro.core.calibrate.host_calibration``).

Usage::

    PYTHONPATH=src python benchmarks/bench_schedule.py           # full run
    PYTHONPATH=src python benchmarks/bench_schedule.py --smoke   # CI check

The full run writes ``BENCH_schedule.json`` to the repo root with the
n >= 2500 grid and the gate verdict (>= 10% improvement of ``full``
over ``none`` on at least 3 shapes).  ``--smoke`` re-runs only the
small shapes (n <= 1200, seconds not minutes), checks them against the
committed baseline, and re-validates that the committed grid still
satisfies the gate.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import SolvedGraph, load_bench_json, matrix, \
    write_bench_json  # noqa: E402

from repro.core import DCOptions  # noqa: E402
from repro.core.calibrate import DEFAULT_CALIBRATION  # noqa: E402
from repro.runtime import Machine  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_schedule.json")

N_WORKERS = 16
GATE_MACHINE = Machine(task_overhead=DEFAULT_CALIBRATION.task_overhead_s)

#: The Fig-6 grid (n >= 2500) the acceptance gate runs on.  Type 2 gets
#: a third size: the high-deflation shapes are the overhead-bound ones
#: where scheduling buys the most, so they anchor the gate.
GATE_SHAPES = [(2, 2500), (3, 2500), (4, 2500),
               (2, 2800),
               (2, 3000), (3, 3000), (4, 3000)]
GATE_THRESHOLD = 0.10
GATE_MIN_SHAPES = 3

#: Small deterministic shapes for the CI smoke re-measurement.
SMOKE_SHAPES = [(2, 600), (3, 1200), (4, 1200)]

ABLATIONS = {
    "none": DCOptions(priority_mode="none"),
    "blevel": DCOptions(priority_mode="blevel"),
    "adaptive": DCOptions(priority_mode="none", adaptive_nb=True,
                          target_parallelism=N_WORKERS),
    "full": DCOptions(priority_mode="blevel", adaptive_nb=True,
                      target_parallelism=N_WORKERS),
}


def measure_shape(mtype: int, n: int,
                  ablations: dict[str, DCOptions] = ABLATIONS) -> dict:
    """Simulated makespan of one (type, n) shape under each ablation."""
    d, e = matrix(mtype, n)
    rec = {"mtype": mtype, "n": n, "makespan_s": {}, "n_tasks": {},
           "improvement": {}}
    for name, opts in ablations.items():
        sg = SolvedGraph(d, e, opts)
        rec["makespan_s"][name] = sg.makespan(N_WORKERS, GATE_MACHINE)
        rec["n_tasks"][name] = len(sg.graph.tasks)
    base = rec["makespan_s"]["none"]
    for name in ablations:
        rec["improvement"][name] = 1.0 - rec["makespan_s"][name] / base
    imp = rec["improvement"]
    print(f"  type{mtype} n={n:5d}: none {base * 1e3:9.3f} ms   "
          + "  ".join(f"{k} {100 * imp[k]:+6.2f}%"
                      for k in ("blevel", "adaptive", "full")))
    return rec


def gate_verdict(grid: list[dict]) -> dict:
    """Evaluate the >= 10%-on->=3-shapes acceptance gate over a grid."""
    passing = [[r["mtype"], r["n"]] for r in grid
               if r["n"] >= 2500
               and r["improvement"]["full"] >= GATE_THRESHOLD]
    return {"threshold": GATE_THRESHOLD, "min_shapes": GATE_MIN_SHAPES,
            "n_workers": N_WORKERS, "passing": passing,
            "ok": len(passing) >= GATE_MIN_SHAPES}


def machine_block() -> dict:
    m = GATE_MACHINE
    return {"n_cores": m.n_cores, "n_sockets": m.n_sockets,
            "core_gflops": m.core_gflops,
            "kernel_efficiency": m.kernel_efficiency,
            "socket_bw": m.socket_bw, "stream_bw": m.stream_bw,
            "task_overhead": m.task_overhead}


def run_full() -> dict:
    print(f"[grid] Fig-6 shapes, {N_WORKERS} virtual cores, "
          f"task overhead {GATE_MACHINE.task_overhead * 1e6:.0f} us")
    grid = [measure_shape(mt, n) for mt, n in GATE_SHAPES]
    gate = gate_verdict(grid)
    print(f"[gate] full >= {100 * GATE_THRESHOLD:.0f}% faster than 'none' "
          f"on {len(gate['passing'])} shapes "
          f"(need {GATE_MIN_SHAPES}): "
          + ("OK" if gate["ok"] else "FAIL")
          + f"  {gate['passing']}")
    print("[smoke] small shapes (CI reference)")
    smoke = [measure_shape(mt, n) for mt, n in SMOKE_SHAPES]
    return {"machine": machine_block(), "grid": grid, "gate": gate,
            "smoke": smoke}


def check_smoke(baseline_path: str = BASELINE,
                slack_pp: float = 5.0) -> list[str]:
    """CI regression check against the committed ``BENCH_schedule.json``.

    Two parts, both deterministic:

    1. The committed n >= 2500 grid must still satisfy the gate (>= 10%
       improvement on >= ``GATE_MIN_SHAPES`` shapes) — catches edits
       that water the baseline down.
    2. The small smoke shapes are re-measured in virtual time and the
       ``full`` improvement must not fall more than ``slack_pp``
       percentage points below the committed value — catches scheduling
       regressions without ever touching the expensive n >= 2500 grid.
       (The slack absorbs tiny deflation-count differences across BLAS/
       numpy builds; virtual time has no wall-clock noise.)
    """
    if not os.path.exists(baseline_path):
        return [f"missing committed baseline {baseline_path}"]
    base = load_bench_json(baseline_path)
    failures: list[str] = []

    gate = gate_verdict(base.get("grid", []))
    if not gate["ok"]:
        failures.append(
            f"committed grid fails the gate: only {len(gate['passing'])} "
            f"shapes >= {100 * GATE_THRESHOLD:.0f}% "
            f"(need {GATE_MIN_SHAPES})")

    committed = {(r["mtype"], r["n"]): r for r in base.get("smoke", [])}
    for mt, n in SMOKE_SHAPES:
        ref = committed.get((mt, n))
        if ref is None:
            failures.append(f"baseline smoke misses shape type{mt} n={n}")
            continue
        cur = measure_shape(mt, n)
        drop = 100 * (ref["improvement"]["full"]
                      - cur["improvement"]["full"])
        if drop > slack_pp:
            failures.append(
                f"type{mt} n={n}: 'full' improvement "
                f"{100 * cur['improvement']['full']:.2f}% fell "
                f"{drop:.1f}pp below committed "
                f"{100 * ref['improvement']['full']:.2f}%")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small shapes only; fail on regression vs the "
                         "committed BENCH_schedule.json")
    ap.add_argument("--out", default=None,
                    help="directory for the JSON (default: repo root)")
    args = ap.parse_args(argv)

    if args.smoke:
        print(f"[smoke] shapes {SMOKE_SHAPES}, {N_WORKERS} virtual cores")
        failures = check_smoke()
        if failures:
            print("\nREGRESSIONS DETECTED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nsmoke OK (committed gate holds, no scheduling regression)")
        return 0

    payload = run_full()
    write_bench_json("BENCH_schedule", payload,
                     directory=args.out or REPO_ROOT)
    return 0 if payload["gate"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
