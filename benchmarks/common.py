"""Shared infrastructure for the figure/table benchmarks.

Matrices and solved task graphs are cached across benchmark modules so a
full ``pytest benchmarks/ --benchmark-only`` run generates each input
once.  Each benchmark writes its table/series to
``benchmarks/results/<name>.txt`` (and prints it), so the regenerated
paper data survives pytest's output capture.
"""

from __future__ import annotations

import functools
import json
import os
import platform
import sys

import numpy as np

from repro.core import DCContext, DCOptions, submit_dc
from repro.matrices import test_matrix
from repro.runtime import Machine, SimulatedMachine, SequentialScheduler

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

#: The paper's virtual testbed: dual-socket 16-core Xeon-like machine.
PAPER_MACHINE = Machine()


def save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text.rstrip() + "\n")
    print(f"\n{text}\n[saved to {path}]")


def bench_provenance(priority_mode: str | None = None) -> dict:
    """Scheduling provenance stamped into every BENCH JSON envelope.

    Committed ``BENCH_*.json`` baselines gate regressions, so they must
    be self-describing about the scheduling configuration that produced
    them: the active calibration (source + rate key, which determines
    b-level priorities and adaptive panel widths), the priority mode,
    and the CPU count of the producing host.
    """
    from repro.core.calibrate import get_calibration

    cal = get_calibration()
    return {
        "calibration_source": cal.source,
        "calibration_key": list(cal.key),
        "priority_mode": (priority_mode if priority_mode is not None
                          else DCOptions().priority_mode),
        "cpu_count": os.cpu_count(),
    }


def write_bench_json(name: str, payload: dict, *,
                     directory: str | None = None,
                     telemetry: dict | None = None,
                     priority_mode: str | None = None) -> str:
    """Persist a benchmark result as machine-readable JSON.

    Writes ``<directory or benchmarks/results>/<name>.json`` with the
    payload wrapped in a small envelope (benchmark name, python/numpy
    versions, platform, scheduling provenance) so regression tooling can
    compare runs.  Returns the path written.

    ``telemetry`` — optional compact observability block (typically
    :func:`solve_telemetry` or :func:`repro.obs.telemetry_block`: steal
    rate, idle fraction, cache hit rate, ...) stored alongside the
    results so regression gates can key on scheduler behaviour, not just
    wall time.

    ``priority_mode`` — the task-priority policy the benchmark ran with,
    recorded in the provenance block (default: the ``DCOptions``
    default).
    """
    out_dir = directory or RESULTS_DIR
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    doc = {
        "benchmark": name,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "provenance": bench_provenance(priority_mode),
        "results": payload,
    }
    if telemetry is not None:
        doc["telemetry"] = telemetry
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench json saved to {path}]")
    return path


def solve_telemetry(d: np.ndarray, e: np.ndarray, *,
                    options: DCOptions | None = None,
                    backend: str = "threads",
                    n_workers: int = 4) -> dict:
    """Run one instrumented solve and return its compact telemetry block.

    The convenience entry benchmarks use to populate the ``telemetry``
    envelope of :func:`write_bench_json`.
    """
    from repro.core.solver import dc_eigh
    from repro.obs import Collector, telemetry_block

    col = Collector()
    opts = (options or DCOptions()).with_(telemetry=col)
    res = dc_eigh(d, e, options=opts, backend=backend,
                  n_workers=n_workers, full_result=True)
    return telemetry_block(col, res.trace)


def load_bench_json(path: str) -> dict:
    """Load a results file written by :func:`write_bench_json`."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("results", doc)


@functools.lru_cache(maxsize=64)
def matrix(mtype: int, n: int, seed: int = 0):
    """Cached Table III matrix.

    Backed by an on-disk cache under ``benchmarks/results``: the
    prescribed-spectrum types are generated through a dense Haar
    similarity plus tridiagonalization — O(n³), ~half an hour at
    n=10000 on one core — while the (d, e) arrays themselves are 2n
    doubles.  Generation is deterministic, so caching is safe.
    """
    cache_dir = os.path.join(RESULTS_DIR, "matcache")
    path = os.path.join(cache_dir, f"t{mtype}_n{n}_s{seed}.npz")
    if os.path.exists(path):
        with np.load(path) as z:
            return z["d"], z["e"]
    d, e = test_matrix(mtype, n, seed=seed)
    os.makedirs(cache_dir, exist_ok=True)
    np.savez(path, d=d, e=e)
    return d, e


class SolvedGraph:
    """A D&C task graph executed once; re-simulatable for any core count.

    The functional payload runs a single time (sequential execution);
    afterwards every deflation-dependent task cost is known, so the
    discrete-event machine can replay the schedule for any worker count
    without re-running the numerics.
    """

    def __init__(self, d: np.ndarray, e: np.ndarray, opts: DCOptions):
        self.ctx = DCContext(d, e, opts)
        from repro.runtime import TaskGraph
        self.graph = TaskGraph()
        self.info = submit_dc(self.graph, self.ctx)
        SequentialScheduler().run(self.graph)

    def makespan(self, n_workers: int = 16,
                 machine: Machine | None = None) -> float:
        sim = SimulatedMachine(machine or PAPER_MACHINE,
                               n_workers=n_workers, execute=False)
        return sim.run(self.graph).makespan

    def trace(self, n_workers: int = 16, machine: Machine | None = None):
        sim = SimulatedMachine(machine or PAPER_MACHINE,
                               n_workers=n_workers, execute=False)
        return sim.run(self.graph)


@functools.lru_cache(maxsize=64)
def solved_graph(mtype: int, n: int, *, minpart: int = 128,
                 nb: int | None = None, fork_join: bool = False,
                 level_barrier: bool = False,
                 extra_workspace: bool = True, seed: int = 0) -> SolvedGraph:
    d, e = matrix(mtype, n, seed)
    opts = DCOptions(minpart=minpart, nb=nb, fork_join=fork_join,
                     level_barrier=level_barrier,
                     extra_workspace=extra_workspace)
    return SolvedGraph(d, e, opts)
