"""A3 — panel-size (nb) ablation (tuning discussion of Sec. IV).

nb controls the parallelism/overhead trade-off: huge panels starve the
cores (few tasks), tiny panels drown the runtime in per-task overhead.
The bench sweeps nb on the simulated 16-core machine and checks the
sweet spot lies strictly inside the range."""

import pytest

from common import save_table, solved_graph

NBS = (16, 32, 64, 128, 256, 512)


def run_sweep(n=1500):
    times = {}
    for nb in NBS:
        sg = solved_graph(4, n, minpart=128, nb=nb)
        times[nb] = sg.makespan(n_workers=16)
    return times


def test_panel_size_tradeoff(benchmark):
    times = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    best = min(times, key=times.get)
    rows = [f"{'nb':>6s} {'makespan (ms)':>14s}"]
    for nb, t in times.items():
        mark = "  <- best" if nb == best else ""
        rows.append(f"{nb:>6d} {t * 1e3:>14.2f}{mark}")
    rows.append("(paper: nb must be tuned to the core count and kernel "
                "efficiency)")
    save_table("ablation_panel_size", "\n".join(rows))

    # The extremes are not optimal: the sweet spot is interior, and
    # over-coarse panels clearly hurt.
    assert times[512] > times[best] * 1.2
    assert best not in (NBS[-1],)


def test_auto_nb_close_to_best(benchmark):
    """The DCOptions auto-tuned nb should be within 2x of the swept
    optimum."""
    def run():
        sweep = run_sweep()
        auto = solved_graph(4, 1500, minpart=128, nb=None)
        return sweep, auto.makespan(n_workers=16)

    sweep, t_auto = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_auto < min(sweep.values()) * 2.0
