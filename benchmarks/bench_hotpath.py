"""Hot-path benchmark: merge microkernels, solve latency, graph reuse.

Three sections, all written to ``BENCH_hotpath.json``:

``micro``
    The three vectorized merge kernels (PermuteV, CopyBackDeflated,
    ApplyGivens) against their seed ``_ref`` implementations on the root
    merge of a type-4 matrix.  The acceptance bar is a >= 3x speedup at
    ``n = 5000``.
``solve``
    End-to-end ``dc_eigh`` latency (sequential and 4-thread), tasks/sec,
    graph construction time, and the ``reuse_graph=True`` amortization:
    template-instantiation time as a fraction of a warm same-shape solve.
``smoke``
    A small fixed configuration re-run by CI.  ``--smoke`` executes only
    this section and exits non-zero if any timing regresses by more than
    2x against the committed ``BENCH_hotpath.json``, or if the default
    telemetry-off solve path drifts more than 3% against the baseline's
    recorded ``telemetry.solve_off_s`` (the observability subsystem must
    stay zero-overhead when disabled).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --full     # + n=10000
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # CI check

Matrix generation time (the Table III generators are O(n^3) for the
spectrum-prescribed types) is excluded from every metric.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import load_bench_json, matrix, write_bench_json  # noqa: E402

from repro.core import (DCContext, DCOptions, dc_eigh, graph_template_cache,
                        panel_ranges, submit_dc, template_key)  # noqa: E402
from repro.core.merge import MergeState  # noqa: E402
from repro.runtime import SequentialScheduler, TaskGraph  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "BENCH_hotpath.json")

SMOKE_MICRO_N = 1200
SMOKE_SOLVE_N = 800
SMOKE_MTYPE = 4


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _merge_states(graph: TaskGraph) -> list[MergeState]:
    states = {id(s): s for t in graph.tasks
              if isinstance(s := getattr(t.func, "__self__", None),
                            MergeState)}
    return sorted(states.values(), key=lambda s: (s.n, s.lo))


def _time_states(states, ctx, kernel: str, repeats: int = 3) -> float:
    """Sum one pass of ``kernel`` over every panel/group of ``states``."""
    nb = ctx.opts.effective_nb(ctx.n)

    def run():
        for s in states:
            panels = panel_ranges(s.n, nb)
            if kernel.startswith("t_apply_givens"):
                fn = getattr(s, kernel)
                ng = min(len(panels), 4)
                for g in range(ng):
                    fn(g, ng)
            else:
                fn = getattr(s, kernel)
                for p0, p1 in panels:
                    fn(p0, p1)

    return _best_of(run, repeats)


class _Rot:
    """Synthetic rotation record (same attributes as deflation's)."""
    __slots__ = ("i", "j", "c", "s")

    def __init__(self, i, j, c, s):
        self.i, self.j, self.c, self.s = i, j, c, s


def _bench_givens_batch(heights: list[int], repeats: int = 3) -> list[dict]:
    """Batched vs streaming Givens on synthetic heavy-deflation chains.

    Table III spectra deflate almost exclusively through small
    z-components, so real solves carry near-zero rotation work; this
    measures the regime the batched kernel exists for — many disjoint
    close-eigenvalue pairs, one rotation each (the DLAED2 pattern).
    """
    import numpy as np

    from repro.kernels.givens import apply_rotation_chains

    rng = np.random.default_rng(0)
    out = []
    for h in heights:
        V = np.asfortranarray(rng.normal(size=(h, h)))
        cols = rng.permutation(h)
        m = h // 4
        theta = rng.uniform(0.0, 1.5, size=m)
        chains = [[_Rot(int(cols[2 * a]), int(cols[2 * a + 1]),
                        float(np.cos(t)), float(np.sin(t)))]
                  for a, t in enumerate(theta)]

        vec_s = _best_of(
            lambda: apply_rotation_chains(V, 0, h, chains), repeats)

        def seed():
            for chain in chains:
                for r in chain:
                    qi = V[:, r.i]
                    qj = V[:, r.j]
                    tmp = r.c * qi + r.s * qj
                    qj *= r.c
                    qj -= r.s * qi
                    qi[...] = tmp

        ref_s = _best_of(seed, repeats)
        out.append({"height": h, "n_rotations": m, "vec_s": vec_s,
                    "ref_s": ref_s, "speedup": ref_s / vec_s})
        print(f"  givens-batch h={h:5d} m={m:5d}: "
              f"ref {ref_s * 1e3:8.2f} ms  vec {vec_s * 1e3:8.2f} ms  "
              f"{ref_s / vec_s:5.1f}x")
    return out


def bench_micro(n: int, mtype: int = 4, repeats: int = 3) -> dict:
    """Time the vectorized merge kernels against the seed references.

    The solve runs once (sequentially) to populate every merge state;
    the kernels are then re-invoked in place over the whole merge
    hierarchy — the solver's actual hot path.  Re-running them mutates
    workspace contents but not shapes or costs, which is all timing
    needs.  Results are split by merge span: the root merge is pure
    memory bandwidth (both implementations issue large memcpys), while
    the small merges — the bulk of the DAG's tasks — are dominated by
    per-column Python dispatch that vectorization removes.
    """
    d, e = matrix(mtype, n)
    opts = DCOptions()
    ctx = DCContext(d, e, opts)
    graph = TaskGraph()
    submit_dc(graph, ctx)
    SequentialScheduler().run(graph)
    states = _merge_states(graph)
    root = states[-1]
    small = [s for s in states if s.n <= 1024]

    out = {"n": n, "mtype": mtype, "n_merges": len(states),
           "root_k": root.k,
           "n_rotations": sum(len(s.defl.rotations) for s in states),
           "kernels": {}}
    for name, vec, ref in (("permute", "t_permute_panel",
                            "t_permute_panel_ref"),
                           ("copyback", "t_copyback_panel",
                            "t_copyback_panel_ref"),
                           ("givens", "t_apply_givens",
                            "t_apply_givens_ref")):
        rec = {}
        for scope, scope_states in (("all", states), ("root", [root]),
                                    ("small", small)):
            vec_s = _time_states(scope_states, ctx, vec, repeats)
            ref_s = _time_states(scope_states, ctx, ref, repeats)
            rec[scope] = {"vec_s": vec_s, "ref_s": ref_s,
                          "speedup": ref_s / vec_s if vec_s > 0
                          else float("inf")}
        rec.update(rec["all"])          # flat fields = whole-hierarchy
        out["kernels"][name] = rec
        print(f"  {name:10s} all {rec['all']['speedup']:5.2f}x   "
              f"root {rec['root']['speedup']:5.2f}x   "
              f"small(<=1024) {rec['small']['speedup']:5.2f}x   "
              f"[ref {rec['ref_s'] * 1e3:.2f} ms -> "
              f"vec {rec['vec_s'] * 1e3:.2f} ms]")
    out["givens_batch"] = _bench_givens_batch(
        [h for h in (312, 1250, n) if h <= n], repeats)
    return out


def bench_solve(mtype: int, n: int, n_reuse: int = 10) -> dict:
    """End-to-end latency, graph-build time, and reuse amortization."""
    d, e = matrix(mtype, n)
    opts = DCOptions()

    # Graph construction (build_tree + submit_dc dependency analysis).
    ctx = DCContext(d, e, opts)
    graph = TaskGraph()
    t0 = time.perf_counter()
    submit_dc(graph, ctx)
    graph_build_s = time.perf_counter() - t0
    n_tasks = len(graph.tasks)

    t0 = time.perf_counter()
    dc_eigh(d, e, options=opts)
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    dc_eigh(d, e, options=opts, backend="threads", n_workers=4)
    threads_s = time.perf_counter() - t0

    # Template reuse: one miss to warm the cache, then measure warm
    # instantiation and warm whole-solve latency.
    graph_template_cache.clear()
    reuse_opts = opts.with_(reuse_graph=True)
    dc_eigh(d, e, options=reuse_opts)
    key = template_key(ctx.n, opts)
    t0 = time.perf_counter()
    graph_template_cache.get_or_build(DCContext(d, e, opts), key)
    instantiate_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(n_reuse):
        dc_eigh(d, e, options=reuse_opts)
    reuse_mean_s = (time.perf_counter() - t0) / n_reuse

    rec = {
        "mtype": mtype, "n": n, "n_tasks": n_tasks,
        "graph_build_s": graph_build_s,
        "solve_seq_s": seq_s, "solve_threads4_s": threads_s,
        "tasks_per_s": n_tasks / seq_s,
        "reuse": {
            "n_solves": n_reuse,
            "instantiate_s": instantiate_s,
            "mean_solve_s": reuse_mean_s,
            "amortized_fraction": instantiate_s / reuse_mean_s,
        },
    }
    print(f"  type {mtype} n={n:6d}: seq {seq_s:7.3f} s  "
          f"threads4 {threads_s:7.3f} s  build {graph_build_s * 1e3:7.1f} ms"
          f"  inst {instantiate_s * 1e3:6.1f} ms "
          f"({100 * rec['reuse']['amortized_fraction']:.2f}% of warm solve)"
          f"  {rec['tasks_per_s']:8.0f} tasks/s")
    return rec


def bench_telemetry(mtype: int, n: int, repeats: int = 5) -> dict:
    """Telemetry-off vs telemetry-on latency + a scheduler telemetry block.

    ``solve_off_s`` is the default path (``telemetry=None``) — the gate
    asserting the observability subsystem stays zero-overhead when
    disabled keys on it.  ``solve_on_s`` measures the enabled collector
    on the same sequential solve; ``threads4`` is the compact telemetry
    block (steal rate, idle fraction, ...) of a 4-worker solve, embedded
    in the BENCH JSON envelope.
    """
    from common import solve_telemetry

    from repro.obs import Collector

    d, e = matrix(mtype, n)
    off_s = _best_of(lambda: dc_eigh(d, e), repeats)
    on_s = _best_of(
        lambda: dc_eigh(d, e, options=DCOptions(telemetry=Collector())),
        repeats)
    block = solve_telemetry(d, e, n_workers=4)
    rec = {"mtype": mtype, "n": n, "solve_off_s": off_s,
           "solve_on_s": on_s, "on_overhead": on_s / off_s - 1.0,
           "threads4": block}
    print(f"  telemetry type {mtype} n={n}: off {off_s:7.3f} s  "
          f"on {on_s:7.3f} s  (+{100 * rec['on_overhead']:.1f}%)  "
          f"steal rate {block.get('steal_success_rate')}  "
          f"idle {block.get('idle_fraction'):.1%}")
    return rec


def bench_smoke() -> dict:
    """Small fixed configuration for CI regression checks."""
    print(f"[smoke] micro n={SMOKE_MICRO_N}, solve n={SMOKE_SOLVE_N}, "
          f"type {SMOKE_MTYPE}")
    micro = bench_micro(SMOKE_MICRO_N, SMOKE_MTYPE)
    solve = bench_solve(SMOKE_MTYPE, SMOKE_SOLVE_N, n_reuse=5)
    telemetry = bench_telemetry(SMOKE_MTYPE, SMOKE_SOLVE_N)
    return {"micro": micro, "solve": solve, "telemetry": telemetry}


def check_regression(current: dict, baseline_path: str = BASELINE,
                     factor: float = 2.0,
                     telemetry_factor: float = 1.03) -> list[str]:
    """Compare smoke timings against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  Only
    timings are compared; speedup ratios are hardware-sensitive enough
    that the ratio itself (vec vs ref on the *same* machine) is the
    robust signal, so a vectorized kernel falling behind its own
    reference is also flagged.
    """
    if not os.path.exists(baseline_path):
        print(f"[smoke] no baseline at {baseline_path}; skipping comparison")
        return []
    base = load_bench_json(baseline_path).get("smoke")
    if not base:
        return []
    failures = []
    for kname, kcur in current["micro"]["kernels"].items():
        kbase = base["micro"]["kernels"].get(kname)
        if kbase and kcur["vec_s"] > factor * kbase["vec_s"]:
            failures.append(
                f"micro/{kname}: {kcur['vec_s']:.4f}s vs baseline "
                f"{kbase['vec_s']:.4f}s (> {factor}x)")
        if kcur["ref_s"] > 1e-3 and kcur["speedup"] < 0.9:
            failures.append(
                f"micro/{kname}: vectorized kernel slower than seed "
                f"reference ({kcur['speedup']:.2f}x)")
    for field in ("solve_seq_s", "graph_build_s"):
        if current["solve"][field] > factor * base["solve"][field]:
            failures.append(
                f"solve/{field}: {current['solve'][field]:.4f}s vs "
                f"baseline {base['solve'][field]:.4f}s (> {factor}x)")
    cur_frac = current["solve"]["reuse"]["amortized_fraction"]
    if cur_frac > 0.25:
        failures.append(
            f"reuse amortized_fraction {cur_frac:.3f} > 0.25 "
            "(template instantiation no longer cheap)")
    # Telemetry-off overhead gate: the observability subsystem must stay
    # free when disabled.  Tighter than the generic 2x factor — a 3%
    # drift on the default (telemetry=None) solve path fails the gate.
    tel_cur, tel_base = current.get("telemetry"), base.get("telemetry")
    if tel_cur and tel_base:
        off_cur = tel_cur["solve_off_s"]
        off_base = tel_base["solve_off_s"]
        if off_cur > telemetry_factor * off_base:
            failures.append(
                f"telemetry/solve_off_s: {off_cur:.4f}s vs baseline "
                f"{off_base:.4f}s (> {telemetry_factor:.2f}x; "
                "telemetry-off path is no longer zero-overhead)")
    elif tel_cur and not tel_base:
        print("[smoke] baseline has no telemetry block; "
              "skipping telemetry-off overhead gate")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="run only the small CI configuration and fail on "
                         ">2x regression vs the committed baseline")
    ap.add_argument("--full", action="store_true",
                    help="add the expensive n=10000 configurations")
    ap.add_argument("--micro-n", type=int, default=5000,
                    help="microkernel matrix size (default 5000)")
    ap.add_argument("--out", default=None,
                    help="directory for the JSON (default: repo root for "
                         "full runs, none for --smoke)")
    args = ap.parse_args(argv)

    if args.smoke:
        smoke = bench_smoke()
        failures = check_regression(smoke)
        if args.out:
            write_bench_json("BENCH_hotpath_smoke", {"smoke": smoke},
                             directory=args.out)
        if failures:
            print("\nREGRESSIONS DETECTED:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nsmoke OK (no >2x regressions vs baseline)")
        return 0

    payload: dict = {}
    print(f"[micro] n={args.micro_n}, type 4 "
          "(vectorized vs seed reference kernels)")
    payload["micro"] = bench_micro(args.micro_n)

    print("[solve] latency / graph build / template reuse")
    configs = [(2, 1000), (3, 1000), (4, 1000),
               (2, 2500), (3, 2500), (4, 2500),
               (4, 5000)]
    if args.full:
        configs += [(2, 5000), (3, 5000), (2, 10000), (3, 10000),
                    (4, 10000)]
    payload["solve"] = [bench_solve(mt, n) for mt, n in configs]

    payload["smoke"] = bench_smoke()

    out_dir = args.out or REPO_ROOT
    write_bench_json("BENCH_hotpath", payload, directory=out_dir,
                     telemetry=payload["smoke"]["telemetry"]["threads4"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
