"""ScaLAPACK-style distributed D&C baseline (``pdstedc`` model).

The paper's Fig. 7 compares against MKL ScaLAPACK run with 16 MPI
processes on the same node.  ScaLAPACK's D&C differs from LAPACK's in
exactly the ways the paper describes:

* independent subproblems ARE solved in parallel across ranks;
* the merge GEMM and secular equation are distributed over the ranks
  that own the node's columns;
* but every merge pays explicit communication — broadcasting the rank-one
  vector z, exchanging eigenvector panels between processes (the "data
  copies required for exchanges between NUMA nodes") — and the tree
  levels are synchronized.

This module models that execution analytically: the real solver runs
once (sequentially) to obtain the true per-merge deflation data, then a
level-by-level α–β performance model derives the distributed makespan
on the same virtual :class:`Machine` the task-flow simulator uses.
Numerically ``scalapack_dc_eigh`` returns the identical D&C result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.options import DCOptions
from ..core.solver import dc_eigh
from ..runtime.simulator import Machine

__all__ = ["scalapack_dc_eigh", "scalapack_dc_makespan", "CommModel"]


@dataclass(frozen=True)
class CommModel:
    """α–β communication model for intra-node MPI.

    ``alpha`` per-message latency (s); ``beta`` per-byte transfer time.
    Shared-memory MPI moves every byte at least twice (send buffer →
    shared segment → receive buffer) with all ranks contending for the
    same memory controllers, so the effective per-rank exchange
    bandwidth is far below a single core's streaming rate — this is the
    paper's "data copies required for exchanges between NUMA nodes".
    ``gemm_efficiency`` derates the distributed GEMM for block-cyclic
    edge effects and the row/column broadcasts inside pdgemm.
    """

    alpha: float = 5e-6
    beta: float = 1.0 / 1.0e9
    gemm_efficiency: float = 0.6


def scalapack_dc_eigh(d: np.ndarray, e: np.ndarray, *,
                      options: Optional[DCOptions] = None,
                      full_result: bool = False):
    """Numerical result of the distributed D&C (identical to dc_eigh)."""
    return dc_eigh(d, e, options=options, full_result=full_result)


def scalapack_dc_makespan(d: np.ndarray, e: np.ndarray, *,
                          n_ranks: int = 16,
                          machine: Optional[Machine] = None,
                          comm: Optional[CommModel] = None,
                          options: Optional[DCOptions] = None) -> float:
    """Modelled pdstedc runtime on ``n_ranks`` processes.

    Walks the merge tree level by level (levels are synchronized in
    pdstedc) charging distributed compute plus α–β communication, using
    the *measured* deflation of each merge.
    """
    m = machine or Machine()
    c = comm or CommModel()
    opts = options or DCOptions()
    res = dc_eigh(d, e, options=opts, full_result=True)
    tree = res.info.tree
    states = res.info.states
    n = len(d)

    flop_gemm = m.core_gflops * 1e9
    flop_kern = flop_gemm * m.kernel_efficiency
    copy_bw = m.stream_bw

    total = 0.0
    # Leaf level: leaves list-scheduled onto ranks, QR iteration each.
    leaf_costs = sorted((9.0 * l.n ** 3 / flop_kern
                         for l in tree.leaves()), reverse=True)
    loads = [0.0] * n_ranks
    for t in leaf_costs:
        loads[loads.index(min(loads))] += t
    total += max(loads)

    for level in tree.merges_by_level():
        t_level = 0.0
        for node in level:
            st = states[(node.lo, node.hi)]
            nn = st.n
            k = st.k
            k1, k2, _ = st.defl.ctot
            k12, k23 = k1 + k2, k - k1
            # Ranks cooperating on this merge (proportional share).
            r = max(1, round(n_ranks * nn / n))
            # Sequential deflation on the owning rank + z broadcast.
            t = 12.0 * nn / flop_kern
            t += (c.alpha + 8.0 * nn * c.beta) * math.ceil(math.log2(r + 1))
            # Distributed secular solve + stabilization (k work over r,
            # with the usual block-cyclic load imbalance).
            t += 1.5 * (6.0 * 10.0 * k * k / r) / flop_kern
            t += 1.5 * (6.0 * k * k / r) / flop_kern
            # Permutation becomes an all-to-all exchange of vector
            # panels through MPI shared memory (the dominant cost the
            # paper attributes to pdstedc on high-deflation matrices).
            t += c.alpha * r + (8.0 * nn * nn / r) * c.beta
            # Distributed GEMM (pdgemm: broadcasts + edge blocks).
            t += 2.0 * k * (st.n1 * k12 + (nn - st.n1) * k23) / r \
                / (flop_gemm * c.gemm_efficiency)
            # Copy-back of deflated vectors also crosses process
            # boundaries in the block-cyclic layout.
            t += (8.0 * nn * (nn - k) / r) * c.beta
            # Per-merge synchronization (pdstedc's internal collectives).
            t += 6.0 * (c.alpha * math.ceil(math.log2(r + 1)))
            t_level = max(t_level, t)
        total += t_level

    # Final sort + redistribution of the eigenvector matrix.
    total += c.alpha * n_ranks + (8.0 * n * n / n_ranks) * c.beta
    return total
