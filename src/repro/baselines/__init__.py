"""Comparison baselines: MKL-LAPACK fork/join D&C, ScaLAPACK model, BI."""

from .lapack_dc import lapack_dc_eigh, lapack_dc_makespan, LAPACK_DC_OPTIONS
from .scalapack_dc import scalapack_dc_eigh, scalapack_dc_makespan, CommModel
from .bisect_invit import bisect_invit_eigh
from .jacobi import jacobi_eigh
from .qdwh import qdwh_eigh, qdwh_polar

__all__ = [
    "lapack_dc_eigh", "lapack_dc_makespan", "LAPACK_DC_OPTIONS",
    "scalapack_dc_eigh", "scalapack_dc_makespan", "CommModel",
    "bisect_invit_eigh", "jacobi_eigh", "qdwh_eigh", "qdwh_polar",
]
