"""Bisection + Inverse Iteration baseline (LAPACK dstebz/dstein class).

One of the four classical tridiagonal eigensolvers the paper's related
work discusses (slower than D&C/MRRR on full-spectrum problems, but the
natural reference for subset computations).  Eigenvalues come from
vectorized Sturm bisection; eigenvectors from inverse iteration, with
modified Gram-Schmidt reorthogonalization inside groups of close
eigenvalues (the classic dstein strategy — and its classic O(n·c²)
cluster cost).
"""

from __future__ import annotations

import numpy as np

from ..mrrr.bisect import bisect_eigenvalues
from ..mrrr.solver import _tridiag_solve_shifted

__all__ = ["bisect_invit_eigh"]

_EPS = np.finfo(np.float64).eps


def bisect_invit_eigh(d: np.ndarray, e: np.ndarray,
                      indices: np.ndarray | None = None,
                      group_tol: float = 1e-3
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Eigenpairs by bisection + inverse iteration.

    Parameters
    ----------
    d, e : tridiagonal entries.
    indices : optional subset of eigenvalue indices (ascending order);
        default computes the full spectrum.  Subset computation is the
        traditional strength of BI (paper Sec. I discussion).
    group_tol : relative closeness below which eigenvectors are
        reorthogonalized against each other.

    Returns ``(lam, V)`` for the selected indices.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0:
        raise ValueError("empty matrix")
    if e.shape[0] != max(0, n - 1):
        raise ValueError("e must have length n-1")
    if indices is None:
        indices = np.arange(n)
    idx = np.asarray(indices, dtype=np.intp)
    lam = bisect_eigenvalues(d, e, indices=idx, rtol=64.0 * _EPS)
    m = idx.shape[0]
    V = np.zeros((n, m), order="F")
    scale = max(float(np.max(np.abs(d))),
                float(np.max(np.abs(e))) if e.size else 0.0, 1.0)
    rng = np.random.default_rng(n * 1009 + m)

    # Group close eigenvalues (relative to the matrix scale).
    group: list[int] = []
    groups: list[list[int]] = []
    for j in range(m):
        if group and (lam[j] - lam[group[-1]]) > group_tol * scale * 1e-3 \
                and (lam[j] - lam[group[-1]]) > 1e3 * _EPS * scale:
            groups.append(group)
            group = []
        group.append(j)
    if group:
        groups.append(group)

    for grp in groups:
        done: list[np.ndarray] = []
        for t, j in enumerate(grp):
            sig = lam[j] + (t + 1) * 2.0 * _EPS * scale
            x = rng.normal(size=n)
            for _ in range(3):
                x = _tridiag_solve_shifted(d, e, sig, x)
                for _sweep in range(2):
                    for q in done:
                        x -= np.dot(q, x) * q
                nrm = np.linalg.norm(x)
                if nrm == 0.0 or not np.isfinite(nrm):
                    x = rng.normal(size=n)
                    nrm = np.linalg.norm(x)
                x /= nrm
            done.append(x)
            V[:, j] = x
    return lam, V
