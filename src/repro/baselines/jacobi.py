"""Cyclic Jacobi eigenvalue algorithm (paper Sec. II related work).

"The Jacobi eigenvalue algorithm is an iterative process to compute
eigenpairs of a real symmetric matrix, but it is not that efficient."
Included as the classical high-accuracy reference: Jacobi is backward
stable with excellent relative accuracy, at O(n³) per sweep and many
sweeps — the benchmark nobody beats on accuracy and nobody uses for
speed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["jacobi_eigh"]

_EPS = np.finfo(np.float64).eps


def jacobi_eigh(a: np.ndarray, *, max_sweeps: int = 30,
                tol: float | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
    """All eigenpairs of a dense symmetric matrix by cyclic Jacobi.

    Returns ``(lam, V)`` ascending with ``a @ V = V @ diag(lam)``.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    if n == 0:
        raise ValueError("empty matrix")
    scale = float(np.max(np.abs(a))) or 1.0
    if not np.allclose(a, a.T, atol=1e-12 * scale):
        raise ValueError("matrix must be symmetric")
    if tol is None:
        tol = 4.0 * _EPS * scale
    V = np.eye(n)
    for _sweep in range(max_sweeps):
        off = np.sqrt(np.sum(np.tril(a, -1) ** 2))
        if off <= tol * n:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = a[p, q]
                if abs(apq) <= 0.25 * tol / n:
                    continue
                # Classical stable rotation angle.
                theta = 0.5 * (a[q, q] - a[p, p]) / apq
                t = math.copysign(1.0, theta) / (
                    abs(theta) + math.hypot(theta, 1.0))
                c = 1.0 / math.sqrt(t * t + 1.0)
                s = t * c
                # Apply the rotation to rows/columns p and q.
                rp = a[p, :].copy()
                rq = a[q, :].copy()
                a[p, :] = c * rp - s * rq
                a[q, :] = s * rp + c * rq
                cp = a[:, p].copy()
                cq = a[:, q].copy()
                a[:, p] = c * cp - s * cq
                a[:, q] = s * cp + c * cq
                vp = V[:, p].copy()
                vq = V[:, q].copy()
                V[:, p] = c * vp - s * vq
                V[:, q] = s * vp + c * vq
    lam = np.diag(a).copy()
    order = np.argsort(lam, kind="stable")
    return lam[order], V[:, order]
