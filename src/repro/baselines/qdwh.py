"""QDWH-eig: spectral divide & conquer via the polar decomposition
(paper Sec. II related work: Nakatsukasa & Higham [8]).

"Recently, the QDWH (QR-based dynamically weighted Halley) algorithm
was developed by Nakatsukasa, and provides a fast solution to the full
problem."  QDWH-eig splits the spectrum recursively: the polar factor
``U_p`` of ``A − σI`` gives the orthogonal projector
``P = (U_p + I)/2`` onto the invariant subspace of eigenvalues above σ;
a subspace iteration/QR of P splits A into two independent blocks, and
recursion finishes the job.  The polar factor itself is computed by the
QR-based dynamically weighted Halley iteration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["qdwh_polar", "qdwh_eigh"]

_EPS = np.finfo(np.float64).eps


def qdwh_polar(a: np.ndarray, *, max_iter: int = 40) -> np.ndarray:
    """Orthogonal polar factor of ``a`` by the QDWH iteration.

    Uses the QR-based formulation: with ``X_0 = A/α`` and dynamically
    chosen Halley weights (a, b, c) from the current lower bound ℓ on
    the smallest singular value::

        [Q1]        [ sqrt(c) X ]
        [Q2] R = qr([    I      ]),
        X ← (b/c) X + (a − b/c)/sqrt(c) · Q1 Q2ᵀ
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    alpha = float(np.linalg.norm(a, "fro")) or 1.0
    x = a / alpha
    # Lower bound on sigma_min(X): cheap estimate via 1-norm condition.
    # Initial lower bound on sigma_min(X).  An underestimate is safe
    # (the dynamically weighted iteration stays globally convergent and
    # degenerates gracefully to plain Halley as ell -> 1); an
    # overestimate only slows convergence, so convergence is detected
    # from the iterate itself, never from the analytic ell recurrence.
    with np.errstate(all="ignore"):
        sign, logdet = np.linalg.slogdet(x)
    ell = float(np.exp(logdet / n)) if sign != 0 else 1e-12
    ell = max(min(ell, 1.0), 1e-12)
    eye = np.eye(n)
    for _ in range(max_iter):
        ell2 = ell * ell
        dd = (4.0 * (1.0 - ell2) / (ell2 * ell2)) ** (1.0 / 3.0)
        sqd = np.sqrt(1.0 + dd)
        sq2 = np.sqrt(8.0 - 4.0 * dd + 8.0 * (2.0 - ell2)
                      / (ell2 * sqd))
        aa = sqd + 0.5 * sq2
        bb = (aa - 1.0) ** 2 / 4.0
        cc = aa + bb - 1.0
        # QR-based update (inverse free).
        z = np.vstack([np.sqrt(cc) * x, eye])
        q, _ = np.linalg.qr(z)
        q1 = q[:n, :]
        q2 = q[n:, :]
        xn = (bb / cc) * x + (aa - bb / cc) / np.sqrt(cc) * (q1 @ q2.T)
        step = np.linalg.norm(xn - x, "fro")
        x = xn
        ell = ell * (aa + bb * ell2) / (1.0 + cc * ell2)
        ell = min(ell, 1.0)
        if step <= 10 * n * _EPS:
            break
    # Final Newton-Schulz polish (cheap, cubic near orthogonality).
    x = 0.5 * x @ (3.0 * eye - x.T @ x)
    return x


def qdwh_eigh(a: np.ndarray, *, min_block: int = 8
              ) -> tuple[np.ndarray, np.ndarray]:
    """All eigenpairs of a dense symmetric matrix by QDWH-eig.

    Recursion bottoms out on small blocks solved by cyclic Jacobi.
    Returns ``(lam, V)`` ascending.
    """
    from .jacobi import jacobi_eigh

    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    if n == 0:
        raise ValueError("empty matrix")

    def solve(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        m = block.shape[0]
        if m <= min_block:
            return jacobi_eigh(block)
        # Split point: a large spectral gap near the median.  (N&H use
        # cheap norm/trace estimates; a bisection eigenvalue probe is
        # the splitting guide here — the demonstrated algorithm, the
        # polar-decomposition divide step, is unchanged.)
        ev = np.linalg.eigvalsh(block)
        scale = max(abs(ev[0]), abs(ev[-1]), 1e-300)
        j0 = m // 2
        best_j, best_score = -1, -1.0
        for j in range(m - 1):
            gap = ev[j + 1] - ev[j]
            score = gap / (1.0 + abs(j + 1 - j0))
            if score > best_score:
                best_score, best_j = score, j
        if ev[best_j + 1] - ev[best_j] <= 1e3 * _EPS * scale:
            # No usable gap: numerically multiple spectrum.
            return jacobi_eigh(block)
        sigma = 0.5 * (ev[best_j] + ev[best_j + 1])
        k = m - (best_j + 1)                     # eigenvalues above sigma
        up = qdwh_polar(block - sigma * np.eye(m))
        # Projector onto the invariant subspace above sigma.
        p = 0.5 * (up + np.eye(m))
        rng = np.random.default_rng(m * 7 + best_j)
        # Orthonormal bases of range(P) and range(I-P), mutually
        # orthogonalized (both are invariant subspaces of `block`).
        q1, _ = np.linalg.qr(p @ rng.normal(size=(m, k)))
        y = (np.eye(m) - p) @ rng.normal(size=(m, m - k))
        y -= q1 @ (q1.T @ y)
        q2, _ = np.linalg.qr(y)
        basis = np.hstack([q2, q1])
        t = basis.T @ block @ basis
        a11 = t[:m - k, :m - k]
        a22 = t[m - k:, m - k:]
        lam1, v1 = solve(0.5 * (a11 + a11.T))
        lam2, v2 = solve(0.5 * (a22 + a22.T))
        lam = np.concatenate([lam1, lam2])
        V = np.zeros((m, m))
        V[:, :m - k] = q2 @ v1
        V[:, m - k:] = q1 @ v2
        order = np.argsort(lam, kind="stable")
        return lam[order], V[:, order]

    return solve(0.5 * (a + a.T))
