"""MKL-LAPACK-style D&C baseline (``dstedc`` with multithreaded BLAS).

The paper's Fig. 6 compares against Intel MKL's LAPACK ``dstedc``, whose
only parallelism is the fork/join multithreaded BLAS inside the merge
GEMMs: subproblems are solved sequentially, levels are synchronized, and
every non-GEMM kernel runs on one core.

This baseline is the *same* numerical algorithm (bit-identical results)
executed under that scheduling model: ``fork_join=True`` serializes all
non-``UpdateVect`` tasks on a token and ``level_barrier=True`` syncs the
tree levels.  On the simulator backend this reproduces the MKL timing
shape; on the sequential/thread backends it checks numerics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.options import DCOptions
from ..core.solver import dc_eigh
from ..runtime.simulator import Machine

__all__ = ["lapack_dc_eigh", "lapack_dc_makespan", "LAPACK_DC_OPTIONS"]

#: Scheduling model of MKL LAPACK dstedc (Fig. 3(a)).
LAPACK_DC_OPTIONS = DCOptions(fork_join=True, level_barrier=True)


def lapack_dc_eigh(d: np.ndarray, e: np.ndarray, *,
                   options: Optional[DCOptions] = None,
                   backend: str = "sequential",
                   n_workers: Optional[int] = None,
                   machine: Optional[Machine] = None,
                   full_result: bool = False):
    """D&C under the fork/join (multithreaded-BLAS-only) model."""
    opts = (options or DCOptions()).with_(fork_join=True,
                                          level_barrier=True)
    return dc_eigh(d, e, options=opts, backend=backend,
                   n_workers=n_workers, machine=machine,
                   full_result=full_result)


def lapack_dc_makespan(d: np.ndarray, e: np.ndarray, *,
                       n_workers: int = 16,
                       machine: Optional[Machine] = None,
                       options: Optional[DCOptions] = None) -> float:
    """Simulated runtime of MKL-style dstedc on the virtual machine."""
    res = lapack_dc_eigh(d, e, options=options, backend="simulated",
                         n_workers=n_workers, machine=machine,
                         full_result=True)
    return res.makespan
