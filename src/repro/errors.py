"""Typed error model of the fault-tolerant solve layer.

Every failure surfaced by the solver derives from :class:`ReproError`
and carries *context* — the offending input index, the unconverged
kernel, or the task (name, submission index, merge node) that raised —
instead of the bare ``RuntimeError`` a deep leaf task would otherwise
produce.  The concrete classes double-inherit from the builtin the
pre-typed code raised (``ValueError`` / ``RuntimeError``), so existing
``except`` clauses and tests keep working.

Hierarchy::

    ReproError
    ├── InputError        (also ValueError)   — rejected at the API boundary
    ├── ConvergenceError  (also RuntimeError) — an iterative kernel gave up
    ├── TaskFailure       (also RuntimeError) — a task raised; wraps the
    │                                           cause with task context
    ├── InjectedFault     (also RuntimeError) — deterministic test fault
    ├── GraphError        (also RuntimeError) — malformed task DAG (cycle)
    └── SchedulerError    (also RuntimeError) — runtime invariant violated

The boundary validators (:func:`validate_tridiagonal`,
:func:`validate_subset`) are what turns a would-be
``RuntimeError: steqr failed to converge for eigenvalue 0`` on a NaN
input into ``InputError("d[10] is nan")`` before any task runs.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

__all__ = ["ReproError", "InputError", "ConvergenceError", "TaskFailure",
           "InjectedFault", "GraphError", "SchedulerError",
           "validate_tridiagonal", "validate_subset", "wrap_task_error"]


class ReproError(Exception):
    """Base class of every typed solver error."""


class InputError(ReproError, ValueError):
    """Invalid input rejected at the API boundary (names the offender)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative kernel (STEQR sweep, secular iteration) gave up."""


class TaskFailure(ReproError, RuntimeError):
    """A task of the DAG raised during execution.

    Carries the task's name, submission index (``seq``), trace tag
    (the merge node span for merge kernels) and — on the threads
    backend — the worker that ran it.  The original exception is
    chained as ``__cause__``.
    """

    def __init__(self, message: str, *, task_name: str = "",
                 seq: int = -1, tag: Any = None,
                 worker: Optional[int] = None):
        super().__init__(message)
        self.task_name = task_name
        self.seq = seq
        self.tag = tag
        self.worker = worker


class InjectedFault(ReproError, RuntimeError):
    """Deterministic fault raised by the test-only injection hooks."""


class GraphError(ReproError, RuntimeError):
    """The task graph is malformed (e.g. contains a cycle)."""


class SchedulerError(ReproError, RuntimeError):
    """A runtime scheduling invariant was violated (e.g. deadlock)."""


def wrap_task_error(task, exc: BaseException,
                    worker: Optional[int] = None) -> TaskFailure:
    """Wrap ``exc`` raised by ``task`` into a :class:`TaskFailure`.

    Idempotent: an exception that is already a ``TaskFailure`` is
    returned unchanged (a nested runtime must not re-wrap).  Callers
    should ``raise wrap_task_error(task, exc) from exc`` so the original
    traceback is chained.
    """
    if isinstance(exc, TaskFailure):
        return exc
    where = f"task {task.name!r} (seq {task.seq}"
    if task.tag is not None:
        where += f", tag {task.tag}"
    if worker is not None:
        where += f", worker {worker}"
    where += ")"
    return TaskFailure(f"{where} failed: {exc}", task_name=task.name,
                       seq=task.seq, tag=task.tag, worker=worker)


def _describe(x: float) -> str:
    """Human form of a non-finite float: 'nan', 'inf', '-inf'."""
    return repr(float(x))


def validate_tridiagonal(d, e) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce the (d, e) pair of a tridiagonal matrix.

    Returns float64 1-D arrays; raises :class:`InputError` naming the
    first offending entry on shape mismatch or non-finite input.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    if d.ndim != 1:
        raise InputError(f"d must be 1-D, got shape {d.shape}")
    if e.ndim != 1:
        raise InputError(f"e must be 1-D, got shape {e.shape}")
    n = d.shape[0]
    if n == 0:
        raise InputError("empty matrix (d has length 0)")
    if e.shape[0] != n - 1:
        raise InputError(
            f"e must have length n-1 = {n - 1}, got {e.shape[0]}")
    for name, arr in (("d", d), ("e", e)):
        if arr.size and not np.isfinite(arr).all():
            i = int(np.flatnonzero(~np.isfinite(arr))[0])
            raise InputError(f"{name}[{i}] is {_describe(arr[i])}")
    return d, e


def validate_subset(subset, n: int) -> Optional[np.ndarray]:
    """Validate eigenpair subset indices against problem size ``n``.

    Returns the sorted, deduplicated index array (possibly empty —
    "compute eigenvalues, no vectors"), or ``None`` when no subset was
    requested.  Raises :class:`InputError` naming the offending index.
    """
    if subset is None:
        return None
    try:
        s = np.unique(np.asarray(subset, dtype=np.intp))
    except (TypeError, ValueError, OverflowError) as exc:
        raise InputError(f"subset must be integer indices: {exc}") from exc
    if s.size:
        if s[0] < 0:
            raise InputError(f"subset index {int(s[0])} is negative")
        if s[-1] >= n:
            raise InputError(
                f"subset index {int(s[-1])} out of range for n={n}")
    return s
