"""Command-line interface: ``repro-eig``.

Subcommands
-----------
``solve``  — solve a Table III matrix with a chosen solver and report
             timing + the paper's accuracy metrics.
``trace``  — run one instrumented solve (simulated machine by default,
             real threads with ``--backend threads``), print the ASCII
             execution trace (Figs. 3-4 style) plus the telemetry
             summary, and optionally dump the JSONL event log, the
             Perfetto/Chrome trace and a Prometheus snapshot
             (``--out DIR``); see docs/OBSERVABILITY.md.
``serve``  — run a persistent :class:`SolverSession` as a service with
             live observability endpoints (``/metrics``, ``/healthz``,
             ``/debug/state``, debug ``/solve``) on a stdlib HTTP
             server; optional sampling profiler and post-mortem bundle
             directory.
``info``   — list the Table III matrix types.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-eig",
        description="Task-flow D&C symmetric tridiagonal eigensolver "
                    "(IPDPS 2015 reproduction)")
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("solve", help="solve a test matrix")
    s.add_argument("--type", type=int, default=4, choices=range(1, 16),
                   metavar="1-15", help="Table III matrix type")
    s.add_argument("--n", type=int, default=500, help="matrix size")
    s.add_argument("--solver", default="dc",
                   choices=["dc", "mrrr", "qr", "bi", "lapack-dc"],
                   help="eigensolver")
    s.add_argument("--backend", default="sequential",
                   choices=["sequential", "threads", "processes",
                            "simulated"],
                   help="runtime backend (dc solvers only)")
    s.add_argument("--workers", type=int, default=None,
                   help="worker threads / processes / virtual cores")
    s.add_argument("--subset", default=None, metavar="I0:I1",
                   help="eigenpair index range, e.g. 0:10 "
                        "(dc and mrrr solvers)")
    s.add_argument("--jobz", default="V", choices=["V", "N"],
                   help="V = eigenpairs (default); N = eigenvalues only "
                        "via the O(n)-state reduced DAG (dc solver only)")
    s.add_argument("--repeat", type=int, default=1,
                   help="solve the problem N times (throughput mode; "
                        "reports per-solve latency percentiles)")
    s.add_argument("--no-session", action="store_true",
                   help="with --repeat: serial one-shot loop instead of "
                        "the persistent SolverSession (dc solver only)")
    s.add_argument("--reuse-graph", action="store_true",
                   help="reuse the matrix-independent DAG template "
                        "across same-shape solves (dc solver only)")
    s.add_argument("--inject", default=None, metavar="SPEC",
                   help="deterministic fault injection (dc solver only): "
                        "task:SEQ | kernel:NAME[:NTH] | p:PROB[:SEED]")
    s.add_argument("--nb", type=int, default=None,
                   help="panel width (dc solver only; default: auto)")
    s.add_argument("--priority-mode", default=None,
                   choices=["none", "blevel"],
                   help="task priorities: b-level critical path (default) "
                        "or none (dc solver only)")
    s.add_argument("--seed", type=int, default=0)

    v = sub.add_parser("svd", help="D&C SVD of a random dense matrix")
    v.add_argument("--m", type=int, default=200)
    v.add_argument("--n", type=int, default=150)
    v.add_argument("--seed", type=int, default=0)

    w = sub.add_parser("workspace", help="memory trade-off report")
    w.add_argument("--n", type=int, default=10000)

    t = sub.add_parser("trace",
                       help="instrumented solve: gantt, telemetry summary, "
                            "and JSONL/Chrome/Prometheus export")
    t.add_argument("--type", type=int, default=4, choices=range(1, 16),
                   metavar="1-15")
    t.add_argument("--n", type=int, default=800)
    t.add_argument("--size", type=int, default=None,
                   help="matrix size (alias of --n)")
    t.add_argument("--cores", type=int, default=16)
    t.add_argument("--backend", default="simulated",
                   choices=["simulated", "threads", "processes",
                            "sequential"],
                   help="runtime backend to trace (threads exposes the "
                        "work-stealing counters; processes shows "
                        "proc-worker lanes)")
    t.add_argument("--config", default="full-taskflow",
                   choices=["sequential", "parallel-gemm", "parallel-merge",
                            "full-taskflow"],
                   help="scheduler configuration (Fig. 3 variants)")
    t.add_argument("--nb", type=int, default=None,
                   help="panel width override (default: auto)")
    t.add_argument("--jobz", default="V", choices=["V", "N"],
                   help="V = eigenpairs (default); N = eigenvalues only "
                        "(trace the reduced strip DAG)")
    t.add_argument("--priority-mode", default=None,
                   choices=["none", "blevel"],
                   help="task priorities: b-level critical path (default) "
                        "or none")
    t.add_argument("--width", type=int, default=100, help="chart width")
    t.add_argument("--out", default=None, metavar="DIR",
                   help="dump trace.jsonl, trace_chrome.json, gantt.txt, "
                        "summary.txt and telemetry.prom into DIR")
    t.add_argument("--seed", type=int, default=0)

    q = sub.add_parser("serve",
                       help="persistent solver service with /metrics, "
                            "/healthz and /debug/state endpoints")
    q.add_argument("--port", type=int, default=9100,
                   help="HTTP port (0 = ephemeral; printed on startup)")
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--backend", default="threads",
                   choices=["sequential", "threads", "processes",
                            "simulated"])
    q.add_argument("--workers", type=int, default=None,
                   help="worker threads / processes (default: one per "
                        "core)")
    q.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve before exiting "
                        "(0 = until interrupted)")
    q.add_argument("--postmortem-dir", default=None, metavar="DIR",
                   help="dump JSONL post-mortem bundles of failed solves "
                        "into DIR (also via REPRO_POSTMORTEM_DIR)")
    q.add_argument("--profile-interval", type=float, default=None,
                   metavar="SEC",
                   help="enable the task-attributed sampling profiler at "
                        "this period, e.g. 0.004")
    q.add_argument("--warm", type=int, default=0, metavar="N",
                   help="run one warm-up solve of size N before serving")

    sub.add_parser("info", help="list Table III matrix types")
    return p


def _latency_line(latencies: list[float]) -> str:
    """Latency percentiles via the streaming digest (constant memory —
    --repeat counts can be arbitrarily large)."""
    from .obs import Digest
    dg = Digest()
    dg.add_many(latencies)
    st = dg.stats()
    return (f"p50={st['p50'] * 1e3:.2f}ms  "
            f"p90={st['p90'] * 1e3:.2f}ms  "
            f"p99={st['p99'] * 1e3:.2f}ms  "
            f"(mean {st['mean'] * 1e3:.2f}ms)")


def _cmd_solve(args) -> int:
    from .analysis import orthogonality_error, tridiagonal_residual
    from .matrices import matrix_description, test_matrix

    d, e = test_matrix(args.type, args.n, seed=args.seed)
    print(f"type {args.type} (n={args.n}): {matrix_description(args.type)}")
    subset = None
    if getattr(args, "subset", None):
        lo, _, hi = args.subset.partition(":")
        subset = np.arange(int(lo), int(hi) if hi else int(lo) + 1)
    repeat = max(1, getattr(args, "repeat", 1))
    use_session = repeat > 1 and not getattr(args, "no_session", False)
    latencies: list[float] = []
    t0 = time.perf_counter()
    if args.solver == "dc":
        from . import SolverSession, dc_eigh
        from .core import DCOptions
        from .errors import ReproError
        from .runtime.faults import FaultSpec
        inject = getattr(args, "inject", None)
        opts = DCOptions(jobz=getattr(args, "jobz", "V"),
                         reuse_graph=bool(getattr(args, "reuse_graph",
                                                  False)),
                         fault_injection=(FaultSpec.parse(inject)
                                          if inject else None),
                         nb=getattr(args, "nb", None))
        if getattr(args, "priority_mode", None):
            opts = opts.with_(priority_mode=args.priority_mode)
        try:
            if use_session:
                # Repeated solves share one session: persistent workers,
                # pooled workspaces, concurrent fused execution on the
                # threads backend.
                with SolverSession(backend=args.backend,
                                   n_workers=args.workers,
                                   options=opts) as session:
                    handles = [session.submit(d, e, subset=subset)
                               for _ in range(repeat)]
                    for h in handles:
                        lam, V = h.result()
                    latencies = [h.latency_s for h in handles]
            else:
                for _ in range(repeat):
                    ts = time.perf_counter()
                    lam, V = dc_eigh(d, e, options=opts,
                                     backend=args.backend,
                                     n_workers=args.workers, subset=subset)
                    latencies.append(time.perf_counter() - ts)
        except ReproError as exc:
            print(f"error   : {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
    elif args.solver == "lapack-dc":
        from .baselines import lapack_dc_eigh
        lam, V = lapack_dc_eigh(d, e, backend=args.backend,
                                n_workers=args.workers)
    elif args.solver == "mrrr":
        from . import mrrr_eigh
        lam, V = mrrr_eigh(d, e, subset=subset)
    elif args.solver == "qr":
        from .kernels import steqr
        lam, V = steqr(d, e)
    else:
        from .baselines import bisect_invit_eigh
        lam, V = bisect_invit_eigh(d, e)
    wall = time.perf_counter() - t0
    dt = wall / repeat
    print(f"solver  : {args.solver}")
    if repeat > 1:
        mode = "session" if (use_session and args.solver == "dc") \
            else "one-shot loop"
        print(f"repeat  : {repeat} solves via {mode} "
              f"({wall:.3f} s wall, {repeat / wall:.1f} solves/s)")
        if latencies:
            print(f"latency : {_latency_line(latencies)}")
    print(f"time    : {dt:.3f} s")
    print(f"lambda  : [{lam[0]:.6g} .. {lam[-1]:.6g}]")
    if V is None:
        print("orth    : n/a (jobz=N, eigenvalues only)")
        print("resid   : n/a (jobz=N, eigenvalues only)")
    else:
        print(f"orth    : {orthogonality_error(V):.2e}")
        print(f"resid   : {tridiagonal_residual(d, e, lam, V):.2e}")
    return 0


def _cmd_trace(args) -> int:
    import json
    import os

    from . import dc_eigh
    from .core.options import FIG3_CONFIGS
    from .matrices import test_matrix
    from .obs import (Collector, chrome_trace, prometheus_text,
                      telemetry_summary, write_jsonl)

    n = args.size if args.size is not None else args.n
    d, e = test_matrix(args.type, n, seed=args.seed)
    collector = Collector()
    opts = FIG3_CONFIGS[args.config].with_(minpart=max(32, n // 8),
                                           telemetry=collector)
    if getattr(args, "nb", None) is not None:
        opts = opts.with_(nb=args.nb)
    if getattr(args, "jobz", "V") != "V":
        opts = opts.with_(jobz=args.jobz)
    if getattr(args, "priority_mode", None):
        opts = opts.with_(priority_mode=args.priority_mode)
    res = dc_eigh(d, e, options=opts, backend=args.backend,
                  n_workers=args.cores, full_result=True)
    gantt = res.trace.gantt(width=args.width)
    summary = telemetry_summary(collector, res.trace)
    print(gantt)
    print()
    print(summary)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "trace.jsonl"), "w") as fh:
            n_lines = write_jsonl(fh, collector, res.trace)
        with open(os.path.join(args.out, "trace_chrome.json"), "w") as fh:
            json.dump(chrome_trace(res.trace, collector), fh)
        with open(os.path.join(args.out, "gantt.txt"), "w") as fh:
            fh.write(gantt + "\n")
        with open(os.path.join(args.out, "summary.txt"), "w") as fh:
            fh.write(summary + "\n")
        with open(os.path.join(args.out, "telemetry.prom"), "w") as fh:
            fh.write(prometheus_text(collector, res.trace))
        print(f"\n[wrote trace.jsonl ({n_lines} lines), trace_chrome.json, "
              f"gantt.txt, summary.txt, telemetry.prom to {args.out}]")
    return 0


def _cmd_serve(args) -> int:
    from . import SolverSession
    from .core import DCOptions

    opts = DCOptions(postmortem_dir=args.postmortem_dir)
    session = SolverSession(backend=args.backend, n_workers=args.workers,
                            options=opts, serve_port=args.port,
                            serve_host=args.host,
                            profile_interval_s=args.profile_interval)
    try:
        print(f"serving {args.backend} session "
              f"({session.n_workers} workers) on {session.server.address}"
              f"  [/metrics /healthz /debug/state /solve]", flush=True)
        if args.warm > 0:
            from .matrices import test_matrix
            d, e = test_matrix(4, args.warm, seed=0)
            session.solve(d, e)
            print(f"warm-up solve n={args.warm} done", flush=True)
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        session.close()
    return 0


def _cmd_svd(args) -> int:
    from .core.svd import svd

    rng = np.random.default_rng(args.seed)
    a = rng.normal(size=(args.m, args.n))
    t0 = time.perf_counter()
    u, s, vt = svd(a)
    dt = time.perf_counter() - t0
    resid = np.max(np.abs((u * s[None, :]) @ vt - a))
    print(f"dense SVD {args.m}x{args.n} via bidiagonal D&C (TGK)")
    print(f"time    : {dt:.3f} s")
    print(f"sigma   : [{s[-1]:.6g} .. {s[0]:.6g}]")
    print(f"resid   : {resid:.2e}")
    return 0


def _cmd_workspace(args) -> int:
    from .analysis import workspace_report
    print(workspace_report(args.n))
    return 0


def _cmd_info() -> int:
    from .matrices import MATRIX_TYPES, matrix_description
    print("Table III test matrices (k = 1e6, ulp = DBL_EPSILON):")
    for t in MATRIX_TYPES:
        print(f"  {t:2d}  {matrix_description(t)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.cmd == "solve":
        return _cmd_solve(args)
    if args.cmd == "trace":
        return _cmd_trace(args)
    if args.cmd == "serve":
        return _cmd_serve(args)
    if args.cmd == "svd":
        return _cmd_svd(args)
    if args.cmd == "workspace":
        return _cmd_workspace(args)
    return _cmd_info()


if __name__ == "__main__":
    sys.exit(main())
