"""repro — task-flow Divide & Conquer symmetric tridiagonal eigensolver.

Reproduction of "Divide and Conquer Symmetric Tridiagonal Eigensolver for
Multicore Architectures" (Pichon, Haidar, Faverge, Kurzak — IPDPS 2015).

Top-level API
-------------
``dc_eigh(d, e)``
    The paper's contribution: task-flow D&C tridiagonal eigensolver.
``dc_eigh_many(problems)``
    Batch entry point: same-shape solves reuse the cached DAG template.
``SolverSession()``
    Long-lived solver service: persistent worker pool, concurrent
    ``submit`` with fused super-DAG execution, pooled workspaces.
``mrrr_eigh(d, e)``
    MR3-SMP-style MRRR comparator.
``eigh(A)``
    Full dense symmetric eigensolver (tridiagonalization + D&C +
    back-transformation).

Error model: every failure derives from :class:`repro.errors.ReproError`
— ``InputError`` at the API boundary, ``ConvergenceError`` from iterative
kernels, ``TaskFailure`` (with task name/seq/tag context) from the
runtime.  See :mod:`repro.errors`.

Subpackages: ``runtime`` (QUARK-like task runtime), ``kernels``
(LAPACK-equivalent numerical kernels), ``core`` (D&C), ``mrrr``,
``baselines``, ``matrices`` (Table III generators), ``analysis``.
"""

__version__ = "1.0.0"

__all__ = ["dc_eigh", "dc_eigh_many", "SolverSession", "mrrr_eigh",
           "eigh", "svd",
           "ReproError", "InputError", "ConvergenceError", "TaskFailure",
           "SolveFailure", "__version__"]


def __getattr__(name):
    # Lazy imports keep `import repro.runtime` cheap and avoid pulling the
    # whole solver stack for runtime-only users.
    if name == "dc_eigh":
        from .core.solver import dc_eigh
        return dc_eigh
    if name == "dc_eigh_many":
        from .core.solver import dc_eigh_many
        return dc_eigh_many
    if name == "SolveFailure":
        from .core.solver import SolveFailure
        return SolveFailure
    if name == "SolverSession":
        from .core.session import SolverSession
        return SolverSession
    if name in ("ReproError", "InputError", "ConvergenceError",
                "TaskFailure", "InjectedFault", "GraphError",
                "SchedulerError"):
        from . import errors
        return getattr(errors, name)
    if name == "eigh":
        from .core.dense import eigh
        return eigh
    if name == "mrrr_eigh":
        from .mrrr.solver import mrrr_eigh
        return mrrr_eigh
    if name == "svd":
        from .core.svd import svd
        return svd
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
