"""Task-attributed wall-clock sampling profiler.

The schedulers already know, at every instant, which task each worker is
executing (:meth:`ThreadScheduler.current_tasks` /
:meth:`WorkerPool.current_tasks` — a per-worker slot written on task
start and cleared on completion).  :class:`SamplingProfiler` turns that
into a profile the way ``perf`` does: a sampler thread wakes at a fixed
interval, reads every worker's slot, and bumps a counter keyed by the
task's kernel name and merge tag.  Workers pay nothing — no
instrumentation runs on the task path; the only cost is the sampler
thread itself (one list read per worker per tick).

Samples export two ways:

* :meth:`collapsed` — collapsed-stack text for flamegraph tooling
  (``flamegraph.pl``, speedscope, inferno): one line per distinct stack,
  ``solve;level0;merge[0:800];UpdateVect 172``, where the merge frames
  are reconstructed from the task tags' ``(lo, hi)`` containment exactly
  like the Chrome-trace merge hierarchy.
* :meth:`summary` / :meth:`summary_dict` — the top-kernels table
  embedded in ``telemetry_summary`` and ``/debug/state``.

The profiler is opt-in (``SolverSession(profile_interval_s=...)`` or
``repro-eig serve --profile-interval``); when off, nothing here runs.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Optional

__all__ = ["SamplingProfiler"]


def _span_tag(tag) -> Optional[tuple]:
    """The tag if it is a merge span — an ``(lo, hi)`` integer pair.
    Other tags (e.g. ``('sort', seq)`` bookkeeping tuples) fold into the
    flat ``solve;kernel`` stack."""
    if (isinstance(tag, tuple) and len(tag) == 2
            and all(hasattr(v, "__index__") for v in tag)):
        return (int(tag[0]), int(tag[1]))
    return None


class SamplingProfiler:
    """Wall-clock sampler over a scheduler's current-task slots.

    ``source``
        Anything with ``current_tasks() -> list[task | None]`` (one
        entry per worker; ``None`` = idle) — a live
        :class:`~repro.runtime.scheduler.WorkerPool` or
        :class:`~repro.runtime.scheduler.ThreadScheduler`.  An optional
        ``queue_depths() -> list[int]`` feeds the queue-depth digest.
    ``interval_s``
        Sampling period (wall clock).  4 ms default ≈ 250 Hz.
    ``metrics``
        Optional :class:`~repro.obs.live.SessionMetrics`; each tick adds
        one total-ready-queue-depth sample to its ``queue_depth`` digest.
    """

    def __init__(self, source, interval_s: float = 0.004,
                 metrics=None) -> None:
        if interval_s <= 0.0:
            raise ValueError("interval_s must be > 0")
        self.source = source
        self.interval_s = float(interval_s)
        self.metrics = metrics
        self._lock = threading.Lock()
        #: (kernel name, merge tag or None) -> sample count.
        self.samples: Counter = Counter()
        self.idle_samples = 0
        self.n_samples = 0      # worker-slot observations, total
        self.n_ticks = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- sampling --------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> None:
        """One tick: read every worker slot (callable directly in tests)."""
        try:
            tasks = self.source.current_tasks()
        except Exception:
            return          # source shutting down under us: skip the tick
        hits: list[tuple[str, Optional[tuple]]] = []
        idle = 0
        for t in tasks:
            if t is None:
                idle += 1
            else:
                hits.append((t.name, _span_tag(t.tag)))
        depth = None
        depths = getattr(self.source, "queue_depths", None)
        if depths is not None:
            try:
                depth = sum(depths())
            except Exception:
                depth = None
        with self._lock:
            self.n_ticks += 1
            self.n_samples += len(tasks)
            self.idle_samples += idle
            for key in hits:
                self.samples[key] += 1
        if depth is not None and self.metrics is not None:
            self.metrics.note_queue_depth(depth)

    # -- reading ---------------------------------------------------------
    def kernel_counts(self) -> dict[str, int]:
        """Kernel name -> sample count (merge tags folded together)."""
        out: dict[str, int] = {}
        with self._lock:
            for (name, _tag), cnt in self.samples.items():
                out[name] = out.get(name, 0) + cnt
        return out

    @property
    def busy_samples(self) -> int:
        return self.n_samples - self.idle_samples

    @property
    def attributed_fraction(self) -> Optional[float]:
        """Fraction of non-idle samples attributed to a named task.

        By construction every non-idle slot observation carries the
        task's kernel name, so this is 1.0 unless a slot read raced a
        nameless placeholder; ``None`` until anything was sampled.
        """
        busy = self.busy_samples
        if busy <= 0:
            return None
        with self._lock:
            named = sum(cnt for (name, _), cnt in self.samples.items()
                        if name)
        return named / busy

    def collapsed(self) -> str:
        """Collapsed-stack export (``frame;frame;frame count`` lines).

        Merge-tagged samples get the synthetic stack ``solve; level{L};
        merge[lo:hi]; kernel`` with ``L`` the containment depth of the
        tag among all sampled tags (root merge = level 0, matching
        ``merge_spans_from_trace``); untagged kernels collapse to
        ``solve;kernel``.  Lines are sorted for determinism.
        """
        with self._lock:
            items = list(self.samples.items())
        tags = sorted({tag for (_name, tag), _cnt in items
                       if tag is not None},
                      key=lambda s: (s[1] - s[0], s[0]))
        level = {tag: sum(1 for t2 in tags
                          if t2[0] <= tag[0] and tag[1] <= t2[1]
                          and t2 != tag)
                 for tag in tags}
        stacks: Counter = Counter()
        for (name, tag), cnt in items:
            if tag is None:
                stacks[f"solve;{name}"] += cnt
            else:
                lo, hi = tag
                stacks[f"solve;level{level[tag]};"
                       f"merge[{lo}:{hi}];{name}"] += cnt
        return "\n".join(f"{stack} {cnt}"
                         for stack, cnt in sorted(stacks.items())) + "\n"

    def summary_dict(self) -> dict:
        with self._lock:
            top = Counter()
            for (name, _tag), cnt in self.samples.items():
                top[name] += cnt
        return {"interval_s": self.interval_s, "ticks": self.n_ticks,
                "samples": self.n_samples, "idle_samples": self.idle_samples,
                "attributed_fraction": self.attributed_fraction,
                "kernels": dict(top.most_common())}

    def summary(self, top: int = 10) -> str:
        """Human-readable top-kernels table (telemetry_summary section)."""
        rows = [f"sampling profile ({self.interval_s * 1e3:.3g} ms tick, "
                f"{self.n_ticks} ticks):"]
        busy = self.busy_samples
        if not self.n_samples:
            rows.append("  (no samples)")
            return "\n".join(rows)
        rows.append(f"  busy/idle samples: {busy}/{self.idle_samples}"
                    f"  ({busy / self.n_samples:.1%} busy)")
        counts = Counter(self.kernel_counts())
        for name, cnt in counts.most_common(top):
            share = cnt / busy if busy else 0.0
            rows.append(f"  {name:<18s}: {cnt:6d} samples  ({share:.1%})")
        return "\n".join(rows)
