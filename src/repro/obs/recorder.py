"""Recorder protocol and implementations of the telemetry subsystem.

Two recorders implement the same surface:

* :data:`NULL_RECORDER` — a shared, stateless no-op.  Every instrumented
  site guards its metric computation behind ``recorder.enabled``, so with
  telemetry disabled (the default) the hot path pays one attribute read
  and a predictable branch — no allocation, no locking, no timestamping.
* :class:`Collector` — the structured sink used when
  ``DCOptions(telemetry=Collector())`` is passed.  It captures four kinds
  of data, all under one stable, documented naming schema (see
  ``docs/OBSERVABILITY.md``):

  - **counters** (monotonic sums): ``add(name, value)``;
  - **histograms** (raw observations): ``observe(name, value)`` /
    ``observe_many``;
  - **high-water gauges**: ``gauge_max(name, value)``;
  - **timeseries samples** (Perfetto counter tracks): ``sample(name,
    value, t=..., track=...)`` / ``bulk_samples``;

  plus hierarchical wall-clock **spans** (``with collector.span("solve")``)
  with thread-local nesting — the solve → build/instantiate → execute →
  finalize skeleton that frames the flat per-task
  :class:`~repro.runtime.trace.TraceEvent` stream.

All mutation is lock-protected, so worker threads may record directly;
the thread scheduler nevertheless batches per-worker counters locally
and merges once per run to keep even the *enabled* path cheap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from .live import Digest

__all__ = ["Recorder", "NullRecorder", "NULL_RECORDER", "Collector",
           "SpanRecord"]

#: Histogram names streamed into constant-memory :class:`Digest` sketches
#: instead of retain-all value lists.  These are the unbounded-cardinality
#: streams of a long-lived session (one sample per task/merge/root/solve);
#: everything else (e.g. per-merge Givens chain lengths within one solve)
#: stays exact.
_DIGEST_HISTS = ("scheduler.queue_depth", "merge.deflation_ratio",
                 "secular.iterations", "solve.latency_s")


@dataclass
class SpanRecord:
    """One closed span: a named wall-clock interval with nesting."""

    sid: int
    parent: int                 # parent span id, -1 at the root
    name: str
    t0: float                   # seconds since the collector epoch
    t1: float
    thread: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class _NullSpan:
    """Reusable no-op context manager (no allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Telemetry disabled: every operation is a no-op.

    Shared as the module-level :data:`NULL_RECORDER` singleton so
    instrumented code can hold a recorder unconditionally and branch on
    the class attribute ``enabled`` instead of testing for ``None``.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def add(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def sample(self, name: str, value: float, t: Optional[float] = None,
               track: int = 0) -> None:
        pass

    def bulk_samples(self, name: str, track: int,
                     pairs: Iterable[tuple[float, float]]) -> None:
        pass


NULL_RECORDER = NullRecorder()


class Recorder(Protocol):
    """Structural type of a telemetry sink (``DCOptions(telemetry=...)``).

    Anything honouring this surface works; :class:`NullRecorder` and
    :class:`Collector` are the reference implementations.
    """

    enabled: bool

    def span(self, name: str, **attrs): ...
    def event(self, name: str, **attrs) -> None: ...
    def add(self, name: str, value: float = 1.0) -> None: ...
    def observe(self, name: str, value: float) -> None: ...
    def observe_many(self, name: str, values: Iterable[float]) -> None: ...
    def gauge_max(self, name: str, value: float) -> None: ...
    def sample(self, name: str, value: float, t: Optional[float] = None,
               track: int = 0) -> None: ...
    def bulk_samples(self, name: str, track: int,
                     pairs: Iterable[tuple[float, float]]) -> None: ...


class _SpanCtx:
    """Context manager returned by :meth:`Collector.span`."""

    __slots__ = ("_col", "_name", "_attrs", "_sid")

    def __init__(self, col: "Collector", name: str, attrs: dict):
        self._col = col
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanCtx":
        self._sid = self._col.begin_span(self._name, **self._attrs)
        return self

    def __exit__(self, *exc) -> bool:
        self._col.end_span()
        return False


class Collector:
    """Structured telemetry sink (spans, counters, histograms, samples).

    Timestamps are seconds relative to the collector's construction
    (``perf_counter`` based); :attr:`t0_abs` keeps the absolute origin so
    exporters can align span time with scheduler-trace time.
    """

    enabled = True

    #: Retention cap per (name, track) timeseries; a long-lived session
    #: scraping queue depths must not grow without bound.
    SERIES_MAXLEN = 65536

    def __init__(self) -> None:
        self.t0_abs = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_sid = 0
        self.spans: list[SpanRecord] = []
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.hists: dict[str, list[float]] = {}
        #: Digest-backed histograms (see :data:`_DIGEST_HISTS`).
        self.digests: dict[str, Digest] = {}
        self.gauges: dict[str, float] = {}
        #: (name, track) -> recent (t, value) samples (counter tracks),
        #: bounded at :data:`SERIES_MAXLEN` each.
        self.series: dict[tuple[str, int], deque] = {}

    def now(self) -> float:
        """Seconds since the collector epoch."""
        return time.perf_counter() - self.t0_abs

    # -- spans -------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _SpanCtx:
        return _SpanCtx(self, name, attrs)

    def begin_span(self, name: str, **attrs) -> int:
        stack = self._stack()
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
        parent = stack[-1][0] if stack else -1
        stack.append((sid, parent, name, self.now(), attrs))
        return sid

    def end_span(self) -> Optional[SpanRecord]:
        stack = self._stack()
        if not stack:
            return None
        sid, parent, name, t0, attrs = stack.pop()
        rec = SpanRecord(sid, parent, name, t0, self.now(),
                         threading.current_thread().name, attrs)
        with self._lock:
            self.spans.append(rec)
        return rec

    # -- point events ------------------------------------------------------
    def event(self, name: str, **attrs) -> None:
        with self._lock:
            self.events.append({"name": name, "t": self.now(), **attrs})

    # -- counters / histograms / gauges ------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            if name in _DIGEST_HISTS:
                d = self.digests.get(name)
                if d is None:
                    d = self.digests[name] = Digest()
                d.add(float(value))
            else:
                self.hists.setdefault(name, []).append(float(value))

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        vals = [float(v) for v in values]
        if not vals:
            return
        with self._lock:
            if name in _DIGEST_HISTS:
                d = self.digests.get(name)
                if d is None:
                    d = self.digests[name] = Digest()
                d.add_many(vals)
            else:
                self.hists.setdefault(name, []).extend(vals)

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = float(value)

    # -- timeseries (counter tracks) ---------------------------------------
    def sample(self, name: str, value: float, t: Optional[float] = None,
               track: int = 0) -> None:
        t = self.now() if t is None else t
        with self._lock:
            ring = self.series.get((name, track))
            if ring is None:
                ring = self.series[(name, track)] = \
                    deque(maxlen=self.SERIES_MAXLEN)
            ring.append((t, float(value)))

    def bulk_samples(self, name: str, track: int,
                     pairs: Iterable[tuple[float, float]]) -> None:
        pairs = list(pairs)
        if not pairs:
            return
        with self._lock:
            ring = self.series.get((name, track))
            if ring is None:
                ring = self.series[(name, track)] = \
                    deque(maxlen=self.SERIES_MAXLEN)
            ring.extend(pairs)

    # -- reading -----------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def hist_stats(self, name: str) -> Optional[dict]:
        """count/min/max/mean/p50/p90/p99 of one histogram (None if
        empty).  Digest-backed histograms (:data:`_DIGEST_HISTS`) report
        sketched quantiles; counts/sums/extremes are always exact."""
        with self._lock:
            d = self.digests.get(name)
            if d is not None:
                return d.stats()
            vals = self.hists.get(name)
            if not vals:
                return None
            s = sorted(vals)
        n = len(s)
        return {
            "count": n,
            "min": s[0],
            "max": s[-1],
            "mean": sum(s) / n,
            "p50": s[(n - 1) // 2],
            "p90": s[min(n - 1, (9 * n) // 10)],
            "p99": s[min(n - 1, (99 * n) // 100)],
            "sum": sum(s),
        }

    def hist_names(self) -> list[str]:
        """All histogram names (exact lists and digests), sorted."""
        with self._lock:
            return sorted(set(self.hists) | set(self.digests))

    def span_tree(self) -> list[SpanRecord]:
        """All closed spans, parents before children (by start time)."""
        return sorted(self.spans, key=lambda s: (s.t0, s.sid))
