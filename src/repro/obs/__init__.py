"""Observability subsystem: spans, counters, metrics, trace export.

Zero-overhead when disabled: the solver, schedulers and kernels all hold
a :class:`~repro.obs.recorder.NullRecorder` by default and guard every
metric computation behind ``recorder.enabled``.  Passing
``DCOptions(telemetry=Collector())`` switches the same call sites to the
structured :class:`~repro.obs.recorder.Collector`, which captures

* hierarchical wall-clock **spans** (solve → graph build/instantiate →
  execute → finalize),
* **scheduler counters** (steal attempts/successes, park cycles and
  time, per-worker queue-depth samples, dependency-resolution time),
* **graph-cache counters** (template hits/misses, build/instantiate
  time),
* **numeric-health metrics** (per-merge deflation ratios by type, LAED4
  iteration histograms, Givens chain lengths, workspace high water),

and exports them as a JSONL event log, an enriched Perfetto/Chrome
trace, or a Prometheus text snapshot (:mod:`repro.obs.export`).  The
counter naming schema is documented in ``docs/OBSERVABILITY.md``.

On top of the per-solve Collector sits the always-on service layer
(:mod:`repro.obs.live`): a bounded :class:`FlightRecorder` ring on every
session with automatic post-mortem bundles, constant-memory quantile
:class:`Digest` sketches, per-session :class:`SessionMetrics`, the
:class:`MetricsServer` behind ``SolverSession(serve_port=...)`` /
``repro-eig serve``, and the opt-in task-attributed
:class:`~repro.obs.profile.SamplingProfiler`.
"""

from .live import (Digest, FlightRecorder, MetricsServer, SessionMetrics,
                   debug_state, healthz_payload, live_metrics_text,
                   write_postmortem)
from .profile import SamplingProfiler
from .recorder import (Collector, NullRecorder, NULL_RECORDER, Recorder,
                       SpanRecord)
from .export import (chrome_trace, merge_spans_from_trace, prom_label_value,
                     prom_name, prometheus_text, telemetry_block,
                     telemetry_summary, write_jsonl)

__all__ = [
    "Collector", "NullRecorder", "NULL_RECORDER", "Recorder", "SpanRecord",
    "chrome_trace", "merge_spans_from_trace", "prometheus_text",
    "telemetry_block", "telemetry_summary", "write_jsonl",
    "prom_name", "prom_label_value",
    "Digest", "FlightRecorder", "SessionMetrics", "MetricsServer",
    "SamplingProfiler", "write_postmortem", "live_metrics_text",
    "healthz_payload", "debug_state",
]
