"""Telemetry exporters: JSON-lines, Perfetto/Chrome trace, Prometheus.

Three machine-readable views plus a human summary over one solve's
telemetry (:class:`~repro.obs.recorder.Collector` + the scheduler's
:class:`~repro.runtime.trace.Trace`):

``write_jsonl``
    One JSON object per line — tasks, spans, counters, histograms,
    gauges and timeseries samples — the archival event log.
``chrome_trace``
    The enriched ``chrome://tracing``/Perfetto document: worker rows
    from :meth:`Trace.to_chrome_trace` (with process/thread metadata),
    **counter tracks** (queue depth, ready depth) as ``C`` events,
    wall-clock solver spans, and merge/level spans synthesized from the
    task tags — a zoomable version of the paper's Figs. 3–4 with the
    scheduler's internals on top.
``prometheus_text``
    A Prometheus text-format snapshot of counters/gauges/histograms.
``telemetry_summary`` / ``telemetry_block``
    Human-readable report and the compact dict embedded in BENCH JSON
    (steal rate, idle fraction, cache hit rate, ...).
"""

from __future__ import annotations

import json
import re
from typing import IO, Optional

from ..runtime.trace import Trace
from .recorder import Collector

__all__ = ["write_jsonl", "chrome_trace", "prometheus_text",
           "telemetry_summary", "telemetry_block", "merge_spans_from_trace",
           "prom_name", "prom_label_value"]

#: Merge-kernel names whose events carry a ``(lo, hi)`` merge tag.
_MERGE_KERNELS = frozenset({
    "Compute_deflation", "ApplyGivens", "PermuteV", "LAED4",
    "ComputeLocalW", "ReduceW", "CopyBackDeflated", "ComputeVect",
    "UpdateVect",
})


def merge_spans_from_trace(trace: Trace) -> list[dict]:
    """Synthesize merge and tree-level spans from the flat task events.

    Every merge task is tagged with its node's ``(lo, hi)`` span, so the
    hierarchy solve → level → merge → task can be rebuilt post hoc with
    zero runtime cost: a merge span covers [first task start, last task
    end]; its *level* is the nesting depth of ``(lo, hi)`` containment
    (the root merge is level 0, leaf-pair merges are the deepest).
    """
    merges: dict[tuple[int, int], list[float]] = {}
    for e in trace.events:
        tag = e.tag
        if (e.name in _MERGE_KERNELS and isinstance(tag, tuple)
                and len(tag) == 2):
            box = merges.get(tag)
            if box is None:
                merges[tag] = [e.t_start, e.t_end]
            else:
                box[0] = min(box[0], e.t_start)
                box[1] = max(box[1], e.t_end)
    spans = []
    keys = sorted(merges, key=lambda s: (s[1] - s[0], s[0]))
    for lo, hi in keys:
        level = sum(1 for lo2, hi2 in keys
                    if lo2 <= lo and hi <= hi2 and (lo2, hi2) != (lo, hi))
        t0, t1 = merges[(lo, hi)]
        spans.append({"name": f"merge[{lo}:{hi}]", "lo": lo, "hi": hi,
                      "level": level, "t0": t0, "t1": t1})
    return spans


def _span_alignment(collector: Optional[Collector]) -> tuple[float, float]:
    """(span_origin, event_shift): offsets putting spans and trace events
    on one axis, with the ``execute`` span aligned to trace time zero."""
    if collector is None or not collector.spans:
        return 0.0, 0.0
    origin = min(s.t0 for s in collector.spans)
    exec_t0 = next((s.t0 for s in collector.span_tree()
                    if s.name == "execute"), origin)
    return origin, exec_t0 - origin


def chrome_trace(trace: Trace,
                 collector: Optional[Collector] = None) -> dict:
    """Full Chrome/Perfetto trace document (``{"traceEvents": [...]}``).

    pid 0 carries the worker rows and counter tracks, pid 1 the solver's
    wall-clock spans, pid 2 the synthesized merge spans (one thread row
    per tree level).  With a collector, task/counter timestamps are
    shifted so that execution starts where the ``execute`` span does.
    """
    origin, shift = _span_alignment(collector)
    events = trace.to_chrome_trace(ts_shift=shift)
    events.append({"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
                   "args": {"name": "merge hierarchy"}})
    for s in merge_spans_from_trace(trace):
        events.append({
            "name": s["name"], "cat": "merge", "ph": "X",
            "ts": (s["t0"] + shift) * 1e6,
            "dur": max((s["t1"] - s["t0"]) * 1e6, 0.01),
            "pid": 2, "tid": s["level"],
            "args": {"lo": s["lo"], "hi": s["hi"]},
        })
        events.append({"ph": "M", "pid": 2, "tid": s["level"],
                       "name": "thread_name",
                       "args": {"name": f"level {s['level']}"}})
    if collector is not None:
        for (name, track), pairs in sorted(collector.series.items()):
            for t, v in pairs:
                events.append({
                    "name": name, "cat": "counter", "ph": "C",
                    "ts": (t + shift) * 1e6, "pid": 0,
                    "args": {f"track{track}": v},
                })
        events.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                       "args": {"name": "solver spans"}})
        for s in collector.span_tree():
            events.append({
                "name": s.name, "cat": "span", "ph": "X",
                "ts": (s.t0 - origin) * 1e6,
                "dur": max((s.t1 - s.t0) * 1e6, 0.01),
                "pid": 1, "tid": 0,
                "args": {k: repr(v) for k, v in s.attrs.items()},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_jsonl(fh: IO[str], collector: Optional[Collector],
                trace: Optional[Trace] = None) -> int:
    """Write the JSON-lines event log; returns the number of lines.

    Line types (field ``type``): ``meta``, ``task``, ``idle``, ``span``,
    ``counter``, ``gauge``, ``hist``, ``sample``, ``event``.
    """
    n = 0

    def emit(obj: dict) -> None:
        nonlocal n
        fh.write(json.dumps(obj, sort_keys=True) + "\n")
        n += 1

    meta: dict = {"type": "meta", "version": 1}
    if trace is not None:
        meta["n_workers"] = trace.n_workers
        meta["makespan_s"] = trace.makespan
        meta["idle_fraction"] = trace.idle_fraction
    emit(meta)
    if trace is not None:
        for e in trace.events:
            emit({"type": "task", "name": e.name, "worker": e.worker,
                  "t0": e.t_start, "t1": e.t_end, "uid": e.task_uid,
                  "tag": repr(e.tag)})
        for w, a, b in trace.idle_intervals:
            emit({"type": "idle", "worker": w, "t0": a, "t1": b})
    if collector is not None:
        for s in collector.span_tree():
            emit({"type": "span", "name": s.name, "sid": s.sid,
                  "parent": s.parent, "t0": s.t0, "t1": s.t1,
                  "thread": s.thread,
                  "attrs": {k: repr(v) for k, v in s.attrs.items()}})
        for name, value in sorted(collector.counters.items()):
            emit({"type": "counter", "name": name, "value": value})
        for name, value in sorted(collector.gauges.items()):
            emit({"type": "gauge", "name": name, "value": value})
        for name in collector.hist_names():
            line = {"type": "hist", "name": name,
                    **(collector.hist_stats(name) or {})}
            if name in collector.digests:
                line["digest"] = True
            emit(line)
        for (name, track), pairs in sorted(collector.series.items()):
            for t, v in pairs:
                emit({"type": "sample", "name": name, "track": track,
                      "t": t, "value": v})
        for ev in collector.events:
            emit({"type": "event", **ev})
    return n


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """Sanitize a metric name per the Prometheus exposition format:
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Every illegal character (``.``, ``-``,
    spaces, quotes, ...) maps to ``_``; a leading digit gets the same
    treatment via the ``repro_`` prefix."""
    return "repro_" + _PROM_BAD_CHARS.sub("_", name)


def prom_label_value(value: str) -> str:
    r"""Escape a label value: ``\`` → ``\\``, ``"`` → ``\"``, newline →
    ``\n`` (the three escapes the exposition format defines)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def prometheus_text(collector: Collector,
                    trace: Optional[Trace] = None) -> str:
    """Prometheus text-format snapshot of the collected metrics."""
    lines: list[str] = []
    for name, value in sorted(collector.counters.items()):
        pn = prom_name(name) + "_total"
        lines += [f"# TYPE {pn} counter", f"{pn} {value:.17g}"]
    for name, value in sorted(collector.gauges.items()):
        pn = prom_name(name)
        lines += [f"# TYPE {pn} gauge", f"{pn} {value:.17g}"]
    for name in collector.hist_names():
        st = collector.hist_stats(name)
        pn = prom_name(name)
        lines += [f"# TYPE {pn} summary",
                  f"{pn}_count {st['count']}",
                  f"{pn}_sum {st['sum']:.17g}",
                  f'{pn}{{quantile="0.5"}} {st["p50"]:.17g}',
                  f'{pn}{{quantile="0.9"}} {st["p90"]:.17g}',
                  f'{pn}{{quantile="0.99"}} {st["p99"]:.17g}']
    if trace is not None:
        lines += ["# TYPE repro_trace_makespan_seconds gauge",
                  f"repro_trace_makespan_seconds {trace.makespan:.17g}",
                  "# TYPE repro_trace_idle_fraction gauge",
                  f"repro_trace_idle_fraction {trace.idle_fraction:.17g}"]
    return "\n".join(lines) + "\n"


def _rate(hits: float, total: float) -> Optional[float]:
    return hits / total if total else None


def telemetry_block(collector: Optional[Collector],
                    trace: Optional[Trace] = None) -> dict:
    """Compact telemetry dict for BENCH JSON / regression gating."""
    block: dict = {}
    if trace is not None:
        block["makespan_s"] = trace.makespan
        block["idle_fraction"] = trace.idle_fraction
        block["n_tasks"] = len(trace.events)
    if collector is None:
        return block
    c = collector.counters
    attempts = c.get("scheduler.steal.attempts", 0.0)
    block["steal_attempts"] = attempts
    block["steal_successes"] = c.get("scheduler.steal.successes", 0.0)
    block["steal_success_rate"] = _rate(block["steal_successes"], attempts)
    block["parks"] = c.get("scheduler.park.count", 0.0)
    block["park_time_s"] = c.get("scheduler.park.time_s", 0.0)
    block["dep_resolve_s"] = c.get("scheduler.dep_resolve.time_s", 0.0)
    lookups = (c.get("graph_cache.hits", 0.0)
               + c.get("graph_cache.misses", 0.0))
    block["cache_hits"] = c.get("graph_cache.hits", 0.0)
    block["cache_misses"] = c.get("graph_cache.misses", 0.0)
    block["cache_hit_rate"] = _rate(block["cache_hits"], lookups)
    block["cache_evictions"] = c.get("graph_cache.evictions", 0.0)
    ws_lookups = (c.get("workspace_pool.hits", 0.0)
                  + c.get("workspace_pool.misses", 0.0))
    if ws_lookups:
        block["workspace_pool_hits"] = c.get("workspace_pool.hits", 0.0)
        block["workspace_pool_misses"] = c.get("workspace_pool.misses", 0.0)
        block["workspace_pool_hit_rate"] = _rate(
            block["workspace_pool_hits"], ws_lookups)
    for hist in ("merge.deflation_ratio", "secular.iterations"):
        st = collector.hist_stats(hist)
        if st is not None:
            block[hist.replace(".", "_")] = {
                k: st[k] for k in ("count", "mean", "max")}
    hw = collector.gauges.get("workspace.high_water_bytes")
    if hw is not None:
        block["workspace_high_water_bytes"] = hw
    return block


def _fmt_stats(st: Optional[dict]) -> str:
    if not st:
        return "(none)"
    return (f"n={st['count']}  mean={st['mean']:.3g}  "
            f"p50={st['p50']:.3g}  p90={st['p90']:.3g}  max={st['max']:.3g}")


def telemetry_summary(collector: Optional[Collector],
                      trace: Optional[Trace] = None,
                      profile=None) -> str:
    """Human-readable report: scheduler, cache and numeric health.

    ``profile`` optionally appends a
    :class:`~repro.obs.profile.SamplingProfiler` section (top kernels by
    sample count and the attributed fraction).
    """
    rows: list[str] = []
    if trace is not None:
        rows.append(trace.summary())
    if collector is None:
        if profile is not None:
            rows.append(profile.summary())
        return "\n".join(rows)
    c = collector.counters
    attempts = c.get("scheduler.steal.attempts", 0.0)
    hits = c.get("scheduler.steal.successes", 0.0)
    rows.append("scheduler:")
    rows.append(f"  steal attempts   : {attempts:.0f}")
    rows.append(f"  steal successes  : {hits:.0f}"
                + (f"  ({hits / attempts:.1%} success rate)"
                   if attempts else ""))
    rows.append(f"  park cycles      : {c.get('scheduler.park.count', 0):.0f}"
                f"  ({c.get('scheduler.park.time_s', 0):.4g} s parked)")
    rows.append("  dep-resolve time : "
                f"{c.get('scheduler.dep_resolve.time_s', 0):.4g} s")
    qd = collector.hist_stats("scheduler.queue_depth")
    if qd:
        rows.append(f"  queue depth      : {_fmt_stats(qd)}")
    lookups = c.get("graph_cache.hits", 0.0) + c.get("graph_cache.misses", 0.0)
    if lookups:
        rows.append("graph cache:")
        rows.append(f"  hits/misses      : {c.get('graph_cache.hits', 0):.0f}"
                    f"/{c.get('graph_cache.misses', 0):.0f}")
        ev = c.get("graph_cache.evictions", 0.0)
        if ev:
            rows.append(f"  evictions        : {ev:.0f}")
    ws_lookups = (c.get("workspace_pool.hits", 0.0)
                  + c.get("workspace_pool.misses", 0.0))
    if ws_lookups:
        rows.append("workspace pool:")
        rows.append(
            f"  hits/misses      : {c.get('workspace_pool.hits', 0):.0f}"
            f"/{c.get('workspace_pool.misses', 0):.0f}")
    rows.append("numeric health:")
    rows.append("  deflation ratio  : "
                + _fmt_stats(collector.hist_stats("merge.deflation_ratio")))
    rows.append("  LAED4 iterations : "
                + _fmt_stats(collector.hist_stats("secular.iterations")))
    rows.append("  givens chain len : "
                + _fmt_stats(collector.hist_stats("merge.givens_chain_len")))
    hw = collector.gauges.get("workspace.high_water_bytes")
    if hw is not None:
        rows.append(f"  workspace peak   : {hw / 1e6:.2f} MB")
    durs: dict[str, float] = {}
    for s in collector.span_tree():
        durs[s.name] = durs.get(s.name, 0.0) + s.duration
    if durs:
        rows.append("solve phases (wall):")
        for name, d in sorted(durs.items(), key=lambda kv: -kv[1]):
            rows.append(f"  {name:<16s} : {d:.6g} s")
    if profile is not None:
        rows.append(profile.summary())
    return "\n".join(rows)
