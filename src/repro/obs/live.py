"""Always-on service observability: flight recorder, streaming digests,
post-mortem bundles, and the live ``/metrics`` endpoint.

The :mod:`repro.obs.recorder` Collector is an *attach-then-dump* tool: a
caller opts in per solve and reads the data afterwards.  A long-lived
:class:`~repro.core.session.SolverSession` needs the complement — state
that is always on, bounded, and inspectable while the service runs:

:class:`FlightRecorder`
    A fixed-size, lock-striped ring buffer of recent runtime events
    (task completions, failures, span closes, session lifecycle).  The
    hot-path cost is one striped-lock acquire plus a bounded-deque
    append per event; memory is capped by construction.  When a solve
    fails (or degrades to the STEQR fallback), the session dumps the
    ring — plus the solve's options, fault spec, calibration key and
    pool/workspace stats — as a JSONL *post-mortem bundle* via
    :func:`write_postmortem`.

:class:`Digest`
    A constant-memory quantile sketch (merging t-digest, pure stdlib)
    replacing retain-all percentile lists: ``add`` buffers values and
    periodically compresses them into at most ~``delta`` centroids, so
    p50/p90/p99 of millions of latency samples cost a few KiB.  Digests
    merge exactly by centroid concatenation + recompression, which is
    how per-session metrics aggregate across sessions.

:class:`SessionMetrics`
    The per-session digest set (per-solve latency, deflation ratio,
    secular iterations per root, queue depth) plus monotonic service
    counters (solves, failures, fallbacks) and the last-solve clock.

:class:`MetricsServer`
    A stdlib ``http.server`` thread serving ``/metrics`` (Prometheus
    text), ``/healthz`` (pool liveness), ``/debug/state`` (JSON
    snapshot) and a debug ``/solve`` trigger, started with
    ``SolverSession(serve_port=...)`` or ``repro-eig serve``.

Everything here preserves the bitwise-identity contract: none of it
touches solver numerics, and everything beyond the flight recorder's
bounded append is opt-in.
"""

from __future__ import annotations

import bisect
import itertools
import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import fields as dataclass_fields
from typing import Iterable, Optional

__all__ = ["Digest", "FlightRecorder", "FlightEvent", "SessionMetrics",
           "MetricsServer", "write_postmortem", "live_metrics_text",
           "healthz_payload", "debug_state"]


# ---------------------------------------------------------------------------
# Streaming quantile digest
# ---------------------------------------------------------------------------


class Digest:
    """Constant-memory quantile sketch (merging t-digest).

    Values are buffered and periodically *compressed* into weighted
    centroids whose capacity follows the t-digest ``k1`` scale function
    ``k(q) = delta/(2*pi) * asin(2q - 1)`` — tight (weight ~1) at the
    distribution tails, wide in the middle.  This bounds memory at
    roughly ``delta/2 + buffer_size`` floats while keeping tail
    quantiles (p99) accurate to well under 1% relative error on smooth
    latency-like streams (the documented bound is on *rank* error:
    at most ~``2/delta`` of the total weight per centroid near the
    median, shrinking to single samples at the extremes; value-space
    error at a density cliff between modes can be larger).

    ``count``/``sum``/``min``/``max`` (hence ``mean``) are exact.
    Two digests merge exactly by feeding one's centroids into the
    other's buffer and recompressing (:meth:`merge`).

    Not thread-safe: callers synchronize externally (the collector and
    session metrics hold their own locks).
    """

    __slots__ = ("delta", "buffer_size", "_buf", "_means", "_weights",
                 "count", "sum", "min", "max")

    def __init__(self, delta: float = 200.0, buffer_size: int = 512):
        self.delta = float(delta)
        self.buffer_size = int(buffer_size)
        self._buf: list[tuple[float, float]] = []
        self._means: list[float] = []
        self._weights: list[float] = []
        self.count = 0.0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float, w: float = 1.0) -> None:
        x = float(x)
        self._buf.append((x, w))
        self.count += w
        self.sum += x * w
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if len(self._buf) >= self.buffer_size:
            self._compress()

    def add_many(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    @property
    def n_centroids(self) -> int:
        return len(self._means) + len(self._buf)

    def _qlim_right(self, q0: float) -> float:
        """Right edge (in quantile space) of the centroid starting at
        ``q0``: one unit of the k1 scale function."""
        q0 = min(max(q0, 0.0), 1.0)
        k = self.delta / (2.0 * math.pi) * math.asin(2.0 * q0 - 1.0)
        arg = (k + 1.0) * 2.0 * math.pi / self.delta
        if arg >= math.pi / 2.0:
            return 1.0
        return (math.sin(arg) + 1.0) / 2.0

    def _compress(self) -> None:
        if not self._buf:
            return
        pairs = sorted(itertools.chain(zip(self._means, self._weights),
                                       self._buf))
        total = sum(w for _, w in pairs)
        means: list[float] = []
        weights: list[float] = []
        cur_m, cur_w = pairs[0]
        q0 = 0.0
        qlim = self._qlim_right(0.0)
        for m, w in pairs[1:]:
            if q0 + (cur_w + w) / total <= qlim:
                cur_w += w
                cur_m += (m - cur_m) * (w / cur_w)
            else:
                means.append(cur_m)
                weights.append(cur_w)
                q0 += cur_w / total
                qlim = self._qlim_right(q0)
                cur_m, cur_w = m, w
        means.append(cur_m)
        weights.append(cur_w)
        self._means, self._weights = means, weights
        self._buf = []

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (NaN while empty)."""
        self._compress()
        means = self._means
        if not means:
            return math.nan
        if len(means) == 1:
            return means[0]
        t = min(max(q, 0.0), 1.0) * self.count
        mids: list[float] = []
        c = 0.0
        for w in self._weights:
            mids.append(c + w / 2.0)
            c += w
        if t <= mids[0]:
            f = t / mids[0] if mids[0] else 1.0
            return self.min + f * (means[0] - self.min)
        if t >= mids[-1]:
            span = self.count - mids[-1]
            f = (t - mids[-1]) / span if span else 1.0
            return means[-1] + f * (self.max - means[-1])
        i = bisect.bisect_left(mids, t)
        f = (t - mids[i - 1]) / (mids[i] - mids[i - 1])
        return means[i - 1] + f * (means[i] - means[i - 1])

    def merge(self, other: "Digest") -> "Digest":
        """Fold ``other`` into this digest (exact centroid merge)."""
        other._compress()
        self._buf.extend(zip(other._means, other._weights))
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._compress()
        return self

    @classmethod
    def merged(cls, digests: Iterable["Digest"]) -> "Digest":
        out = cls()
        for d in digests:
            out.merge(d)
        return out

    def stats(self) -> Optional[dict]:
        """hist_stats-compatible summary (None while empty)."""
        if not self.count:
            return None
        return {"count": int(self.count), "min": self.min, "max": self.max,
                "mean": self.mean, "p50": self.quantile(0.50),
                "p90": self.quantile(0.90), "p99": self.quantile(0.99),
                "sum": self.sum}


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

#: Field order of one flight-recorder entry (kept as a plain tuple on the
#: hot path; expanded into dicts only at snapshot/dump time).
FlightEvent = tuple  # (seq, kind, name, worker, task_seq, t0, t1, detail)


class FlightRecorder:
    """Fixed-size, lock-striped ring buffer of recent runtime events.

    Always on: every :class:`~repro.core.session.SolverSession` owns one
    by default, and the schedulers append one entry per executed task
    (plus failures and lifecycle events).  The append path is a global
    sequence-counter bump (GIL-atomic), one striped-lock acquire chosen
    by ``seq % n_stripes`` (round-robin: concurrent recorders almost
    always hit different stripes, and the per-stripe rings age out
    uniformly so retention stays close to the full capacity), and a
    ``deque(maxlen=...)`` append — bounded memory and O(1) time, cheap
    enough for the default solve path.

    Timestamps are raw ``perf_counter`` values; :meth:`snapshot`
    re-bases them onto the recorder's epoch so dumps are human-scaled.

    Because the per-stripe rings evict independently, a raw union of the
    stripes after wraparound would contain interleaved holes (stripe
    ``i`` only ever holds sequence numbers ``≡ i (mod n_stripes)``, and
    each drops its own oldest).  :meth:`snapshot` therefore trims the
    sorted replay to the contiguous suffix: everything at or above the
    newest per-stripe eviction horizon.  :meth:`occupancy` reports how
    much was dropped by eviction and how much the trim removed.
    """

    def __init__(self, capacity: int = 4096, n_stripes: int = 8):
        n_stripes = max(1, min(n_stripes, capacity))
        per = max(1, capacity // n_stripes)
        self.capacity = per * n_stripes
        self._per_stripe = per
        self._stripes = [(threading.Lock(), deque(maxlen=per))
                         for _ in range(n_stripes)]
        self._n_stripes = n_stripes
        self._seq_lock = threading.Lock()
        self._next_seq = 0
        self.t0_abs = time.perf_counter()
        self.t0_wall = time.time()

    def _bump(self) -> int:
        with self._seq_lock:
            seq = self._next_seq
            self._next_seq += 1
        return seq

    # -- recording (hot path) -------------------------------------------
    def record(self, kind: str, name: str, worker: int = -1,
               task_seq: int = -1, t0: float = 0.0, t1: float = 0.0,
               detail: str = "") -> None:
        seq = self._bump()
        lock, ring = self._stripes[seq % self._n_stripes]
        with lock:
            ring.append((seq, kind, name, worker, task_seq, t0, t1, detail))

    def record_task(self, task, worker: int, t0: float, t1: float) -> None:
        """One executed task (absolute perf_counter start/end)."""
        seq = self._bump()
        lock, ring = self._stripes[seq % self._n_stripes]
        with lock:
            ring.append((seq, "task", task.name, worker, task.seq, t0, t1,
                         "" if task.tag is None else str(task.tag)))

    # -- reading ---------------------------------------------------------
    def _horizon(self, raw: list[FlightEvent]) -> int:
        """First sequence number of the contiguous replay suffix.

        A stripe that has evicted proves every older member of its
        residue class is gone; the newest such eviction bounds the
        window in which *other* stripes may still hold stale survivors.
        Treating a merely-full stripe as evicting is harmless: its
        horizon lies at or below the true global minimum.
        """
        start = 0
        per, n = self._per_stripe, self._n_stripes
        oldest: dict[int, int] = {}
        counts: dict[int, int] = {}
        for seq, *_ in raw:
            s = seq % n
            counts[s] = counts.get(s, 0) + 1
            if s not in oldest or seq < oldest[s]:
                oldest[s] = seq
        for s, cnt in counts.items():
            if cnt >= per:
                start = max(start, oldest[s] - n + 1)
        return start

    def snapshot(self, last: Optional[int] = None) -> list[dict]:
        """The retained events, oldest first, as JSON-ready dicts.

        Only the contiguous suffix is replayed: events older than the
        newest per-stripe eviction horizon are trimmed so the replay
        never mixes pre- and post-wraparound epochs.
        """
        raw: list[FlightEvent] = []
        for lock, ring in self._stripes:
            with lock:
                raw.extend(ring)
        raw.sort()
        start = self._horizon(raw)
        if start:
            raw = [ev for ev in raw if ev[0] >= start]
        if last is not None:
            raw = raw[-last:]
        t0 = self.t0_abs
        out = []
        for seq, kind, name, worker, task_seq, a, b, detail in raw:
            ev = {"seq": seq, "kind": kind, "name": name}
            if worker >= 0:
                ev["worker"] = worker
            if task_seq >= 0:
                ev["task_seq"] = task_seq
            if a or b:
                ev["t0"] = a - t0
                ev["t1"] = b - t0
            if detail:
                ev["detail"] = detail
            out.append(ev)
        return out

    def occupancy(self) -> dict:
        """Ring occupancy: capacity, retained, replayable, drop counts.

        ``recorded`` is the exact event count (explicit locked counter);
        ``dropped`` is what the rings evicted, ``trimmed`` what the
        contiguity horizon removes on top, and ``replayable`` what
        :meth:`snapshot` actually returns.
        """
        raw: list[FlightEvent] = []
        for lock, ring in self._stripes:
            with lock:
                raw.extend(ring)
        size = len(raw)
        start = self._horizon(raw)
        replayable = sum(1 for ev in raw if ev[0] >= start) if start \
            else size
        with self._seq_lock:
            total = self._next_seq
        return {"capacity": self.capacity, "size": size,
                "recorded": total, "dropped": max(0, total - size),
                "trimmed": size - replayable, "replayable": replayable}


# ---------------------------------------------------------------------------
# Session metrics (streaming digests + service counters)
# ---------------------------------------------------------------------------


class SessionMetrics:
    """Per-session streaming metrics: digests + monotonic counters.

    Fed by the session off the hot path (once per completed solve, from
    the already-computed per-merge stats), so it is always on.  Digest
    semantics:

    ``latency_s``
        Submit → completion wall seconds, one sample per solve.
    ``deflation_ratio``
        One sample per merge node (``1 - k/n``).
    ``secular_iterations``
        Mean LAED4 iterations per secular root, one sample per
        non-fully-deflated merge.
    ``queue_depth``
        Ready-queue depth samples (summed over workers), fed by the
        sampling profiler / metrics server when one is attached.

    :meth:`merge` aggregates across sessions (digests merge exactly).
    """

    DIGESTS = ("latency_s", "deflation_ratio", "secular_iterations",
               "queue_depth")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latency_s = Digest()
        self.deflation_ratio = Digest()
        self.secular_iterations = Digest()
        self.queue_depth = Digest()
        self.solves = 0
        self.failures = 0
        self.fallbacks = 0
        self.tasks = 0
        #: Solve counts split by compute mode ("V" / "N").
        self.solves_by_jobz: dict[str, int] = {}
        self.last_done_wall: Optional[float] = None
        self._last_done_mono: Optional[float] = None

    def note_solve(self, latency_s: Optional[float], merge_stats=(),
                   failed: bool = False, n_tasks: int = 0,
                   jobz: Optional[str] = None) -> None:
        """Record one completed solve (success or failure)."""
        with self._lock:
            self.solves += 1
            self.tasks += n_tasks
            if jobz is not None:
                self.solves_by_jobz[jobz] = \
                    self.solves_by_jobz.get(jobz, 0) + 1
            if failed:
                self.failures += 1
            if latency_s is not None:
                self.latency_s.add(latency_s)
            for s in merge_stats:
                self.deflation_ratio.add(s.deflation_ratio)
                if s.k:
                    self.secular_iterations.add(s.secular_sweeps / s.k)
                if s.fallback:
                    self.fallbacks += 1
            self.last_done_wall = time.time()
            self._last_done_mono = time.perf_counter()

    def note_queue_depth(self, depth: float) -> None:
        with self._lock:
            self.queue_depth.add(depth)

    def last_solve_age_s(self) -> Optional[float]:
        if self._last_done_mono is None:
            return None
        return time.perf_counter() - self._last_done_mono

    def digest_stats(self) -> dict:
        """Name → stats dict for every non-empty digest."""
        with self._lock:
            return {name: st for name in self.DIGESTS
                    if (st := getattr(self, name).stats()) is not None}

    def to_dict(self) -> dict:
        out = {"solves": self.solves, "failures": self.failures,
               "fallbacks": self.fallbacks, "tasks": self.tasks,
               "solves_by_jobz": dict(self.solves_by_jobz),
               "last_solve_age_s": self.last_solve_age_s()}
        out["digests"] = self.digest_stats()
        return out

    def merge(self, other: "SessionMetrics") -> "SessionMetrics":
        """Fold another session's metrics into this one."""
        with self._lock, other._lock:
            for name in self.DIGESTS:
                getattr(self, name).merge(getattr(other, name))
            self.solves += other.solves
            self.failures += other.failures
            self.fallbacks += other.fallbacks
            self.tasks += other.tasks
            for mode, cnt in other.solves_by_jobz.items():
                self.solves_by_jobz[mode] = \
                    self.solves_by_jobz.get(mode, 0) + cnt
            for attr in ("last_done_wall", "_last_done_mono"):
                mine, theirs = getattr(self, attr), getattr(other, attr)
                if theirs is not None and (mine is None or theirs > mine):
                    setattr(self, attr, theirs)
        return self

    @classmethod
    def merged(cls, metrics: Iterable["SessionMetrics"]) -> "SessionMetrics":
        out = cls()
        for m in metrics:
            out.merge(m)
        return out


# ---------------------------------------------------------------------------
# Post-mortem bundles
# ---------------------------------------------------------------------------

_POSTMORTEM_SEQ = itertools.count()

#: Environment fallback for ``DCOptions.postmortem_dir`` — lets an
#: operator (or CI) turn on crash bundles without touching call sites.
POSTMORTEM_ENV = "REPRO_POSTMORTEM_DIR"


def _options_dict(options) -> Optional[dict]:
    if options is None:
        return None
    out = {}
    for f in dataclass_fields(options):
        v = getattr(options, f.name)
        if f.name == "telemetry":
            v = None if v is None else type(v).__name__
        elif f.name == "fault_injection" and v is not None:
            v = {"task_seq": v.task_seq, "kernel": v.kernel, "nth": v.nth,
                 "probability": v.probability, "seed": v.seed}
        out[f.name] = v
    return out


def write_postmortem(directory: str, *, reason: str,
                     error: Optional[BaseException] = None,
                     options=None,
                     flight: Optional[FlightRecorder] = None,
                     session_stats: Optional[dict] = None,
                     metrics: Optional[SessionMetrics] = None,
                     max_events: int = 4096) -> str:
    """Dump a post-mortem bundle as JSONL; returns the path written.

    Line 1 is the ``postmortem`` header: the failure reason and typed
    error (with task name/seq/tag/worker for a
    :class:`~repro.errors.TaskFailure` and the chained cause), the
    solve's options and fault-injector spec, the active calibration key,
    and the session's pool/workspace/cache stats and digests.  The
    remaining lines replay the flight recorder's retained events, oldest
    first.
    """
    from ..core.calibrate import get_calibration
    from ..errors import TaskFailure

    os.makedirs(directory, exist_ok=True)
    head: dict = {"type": "postmortem", "version": 1, "reason": reason,
                  "time_unix": time.time(), "pid": os.getpid()}
    if error is not None:
        head["error"] = {"type": type(error).__name__, "message": str(error)}
        if isinstance(error, TaskFailure):
            head["error"]["task"] = {
                "name": error.task_name, "seq": error.seq,
                "tag": None if error.tag is None else str(error.tag),
                "worker": error.worker,
            }
        if error.__cause__ is not None:
            head["error"]["cause"] = {
                "type": type(error.__cause__).__name__,
                "message": str(error.__cause__),
            }
    head["options"] = _options_dict(options)
    cal = get_calibration()
    head["calibration"] = {"source": cal.source, "key": list(cal.key)}
    if session_stats is not None:
        head["session"] = session_stats
    if metrics is not None:
        head["metrics"] = metrics.to_dict()
    events = flight.snapshot(last=max_events) if flight is not None else []
    if flight is not None:
        head["flight"] = flight.occupancy()
    head["n_events"] = len(events)

    fname = (f"postmortem-{int(time.time())}-{os.getpid()}"
             f"-{next(_POSTMORTEM_SEQ)}.jsonl")
    path = os.path.join(directory, fname)
    with open(path, "w") as fh:
        fh.write(json.dumps(head, sort_keys=True, default=str) + "\n")
        for ev in events:
            fh.write(json.dumps({"type": "event", **ev}, sort_keys=True)
                     + "\n")
    return path


def resolve_postmortem_dir(options) -> Optional[str]:
    """Effective bundle directory: the option, else the environment."""
    d = getattr(options, "postmortem_dir", None)
    return d if d else os.environ.get(POSTMORTEM_ENV) or None


# ---------------------------------------------------------------------------
# Live metrics endpoint
# ---------------------------------------------------------------------------


def _emit_summary(lines: list[str], pn: str, st: dict) -> None:
    from .export import prom_name
    pn = prom_name(pn)
    lines.append(f"# TYPE {pn} summary")
    for q in ("0.5", "0.9", "0.99"):
        key = "p" + str(int(float(q) * 100))
        lines.append(f'{pn}{{quantile="{q}"}} {st[key]:.17g}')
    lines.append(f"{pn}_count {st['count']}")
    lines.append(f"{pn}_sum {st['sum']:.17g}")


def live_metrics_text(session) -> str:
    """Prometheus text-format snapshot of a live session.

    Service counters and gauges come from the always-on session state
    (metrics digests, pool/workspace/cache stats, flight-recorder
    occupancy, profiler sample counts); when the session was built with
    a :class:`~repro.obs.recorder.Collector`, its snapshot is appended.
    """
    from .export import prom_label_value, prom_name, prometheus_text
    from .recorder import Collector

    lines: list[str] = []

    def emit(name: str, value, mtype: str = "gauge") -> None:
        if value is None:
            return
        pn = prom_name(name)
        lines.append(f"# TYPE {pn} {mtype}")
        lines.append(f"{pn} {float(value):.17g}")

    m = session.metrics
    emit("session.solves_total", m.solves, "counter")
    emit("session.failures_total", m.failures, "counter")
    emit("session.fallbacks_total", m.fallbacks, "counter")
    emit("session.tasks_total", m.tasks, "counter")
    by_jobz = m.to_dict()["solves_by_jobz"]
    if by_jobz:
        pn = prom_name("session.solves_by_jobz_total")
        lines.append(f"# TYPE {pn} counter")
        for mode, cnt in sorted(by_jobz.items()):
            lines.append(f'{pn}{{jobz="{prom_label_value(mode)}"}} {cnt}')
    emit("session.inflight", len(session._outstanding))
    emit("session.workers", session.n_workers)
    emit("session.last_solve_age_seconds", m.last_solve_age_s())
    for name, st in sorted(m.digest_stats().items()):
        _emit_summary(lines, f"session.{name}", st)

    stats = session.stats()
    for group in ("graph_cache", "workspace"):
        gstats = stats.get(group)
        if not gstats:
            continue
        for key, value in sorted(gstats.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            kind = "counter" if key in ("hits", "misses", "evictions") \
                else "gauge"
            suffix = "_total" if kind == "counter" else ""
            emit(f"{group}.{key}{suffix}", value, kind)
    pool = getattr(session, "_pool", None)
    if pool is not None:
        emit("pool.runs_completed_total", pool.runs_completed, "counter")
        emit("pool.workers_alive", pool.workers_alive)
        emit("pool.workers_parked", pool.parked)
        emit("pool.inflight_runs", len(pool._active))
    flight = getattr(session, "flight", None)
    if flight is not None:
        occ = flight.occupancy()
        emit("flight.recorded_total", occ["recorded"], "counter")
        emit("flight.occupancy", occ["size"])
        emit("flight.capacity", occ["capacity"])
    prof = getattr(session, "profiler", None)
    if prof is not None:
        emit("profile.samples_total", prof.n_samples, "counter")
        emit("profile.idle_samples_total", prof.idle_samples, "counter")
        pn = prom_name("profile.kernel_samples_total")
        by_kernel = prof.kernel_counts()
        if by_kernel:
            lines.append(f"# TYPE {pn} counter")
            for kernel, cnt in sorted(by_kernel.items()):
                lines.append(
                    f'{pn}{{kernel="{prom_label_value(kernel)}"}} {cnt}')
    text = "\n".join(lines) + "\n"
    col = session.options.telemetry
    if isinstance(col, Collector):
        text += prometheus_text(col)
    return text


def healthz_payload(session) -> tuple[int, dict]:
    """(HTTP status, JSON payload) of the liveness probe."""
    m = session.metrics
    pool = getattr(session, "_pool", None)
    payload = {
        "status": "ok",
        "backend": session.backend,
        "workers": session.n_workers,
        "inflight": len(session._outstanding),
        "solves": m.solves,
        "failures": m.failures,
        "last_solve_age_s": m.last_solve_age_s(),
    }
    status = 200
    if session._closed:
        payload["status"] = "closed"
        status = 503
    if pool is not None:
        alive = pool.workers_alive
        payload["pool"] = {"workers_alive": alive,
                           "workers_parked": pool.parked,
                           "inflight_runs": len(pool._active),
                           "runs_completed": pool.runs_completed}
        if not pool.closed and alive < pool.n_workers:
            payload["status"] = "degraded"
            status = 503
    return status, payload


def debug_state(session) -> dict:
    """JSON snapshot for ``/debug/state``: digests, stats, occupancy."""
    out = {"backend": session.backend, "n_workers": session.n_workers,
           "closed": session._closed,
           "metrics": session.metrics.to_dict(),
           "stats": session.stats()}
    flight = getattr(session, "flight", None)
    if flight is not None:
        out["flight"] = flight.occupancy()
    prof = getattr(session, "profiler", None)
    if prof is not None:
        out["profiler"] = prof.summary_dict()
    return out


class MetricsServer:
    """Background ``http.server`` thread exposing a live session.

    Endpoints (all GET):

    * ``/metrics`` — Prometheus text format (:func:`live_metrics_text`);
    * ``/healthz`` — JSON liveness: 200 while the pool's workers are
      alive, 503 once the session is closed or workers died;
    * ``/debug/state`` — JSON snapshot of digests, cache/workspace-pool
      stats and flight-recorder occupancy;
    * ``/solve?n=N&type=T&seed=S`` — debug trigger: solve one Table III
      matrix on the session and return the latency (bounds the size to
      keep the probe harmless).

    Binds ``127.0.0.1`` by default; pass ``port=0`` for an ephemeral
    port (read it back from :attr:`port`).
    """

    MAX_SOLVE_N = 5000

    def __init__(self, session, port: int = 0, host: str = "127.0.0.1"):
        import http.server

        srv_self = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):   # quiet: a probe per
                pass                             # scrape would spam stderr

            def do_GET(self):
                try:
                    status, ctype, body = srv_self._route(self.path)
                except Exception as exc:   # never kill the server thread
                    status, ctype = 500, "application/json"
                    body = json.dumps({"error": str(exc)})
                data = body.encode()
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

        self.session = session
        self.httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-metrics",
                                        daemon=True)
        self._thread.start()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _route(self, path: str) -> tuple[int, str, str]:
        from urllib.parse import parse_qs, urlparse

        url = urlparse(path)
        if url.path == "/metrics":
            return 200, "text/plain; version=0.0.4", \
                live_metrics_text(self.session)
        if url.path == "/healthz":
            status, payload = healthz_payload(self.session)
            return status, "application/json", json.dumps(payload)
        if url.path == "/debug/state":
            return 200, "application/json", \
                json.dumps(debug_state(self.session), default=str)
        if url.path == "/solve":
            return self._solve(parse_qs(url.query))
        return 404, "application/json", json.dumps(
            {"error": f"unknown path {url.path!r}",
             "endpoints": ["/metrics", "/healthz", "/debug/state",
                           "/solve"]})

    def _solve(self, q: dict) -> tuple[int, str, str]:
        from ..errors import ReproError
        from ..matrices import test_matrix

        try:
            n = min(int(q.get("n", ["300"])[0]), self.MAX_SOLVE_N)
            mtype = int(q.get("type", ["4"])[0])
            seed = int(q.get("seed", ["0"])[0])
            jobz = q.get("jobz", ["V"])[0].upper()
            if jobz not in ("V", "N"):
                raise ValueError(f"jobz must be 'V' or 'N', got {jobz!r}")
            d, e = test_matrix(mtype, n, seed=seed)
        except (ValueError, KeyError) as exc:
            return 400, "application/json", json.dumps({"error": str(exc)})
        opts = self.session.options.with_(jobz=jobz)
        t0 = time.perf_counter()
        try:
            lam, V = self.session.solve(d, e, options=opts)
        except ReproError as exc:
            return 400, "application/json", json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"})
        dt = time.perf_counter() - t0
        return 200, "application/json", json.dumps(
            {"n": n, "type": mtype, "seed": seed, "jobz": jobz,
             "latency_s": dt,
             "lam_min": float(lam[0]), "lam_max": float(lam[-1])})

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5.0)
