"""Secular-equation solver (DLAED4 equivalent), vectorized over roots.

Given the deflated rank-one system ``R = D + rho * z zᵀ`` with
``d_0 < d_1 < ... < d_{k-1}`` and ``‖z‖ = 1``, the eigenvalues are the
roots of the secular equation (paper Eq. 7)::

    w(λ) = 1 + rho * Σ_i  z_i² / (d_i − λ) = 0

with the interlacing property ``d_j < λ_j < d_{j+1}`` (and
``d_{k-1} < λ_{k-1} < d_{k-1} + rho``).

Each root is represented as ``λ_j = d_{orig_j} + τ_j`` where ``orig_j``
is the index of the *closest pole*; all pole distances are formed as
``(d_i − d_orig) − τ`` so the critical distance to the nearest pole is
the exactly-stored ``τ`` — this is what preserves eigenvector
orthogonality downstream (Gu & Eisenstat).

The iteration is the fixed-weight two-pole rational scheme
(Bunch–Nielsen–Sorensen; the same family as DLAED4's middle way): model
``w`` by ``c + a/(Δ_1 − η) + b/(Δ_2 − η)`` with the true residues
``a = rho z_{p1}²``, ``b = rho z_{p2}²`` of the two bracketing poles and
``c`` chosen to interpolate the current value, then step to the model
root.  A per-root bisection bracket makes the scheme globally
convergent.  All roots of a panel iterate simultaneously with NumPy
(this is the paper's per-panel ``LAED4`` task, vectorized inside the
panel).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError

__all__ = ["SecularRoots", "solve_secular", "secular_function",
           "delta_matrix", "eigenvalues_from_roots"]

_EPS = np.finfo(np.float64).eps


@dataclass
class SecularRoots:
    """Roots of the secular equation in stable (origin, offset) form.

    ``lam[j] == dlamda[orig[j]] + tau[j]`` (also materialized in ``lam``
    for convenience; downstream kernels must use ``orig``/``tau``).
    """

    orig: np.ndarray   # (m,) int — index of the closest pole
    tau: np.ndarray    # (m,) float — offset from that pole
    lam: np.ndarray    # (m,) float — materialized eigenvalues
    iterations: int    # total sweeps used (diagnostics / Table I)


def secular_function(dlamda: np.ndarray, z: np.ndarray, rho: float,
                     lam: np.ndarray) -> np.ndarray:
    """Evaluate w(λ) naively (for tests/diagnostics only)."""
    delta = dlamda[:, None] - np.atleast_1d(lam)[None, :]
    return 1.0 + rho * np.sum((z * z)[:, None] / delta, axis=0)


def delta_matrix(dlamda: np.ndarray, orig: np.ndarray, tau: np.ndarray
                 ) -> np.ndarray:
    """Stable pole distances ``Δ[i, j] = d_i − λ_j`` of shape (k, m).

    Formed as ``(d_i − d_orig_j) − τ_j`` so that ``Δ[orig_j, j] = −τ_j``
    exactly.
    """
    return (dlamda[:, None] - dlamda[orig][None, :]) - tau[None, :]


def eigenvalues_from_roots(dlamda: np.ndarray, orig: np.ndarray,
                           tau: np.ndarray) -> np.ndarray:
    return dlamda[orig] + tau


def solve_secular(dlamda: np.ndarray, z: np.ndarray, rho: float,
                  index: np.ndarray | None = None,
                  max_iter: int = 400, recorder=None) -> SecularRoots:
    """Solve the secular equation for the roots listed in ``index``.

    Parameters
    ----------
    dlamda : (k,) strictly increasing poles (deflation guarantees gaps).
    z : (k,) unit-norm updating vector (every entry nonzero).
    rho : positive rank-one weight.
    index : root indices to solve (default: all k roots).  One LAED4
        panel task passes the root indices of its panel.
    recorder : optional telemetry sink (:mod:`repro.obs`).  When given,
        per-root iteration counts are tracked and recorded as the
        ``secular.iterations`` histogram plus ``secular.sweeps`` /
        ``secular.roots`` counters; ``None`` (default) keeps the solve
        loop free of any tracking work.
    """
    dlamda = np.asarray(dlamda, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    k = dlamda.shape[0]
    if rho <= 0.0:
        raise ValueError("rho must be positive")
    if k == 0:
        e = np.empty(0)
        return SecularRoots(e.astype(int), e, e, 0)
    if index is None:
        index = np.arange(k)
    js = np.asarray(index, dtype=np.intp)
    m = js.shape[0]
    zsq = z * z

    if k == 1:
        lam = dlamda[0] + rho * zsq[0]
        orig = np.zeros(m, dtype=np.intp)
        tau = np.full(m, rho * zsq[0])
        if recorder is not None:
            recorder.add("secular.roots", m)
            recorder.observe_many("secular.iterations", [0.0] * m)
        return SecularRoots(orig, tau, np.full(m, lam), 0)

    interior = js < k - 1
    right_pole = np.where(interior, js + 1, js)           # d_{j+1} or d_{k-1}
    gap = np.where(interior, dlamda[np.minimum(js + 1, k - 1)] - dlamda[js],
                   rho)

    # --- choose the origin pole by the sign of w at the interval midpoint
    mid = np.where(interior, dlamda[js] + 0.5 * gap, dlamda[k - 1] + 0.5 * rho)
    dmat_mid = dlamda[:, None] - mid[None, :]
    w_mid = 1.0 + rho * np.sum(zsq[:, None] / dmat_mid, axis=0)

    # w increases from -inf to +inf across the interval; w(mid) >= 0 means
    # the root lies in the left half, i.e. closer to the left pole.
    left_half = w_mid >= 0.0
    orig = np.where(interior & ~left_half, right_pole, js)
    # Last root: origin is always d_{k-1}.
    orig = np.where(interior, orig, js)

    # --- initial bracket (lo, hi) and guess in τ = λ − d_orig coordinates
    lo = np.empty(m)
    hi = np.empty(m)
    # interior, left half:   τ ∈ (0, gap/2]
    # interior, right half:  τ ∈ [−gap/2, 0)
    # last, left half:       τ ∈ (0, ρ/2]
    # last, right half:      τ ∈ [ρ/2, ρ)
    last = ~interior
    lo[interior & left_half] = 0.0
    hi[interior & left_half] = 0.5 * gap[interior & left_half]
    lo[interior & ~left_half] = -0.5 * gap[interior & ~left_half]
    hi[interior & ~left_half] = 0.0
    lo[last & left_half] = 0.0
    hi[last & left_half] = 0.5 * rho
    lo[last & ~left_half] = 0.5 * rho
    hi[last & ~left_half] = rho
    tau = 0.5 * (lo + hi)
    # Keep strictly inside the open side of the bracket.
    tau = np.where(tau == 0.0, 0.25 * (hi - lo) + lo, tau)

    # --- model poles: the two poles bracketing the interval
    p1 = np.where(interior, js, k - 2)
    p2 = np.where(interior, np.minimum(js + 1, k - 1), k - 1)

    active = np.ones(m, dtype=bool)
    total_sweeps = 0
    # Per-root sweep counts, tracked only when telemetry asks for them.
    iters = np.zeros(m, dtype=np.int64) if recorder is not None else None
    for sweep in range(max_iter):
        if not np.any(active):
            break
        total_sweeps += 1
        ia = np.where(active)[0]
        if iters is not None:
            iters[ia] += 1
        ja, ta = js[ia], tau[ia]
        oa = orig[ia]
        delta = (dlamda[:, None] - dlamda[oa][None, :]) - ta[None, :]
        inv = 1.0 / delta
        zi = zsq[:, None] * inv
        rows = np.arange(ia.size)
        # ψ collects the poles at or left of p1, φ the poles right of it.
        # For interior roots p1 = j and λ ∈ (d_j, d_{j+1}), so the split
        # coincides with the sign of Δ: ψ gathers the negative terms, φ
        # the positive ones — recoverable from the plain and absolute
        # sums without an O(k·m) cumulative sum.  For the last root every
        # Δ is negative; its φ is the single pole d_{k-1}, handled
        # explicitly below.
        S = rho * np.sum(zi, axis=0)
        A = rho * np.sum(np.abs(zi), axis=0)
        w = 1.0 + S
        swabs = A
        tol_w = _EPS * k * (3.0 + swabs)

        # Update brackets from the sign of w.
        pos = w > 0.0
        hi[ia] = np.where(pos, np.minimum(hi[ia], ta), hi[ia])
        lo[ia] = np.where(~pos, np.maximum(lo[ia], ta), lo[ia])

        converged = np.abs(w) <= tol_w
        # Secondary stop: bracket collapsed *relative to τ*.  lo and hi
        # carry the sign of τ (the bracket never straddles the pole), so
        # this enforces high relative accuracy of τ — which the Gu
        # stabilization downstream needs to keep eigenvectors accurate.
        width = hi[ia] - lo[ia]
        converged |= width <= 8.0 * _EPS * np.abs(ta)
        if np.all(converged):
            active[ia] = False
            break

        # "Middle way" two-pole step (Ren-Cang Li / DLAED4): split the sum
        # at the left model pole into ψ (poles ≤ p1) and φ (poles > p1),
        # and give each model pole the weight that matches the exact
        # derivative of its side: a = Δ1²ψ', b = Δ2²φ', c = w − Δ1ψ' − Δ2φ'.
        d1 = delta[p1[ia], rows]
        d2 = delta[p2[ia], rows]
        zi *= inv                            # now z_i² / Δ² (all positive)
        B = rho * np.sum(zi, axis=0)         # w'(λ) = ψ' + φ'
        C = rho * np.sum(np.copysign(zi, delta), axis=0)    # φ' − ψ'
        psi_p = 0.5 * (B - C)                               # ψ'(λ) ≥ 0
        phi_p = 0.5 * (B + C)                               # φ'(λ) ≥ 0
        inter_a = interior[ia]
        if not np.all(inter_a):
            # Last root: φ is the single pole d_{k-1} (= p2 = origin).
            la = ~inter_a
            phi_last = rho * zsq[k - 1] / (d2[la] * d2[la])
            phi_p[la] = phi_last
            psi_p[la] = B[la] - phi_last
        aa = d1 * d1 * psi_p
        bb = d2 * d2 * phi_p
        c = w - d1 * psi_p - d2 * phi_p
        # Quadratic  c η² − B η + C = 0 for the step η.
        B = c * (d1 + d2) + aa + bb
        C = c * d1 * d2 + aa * d2 + bb * d1
        disc = B * B - 4.0 * c * C
        disc = np.maximum(disc, 0.0)
        sq = np.sqrt(disc)
        denom = B + np.where(B >= 0.0, sq, -sq)
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = np.where(denom != 0.0, 2.0 * C / denom, 0.0)
        tnew = ta + eta
        # Safeguard: keep strictly inside the bracket, else bisect.
        bad = (~np.isfinite(tnew)) | (tnew <= lo[ia]) | (tnew >= hi[ia]) \
            | (eta == 0.0)
        # A step of exactly zero with |w|>tol means the model stalled.
        tnew = np.where(bad, 0.5 * (lo[ia] + hi[ia]), tnew)
        # Never land exactly on the origin pole.
        tnew = np.where(tnew == 0.0, 0.5 * (lo[ia] + hi[ia]) * 0.5
                        + 0.25 * hi[ia], tnew)
        tau[ia] = np.where(converged, ta, tnew)
        keep = ~converged
        active[ia] = keep

    if recorder is not None:
        recorder.add("secular.sweeps", total_sweeps)
        recorder.add("secular.roots", m)
        recorder.observe_many("secular.iterations", iters)
    if np.any(active):
        stuck = js[np.where(active)[0]]
        raise ConvergenceError(
            f"secular solve did not converge for root(s) "
            f"{stuck[:8].tolist()} after {max_iter} sweeps "
            f"(k={k}, rho={rho:.3e})")
    return SecularRoots(orig.astype(np.intp), tau,
                        eigenvalues_from_roots(dlamda, orig, tau),
                        total_sweeps)
