"""Gu–Eisenstat stabilization and eigenvector assembly (DLAED3/DLAED9).

After the secular roots λ_j are computed, forming eigenvectors directly
from the *original* z loses orthogonality when roots sit close to poles.
Gu & Eisenstat's fix recomputes a vector ẑ for which the computed λ_j are
the *exact* eigenvalues of ``D + ρ ẑẑᵀ``::

    ẑ_i² = (λ_i − d_i) · Π_{j≠i} (λ_j − d_i)/(d_j − d_i) / ρ

(with sign taken from the original z).  All λ_j − d_i distances are
formed from the (origin, τ) representation returned by the secular
solver, never by subtracting the materialized λ — this is what keeps the
eigenvectors orthogonal to O(√n·ε) without extended precision.

The product over j splits freely over index subsets, which is exactly
the paper's ``ComputeLocalW`` (partial product over one panel of roots)
/ ``ReduceW`` (combine partials, take the square root) task pair.
"""

from __future__ import annotations

import numpy as np

__all__ = ["local_w_product", "reduce_w", "eigenvector_columns"]


def local_w_product(dlamda: np.ndarray, orig: np.ndarray, tau: np.ndarray,
                    panel: np.ndarray) -> np.ndarray:
    """Partial product over the roots in ``panel`` for every pole i.

    Parameters
    ----------
    dlamda : (k,) poles of the secular system (ascending).
    orig, tau : root representation for the roots in ``panel`` — i.e.
        ``orig[c]``/``tau[c]`` describe root ``panel[c]``.
    panel : (m,) indices of the roots this task owns.

    Returns
    -------
    (k,) array: ``Π_{j∈panel, j≠i} (λ_j − d_i)/(d_j − d_i)`` times, when
    ``i ∈ panel``, the unpaired factor ``(λ_i − d_i)``.  All factors are
    positive by interlacing.
    """
    dlamda = np.asarray(dlamda, dtype=np.float64)
    panel = np.asarray(panel, dtype=np.intp)
    # num[i, c] = λ_{panel[c]} − d_i, formed stably from (origin, τ).
    num = (dlamda[orig][None, :] - dlamda[:, None]) + tau[None, :]
    den = dlamda[panel][None, :] - dlamda[:, None]
    m = panel.shape[0]
    cols = np.arange(m)
    # Unpaired diagonal factor: ratio becomes just (λ_i − d_i).
    den[panel, cols] = 1.0
    return np.prod(num / den, axis=1)


def reduce_w(partials: list[np.ndarray] | np.ndarray, zsec: np.ndarray,
             rho: float) -> np.ndarray:
    """Combine panel partial products into the stabilized ẑ (``ReduceW``).

    ``partials`` is the list of per-panel outputs of
    :func:`local_w_product`; ``zsec`` supplies the signs; ``rho`` is the
    secular weight.
    """
    arr = np.asarray(partials, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[None, :]
    w = np.prod(arr, axis=0) / rho
    # Round-off can push a tiny positive product below zero.
    w = np.maximum(w, 0.0)
    return np.copysign(np.sqrt(w), zsec)


def eigenvector_columns(dlamda: np.ndarray, orig: np.ndarray,
                        tau: np.ndarray, zhat: np.ndarray,
                        row_order: np.ndarray | None = None) -> np.ndarray:
    """Normalized secular eigenvector block (``ComputeVect``).

    Column c is the eigenvector of ``D + ρ ẑẑᵀ`` for the root described
    by ``(orig[c], tau[c])``: ``x_i = ẑ_i / (d_i − λ_c)``, normalized.

    ``row_order`` optionally permutes the rows (used to emit rows
    directly in the compressed column order of the merge workspace).
    """
    dlamda = np.asarray(dlamda, dtype=np.float64)
    zhat = np.asarray(zhat, dtype=np.float64)
    delta = (dlamda[:, None] - dlamda[orig][None, :]) - tau[None, :]
    x = zhat[:, None] / delta
    x /= np.sqrt(np.sum(x * x, axis=0))[None, :]
    if row_order is not None:
        x = x[row_order, :]
    return x
