"""LAPACK-equivalent numerical kernels, implemented from scratch.

================  ==========================  ===========================
Module            LAPACK analogue             Role in the D&C solver
================  ==========================  ===========================
``scaling``       DLANST / DLASCL             Scale T / Scale back tasks
``givens``        DLARTG / DROT               rotations (deflation, QR)
``steqr``         DSTEQR (EISPACK tql2)       leaf ``STEDC`` tasks
``secular``       DLAED4                      per-panel ``LAED4`` tasks
``deflation``     DLAED2                      ``Compute_deflation`` task
``stabilize``     DLAED3/DLAED9               ``ComputeLocalW``/``ReduceW``
``strips``        (no analogue)               boundary-row ``jobz='N'`` path
``householder``   DSYTRD / DORMTR             dense pipeline (Eqs. 1–3)
================  ==========================  ===========================
"""

from .scaling import lanst, scale_tridiagonal, ScaleInfo
from .givens import lartg, rot, lapy2
from .steqr import steqr, sterf
from .secular import (SecularRoots, solve_secular, secular_function,
                      delta_matrix, eigenvalues_from_roots)
from .deflation import DeflationResult, GivensRotation, deflate, rotation_chains
from .stabilize import local_w_product, reduce_w, eigenvector_columns
from .strips import (stack_boundary_rows, rotate_strip_columns,
                     permute_strip, strip_row_products)
from .householder import Tridiagonalization, tridiagonalize, apply_q
from .bidiagonalize import Bidiagonalization, bidiagonalize, apply_ql, apply_qr
from .band import (dense_to_band, band_to_tridiagonal,
                   two_stage_tridiagonalize, bandwidth_of)

__all__ = [
    "lanst", "scale_tridiagonal", "ScaleInfo",
    "lartg", "rot", "lapy2",
    "steqr", "sterf",
    "SecularRoots", "solve_secular", "secular_function", "delta_matrix",
    "eigenvalues_from_roots",
    "DeflationResult", "GivensRotation", "deflate", "rotation_chains",
    "local_w_product", "reduce_w", "eigenvector_columns",
    "stack_boundary_rows", "rotate_strip_columns", "permute_strip",
    "strip_row_products",
    "Tridiagonalization", "tridiagonalize", "apply_q",
    "Bidiagonalization", "bidiagonalize", "apply_ql", "apply_qr",
    "dense_to_band", "band_to_tridiagonal", "two_stage_tridiagonalize",
    "bandwidth_of",
]
