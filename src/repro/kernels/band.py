"""Two-stage reduction substrate: dense → band → tridiagonal.

The paper's context (Sec. I and [3]: Haidar, Ltaief, Dongarra) is
PLASMA's two-stage symmetric reduction — a blocked dense-to-band stage
whose compute is BLAS-3 rich, followed by a fine-grained bulge-chasing
stage from band to tridiagonal.  The related work also notes the
alternative of reducing "to band form (not especially tridiagonal form)
before using a band eigensolver".

``dense_to_band``
    Blocked Householder reduction of a dense symmetric matrix to
    symmetric band form with bandwidth ``b`` (panel QR of each block
    column + two-sided block update).
``band_to_tridiagonal``
    Schwarz-style Givens bulge chasing: annihilate the outer band
    diagonals column by column, chasing each bulge off the end.
``two_stage_tridiagonalize``
    The full pipeline, returning (d, e) plus the accumulated orthogonal
    transform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .givens import lartg

__all__ = ["dense_to_band", "band_to_tridiagonal",
           "two_stage_tridiagonalize", "bandwidth_of"]


def bandwidth_of(a: np.ndarray, tol: float = 0.0) -> int:
    """Smallest b such that a[i, j] == 0 (|.| <= tol) for |i-j| > b."""
    n = a.shape[0]
    for b in range(n - 1, 0, -1):
        if np.max(np.abs(np.diag(a, b))) > tol:
            return b
    return 0


def _householder(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    alpha = x[0]
    sigma = float(np.dot(x[1:], x[1:]))
    v = x.copy()
    v[0] = 1.0
    if sigma == 0.0:
        return v, 0.0, float(alpha)
    beta = -math.copysign(math.hypot(alpha, math.sqrt(sigma)), alpha)
    tau = (beta - alpha) / beta
    v[1:] = x[1:] / (alpha - beta)
    return v, float(tau), float(beta)


def dense_to_band(a: np.ndarray, b: int) -> tuple[np.ndarray, np.ndarray]:
    """Reduce the symmetric matrix ``a`` to band form of bandwidth ``b``.

    Returns ``(band, q)`` with ``q.T @ a @ q = band`` (band symmetric,
    zero outside ``|i−j| ≤ b``).  Panels of width b are annihilated with
    Householder reflectors; the two-sided updates are the BLAS-3-rich
    part of the first stage.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    if not (1 <= b < max(n, 2)):
        raise ValueError("bandwidth must satisfy 1 <= b < n")
    scale = max(1.0, float(np.max(np.abs(a))))
    if not np.allclose(a, a.T, atol=1e-12 * scale):
        raise ValueError("matrix must be symmetric")
    q = np.eye(n)
    for k in range(0, n - b - 1, b):
        # Panel: annihilate rows k+b+1..n-1 of columns k..k+b-1 by a QR
        # of the block below the band.
        j1 = min(k + b, n)
        for j in range(k, j1):
            lo = j + b
            if lo >= n - 0:
                break
            x = a[lo:, j]
            if np.all(x[1:] == 0.0):
                continue
            v, tau, beta = _householder(x)
            if tau == 0.0:
                continue
            # Two-sided symmetric update restricted to rows/cols lo:.
            sub = a[lo:, lo:]
            w = tau * (sub @ v)
            w -= (0.5 * tau * np.dot(w, v)) * v
            sub -= np.outer(v, w)
            sub -= np.outer(w, v)
            # Row/column coupling with the columns left of lo.
            block = a[lo:, k:lo]
            block -= np.outer(tau * v, v @ block)
            a[k:lo, lo:] = block.T
            a[lo:, j] = 0.0
            a[lo, j] = beta
            a[j, lo:] = a[lo:, j]
            # Accumulate Q.
            qblock = q[:, lo:]
            qblock -= np.outer(qblock @ (tau * v), v)
    a = 0.5 * (a + a.T)
    # Numerical zeros outside the band.
    for off in range(b + 1, n):
        a[np.arange(n - off), np.arange(off, n)] = 0.0
        a[np.arange(off, n), np.arange(n - off)] = 0.0
    return a, q


def band_to_tridiagonal(band: np.ndarray, b: int
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Givens bulge-chasing reduction of a symmetric band matrix.

    Returns ``(d, e, q)`` with ``q.T @ band @ q`` tridiagonal.  This is
    the fine-grained second stage whose memory-aware kernels [3]
    motivated PLASMA's task-based approach.
    """
    a = np.array(band, dtype=np.float64, copy=True)
    n = a.shape[0]
    if b < 1:
        raise ValueError("bandwidth must be >= 1")
    q = np.eye(n)

    def rotate(i: int, j: int, c: float, s: float) -> None:
        """Apply Gᵀ A G and accumulate G into q (rows/cols i < j)."""
        ri = a[i, :].copy()
        rj = a[j, :].copy()
        a[i, :] = c * ri + s * rj
        a[j, :] = -s * ri + c * rj
        ci = a[:, i].copy()
        cj = a[:, j].copy()
        a[:, i] = c * ci + s * cj
        a[:, j] = -s * ci + c * cj
        qi = q[:, i].copy()
        qj = q[:, j].copy()
        q[:, i] = c * qi + s * qj
        q[:, j] = -s * qi + c * qj

    for width in range(b, 1, -1):
        # Remove the outermost remaining diagonal (offset = width).
        for k in range(0, n - width):
            if a[k + width, k] == 0.0:
                continue
            # Zero a[k+width, k] against a[k+width-1, k].
            i, j = k + width - 1, k + width
            c, s, _ = lartg(a[i, k], a[j, k])
            rotate(i, j, c, s)
            a[j, k] = 0.0
            a[k, j] = 0.0
            # The rotation of rows (i, j) fills a[i, j+width] — a bulge
            # at distance width+1 below the diagonal at column r = i.
            # Chase it down: each kill rotation moves the bulge width-1
            # columns further right until it falls off the matrix.
            r = i
            while r + width + 1 < n:
                bi = r + width + 1
                if a[bi, r] == 0.0:
                    break
                c, s, _ = lartg(a[bi - 1, r], a[bi, r])
                rotate(bi - 1, bi, c, s)
                a[bi, r] = 0.0
                a[r, bi] = 0.0
                r = bi - 1
    d = np.diag(a).copy()
    e = np.diag(a, -1).copy()
    return d, e, q


def two_stage_tridiagonalize(a: np.ndarray, b: int | None = None
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense → band → tridiagonal, returning (d, e, Q) with QᵀAQ = T."""
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if n == 1:
        return a[0, :1].copy(), np.empty(0), np.ones((1, 1))
    if b is None:
        b = max(2, min(32, n // 8))
    b = min(b, n - 1)
    band, q1 = dense_to_band(a, b)
    if b == 1:
        return np.diag(band).copy(), np.diag(band, -1).copy(), q1
    d, e, q2 = band_to_tridiagonal(band, b)
    return d, e, q1 @ q2
