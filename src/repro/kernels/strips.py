"""Boundary-row *strip* kernels for the eigenvalue-only pipeline.

The merge recursion only ever reads two rows of a subproblem's
eigenvector matrix: the last row of the left child and the first row of
the right child form the rank-one vector z of the next merge (Eq. 4).
``jobz='N'`` exploits this: instead of carrying the O(n²) matrix, each
node [lo, hi) carries a 2×(hi−lo) *strip* —

    ``S[0, lo:hi]`` — row ``lo``    of the node's eigenvector block
    ``S[1, lo:hi]`` — row ``hi−1``  of the node's eigenvector block

— and the merge applies its deflating rotations, its permutation and
its secular eigenvector products to the strip alone: O(k) work per
panel instead of O(n·k), O(n) state instead of O(n²).

Determinism contract: both compute modes derive z from strips produced
by *this* module, and every function here is pure elementwise numpy (the
row×matrix products use ``np.einsum``, whose default path is a plain C
loop, **not** BLAS) — so the bits never depend on the BLAS build, the
thread count or the backend, and ``jobz='N'`` eigenvalues are bitwise
identical to ``jobz='V'`` by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stack_boundary_rows", "rotate_strip_columns", "permute_strip",
           "strip_row_products"]


def stack_boundary_rows(S: np.ndarray, P: np.ndarray,
                        lo: int, mid: int, hi: int) -> None:
    """Form the pre-merge strip of node [lo, hi) from its children.

    Before the rank-one update the node's eigenvector matrix is block
    diagonal, so its row ``lo`` is the left child's first row padded
    with zeros, and its row ``hi−1`` is the right child's last row
    padded with zeros."""
    P[0, lo:mid] = S[0, lo:mid]
    P[0, mid:hi] = 0.0
    P[1, lo:mid] = 0.0
    P[1, mid:hi] = S[1, mid:hi]


def rotate_strip_columns(P: np.ndarray, lo: int, chains) -> None:
    """Apply the deflating Givens rotations to the strip's columns.

    Each rotation combines columns ``i``/``j`` of the node's block —
    restricted to the strip that is two 2-vectors.  Same update order
    and floating-point expressions as the full-matrix
    :meth:`~repro.core.merge.MergeState.t_apply_givens_ref` kernel."""
    for chain in chains:
        for r in chain:
            qi = P[:, lo + r.i]
            qj = P[:, lo + r.j]
            tmp = r.c * qi + r.s * qj
            qj *= r.c
            qj -= r.s * qi
            qi[...] = tmp


def permute_strip(P: np.ndarray, Pws: np.ndarray,
                  lo: int, perm: np.ndarray) -> None:
    """Gather the strip's columns into compressed order (PermuteV on a
    2-row block; a single fancy-indexed gather is already optimal)."""
    Pws[:, lo:lo + perm.size] = P[:, lo + perm]


def strip_row_products(top_row: np.ndarray, bot_row: np.ndarray,
                       X: np.ndarray, k1: int) -> tuple[np.ndarray,
                                                        np.ndarray]:
    """The two strip rows of the merged node: ``row·X`` products.

    ``top_row`` is the permuted strip's row 0 restricted to the k1+k2
    columns with top-block support; ``bot_row`` is row 1 restricted to
    the k−k1 columns with bottom-block support (the structured-GEMM row
    split of UpdateVect).  ``np.einsum`` with the default (non-optimized)
    path contracts in pure C — no BLAS, no threading — so the result is
    bit-reproducible everywhere.  An empty contraction axis yields exact
    zeros, matching UpdateVect's zero-fill when a block is empty."""
    top = np.einsum("k,km->m", top_row, X[:top_row.shape[0], :])
    bot = np.einsum("k,km->m", bot_row, X[k1:, :])
    return top, bot
