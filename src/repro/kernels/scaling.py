"""Norms and safe scaling of tridiagonal matrices (DLANST / DLASCL).

``dstedc`` scales the tridiagonal matrix so its max-norm sits inside the
safe range before dividing, and scales the eigenvalues back afterwards;
the paper's DAG shows this as the ``Scale T`` / ``Scale back`` tasks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lanst", "scale_tridiagonal", "ScaleInfo"]

#: Safe range bounds, mirroring DLAMCH('S')-based RMIN/RMAX in dstedc.
_EPS = np.finfo(np.float64).eps
_SAFE_MIN = np.finfo(np.float64).tiny
_RMIN = np.sqrt(_SAFE_MIN / _EPS)
_RMAX = 1.0 / _RMIN


def lanst(norm: str, d: np.ndarray, e: np.ndarray) -> float:
    """Norm of a symmetric tridiagonal matrix (LAPACK DLANST).

    Parameters
    ----------
    norm:
        ``"M"`` max-abs entry, ``"1"``/``"I"`` one/inf norm (equal by
        symmetry), ``"F"`` Frobenius.
    d, e:
        Diagonal (n) and off-diagonal (n-1) entries.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0:
        return 0.0
    key = norm.upper()
    if key == "M":
        m = np.max(np.abs(d))
        if e.size:
            m = max(m, np.max(np.abs(e)))
        return float(m)
    if key in ("1", "O", "I"):
        if n == 1:
            return float(abs(d[0]))
        col = np.abs(d).copy()
        col[:-1] += np.abs(e)
        col[1:] += np.abs(e)
        return float(np.max(col))
    if key in ("F", "E"):
        return float(np.sqrt(np.sum(d * d) + 2.0 * np.sum(e * e)))
    raise ValueError(f"unknown norm {norm!r}")


class ScaleInfo:
    """Records the scaling applied so it can be undone on the eigenvalues."""

    __slots__ = ("sigma",)

    def __init__(self, sigma: float):
        self.sigma = sigma

    @property
    def scaled(self) -> bool:
        return self.sigma != 1.0

    def unscale_eigenvalues(self, lam: np.ndarray) -> np.ndarray:
        """In-place inverse scaling (the DAG's ``Scale back`` task)."""
        if self.scaled:
            lam *= 1.0 / self.sigma
        return lam


def scale_tridiagonal(d: np.ndarray, e: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, ScaleInfo]:
    """Scale (d, e) into the safe range; returns copies plus a ScaleInfo.

    The matrix is multiplied by ``sigma`` so that its max-norm lies in
    ``[RMIN, RMAX]``; eigenvalues of the scaled matrix must be divided by
    ``sigma`` afterwards (``ScaleInfo.unscale_eigenvalues``).
    """
    d = np.array(d, dtype=np.float64, copy=True)
    e = np.array(e, dtype=np.float64, copy=True)
    nrm = lanst("M", d, e)
    if nrm == 0.0 or (_RMIN <= nrm <= _RMAX):
        return d, e, ScaleInfo(1.0)
    sigma = (_RMIN / nrm) if nrm < _RMIN else (_RMAX / nrm)
    d *= sigma
    e *= sigma
    return d, e, ScaleInfo(sigma)
