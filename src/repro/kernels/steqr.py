"""QR/QL-iteration symmetric tridiagonal eigensolver (DSTEQR equivalent).

Used for the subproblems at the leaves of the D&C tree (the ``STEDC``
leaf tasks in the paper's DAG run a classical QR-iteration solve) and,
standalone, as the "QR iterations" related-work baseline.

The implementation follows the implicit-shift QL algorithm of EISPACK's
``tql2`` (the same algorithm underlying DSTEQR): for each eigenvalue,
Wilkinson-shifted implicit QL sweeps drive the off-diagonal to zero;
rotations are accumulated into the eigenvector matrix.  Eigenvalues are
returned in ascending order with matching eigenvector columns.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConvergenceError

__all__ = ["steqr", "sterf"]

_EPS = np.finfo(np.float64).eps


def steqr(d: np.ndarray, e: np.ndarray, *, compute_v: bool = True,
          max_sweeps: int = 50) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of the symmetric tridiagonal matrix ``(d, e)``.

    Parameters
    ----------
    d : (n,) diagonal.
    e : (n-1,) off-diagonal.
    compute_v : accumulate eigenvectors (returns None otherwise).
    max_sweeps : QL sweeps allowed per eigenvalue before raising.

    Returns
    -------
    (lam, V): ``lam`` ascending; columns of ``V`` are the eigenvectors
    (``V.T @ T @ V = diag(lam)``, ``V`` orthogonal).

    Like DSTEQR, the sweep direction must match the matrix grading: the
    QL iteration converges for matrices graded small-to-large downward;
    if it stalls, the reversed matrix is solved instead (equivalent to
    running QR sweeps) and the eigenvectors are flipped back.
    """
    try:
        return _tql2(d, e, compute_v=compute_v, max_sweeps=max_sweeps)
    except ConvergenceError:
        d = np.asarray(d, dtype=np.float64)
        e = np.asarray(e, dtype=np.float64)
        lam, V = _tql2(d[::-1].copy(), e[::-1].copy(),
                       compute_v=compute_v, max_sweeps=2 * max_sweeps)
        return lam, (V[::-1, :] if V is not None else None)


def _tql2(d: np.ndarray, e: np.ndarray, *, compute_v: bool = True,
          max_sweeps: int = 50) -> tuple[np.ndarray, np.ndarray | None]:
    d = np.array(d, dtype=np.float64, copy=True)
    n = d.shape[0]
    if np.asarray(e).shape[0] != max(0, n - 1):
        raise ValueError("e must have length n-1")
    ee = np.zeros(n, dtype=np.float64)
    if n > 1:
        ee[:n - 1] = e
    V = np.eye(n) if compute_v else None
    if n <= 1:
        return d, V

    for l in range(n):
        sweeps = 0
        while True:
            # Find the first negligible off-diagonal at or after l.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(ee[m]) <= _EPS * dd:
                    break
                m += 1
            if m == l:
                break
            sweeps += 1
            if sweeps > max_sweeps:
                raise ConvergenceError(
                    f"steqr failed to converge for eigenvalue {l} "
                    f"after {max_sweeps} sweeps (n={n})")
            # Wilkinson shift from the top 2x2 of the active block.
            g = (d[l + 1] - d[l]) / (2.0 * ee[l])
            r = math.hypot(g, 1.0)
            g = d[m] - d[l] + ee[l] / (g + math.copysign(r, g))
            s = 1.0
            c = 1.0
            p = 0.0
            underflow = False
            for i in range(m - 1, l - 1, -1):
                f = s * ee[i]
                b = c * ee[i]
                r = math.hypot(f, g)
                ee[i + 1] = r
                if r == 0.0:
                    # Recover from underflow: split the matrix and retry.
                    d[i + 1] -= p
                    ee[m] = 0.0
                    underflow = True
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                if compute_v:
                    col_i = V[:, i]
                    col_i1 = V[:, i + 1]
                    f2 = col_i1.copy()
                    col_i1[...] = s * col_i + c * f2
                    col_i[...] = c * col_i - s * f2
            if underflow:
                continue
            d[l] -= p
            ee[l] = g
            ee[m] = 0.0

    order = np.argsort(d, kind="stable")
    d = d[order]
    if compute_v:
        V = V[:, order]
    return d, V


def sterf(d: np.ndarray, e: np.ndarray, *, max_sweeps: int = 50) -> np.ndarray:
    """Eigenvalues only (DSTERF-style: same iteration, no vector updates)."""
    lam, _ = steqr(d, e, compute_v=False, max_sweeps=max_sweeps)
    return lam
