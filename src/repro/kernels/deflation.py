"""Deflation for the D&C merge step (DLAED2 equivalent).

Given the concatenated eigenvalues ``d`` of the two children, the updating
vector ``z = Ṽᵀu`` and the rank-one weight ``rho`` (= β of the Cuppen
splitting), this kernel:

1. makes the weight positive (flipping the second half of ``z`` when
   β < 0, i.e. choosing ``u = [..1, −1..]``),
2. normalizes ``z`` and folds its norm into ``rho``,
3. merges the two ascending child spectra into one sorted order,
4. deflates entries with negligible ``z`` components,
5. deflates *pairs* of close eigenvalues with a Givens rotation that
   zeroes one ``z`` component (recorded for later application to the
   eigenvector columns),
6. produces the compressed column layout used by the panel tasks: the
   ``k`` non-deflated columns grouped by column type
   (1 = only rows of the first child are nonzero, 2 = dense after a
   cross rotation, 3 = only rows of the second child), followed by the
   ``n − k`` deflated columns; this grouping is what lets ``UpdateVect``
   run two smaller GEMMs instead of one dense one.

This is the functional payload of the paper's ``Compute_deflation`` join
task; it is O(n log n) and matrix-independent in task count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeflationResult", "GivensRotation", "deflate", "rotation_chains"]

_EPS = np.finfo(np.float64).eps


@dataclass(frozen=True)
class GivensRotation:
    """One recorded deflating rotation, applied to *source* columns.

    Applied as BLAS ``drot``: ``q_i' = c q_i + s q_j``,
    ``q_j' = c q_j − s q_i``; afterwards column ``i`` is deflated.
    """

    i: int
    j: int
    c: float
    s: float


@dataclass
class DeflationResult:
    """Output of :func:`deflate` — everything the merge tasks consume."""

    n: int
    n1: int
    k: int                       # number of non-deflated eigenvalues
    rho: float                   # effective positive weight of the secular system
    dlamda: np.ndarray           # (k,) non-deflated d, ascending
    zsec: np.ndarray             # (k,) unit-norm z of the secular system
    perm: np.ndarray             # (n,) compressed position -> source column
    rowidx: np.ndarray           # (k,) secular row of compressed column p
    ctot: tuple[int, int, int]   # counts of column types (1, 2, 3)
    d_defl: np.ndarray           # (n-k,) eigenvalues of deflated columns
    rotations: list[GivensRotation] = field(default_factory=list)

    @property
    def n_deflated(self) -> int:
        return self.n - self.k

    @property
    def deflation_ratio(self) -> float:
        return self.n_deflated / self.n if self.n else 0.0


def deflate(d: np.ndarray, z: np.ndarray, rho: float, n1: int,
            *, tol_factor: float = 8.0) -> DeflationResult:
    """Run the deflation analysis.

    Parameters
    ----------
    d : (n,) concatenated child eigenvalues; ``d[:n1]`` and ``d[n1:]``
        each ascending (column order of the concatenated child vectors).
    z : (n,) updating vector in the same column order.
    rho : signed β of the splitting (non-zero).
    n1 : size of the first child block.
    """
    d = np.asarray(d, dtype=np.float64)
    z = np.array(z, dtype=np.float64, copy=True)
    n = d.shape[0]
    if not (0 < n1 < n):
        raise ValueError("n1 must split the problem")
    if rho == 0.0:
        # β = 0: the two blocks are exactly decoupled — everything
        # deflates and the merge is a pure sorting permutation.
        order = np.argsort(d, kind="stable")
        return DeflationResult(
            n=n, n1=n1, k=0, rho=0.0, dlamda=np.empty(0),
            zsec=np.empty(0), perm=order.astype(np.intp),
            rowidx=np.empty(0, dtype=np.intp), ctot=(0, 0, 0),
            d_defl=d[order].copy(), rotations=[])
    if rho < 0.0:
        z[n1:] = -z[n1:]
        rho = -rho

    znorm = float(np.linalg.norm(z))
    if znorm == 0.0:
        raise ValueError("zero updating vector")
    z /= znorm
    rho_eff = rho * znorm * znorm

    order = np.argsort(d, kind="stable")
    ds = d[order].copy()
    zs = z[order].copy()
    coltype = np.where(order < n1, 1, 3).astype(np.int8)

    dmax = float(np.max(np.abs(ds)))
    zmax = float(np.max(np.abs(zs)))
    tol = tol_factor * _EPS * max(dmax, zmax)

    deflated = np.zeros(n, dtype=bool)
    rotations: list[GivensRotation] = []

    # Single-entry deflation: negligible coupling through z.
    small_z = rho_eff * np.abs(zs) <= tol
    deflated[small_z] = True
    zs[small_z] = 0.0

    # Pairwise deflation of close eigenvalues (Givens pass, DLAED2).
    prev = -1
    for idx in range(n):
        if deflated[idx]:
            continue
        if prev < 0:
            prev = idx
            continue
        s_ = zs[prev]
        c_ = zs[idx]
        tau = math.hypot(c_, s_)
        t = ds[idx] - ds[prev]
        c_n = c_ / tau
        s_n = -s_ / tau
        if abs(t * c_n * s_n) <= tol:
            rotations.append(GivensRotation(int(order[prev]),
                                            int(order[idx]), c_n, s_n))
            zs[idx] = tau
            zs[prev] = 0.0
            if coltype[prev] != coltype[idx]:
                # Cross-block rotation: the surviving column is dense.
                coltype[idx] = 2
            t_new = ds[prev] * c_n * c_n + ds[idx] * s_n * s_n
            ds[idx] = ds[prev] * s_n * s_n + ds[idx] * c_n * c_n
            ds[prev] = t_new
            deflated[prev] = True
        prev = idx

    nd_idx = np.where(~deflated)[0]          # ascending in d
    df_idx = np.where(deflated)[0]
    k = nd_idx.shape[0]

    dlamda = ds[nd_idx]
    zsec = zs[nd_idx]
    # Renormalize zsec (rotations preserve the norm, single-entry
    # deflation leaves a tail below tol; fold the residual norm into rho).
    zn = float(np.linalg.norm(zsec))
    if k > 0 and zn > 0.0:
        zsec = zsec / zn
        rho_sec = rho_eff * zn * zn
    else:
        rho_sec = rho_eff

    # Group the non-deflated columns by type, stable within a group so
    # dlamda order is preserved inside each block.
    types_nd = coltype[nd_idx]
    grp_order = np.argsort(types_nd, kind="stable")
    nd_sorted = nd_idx[grp_order]
    ctot = (int(np.sum(types_nd == 1)), int(np.sum(types_nd == 2)),
            int(np.sum(types_nd == 3)))

    perm = np.concatenate([order[nd_sorted], order[df_idx]]).astype(np.intp)
    # rowidx: secular row (rank in dlamda) of each compressed column.
    rank_of = np.empty(n, dtype=np.intp)
    rank_of[nd_idx] = np.arange(k)
    rowidx = rank_of[nd_sorted]

    return DeflationResult(n=n, n1=n1, k=k, rho=rho_sec, dlamda=dlamda,
                           zsec=zsec, perm=perm, rowidx=rowidx, ctot=ctot,
                           d_defl=ds[df_idx], rotations=rotations)


def rotation_chains(rotations: list[GivensRotation]
                    ) -> list[list[GivensRotation]]:
    """Partition the recorded rotations into independent chains.

    Consecutive rotations share their surviving column (``j`` of one is
    ``i`` of the next); chains touch disjoint column sets, so the
    ``ApplyGivens`` work can run as one task per chain (GATHERV on the
    child eigenvector blocks).
    """
    chains: list[list[GivensRotation]] = []
    cur: list[GivensRotation] = []
    last_surviving = None
    for r in rotations:
        if cur and r.i != last_surviving:
            chains.append(cur)
            cur = []
        cur.append(r)
        last_surviving = r.j
    if cur:
        chains.append(cur)
    return chains
