"""Householder tridiagonalization of a dense symmetric matrix (DSYTRD)
and the corresponding back-transformation (DORMTR).

The paper's pipeline (Eqs. 1–3) is: reduce A = Q T Qᵀ, solve the
tridiagonal eigenproblem T = V Λ Vᵀ, then back-transform the
eigenvectors: A = (QV) Λ (QV)ᵀ.  These kernels implement the reduction
and the application of Q with vectorized rank-2 / rank-1 updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Tridiagonalization", "tridiagonalize", "apply_q", "apply_q_inplace"]


@dataclass
class Tridiagonalization:
    """Result of :func:`tridiagonalize`.

    ``d``/``e`` are the tridiagonal entries; ``reflectors`` (n×n lower
    triangle) stores the Householder vectors v_k in column k (below the
    subdiagonal), with ``taus[k]`` the scalar factors, LAPACK-style.
    """

    d: np.ndarray
    e: np.ndarray
    reflectors: np.ndarray
    taus: np.ndarray

    def q(self) -> np.ndarray:
        """Materialize Q explicitly (DORGTR)."""
        n = self.d.shape[0]
        return apply_q(self, np.eye(n))


def _householder(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Reflector (v, tau) with (I - tau v vᵀ)x = beta e_0, v[0] = 1."""
    alpha = x[0]
    sigma = float(np.dot(x[1:], x[1:]))
    v = x.copy()
    v[0] = 1.0
    if sigma == 0.0:
        return v, 0.0, float(alpha)
    beta = -math.copysign(math.hypot(alpha, math.sqrt(sigma)), alpha)
    tau = (beta - alpha) / beta
    v[1:] = x[1:] / (alpha - beta)
    return v, float(tau), float(beta)


def tridiagonalize(a: np.ndarray) -> Tridiagonalization:
    """Reduce the symmetric matrix ``a`` to tridiagonal form.

    Unblocked Householder reduction with symmetric rank-2 updates
    (``A ← A − v wᵀ − w vᵀ``); O(4n³/3) flops, all vectorized.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    if n > 1 and not np.allclose(a, a.T, atol=1e-12 * max(1.0, float(np.max(np.abs(a))))):
        raise ValueError("matrix must be symmetric")
    d = np.empty(n)
    e = np.empty(max(0, n - 1))
    refl = np.zeros((n, n))
    taus = np.zeros(max(0, n - 1))
    for k in range(n - 2):
        x = a[k + 1:, k]
        v, tau, beta = _householder(x)
        taus[k] = tau
        refl[k + 1:, k] = v
        e[k] = beta
        if tau != 0.0:
            sub = a[k + 1:, k + 1:]
            w = tau * (sub @ v)
            w -= (0.5 * tau * np.dot(w, v)) * v
            sub -= np.outer(v, w)
            sub -= np.outer(w, v)
        a[k + 1:, k] = 0.0
        a[k + 1, k] = beta  # informational; d/e carry the result
        d[k] = a[k, k]
    if n >= 2:
        d[n - 2] = a[n - 2, n - 2]
        e[n - 2] = a[n - 1, n - 2]
    d[n - 1] = a[n - 1, n - 1]
    return Tridiagonalization(d=d, e=e, reflectors=refl, taus=taus)


def apply_q_inplace(tri: Tridiagonalization, out: np.ndarray) -> None:
    """In-place ``out <- Q @ out`` (columns may be any panel of a larger
    matrix: reflectors act on rows only, so column panels are
    independent — the task decomposition of the back-transformation)."""
    n = tri.d.shape[0]
    for k in range(n - 3, -1, -1):
        tau = tri.taus[k]
        if tau == 0.0:
            continue
        v = tri.reflectors[k + 1:, k]
        block = out[k + 1:, :]
        block -= np.outer(tau * v, v @ block)


def apply_q(tri: Tridiagonalization, c: np.ndarray) -> np.ndarray:
    """Compute ``Q @ c`` where Q is the accumulated reduction transform.

    Q = H_0 H_1 ... H_{n-3} with H_k acting on rows k+1..n-1; applying
    in reverse order gives Q @ c (the back-transformation of
    eigenvectors, Eq. 3 of the paper).
    """
    out = np.array(c, dtype=np.float64, copy=True)
    if out.ndim == 1:
        out = out[:, None]
        apply_q_inplace(tri, out)
        return out[:, 0]
    apply_q_inplace(tri, out)
    return out
