"""Householder bidiagonalization (DGEBRD) and back-transformations.

First stage of the dense SVD pipeline the paper's conclusion points to:
``A = Q_L B Q_Rᵀ`` with B upper bidiagonal, followed by a D&C bidiagonal
SVD and back-transformation of the singular vectors — the same scheme as
the symmetric pipeline (Eqs. 1–3) with two orthogonal factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Bidiagonalization", "bidiagonalize", "apply_ql", "apply_qr"]


@dataclass
class Bidiagonalization:
    """``A = Q_L B Q_Rᵀ``; Householder vectors stored LAPACK-style.

    ``q``/``r`` are the diagonal and superdiagonal of B (m ≥ n assumed).
    Left reflectors live in column k of ``left`` (rows k..m-1), right
    reflectors in row k of ``right`` (columns k+1..n-1).
    """

    q: np.ndarray
    r: np.ndarray
    left: np.ndarray
    taul: np.ndarray
    right: np.ndarray
    taur: np.ndarray
    shape: tuple[int, int]

    def ql(self) -> np.ndarray:
        """Materialize Q_L (m×m)."""
        m = self.shape[0]
        return apply_ql(self, np.eye(m))

    def qr(self) -> np.ndarray:
        """Materialize Q_R (n×n)."""
        n = self.shape[1]
        return apply_qr(self, np.eye(n))


def _householder(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    alpha = x[0]
    sigma = float(np.dot(x[1:], x[1:]))
    v = x.copy()
    v[0] = 1.0
    if sigma == 0.0:
        return v, 0.0, float(alpha)
    beta = -math.copysign(math.hypot(alpha, math.sqrt(sigma)), alpha)
    tau = (beta - alpha) / beta
    v[1:] = x[1:] / (alpha - beta)
    return v, float(tau), float(beta)


def bidiagonalize(a: np.ndarray) -> Bidiagonalization:
    """Reduce a dense m×n matrix (m ≥ n) to upper bidiagonal form."""
    a = np.array(a, dtype=np.float64, copy=True)
    m, n = a.shape
    if m < n:
        raise ValueError("bidiagonalize requires m >= n (pass A.T and "
                         "swap the factors for wide matrices)")
    q = np.zeros(n)
    r = np.zeros(max(0, n - 1))
    left = np.zeros((m, n))
    taul = np.zeros(n)
    right = np.zeros((n, n))
    taur = np.zeros(max(0, n - 1))
    for k in range(n):
        # Left reflector annihilates column k below the diagonal.
        v, tau, beta = _householder(a[k:, k])
        left[k:, k] = v
        taul[k] = tau
        q[k] = beta
        if tau != 0.0:
            block = a[k:, k + 1:]
            block -= np.outer(tau * v, v @ block)
        if k < n - 1:
            # Right reflector annihilates row k right of the superdiag.
            w, tau2, beta2 = _householder(a[k, k + 1:])
            right[k, k + 1:] = w
            taur[k] = tau2
            r[k] = beta2
            if tau2 != 0.0:
                block = a[k + 1:, k + 1:]
                block -= np.outer(block @ (tau2 * w), w)
    return Bidiagonalization(q=q, r=r, left=left, taul=taul, right=right,
                             taur=taur, shape=(m, n))


def apply_ql(bid: Bidiagonalization, c: np.ndarray) -> np.ndarray:
    """Q_L @ c (back-transformation of left singular vectors)."""
    out = np.array(c, dtype=np.float64, copy=True)
    n = bid.shape[1]
    for k in range(n - 1, -1, -1):
        tau = bid.taul[k]
        if tau == 0.0:
            continue
        v = bid.left[k:, k]
        block = out[k:, :]
        block -= np.outer(tau * v, v @ block)
    return out


def apply_qr(bid: Bidiagonalization, c: np.ndarray) -> np.ndarray:
    """Q_R @ c (back-transformation of right singular vectors)."""
    out = np.array(c, dtype=np.float64, copy=True)
    n = bid.shape[1]
    for k in range(n - 2, -1, -1):
        tau = bid.taur[k]
        if tau == 0.0:
            continue
        w = bid.right[k, k + 1:]
        block = out[k + 1:, :]
        block -= np.outer(tau * w, w @ block)
    return out
