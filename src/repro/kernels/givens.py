"""Givens rotations (DLARTG / DROT equivalents)."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["lartg", "rot", "lapy2"]


def lapy2(x: float, y: float) -> float:
    """sqrt(x**2 + y**2) without unnecessary overflow (DLAPY2)."""
    return math.hypot(x, y)


def lartg(f: float, g: float) -> tuple[float, float, float]:
    """Generate a plane rotation: returns (c, s, r) with::

        [  c  s ] [ f ]   [ r ]
        [ -s  c ] [ g ] = [ 0 ]

    Stable scaling follows DLARTG (sign convention of LAPACK >= 3.x:
    c >= 0 when f dominates).
    """
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.copysign(math.hypot(f, g), f if abs(f) > abs(g) else g)
    c = f / r
    s = g / r
    return c, s, r


def rot(x: np.ndarray, y: np.ndarray, c: float, s: float) -> None:
    """Apply a plane rotation to two vectors in place (BLAS DROT)::

        x <- c*x + s*y
        y <- c*y - s*x   (using the original x)
    """
    tmp = c * x + s * y
    y *= c
    y -= s * x
    x[...] = tmp
