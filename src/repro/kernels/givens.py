"""Givens rotations (DLARTG / DROT equivalents)."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["lartg", "rot", "lapy2", "apply_rotation_chains"]


def lapy2(x: float, y: float) -> float:
    """sqrt(x**2 + y**2) without unnecessary overflow (DLAPY2)."""
    return math.hypot(x, y)


def lartg(f: float, g: float) -> tuple[float, float, float]:
    """Generate a plane rotation: returns (c, s, r) with::

        [  c  s ] [ f ]   [ r ]
        [ -s  c ] [ g ] = [ 0 ]

    Stable scaling follows DLARTG (sign convention of LAPACK >= 3.x:
    c >= 0 when f dominates).
    """
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.copysign(math.hypot(f, g), f if abs(f) > abs(g) else g)
    c = f / r
    s = g / r
    return c, s, r


def rot(x: np.ndarray, y: np.ndarray, c: float, s: float) -> None:
    """Apply a plane rotation to two vectors in place (BLAS DROT)::

        x <- c*x + s*y
        y <- c*y - s*x   (using the original x)
    """
    tmp = c * x + s * y
    y *= c
    y -= s * x
    x[...] = tmp


def apply_rotation_chains(V: np.ndarray, lo: int, hi: int, chains) -> None:
    """Apply several disjoint rotation chains to columns of ``V[lo:hi]``.

    Chains (see :func:`repro.kernels.deflation.rotation_chains`) touch
    pairwise-disjoint column sets, so the ``r``-th rotations of all chains
    commute and can be applied together as one vectorized "round": gather
    the ``i``/``j`` columns of every chain still active at round ``r``,
    combine, and scatter back.  This turns ``sum(len(chain))`` BLAS-1
    column updates into ``max(len(chain))`` matrix-panel operations.

    Rounding matches the per-rotation reference ``rot``: the deflated
    column is ``(c*q_i) + (s*q_j)`` and the survivor ``(c*q_j) - (s*q_i)``
    element by element (IEEE multiplication is commutative, so
    ``q_i*c == c*q_i``), so results are bitwise identical to applying the
    rotations one at a time.
    """
    chains = [c for c in chains if c]
    if not chains:
        return
    VT = V.T        # F-ordered V: VT is C-ordered, columns become rows
    if len(chains) < 8 or hi - lo > 512:
        # Rounds only pay when many short columns amortize the
        # gather/scatter machinery; tall columns stay cache-resident in
        # the streaming loop while a round's gathered panels do not.
        # Stream each chain with scalar rotations instead (same
        # element-wise expressions, so still bitwise identical).
        for chain in chains:
            for rt in chain:
                qi = VT[lo + rt.i, lo:hi]
                qj = VT[lo + rt.j, lo:hi]
                tmp = qi * rt.c + qj * rt.s
                qj *= rt.c
                qj -= rt.s * qi
                qi[...] = tmp
        return
    max_len = max(len(c) for c in chains)
    for r in range(max_len):
        rots = [c[r] for c in chains if len(c) > r]
        m = len(rots)
        ii = np.fromiter((lo + rt.i for rt in rots), np.intp, count=m)
        jj = np.fromiter((lo + rt.j for rt in rots), np.intp, count=m)
        cc = np.fromiter((rt.c for rt in rots), np.float64, count=m)[:, None]
        ss = np.fromiter((rt.s for rt in rots), np.float64, count=m)[:, None]
        Qi = VT[ii, lo:hi]                   # gathers copy: safe to scatter
        Qj = VT[jj, lo:hi]
        VT[ii, lo:hi] = Qi * cc + Qj * ss    # deflated columns
        VT[jj, lo:hi] = Qj * cc - Qi * ss    # surviving columns
