"""Givens rotations (DLARTG / DROT equivalents)."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["lartg", "rot", "lapy2", "apply_rotation_chains"]


def lapy2(x: float, y: float) -> float:
    """sqrt(x**2 + y**2) without unnecessary overflow (DLAPY2)."""
    return math.hypot(x, y)


def lartg(f: float, g: float) -> tuple[float, float, float]:
    """Generate a plane rotation: returns (c, s, r) with::

        [  c  s ] [ f ]   [ r ]
        [ -s  c ] [ g ] = [ 0 ]

    Stable scaling follows DLARTG (sign convention of LAPACK >= 3.x:
    c >= 0 when f dominates).
    """
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.copysign(math.hypot(f, g), f if abs(f) > abs(g) else g)
    c = f / r
    s = g / r
    return c, s, r


def rot(x: np.ndarray, y: np.ndarray, c: float, s: float) -> None:
    """Apply a plane rotation to two vectors in place (BLAS DROT)::

        x <- c*x + s*y
        y <- c*y - s*x   (using the original x)
    """
    tmp = c * x + s * y
    y *= c
    y -= s * x
    x[...] = tmp


#: Minimum number of chains for the batched path to pay for its
#: gather/scatter machinery.
_MIN_BATCH_CHAINS = 8

#: Cached batched-vs-streaming crossover height (columns taller than
#: this stream; shorter ones batch).  Resolved lazily from the active
#: :mod:`repro.core.calibrate` calibration; ``set_calibration`` resets it.
_crossover: Optional[int] = None


def _reset_crossover_cache() -> None:
    global _crossover
    _crossover = None


def _crossover_height() -> int:
    global _crossover
    if _crossover is None:
        from ..core.calibrate import get_calibration
        _crossover = get_calibration().givens_crossover
    return _crossover


def _apply_streaming(V: np.ndarray, lo: int, hi: int, chains) -> None:
    """Per-rotation streaming path: tall columns stay cache-resident.

    Works on rows of ``V.T`` (columns of F-ordered ``V``) with two
    preallocated scratch rows, so the inner loop allocates nothing.
    The element-wise expressions match :func:`rot` exactly:
    ``q_i' = (c*q_i) + (s*q_j)`` and ``q_j' = (c*q_j) - (s*q_i)``.
    """
    VT = V.T
    tmp = np.empty(hi - lo)
    sqi = np.empty(hi - lo)
    for chain in chains:
        for rt in chain:
            qi = VT[lo + rt.i, lo:hi]
            qj = VT[lo + rt.j, lo:hi]
            np.multiply(qi, rt.c, out=tmp)
            np.multiply(qj, rt.s, out=sqi)
            tmp += sqi                       # q_i' = c*q_i + s*q_j
            np.multiply(qi, rt.s, out=sqi)   # s * original q_i
            qj *= rt.c
            qj -= sqi                        # q_j' = c*q_j - s*q_i
            qi[...] = tmp


def _apply_batched(V: np.ndarray, lo: int, hi: int, chains) -> None:
    """Vectorized rounds: the ``r``-th rotations of all chains commute
    (disjoint column sets), so gather the ``i``/``j`` columns of every
    chain still active at round ``r``, combine, and scatter back.  This
    turns ``sum(len(chain))`` BLAS-1 column updates into
    ``max(len(chain))`` matrix-panel operations."""
    VT = V.T
    max_len = max(len(c) for c in chains)
    for r in range(max_len):
        rots = [c[r] for c in chains if len(c) > r]
        m = len(rots)
        ii = np.fromiter((lo + rt.i for rt in rots), np.intp, count=m)
        jj = np.fromiter((lo + rt.j for rt in rots), np.intp, count=m)
        cc = np.fromiter((rt.c for rt in rots), np.float64, count=m)[:, None]
        ss = np.fromiter((rt.s for rt in rots), np.float64, count=m)[:, None]
        Qi = VT[ii, lo:hi]                   # gathers copy: safe to scatter
        Qj = VT[jj, lo:hi]
        VT[ii, lo:hi] = Qi * cc + Qj * ss    # deflated columns
        VT[jj, lo:hi] = Qj * cc - Qi * ss    # surviving columns


def apply_rotation_chains(V: np.ndarray, lo: int, hi: int, chains) -> None:
    """Apply several disjoint rotation chains to columns of ``V[lo:hi]``.

    Chains (see :func:`repro.kernels.deflation.rotation_chains`) touch
    pairwise-disjoint column sets.  Two execution strategies, both
    bitwise identical to applying the rotations one at a time with
    :func:`rot` (IEEE multiplication is commutative, and the add/sub
    order per element is the same):

    * ``_apply_streaming`` — per-rotation loop over column views; wins
      for tall columns, which stay cache-resident while a batched
      round's gathered panels do not.
    * ``_apply_batched`` — vectorized rounds across chains; wins when
      many short columns amortize the gather/scatter machinery.

    The choice is the calibrated crossover height
    (``Calibration.givens_crossover``): batch only when there are at
    least ``_MIN_BATCH_CHAINS`` chains *and* the block height ``hi - lo``
    is at or below the crossover.
    """
    chains = [c for c in chains if c]
    if not chains:
        return
    if len(chains) < _MIN_BATCH_CHAINS or hi - lo > _crossover_height():
        _apply_streaming(V, lo, hi, chains)
    else:
        _apply_batched(V, lo, hi, chains)
