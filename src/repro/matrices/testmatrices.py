"""Table III test matrices (types 1–15).

Types 1–9 are defined by their eigenvalue distribution (with
``k = 1.0e6`` and ``ulp`` the relative machine precision, as in the
paper); the tridiagonal realization applies a Haar-random orthogonal
similarity to ``diag(λ)`` and reduces back to tridiagonal form, the
standard LAPACK ``stetester`` construction.  Types 10–15 are classical
matrices with direct formulas.

=====  ======================================================
Type   Description (paper Table III)
=====  ======================================================
1      λ₁ = 1, λᵢ = 1/k
2      λᵢ = 1 (i < n), λₙ = 1/k              (~100 % deflation)
3      λᵢ = k^(−(i−1)/(n−1))                 (~50 % deflation)
4      λᵢ = 1 − ((i−1)/(n−1))(1 − 1/k)       (~20 % deflation)
5      n random, log-uniformly distributed
6      n random numbers
7      λᵢ = ulp·i (i < n), λₙ = 1
8      λ₁ = ulp, λᵢ = 1 + i·√ulp, λₙ = 2
9      λ₁ = 1, λᵢ = λᵢ₋₁ + 100·ulp
10     (1, 2, 1) Toeplitz tridiagonal
11     Wilkinson matrix W⁺
12     Clement matrix
13     Legendre (Jacobi matrix of Legendre polynomials)
14     Laguerre
15     Hermite
=====  ======================================================
"""

from __future__ import annotations

import numpy as np

from ..kernels.householder import tridiagonalize

__all__ = ["MATRIX_TYPES", "test_matrix", "spectrum_of_type",
           "tridiagonal_from_spectrum", "matrix_description"]

_ULP = np.finfo(np.float64).eps
MATRIX_TYPES = tuple(range(1, 16))

_DESCRIPTIONS = {
    1: "lam_1=1, lam_i=1/k",
    2: "lam_i=1, lam_n=1/k (~100% deflation)",
    3: "lam_i=k^(-(i-1)/(n-1)) (~50% deflation)",
    4: "lam_i=1-((i-1)/(n-1))(1-1/k) (~20% deflation)",
    5: "random, log-uniform",
    6: "random",
    7: "lam_i=ulp*i, lam_n=1",
    8: "lam_1=ulp, lam_i=1+i*sqrt(ulp), lam_n=2",
    9: "lam_1=1, lam_i=lam_{i-1}+100*ulp",
    10: "(1,2,1) tridiagonal",
    11: "Wilkinson matrix",
    12: "Clement matrix",
    13: "Legendre matrix",
    14: "Laguerre matrix",
    15: "Hermite matrix",
}


def matrix_description(mtype: int) -> str:
    return _DESCRIPTIONS[mtype]


def spectrum_of_type(mtype: int, n: int, k: float = 1.0e6,
                     seed: int = 0) -> np.ndarray | None:
    """Prescribed eigenvalues for types 1–9; None for direct types."""
    i = np.arange(1, n + 1, dtype=np.float64)
    rng = np.random.default_rng(seed + 1000 * mtype + n)
    if mtype == 1:
        lam = np.full(n, 1.0 / k)
        lam[0] = 1.0
    elif mtype == 2:
        lam = np.ones(n)
        lam[-1] = 1.0 / k
    elif mtype == 3:
        lam = k ** (-(i - 1) / max(n - 1, 1))
    elif mtype == 4:
        lam = 1.0 - ((i - 1) / max(n - 1, 1)) * (1.0 - 1.0 / k)
    elif mtype == 5:
        lam = np.exp(rng.uniform(np.log(1.0 / k), 0.0, size=n))
    elif mtype == 6:
        lam = rng.uniform(-1.0, 1.0, size=n)
    elif mtype == 7:
        lam = _ULP * i
        lam[-1] = 1.0
    elif mtype == 8:
        lam = 1.0 + i * np.sqrt(_ULP)
        lam[0] = _ULP
        lam[-1] = 2.0
    elif mtype == 9:
        lam = 1.0 + 100.0 * _ULP * (i - 1)
    else:
        return None
    return lam


def tridiagonal_from_spectrum(lam: np.ndarray,
                              seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Tridiagonal matrix with the prescribed spectrum.

    Applies a Haar-random orthogonal similarity (QR of a Gaussian
    matrix) to diag(λ) and reduces to tridiagonal form — the dense
    matrix is exactly symmetric with exactly the requested eigenvalues
    up to the similarity's rounding.
    """
    lam = np.asarray(lam, dtype=np.float64)
    n = lam.shape[0]
    if n == 1:
        return lam.copy(), np.empty(0)
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(n, n))
    q, r = np.linalg.qr(g)
    q *= np.sign(np.diag(r))[None, :]   # Haar correction
    a = (q * lam[None, :]) @ q.T
    a = 0.5 * (a + a.T)
    tri = tridiagonalize(a)
    return tri.d, tri.e


def test_matrix(mtype: int, n: int, *, k: float = 1.0e6,
                seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Generate the Table III matrix of the given type and size."""
    if mtype not in MATRIX_TYPES:
        raise ValueError(f"unknown matrix type {mtype}")
    if n < 1:
        raise ValueError("n must be >= 1")
    lam = spectrum_of_type(mtype, n, k, seed)
    if lam is not None:
        return tridiagonal_from_spectrum(lam, seed=seed + mtype)

    i = np.arange(1, n, dtype=np.float64)
    if mtype == 10:                       # (1,2,1) Toeplitz
        return 2.0 * np.ones(n), np.ones(n - 1)
    if mtype == 11:                       # Wilkinson W+
        m = (n - 1) / 2.0
        d = np.abs(np.arange(n) - m)
        return d.astype(np.float64), np.ones(n - 1)
    if mtype == 12:                       # Clement
        return np.zeros(n), np.sqrt(i * (n - i))
    if mtype == 13:                       # Legendre (Jacobi matrix)
        return np.zeros(n), i / np.sqrt(4.0 * i * i - 1.0)
    if mtype == 14:                       # Laguerre (alpha = 0)
        return 2.0 * np.arange(1, n + 1, dtype=np.float64) - 1.0, i
    if mtype == 15:                       # Hermite
        return np.zeros(n), np.sqrt(i / 2.0)
    raise AssertionError("unreachable")
