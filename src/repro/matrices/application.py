"""Application-like tridiagonal matrices (stetester substitute, Fig. 10).

The paper's Fig. 10 uses matrices collected from real applications by
the LAPACK ``stetester`` suite (quantum chemistry, structural
engineering, ...).  That collection is not redistributable here, so
these generators produce synthetic matrices with the same *qualitative
spectrum classes* the collection is known for: glued Wilkinson blocks
(tight artificial clusters), Lanczos reductions of discretized PDE
operators (smooth spectra with shared extremes), multi-cluster spectra
(electronic-structure-like), and strongly graded matrices.
"""

from __future__ import annotations

import numpy as np

from .testmatrices import tridiagonal_from_spectrum

__all__ = ["application_matrices", "glued_wilkinson", "lanczos_laplacian_1d",
           "clustered_spectrum", "graded_matrix"]


def glued_wilkinson(n_blocks: int = 10, block: int = 21,
                    glue: float = 1e-4) -> tuple[np.ndarray, np.ndarray]:
    """Glued Wilkinson matrix: W⁺ blocks coupled by tiny glue entries.

    A classical stetester stress case: each block contributes pairs of
    near-identical eigenvalues and the glue splits them at the ~glue
    scale — heavy clustering for MRRR, heavy deflation for D&C.
    """
    m = (block - 1) // 2
    dblk = np.abs(np.arange(block) - m).astype(np.float64)
    d = np.tile(dblk, n_blocks)
    e = []
    for b in range(n_blocks):
        e.extend([1.0] * (block - 1))
        if b != n_blocks - 1:
            e.append(glue)
    return d, np.array(e)


def lanczos_laplacian_1d(n: int, npoints: int | None = None,
                         seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Lanczos reduction (full reorthogonalization) of a 1-D Laplacian.

    Produces the Jacobi matrix a Krylov eigensolver would hand to the
    tridiagonal kernel — eigenvalues crowd toward the operator's
    spectrum edges, the typical finite-element situation the paper's
    introduction motivates.
    """
    npoints = npoints or (4 * n)
    rng = np.random.default_rng(seed)
    # 1-D Laplacian stencil applied implicitly.
    main = 2.0 * np.ones(npoints)

    def apply_op(v):
        w = main * v
        w[:-1] -= v[1:]
        w[1:] -= v[:-1]
        return w

    q = rng.normal(size=npoints)
    q /= np.linalg.norm(q)
    Q = [q]
    alpha = np.zeros(n)
    beta = np.zeros(n - 1)
    for j in range(n):
        w = apply_op(Q[j])
        alpha[j] = np.dot(Q[j], w)
        w -= alpha[j] * Q[j]
        if j > 0:
            w -= beta[j - 1] * Q[j - 1]
        # Full reorthogonalization keeps the Lanczos process honest.
        for q_prev in Q:
            w -= np.dot(q_prev, w) * q_prev
        if j < n - 1:
            beta[j] = np.linalg.norm(w)
            if beta[j] == 0.0:
                beta[j] = 1e-300
                w = rng.normal(size=npoints)
                w /= np.linalg.norm(w)
            else:
                w = w / beta[j]
            Q.append(w)
    return alpha, beta


def clustered_spectrum(n: int, n_clusters: int = 8, spread: float = 1e-9,
                       seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Spectrum of tight clusters at well-separated centers
    (electronic-structure-like shell structure)."""
    rng = np.random.default_rng(seed)
    centers = np.sort(rng.uniform(-1.0, 1.0, size=n_clusters))
    sizes = rng.multinomial(n - n_clusters, np.ones(n_clusters) / n_clusters)
    sizes += 1
    lam = np.concatenate([
        c + spread * rng.standard_normal(s)
        for c, s in zip(centers, sizes)])
    return tridiagonal_from_spectrum(np.sort(lam), seed=seed + 1)


def graded_matrix(n: int, ratio: float = 1e12,
                  seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Strongly graded spectrum spanning ``ratio`` orders of magnitude."""
    lam = np.geomspace(1.0 / ratio, 1.0, n)
    return tridiagonal_from_spectrum(lam, seed=seed + 2)


def application_matrices(max_n: int = 500) -> list[tuple[str, np.ndarray,
                                                         np.ndarray]]:
    """The Fig.-10 application set: list of ``(name, d, e)``."""
    out = []
    d, e = glued_wilkinson(n_blocks=max(2, max_n // 42), block=21)
    out.append((f"glued-wilkinson-{len(d)}", d, e))
    for n in (max_n // 4, max_n // 2, max_n):
        d, e = lanczos_laplacian_1d(n)
        out.append((f"lanczos-laplacian-{n}", d, e))
    d, e = clustered_spectrum(max_n // 2)
    out.append((f"clustered-{max_n // 2}", d, e))
    d, e = graded_matrix(max_n // 2)
    out.append((f"graded-{max_n // 2}", d, e))
    return out
