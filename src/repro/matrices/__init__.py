"""Test matrix generators: Table III types and application substitutes."""

from .testmatrices import (MATRIX_TYPES, test_matrix, spectrum_of_type,
                           tridiagonal_from_spectrum, matrix_description)
from .application import (application_matrices, glued_wilkinson,
                          lanczos_laplacian_1d, clustered_spectrum,
                          graded_matrix)

__all__ = [
    "MATRIX_TYPES", "test_matrix", "spectrum_of_type",
    "tridiagonal_from_spectrum", "matrix_description",
    "application_matrices", "glued_wilkinson", "lanczos_laplacian_1d",
    "clustered_spectrum", "graded_matrix",
]
