"""Execution traces: the data behind the paper's Figs. 3 and 4.

Both runtime backends (thread pool and discrete-event simulator) record a
:class:`TraceEvent` per executed task.  :class:`Trace` computes makespan,
per-kernel time breakdowns and idle fractions, and renders an ASCII Gantt
chart comparable to the paper's execution traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

#: Kernel names of the paper's Table II (color code of the DAG and traces),
#: in the paper's order.
PAPER_KERNELS = (
    "UpdateVect", "ComputeVect", "LAED4", "ComputeLocalW",
    "SortEigenvectors", "STEDC", "LASET", "Compute_deflation",
    "PermuteV", "CopyBackDeflated",
)


@dataclass(frozen=True)
class TraceEvent:
    task_uid: int
    name: str
    worker: int
    t_start: float
    t_end: float
    tag: Any = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Trace:
    """A recorded schedule: list of events plus machine geometry."""

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- summary statistics -------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.events:
            return 0.0
        t0 = min(e.t_start for e in self.events)
        t1 = max(e.t_end for e in self.events)
        return t1 - t0

    @property
    def busy_time(self) -> float:
        return sum(e.duration for e in self.events)

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-seconds spent idle within the makespan."""
        total = self.makespan * self.n_workers
        if total <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time / total)

    def kernel_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0.0) + e.duration
        return out

    def kernel_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0) + 1
        return out

    def worker_events(self) -> list[list[TraceEvent]]:
        rows: list[list[TraceEvent]] = [[] for _ in range(self.n_workers)]
        for e in sorted(self.events, key=lambda e: e.t_start):
            rows[e.worker].append(e)
        return rows

    # -- rendering ------------------------------------------------------------
    def gantt(self, width: int = 100, legend: bool = True) -> str:
        """ASCII Gantt chart: one row per worker, one letter per kernel.

        Mirrors the paper's trace figures closely enough to eyeball load
        balance, level barriers and idle (rendered as ``.``).
        """
        if not self.events:
            return "(empty trace)"
        t0 = min(e.t_start for e in self.events)
        span = self.makespan or 1.0
        scale = width / span
        names = sorted({e.name for e in self.events})
        letters = {}
        alphabet = "UVLWSQIDPCABEFGHJKMNORTXYZ"
        for i, n in enumerate(names):
            # Prefer the kernel's own initial when unique.
            c = n[0].upper()
            if c in letters.values():
                c = alphabet[i % len(alphabet)]
                while c in letters.values():
                    i += 1
                    c = alphabet[i % len(alphabet)]
            letters[n] = c
        lines = []
        for w, row in enumerate(self.worker_events()):
            buf = ["."] * width
            for e in row:
                a = int((e.t_start - t0) * scale)
                b = max(a + 1, int((e.t_end - t0) * scale))
                for x in range(a, min(b, width)):
                    buf[x] = letters[e.name]
            lines.append(f"w{w:02d} |" + "".join(buf) + "|")
        if legend:
            leg = "  ".join(f"{v}={k}" for k, v in sorted(letters.items(),
                                                          key=lambda kv: kv[1]))
            lines.append(f"legend: {leg}   (.=idle)  makespan={span:.4g}s")
        return "\n".join(lines)

    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``chrome://tracing`` / Perfetto event list.

        Each task becomes a complete ("X") event on its worker row;
        timestamps are microseconds.  Dump with ``json.dump`` and load
        in any trace viewer for a zoomable version of the paper's
        Figs. 3-4.
        """
        events: list[dict] = []
        for e in sorted(self.events, key=lambda ev: ev.t_start):
            events.append({
                "name": e.name,
                "cat": "task",
                "ph": "X",
                "ts": e.t_start * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
                "pid": 0,
                "tid": e.worker,
                "args": {"task": e.task_uid, "tag": repr(e.tag)},
            })
        return events

    def summary(self) -> str:
        kt = self.kernel_times()
        total = sum(kt.values()) or 1.0
        rows = [f"makespan      : {self.makespan:.6g} s",
                f"busy time     : {self.busy_time:.6g} worker-s",
                f"idle fraction : {self.idle_fraction:.1%}",
                "per-kernel time:"]
        for k, v in sorted(kt.items(), key=lambda kv: -kv[1]):
            rows.append(f"  {k:<20s} {v:>12.6g} s  ({v / total:6.1%})"
                        f"  x{self.kernel_counts()[k]}")
        return "\n".join(rows)
