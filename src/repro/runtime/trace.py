"""Execution traces: the data behind the paper's Figs. 3 and 4.

Both runtime backends (thread pool and discrete-event simulator) record a
:class:`TraceEvent` per executed task.  :class:`Trace` computes makespan,
per-kernel time breakdowns and idle fractions, and renders an ASCII Gantt
chart comparable to the paper's execution traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

#: Kernel names of the paper's Table II (color code of the DAG and traces),
#: in the paper's order.
PAPER_KERNELS = (
    "UpdateVect", "ComputeVect", "LAED4", "ComputeLocalW",
    "SortEigenvectors", "STEDC", "LASET", "Compute_deflation",
    "PermuteV", "CopyBackDeflated",
)


@dataclass(frozen=True)
class TraceEvent:
    task_uid: int
    name: str
    worker: int
    t_start: float
    t_end: float
    tag: Any = None
    #: Scheduling priority the task ran with (b-level quantum units;
    #: 0 when priorities are off) — annotated into trace exports so
    #: Perfetto studies can color by criticality.
    priority: int = 0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Trace:
    """A recorded schedule: list of events plus machine geometry."""

    def __init__(self, n_workers: int,
                 worker_names: Optional[list[str]] = None):
        self.n_workers = n_workers
        self.events: list[TraceEvent] = []
        #: Measured parked intervals ``(worker, t_start, t_end)`` — filled
        #: by the thread scheduler; empty for backends without parking.
        self.idle_intervals: list[tuple[int, float, float]] = []
        #: Display names of the worker rows in trace exports.  ``None``
        #: falls back to ``worker N``; the persistent WorkerPool labels
        #: its rows ``pool-worker-N`` so session traces attribute events
        #: to the long-lived threads rather than bare ids.
        self.worker_names = worker_names

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def record_idle(self, worker: int, t_start: float, t_end: float) -> None:
        if t_end > t_start:
            self.idle_intervals.append((worker, t_start, t_end))

    # -- summary statistics -------------------------------------------------
    @property
    def makespan(self) -> float:
        if not self.events:
            return 0.0
        t0 = min(e.t_start for e in self.events)
        t1 = max(e.t_end for e in self.events)
        return t1 - t0

    @property
    def busy_time(self) -> float:
        return sum(e.duration for e in self.events)

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-seconds spent idle within the makespan.

        With measured park intervals (thread scheduler), this is the
        parked time clipped to the makespan window; otherwise it falls
        back to the complement of the busy time.
        """
        total = self.makespan * self.n_workers
        if total <= 0.0:
            return 0.0
        if self.idle_intervals:
            t0 = min(e.t_start for e in self.events)
            t1 = max(e.t_end for e in self.events)
            parked = sum(max(0.0, min(b, t1) - max(a, t0))
                         for _, a, b in self.idle_intervals)
            return min(1.0, parked / total)
        return max(0.0, 1.0 - self.busy_time / total)

    @property
    def inferred_idle_fraction(self) -> float:
        """Complement-of-busy idle estimate (ignores measured parking)."""
        total = self.makespan * self.n_workers
        if total <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time / total)

    def kernel_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0.0) + e.duration
        return out

    def kernel_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0) + 1
        return out

    def worker_events(self) -> list[list[TraceEvent]]:
        rows: list[list[TraceEvent]] = [[] for _ in range(self.n_workers)]
        for e in sorted(self.events, key=lambda e: e.t_start):
            rows[e.worker].append(e)
        return rows

    # -- rendering ------------------------------------------------------------
    def gantt(self, width: int = 100, legend: bool = True) -> str:
        """ASCII Gantt chart: one row per worker, one letter per kernel.

        Mirrors the paper's trace figures closely enough to eyeball load
        balance, level barriers and idle (rendered as ``.``).
        """
        if not self.events:
            return "(empty trace)"
        t0 = min(e.t_start for e in self.events)
        span = self.makespan or 1.0
        scale = width / span
        names = sorted({e.name for e in self.events})
        letters: dict[str, str] = {}
        pool = "UVLWSQIDPCABEFGHJKMNORTXYZ0123456789"
        taken: set[str] = set()
        for n in names:
            # Prefer the kernel's own initial when unique; otherwise take
            # the first unused letter/digit, and once the whole pool is
            # exhausted (> 36 distinct names) deterministically share '#'.
            c = n[0].upper() if n else "#"
            if not c.isalnum() or c in taken:
                c = next((p for p in pool if p not in taken), "#")
            letters[n] = c
            taken.add(c)
        lines = []
        for w, row in enumerate(self.worker_events()):
            buf = ["."] * width
            for e in row:
                a = int((e.t_start - t0) * scale)
                b = max(a + 1, int((e.t_end - t0) * scale))
                for x in range(a, min(b, width)):
                    buf[x] = letters[e.name]
            lines.append(f"w{w:02d} |" + "".join(buf) + "|")
        if legend:
            leg = "  ".join(f"{v}={k}" for k, v in sorted(letters.items(),
                                                          key=lambda kv: kv[1]))
            lines.append(f"legend: {leg}   (.=idle)  makespan={span:.4g}s")
        return "\n".join(lines)

    def to_chrome_trace(self, ts_shift: float = 0.0) -> list[dict]:
        """Chrome ``chrome://tracing`` / Perfetto event list.

        Each task becomes a complete ("X") event on its worker row;
        timestamps are microseconds (optionally shifted by ``ts_shift``
        seconds so callers can align with other clocks).  Metadata
        ("M"-phase) records name the process and every worker row and
        order the rows by worker id, so Perfetto labels them.  Dump with
        ``json.dump`` and load in any trace viewer for a zoomable
        version of the paper's Figs. 3-4.
        """
        events: list[dict] = [{
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro-eig workers"},
        }]
        names = self.worker_names
        for w in range(self.n_workers):
            wname = names[w] if names and w < len(names) else f"worker {w}"
            events.append({"ph": "M", "pid": 0, "tid": w,
                           "name": "thread_name",
                           "args": {"name": wname}})
            events.append({"ph": "M", "pid": 0, "tid": w,
                           "name": "thread_sort_index",
                           "args": {"sort_index": w}})
        for e in sorted(self.events, key=lambda ev: ev.t_start):
            events.append({
                "name": e.name,
                "cat": "task",
                "ph": "X",
                "ts": (e.t_start + ts_shift) * 1e6,
                "dur": max(e.duration * 1e6, 0.01),
                "pid": 0,
                "tid": e.worker,
                "args": {"task": e.task_uid, "tag": repr(e.tag),
                         "priority": e.priority},
            })
        return events

    def summary(self) -> str:
        kt = self.kernel_times()
        total = sum(kt.values()) or 1.0
        idle = f"idle fraction : {self.idle_fraction:.1%}"
        if self.idle_intervals:
            idle += (f"  (measured parking; inferred "
                     f"{self.inferred_idle_fraction:.1%})")
        rows = [f"makespan      : {self.makespan:.6g} s",
                f"busy time     : {self.busy_time:.6g} worker-s",
                idle,
                "per-kernel time:"]
        for k, v in sorted(kt.items(), key=lambda kv: -kv[1]):
            rows.append(f"  {k:<20s} {v:>12.6g} s  ({v / total:6.1%})"
                        f"  x{self.kernel_counts()[k]}")
        return "\n".join(rows)
