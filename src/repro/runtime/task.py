"""Task and data-access primitives of the task-flow runtime.

This module provides the building blocks of the QUARK-like runtime used by
the task-flow Divide & Conquer eigensolver: named :class:`DataHandle` objects
representing logical pieces of data, access-mode qualifiers
(:class:`Access`), and :class:`Task`, a unit of work submitted by a master
thread and executed once all of its dependencies are satisfied.

Access qualifiers follow QUARK semantics (Pichon et al., IPDPS 2015, Sec. IV):

``INPUT``
    The task reads the data.  Concurrent with other readers.
``OUTPUT``
    The task overwrites the data without reading it.
``INOUT``
    The task reads and writes the data; exclusive access.
``GATHERV``
    The extension introduced by the paper: several tasks may *write*
    disjoint parts of the same data concurrently (the programmer guarantees
    disjointness).  A subsequent non-GATHERV access waits for the whole
    group of GATHERV writers.  This keeps the number of dependencies per
    task constant instead of ``Theta(n/nb)``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence


class Access(enum.Enum):
    """Data access qualifiers understood by the dependency analyzer."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    GATHERV = "gatherv"

    @property
    def is_write(self) -> bool:
        return self is not Access.INPUT


#: Convenient aliases mirroring the QUARK C API spelling.
INPUT = Access.INPUT
OUTPUT = Access.OUTPUT
INOUT = Access.INOUT
GATHERV = Access.GATHERV

_handle_counter = itertools.count()


class DataHandle:
    """A logical piece of data tracked by the dependency analyzer.

    The runtime never looks inside the payload; it only uses handle
    *identity* to order accesses, exactly like QUARK orders accesses on
    data addresses.  A handle optionally carries a ``payload`` for
    convenience (e.g. a NumPy array or a dict of merge-state fields).
    """

    __slots__ = ("name", "payload", "uid", "_last_writers", "_readers",
                 "_gatherv_open", "_group_base")

    def __init__(self, name: str = "", payload: Any = None):
        self.uid = next(_handle_counter)
        self.name = name or f"h{self.uid}"
        self.payload = payload
        # Dependency-tracking state (owned by the TaskGraph that registers
        # accesses; reset between graph builds via ``reset_tracking``).
        self._last_writers: list["Task"] = []
        self._readers: list["Task"] = []
        self._gatherv_open = False
        self._group_base: list["Task"] = []

    def reset_tracking(self) -> None:
        self._last_writers = []
        self._readers = []
        self._gatherv_open = False
        self._group_base = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataHandle({self.name!r})"


@dataclass
class TaskCost:
    """Abstract cost of one task, used by the discrete-event simulator.

    ``flops``
        Floating point operations performed (double precision).
    ``bytes_moved``
        Memory traffic in bytes for memory-bound kernels (copies,
        permutations).  A task whose runtime is dominated by
        ``bytes_moved`` contends for socket bandwidth in the simulator.
    ``serial_overhead``
        Fixed scheduling/bookkeeping seconds added to the duration.
    """

    flops: float = 0.0
    bytes_moved: float = 0.0
    serial_overhead: float = 0.0

    def __add__(self, other: "TaskCost") -> "TaskCost":
        return TaskCost(self.flops + other.flops,
                        self.bytes_moved + other.bytes_moved,
                        self.serial_overhead + other.serial_overhead)


_task_counter = itertools.count()


class Task:
    """A unit of work with declared data accesses.

    Parameters
    ----------
    func:
        The callable executed by a worker.  Called as ``func(*args)``.
    accesses:
        Sequence of ``(handle, Access)`` pairs declaring how the task
        touches data.  Order does not matter.
    name:
        Kernel name used for traces (e.g. ``"LAED4"``); tasks with the
        same name share a color in rendered traces (paper Table II).
    cost:
        Optional :class:`TaskCost` (or zero-argument callable returning
        one) consumed by the simulator backend.
    priority:
        Larger runs earlier among ready tasks (ties broken by submission
        order, i.e. the sequential-task-flow order).
    tag:
        Free-form metadata (tree node id, panel index, ...) carried into
        the trace.
    """

    __slots__ = ("uid", "name", "func", "args", "accesses", "priority",
                 "cost", "tag", "successors", "n_deps", "_done",
                 "seq", "result")

    def __init__(self,
                 func: Callable[..., Any],
                 accesses: Sequence[tuple[DataHandle, Access]] = (),
                 *,
                 args: Sequence[Any] = (),
                 name: str = "",
                 cost: Optional[TaskCost | Callable[[], TaskCost]] = None,
                 priority: int = 0,
                 tag: Any = None):
        self.uid = next(_task_counter)
        self.seq = -1  # assigned at submission
        self.name = name or getattr(func, "__name__", "task")
        self.func = func
        self.args = tuple(args)
        self.accesses = list(accesses)
        self.priority = priority
        self.cost = cost
        self.tag = tag
        self.successors: list[Task] = []
        self.n_deps = 0
        self._done = False
        self.result: Any = None

    # -- dependency bookkeeping -------------------------------------------------
    def add_successor(self, succ: "Task") -> None:
        """Add an edge self -> succ (caller must avoid duplicates per pair)."""
        self.successors.append(succ)
        succ.n_deps += 1

    @property
    def done(self) -> bool:
        return self._done

    def mark_done(self) -> None:
        self._done = True

    def run(self) -> Any:
        self.result = self.func(*self.args)
        return self.result

    def resolved_cost(self) -> TaskCost:
        """Evaluate the task cost (callables are evaluated lazily so costs
        may depend on values computed by predecessor tasks, e.g. the
        deflation count)."""
        c = self.cost
        if c is None:
            return TaskCost()
        if callable(c):
            return c()
        return c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task#{self.uid}({self.name}, tag={self.tag!r})"
