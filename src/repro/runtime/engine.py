"""The shared execution core behind every backend runtime.

The paper's central artifact is a *single* task-flow runtime (QUARK)
that executes one DAG under one readiness rule on any hardware.  This
module is that runtime's engine: everything the execution backends have
in common lives here, once —

* :class:`ReadyQueue` — the priority-ordered ready structure (higher
  b-level priority first, then overall submission order: QUARK's
  sequential-task-flow policy), optionally lock-guarded for the
  multi-threaded substrates;
* :class:`EngineRun` — the run-isolation record: per-run dependency
  countdowns and readiness release, first-failure state, trace events,
  and the single emission point for Trace / Collector counters and the
  completion hook;
* :class:`ExecutionCore` — the run-scoped service bundle: dispatch-time
  fault-injection guard, the FlightRecorder/typed-``TaskFailure``
  failure path, and the success/failure counter conventions;
* :class:`WorkerStats` — per-worker telemetry slots merged off the hot
  path;
* :class:`VirtualExecutor` — the discrete-event engine loop shared by
  the simulator family (:class:`~repro.runtime.simulator.SimulatedMachine`,
  :class:`~repro.runtime.distributed.ClusterMachine`,
  :class:`~repro.runtime.hetero.HeteroMachine`): readiness, payload
  execution with faults and flight recording, deadlock detection and
  counter emission, with the machine model (worker geometry, dispatch
  placement, virtual-clock advance) left to subclasses;
* :func:`parent_epilogue` — the generic parent-side epilogue hook that
  replaces hardcoded kernel-name lists (e.g. the eigenvector-writer
  fallback countdown of the process backend).

The backends themselves (:mod:`~repro.runtime.scheduler`,
:mod:`~repro.runtime.procpool`, :mod:`~repro.runtime.simulator`,
:mod:`~repro.runtime.distributed`, :mod:`~repro.runtime.hetero`) are
thin *substrates*: inline call, thread deques + stealing, shared-memory
process dispatch, or a virtual clock.  No module outside this one may
import an underscore-private name from another runtime module — the
conformance suite's lint test enforces it.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, Optional, Sequence

from ..errors import SchedulerError, wrap_task_error
from .trace import Trace, TraceEvent

__all__ = ["ReadyQueue", "EngineRun", "ExecutionCore", "WorkerStats",
           "VirtualExecutor", "parent_epilogue"]


class ReadyQueue:
    """The one priority-ordered ready structure (QUARK's policy).

    Entries are keyed ``(-priority, order_base + seq)`` — higher b-level
    priority first, then overall submission order — with the payload
    ``(task, run)`` kept out of the comparison, so tasks from different
    fused runs interleave by priority without ever comparing ``Task``
    objects.  Single-graph users pass no ``run``/``base`` and the key
    degenerates to ``(-priority, seq)``.

    ``locked=True`` guards push/pop with a mutex for multi-consumer
    substrates (one instance per worker deque, poppable by thieves);
    single-threaded substrates skip the lock entirely.
    """

    __slots__ = ("_heap", "_lock")

    def __init__(self, locked: bool = False):
        self._heap: list[tuple[tuple[int, int], tuple]] = []
        self._lock = threading.Lock() if locked else None

    def push(self, task, run=None, base: int = 0) -> None:
        entry = ((-task.priority, base + task.seq), (task, run))
        if self._lock is not None:
            with self._lock:
                heapq.heappush(self._heap, entry)
        else:
            heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[tuple]:
        """Best ``(task, run)`` pair, or ``None`` when empty."""
        if self._lock is not None:
            with self._lock:
                if self._heap:
                    return heapq.heappop(self._heap)[1]
            return None
        if self._heap:
            return heapq.heappop(self._heap)[1]
        return None

    def clear(self) -> None:
        if self._lock is not None:
            with self._lock:
                self._heap.clear()
        else:
            self._heap.clear()

    def __len__(self) -> int:
        # Unlocked read (GIL-atomic): used for depth telemetry only.
        return len(self._heap)


class ExecutionCore:
    """Run-scoped bundle of the engine's cross-cutting services.

    Holds the observability endpoints (Collector ``recorder``,
    ``FlightRecorder``) plus the fault ``injector``, and centralizes
    what every substrate used to hand-roll: the dispatch-time fault
    guard, the flight-recorded typed-failure path, and the
    success/failure counter conventions.
    """

    __slots__ = ("recorder", "injector", "flight")

    def __init__(self, recorder=None, injector=None, flight=None):
        self.recorder = recorder
        self.injector = injector
        self.flight = flight

    @property
    def observe(self) -> bool:
        rec = self.recorder
        return rec is not None and getattr(rec, "enabled", False)

    # -- dispatch hook ---------------------------------------------------
    def guard(self, task) -> None:
        """Fault-injection dispatch hook: consulted immediately before a
        task runs; raises :class:`~repro.errors.InjectedFault` on match."""
        if self.injector is not None:
            self.injector.maybe_fail(task)

    # -- emission --------------------------------------------------------
    def task_done(self, task, worker: int, t0: float, t1: float) -> None:
        """Flight-record one executed task (bounded ring append)."""
        if self.flight is not None:
            self.flight.record_task(task, worker, t0, t1)

    def task_failed(self, task, exc: BaseException,
                    worker: Optional[int] = None, t0: float = 0.0,
                    t1: float = 0.0,
                    flight_worker: Optional[int] = None) -> BaseException:
        """Flight-record a task failure and return the typed wrapper.

        The wrapper carries the task context (name, seq, tag, worker)
        and chains ``exc`` as its ``__cause__``; callers raise it.
        ``flight_worker`` overrides the worker id written to the ring
        (the process pool records ``-1`` for dispatch-time injections).
        """
        if self.flight is not None:
            w = flight_worker if flight_worker is not None else (
                0 if worker is None else worker)
            self.flight.record("task.fail", task.name, w, task.seq, t0, t1,
                               detail=f"{type(exc).__name__}: {exc}")
        failure = wrap_task_error(task, exc, worker=worker)
        if failure is not exc:
            failure.__cause__ = exc
        return failure

    def emit_success(self, n_tasks: int) -> None:
        if self.observe:
            self.recorder.add("scheduler.tasks", n_tasks)

    def emit_failure(self, n_failures: int, n_cancelled: int,
                     n_executed: Optional[int] = None) -> None:
        """First-failure counters.  ``n_executed`` is recorded as
        ``scheduler.tasks`` by the backends that count partial progress
        (the pools); inline backends leave it ``None``."""
        if self.observe:
            rec = self.recorder
            rec.add("scheduler.failures", n_failures)
            rec.add("scheduler.cancelled_tasks", n_cancelled)
            if n_executed is not None:
                rec.add("scheduler.tasks", n_executed)


class EngineRun:
    """Run-isolation record: one DAG submitted to an execution substrate.

    Owns the run's dependency countdowns, trace events, failure record
    and completion signal — the state that used to be duplicated between
    the thread pool's ``PoolRun`` and the process pool's ``ProcRun``
    (both names remain as aliases).  Isolation boundary of a fused
    super-DAG: a task failure marks *this* run failed (its queued tasks
    drain as no-ops) while every other run proceeds untouched.

    ``inflight`` counts tasks of this run currently executing on some
    worker (thread substrate).  Completion — and the ``on_done`` hook,
    which may recycle the run's workspace buffers — only happens once
    the run is finalized AND no task is still executing: a failed run
    must not release buffers while a peer worker is writing into them.
    The process substrate tracks the same thing as ``outstanding``
    (seq -> (worker, epoch)) because its in-flight set lives across a
    pipe, and restricts dispatch to the ``eligible`` worker set.
    """

    __slots__ = ("graph", "n_tasks", "pending", "remaining", "t0",
                 "events", "errors", "finalized", "trace", "recorder",
                 "injector", "order_base", "on_done", "_done_event",
                 "n_executed", "lock", "inflight", "_deferred",
                 "rid", "ctx", "info", "opts", "eligible", "outstanding")

    def __init__(self, graph, order_base: int = 0, *, recorder=None,
                 injector=None,
                 on_done: Optional[Callable[["EngineRun"], None]] = None,
                 rid: int = 0, ctx=None, info=None, opts=None):
        self.graph = graph
        self.n_tasks = len(graph.tasks)
        self.pending = [t.n_deps for t in graph.tasks]
        self.remaining = self.n_tasks
        self.t0 = time.perf_counter()
        self.events: list[TraceEvent] = []   # list.append is GIL-atomic
        self.errors: list[BaseException] = []
        self.finalized = False
        self.trace: Optional[Trace] = None
        self.recorder = recorder
        self.injector = injector
        self.order_base = order_base
        self.on_done = on_done
        self.n_executed = 0
        self.lock = threading.Lock()   # guards the lifecycle fields below
        self.inflight = 0              # tasks executing on a worker now
        self._deferred = False         # completion awaits inflight == 0
        self._done_event = threading.Event()
        # Process-substrate fields (unused by the thread substrate):
        self.rid = rid
        self.ctx = ctx
        self.info = info
        self.opts = opts
        self.eligible: set[int] = set()       # wids this run may use
        self.outstanding: dict[int, tuple] = {}   # seq -> (wid, epoch)

    @property
    def failed(self) -> bool:
        return bool(self.errors)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run completes (or fails); True when done."""
        return self._done_event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Trace:
        """The run's trace; re-raises the first task failure, typed."""
        if not self._done_event.wait(timeout):
            raise SchedulerError("timed out waiting for pool run")
        if self.errors:
            raise self.errors[0]
        return self.trace

    def key(self, task) -> tuple[int, int]:
        """This task's pool-wide :class:`ReadyQueue` ordering key."""
        return (-task.priority, self.order_base + task.seq)

    # -- readiness release -----------------------------------------------
    def release(self, task, stripes: Optional[Sequence] = None,
                n_stripes: int = 1) -> list:
        """Resolve ``task``'s successor dependencies; return the tasks
        that just became ready.

        The per-run countdown is indexed by submission order ``seq``
        (the graph's own ``n_deps`` is never mutated, so one graph can
        be re-analyzed or re-instantiated).  ``stripes`` is the thread
        substrate's striped lock array — a completing task decrements
        each successor under one of ``n_stripes`` locks chosen by task
        id, never a global lock; single-consumer substrates pass none.
        """
        out = []
        pending = self.pending
        if stripes is None:
            for s in task.successors:
                pending[s.seq] -= 1
                if pending[s.seq] == 0:
                    out.append(s)
        else:
            for s in task.successors:
                with stripes[s.seq % n_stripes]:
                    pending[s.seq] -= 1
                    now_ready = pending[s.seq] == 0
                if now_ready:
                    out.append(s)
        return out

    # -- the single emission point ---------------------------------------
    def finish(self, n_workers: int,
               worker_names: Optional[list[str]] = None) -> None:
        """Emit the run's outcome and signal completion.  Called exactly
        once per run, only when no task of the run is executing or can
        still start.

        Success: build the :class:`Trace` (events sorted into timeline
        order) and count ``scheduler.tasks``.  Failure: count
        ``scheduler.failures`` / ``scheduler.cancelled_tasks`` and the
        partial ``scheduler.tasks`` progress.  Then run the completion
        hook (exceptions swallowed — a hook must never kill a worker)
        and set the done event.
        """
        rec = self.recorder
        observe = rec is not None and getattr(rec, "enabled", False)
        if not self.failed:
            trace = Trace(n_workers=n_workers, worker_names=worker_names)
            self.events.sort(key=lambda e: (e.t_start, e.t_end, e.task_uid))
            trace.events = self.events
            self.trace = trace
            if observe:
                rec.add("scheduler.tasks", self.n_tasks)
        elif observe:
            rec.add("scheduler.failures", len(self.errors))
            rec.add("scheduler.cancelled_tasks", max(0, self.remaining))
            rec.add("scheduler.tasks", self.n_executed)
        if self.on_done is not None:
            try:
                self.on_done(self)
            except Exception:
                pass
        self._done_event.set()


class WorkerStats:
    """Per-worker telemetry slots, merged into the recorder off the hot
    path (after join for the one-shot scheduler; periodically and at
    shutdown for the persistent pools — no locks or recorder calls in
    the worker loop)."""

    __slots__ = ("steal_attempts", "steal_successes", "parks", "park_s",
                 "dep_s", "depth_samples")

    def __init__(self) -> None:
        self.steal_attempts = 0
        self.steal_successes = 0
        self.parks = 0
        self.park_s = 0.0
        self.dep_s = 0.0
        self.depth_samples: list[tuple[float, float]] = []

    def emit(self, rec, wid: int) -> None:
        """Fold this worker's counters and queue-depth samples into the
        recorder (caller checks ``rec.enabled``)."""
        rec.add("scheduler.steal.attempts", self.steal_attempts)
        rec.add("scheduler.steal.successes", self.steal_successes)
        rec.add("scheduler.park.count", self.parks)
        rec.add("scheduler.park.time_s", self.park_s)
        rec.add("scheduler.dep_resolve.time_s", self.dep_s)
        self.flush_depth(rec, wid)

    def flush_depth(self, rec, wid: int) -> None:
        """Export and clear the queue-depth samples (persistent pools
        must flush periodically or the lists grow without bound)."""
        samples, self.depth_samples = self.depth_samples, []
        rec.bulk_samples("scheduler.queue_depth", wid, samples)
        rec.observe_many("scheduler.queue_depth", (d for _, d in samples))


def parent_epilogue(task) -> Optional[Callable[[], None]]:
    """Resolve a task's declared parent-side epilogue, if any.

    Kernel methods tagged with a ``_parent_epilogue = "method_name"``
    class attribute ask the engine to call ``getattr(owner,
    method_name)()`` on the *parent's* replica after the task completes
    on a worker — e.g. the eigenvector-writer countdown that triggers
    the deferred STEQR fallback in the process backend (see
    :mod:`repro.core.merge`).  Replaces the hardcoded kernel-name list
    the process pool used to keep; the tag lives on the underlying
    function, so it survives graph-template instantiation.
    """
    func = task.func
    name = getattr(getattr(func, "__func__", func), "_parent_epilogue",
                   None)
    if name is None:
        return None
    owner = getattr(func, "__self__", None)
    if owner is None:
        return None
    return getattr(owner, name)


# ---------------------------------------------------------------------------
# Discrete-event substrate base
# ---------------------------------------------------------------------------


class VirtualExecutor:
    """Engine loop shared by the virtual-clock (discrete-event) family.

    Owns the full engine contract for the simulator backends: dependency
    countdowns and readiness release, the priority-ordered ready queue,
    functional-payload execution with the fault-injection guard,
    first-failure cancellation and counters, flight recording (with
    *virtual* timestamps), deadlock detection, and ready-depth/counter
    emission.  Subclasses provide only the machine model via four hooks:

    ``_virtual_workers()``
        Total worker rows in the trace.
    ``_setup(graph)``
        Initialize run-scoped substrate state (free-worker lists,
        data-location maps, the running set).
    ``_dispatch(ready)``
        Start ready tasks per the substrate's placement policy, calling
        :meth:`_exec_payload` for each started task.  The policy — e.g.
        the fluid model's pop-only-when-a-core-is-free versus the
        cluster/hetero drain-then-defer pattern — is deliberately left
        to the substrate so each model's published virtual-time results
        stay bit-identical.
    ``_advance()``
        Advance the virtual clock to the next completion(s), calling
        :meth:`_complete_task` for each finished task.

    Instances are single-run at a time (like the wall-clock schedulers);
    ``run`` keeps its state on ``self`` for the substrate hooks.
    """

    def __init__(self, *, execute: bool = True, recorder=None,
                 injector=None, flight=None):
        self.execute = execute
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder`.  Events are
        #: recorded with virtual timestamps (simulation seconds), which
        #: keeps task identity/ordering inspectable in the ring even
        #: though they do not align with the wall clock.
        self.flight = flight
        self.trace: Optional[Trace] = None

    # -- substrate hooks -------------------------------------------------
    def _virtual_workers(self) -> int:
        raise NotImplementedError

    def _setup(self, graph) -> None:
        raise NotImplementedError

    def _dispatch(self, ready: ReadyQueue) -> None:
        raise NotImplementedError

    def _has_running(self) -> bool:
        raise NotImplementedError

    def _advance(self) -> None:
        raise NotImplementedError

    # -- engine loop -----------------------------------------------------
    def run(self, graph) -> Trace:
        graph.validate_acyclic()
        tasks = graph.tasks
        core = self._core = ExecutionCore(self.recorder, self.injector,
                                          self.flight)
        self._trace = trace = Trace(n_workers=self._virtual_workers())
        self._pending = {t.uid: t.n_deps for t in tasks}
        self._ready = ready = ReadyQueue()
        for t in tasks:
            if t.n_deps == 0:
                ready.push(t)
        self._now = 0.0
        self._n_done = 0
        self._total = total = len(tasks)
        observe = core.observe
        #: (virtual t, ready-queue depth) samples for the counter track.
        depth_samples: Optional[list] = [] if observe else None
        self._setup(graph)
        while self._n_done < total:
            self._dispatch(ready)
            if observe:
                depth_samples.append((self._now, float(len(ready))))
            if not self._has_running():
                raise SchedulerError(
                    f"{type(self).__name__}: deadlock — no running tasks "
                    "but the graph is incomplete")
            self._advance()
        if observe:
            rec = self.recorder
            rec.add("scheduler.tasks", total)
            rec.bulk_samples("scheduler.ready_depth", 0, depth_samples)
            rec.observe_many("scheduler.ready_depth",
                             (d for _, d in depth_samples))
        self.trace = trace
        return trace

    # -- engine services for the substrate hooks -------------------------
    def _exec_payload(self, task) -> None:
        """Run the functional payload at (virtual) dispatch time.

        The first failure cancels the run: failure counters are emitted,
        the flight ring records the failure (virtual timestamps), and
        the typed :class:`~repro.errors.TaskFailure` propagates.  When
        ``execute=False`` (replaying a solved graph) the payload is
        skipped but the task is still marked done.
        """
        core = self._core
        if self.execute:
            try:
                core.guard(task)
                task.run()
            except Exception as exc:
                core.emit_failure(1, self._total - self._n_done - 1)
                raise core.task_failed(task, exc, t0=self._now,
                                       t1=self._now) from exc
        task.mark_done()

    def _complete_task(self, task, worker: int, t_start: float,
                       t_end: float) -> None:
        """Trace + flight one virtually-finished task and release its
        successors into the ready queue."""
        self._trace.record(TraceEvent(task.uid, task.name, worker,
                                      t_start, t_end, task.tag,
                                      task.priority))
        self._core.task_done(task, worker, t_start, t_end)
        pending = self._pending
        ready = self._ready
        for s in task.successors:
            pending[s.uid] -= 1
            if pending[s.uid] == 0:
                ready.push(s)
        self._n_done += 1
