"""Out-of-order execution backends for a :class:`~repro.runtime.dag.TaskGraph`.

Two backends execute the same DAG:

* :class:`SequentialScheduler` — runs tasks in submission order on the
  calling thread; the reference for correctness and for the paper's
  "sequential execution" timings.
* :class:`ThreadScheduler` — a work-stealing worker pool: each worker
  owns a priority deque of ready tasks, resolves successor dependency
  counts with striped per-task locks, and steals from its peers when its
  own deque runs dry.  A condition variable is used *only* to park idle
  workers — the task hot path (pop, run, resolve successors) never takes
  a global lock, which is what keeps per-task overhead low enough for
  the paper's fine-grained panel tasks (the QUARK design point).
  NumPy/BLAS kernels release the GIL, so the heavy tasks (``UpdateVect``
  GEMMs, vectorized secular solves) genuinely overlap.

Both record a :class:`~repro.runtime.trace.Trace` using wall-clock time.
Deterministic multicore *timing* studies use the discrete-event backend in
:mod:`repro.runtime.simulator` instead.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from typing import Callable, Optional

from ..errors import SchedulerError, wrap_task_error
from .dag import TaskGraph
from .task import Task
from .trace import Trace, TraceEvent


def default_thread_workers() -> int:
    """Default worker count for ``backend="threads"``: one per core.

    Derived from ``os.cpu_count()`` (clamped to [1, 32]) so defaults
    scale with the machine like the paper's 1-16 thread study assumes,
    instead of the historical hardcoded 4.
    """
    return max(1, min(32, os.cpu_count() or 4))


class _ReadyQueue:
    """Priority queue over ready tasks: higher priority first, then the
    sequential-task-flow submission order (QUARK's default policy)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (-task.priority, task.seq, task))

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class SequentialScheduler:
    """Run the whole graph on the calling thread, in submission order."""

    def __init__(self, recorder=None, injector=None, flight=None) -> None:
        self.trace: Optional[Trace] = None
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder`: one bounded
        #: ring append per executed task (plus failures), so a session
        #: can reconstruct the recent past after a crash.
        self.flight = flight
        self._current: list = [None]

    def current_tasks(self) -> list:
        """The task executing now (one slot; ``None`` when idle)."""
        return list(self._current)

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        trace = Trace(n_workers=1)
        inj = self.injector
        rec = self.recorder
        fl = self.flight
        cur = self._current
        t0 = time.perf_counter()
        for i, task in enumerate(graph.tasks):
            cur[0] = task
            a = time.perf_counter() - t0
            try:
                if inj is not None:
                    inj.maybe_fail(task)
                task.run()
            except Exception as exc:
                # First failure cancels the run: the remaining tasks are
                # dropped and the exception propagates with task context.
                cur[0] = None
                if rec is not None and rec.enabled:
                    rec.add("scheduler.failures")
                    rec.add("scheduler.cancelled_tasks",
                            len(graph.tasks) - i - 1)
                if fl is not None:
                    fl.record("task.fail", task.name, 0, task.seq,
                              t0 + a, time.perf_counter(),
                              detail=f"{type(exc).__name__}: {exc}")
                raise wrap_task_error(task, exc) from exc
            task.mark_done()
            b = time.perf_counter() - t0
            cur[0] = None
            trace.record(TraceEvent(task.uid, task.name, 0, a, b, task.tag,
                                    task.priority))
            if fl is not None:
                fl.record_task(task, 0, t0 + a, t0 + b)
        if rec is not None and rec.enabled:
            rec.add("scheduler.tasks", len(graph.tasks))
        self.trace = trace
        return trace


class _WorkerDeque:
    """One worker's ready set: a lock-guarded priority heap.

    The owner and thieves pop the same way — best (priority, seq) first —
    so QUARK's ordering policy is preserved locally; global order is only
    approximate under stealing, which does not affect correctness (any
    topological order is valid) and matches real work-stealing runtimes.
    """

    __slots__ = ("lock", "heap")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        with self.lock:
            heapq.heappush(self.heap, (-task.priority, task.seq, task))

    def pop(self) -> Optional[Task]:
        with self.lock:
            if self.heap:
                return heapq.heappop(self.heap)[2]
        return None


class ThreadScheduler:
    """Work-stealing out-of-order scheduler over ``n_workers`` OS threads.

    Design (per the low-per-task-overhead requirement of fine-grained
    task flows):

    * **per-worker ready deques** seeded round-robin in submission order
      (so the initial distribution follows the sequential task flow);
    * **striped dependency counting**: a completing task decrements each
      successor's pending count under one of ``n_stripes`` locks chosen
      by task id — no global scheduler lock on the hot path;
    * **stealing on empty**: a worker whose deque is empty sweeps its
      peers (starting from its right neighbour) and steals the best
      ready task it finds;
    * **condvar parking only when idle**: workers block on the shared
      condition variable only after an unsuccessful sweep; completions
      that publish new ready tasks bump a version counter and notify.
    """

    def __init__(self, n_workers: Optional[int] = None, n_stripes: int = 64,
                 recorder=None, injector=None, flight=None):
        if n_workers is None:
            n_workers = default_thread_workers()
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_stripes = max(1, n_stripes)
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder` (one bounded
        #: ring append per executed task / failure).
        self.flight = flight
        self.trace: Optional[Trace] = None
        self._current: list = [None] * n_workers
        self._deques: list[_WorkerDeque] = []

    def current_tasks(self) -> list:
        """Per-worker currently-executing task slots (``None`` = idle).

        Written by the workers without locks (slot stores are atomic
        under the GIL); the sampling profiler reads a racy-but-safe
        snapshot."""
        return list(self._current)

    def queue_depths(self) -> list[int]:
        """Per-worker ready-queue depths (unlocked, approximate)."""
        return [len(d.heap) for d in self._deques]

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        nw = self.n_workers
        trace = Trace(n_workers=nw)
        tasks = graph.tasks
        # Per-run countdown of unresolved dependencies, indexed by the
        # submission order ``seq`` (don't mutate the graph's n_deps so
        # the same graph can be re-analyzed / re-instantiated).
        pending = [t.n_deps for t in tasks]
        stripes = [threading.Lock() for _ in range(self.n_stripes)]
        deques = [_WorkerDeque() for _ in range(nw)]
        self._deques = deques
        self._current = current = [None] * nw
        fl = self.flight
        wevents: list[list[TraceEvent]] = [[] for _ in range(nw)]
        widle: list[list[tuple[float, float]]] = [[] for _ in range(nw)]
        rec = self.recorder
        inj = self.injector
        # Telemetry is strictly off-hot-path: when disabled nothing below
        # allocates or times; when enabled, counters accumulate in plain
        # per-worker slots and merge into the recorder once after join.
        observe = rec is not None and getattr(rec, "enabled", False)
        wstats = [_WorkerStats() for _ in range(nw)] if observe else None

        seeded = 0
        for t in tasks:
            if t.n_deps == 0:
                deques[seeded % nw].push(t)
                seeded += 1

        idle_cv = threading.Condition()
        state = {"remaining": len(tasks), "version": 0}
        errors: list[BaseException] = []
        t0 = time.perf_counter()

        def try_pop(wid: int, st: Optional["_WorkerStats"]) -> Optional[Task]:
            task = deques[wid].pop()
            if task is not None:
                return task
            if st is not None:
                st.steal_attempts += 1
            for off in range(1, nw):        # steal sweep
                task = deques[(wid + off) % nw].pop()
                if task is not None:
                    if st is not None:
                        st.steal_successes += 1
                    return task
            return None

        def worker(wid: int) -> None:
            events = wevents[wid]
            idles = widle[wid]
            my = deques[wid]
            st = wstats[wid] if observe else None
            while True:
                # Unlocked reads are safe under the GIL; the condvar
                # re-checks before parking, so no wakeup can be lost.
                if errors or state["remaining"] == 0:
                    return
                version = state["version"]
                task = try_pop(wid, st)
                if task is None:
                    parked = False
                    with idle_cv:
                        if (state["remaining"] > 0 and not errors
                                and state["version"] == version):
                            pa = time.perf_counter() - t0
                            # Timeout is a lost-wakeup safety net only.
                            idle_cv.wait(timeout=0.05)
                            pb = time.perf_counter() - t0
                            parked = True
                    if parked:
                        idles.append((pa, pb))
                        if st is not None:
                            st.parks += 1
                            st.park_s += pb - pa
                    continue

                current[wid] = task
                a = time.perf_counter() - t0
                try:
                    if inj is not None:
                        inj.maybe_fail(task)
                    task.run()
                except Exception as exc:
                    # First failure marks the run failed: peers drain
                    # their queues as no-ops and park/join within the
                    # condvar timeout bound; the exception propagates
                    # to the caller wrapped with its task context.
                    current[wid] = None
                    if fl is not None:
                        fl.record("task.fail", task.name, wid, task.seq,
                                  t0 + a, time.perf_counter(),
                                  detail=f"{type(exc).__name__}: {exc}")
                    failure = wrap_task_error(task, exc, worker=wid)
                    if failure is not exc:
                        failure.__cause__ = exc
                    with idle_cv:
                        errors.append(failure)
                        idle_cv.notify_all()
                    return
                except BaseException as exc:   # KeyboardInterrupt & co.
                    current[wid] = None
                    with idle_cv:
                        errors.append(exc)
                        idle_cv.notify_all()
                    return
                b = time.perf_counter() - t0
                task.mark_done()
                current[wid] = None
                events.append(TraceEvent(task.uid, task.name, wid,
                                         a, b, task.tag, task.priority))
                if fl is not None:
                    fl.record_task(task, wid, t0 + a, t0 + b)

                made_ready = 0
                if st is not None:
                    ra = time.perf_counter()
                for s in task.successors:
                    with stripes[s.seq % self.n_stripes]:
                        pending[s.seq] -= 1
                        now_ready = pending[s.seq] == 0
                    if now_ready:
                        my.push(s)             # locality: keep it local
                        made_ready += 1
                if st is not None:
                    st.dep_s += time.perf_counter() - ra
                    st.depth_samples.append((b, float(len(my.heap))))
                with idle_cv:
                    state["remaining"] -= 1
                    state["version"] += 1
                    if state["remaining"] == 0:
                        idle_cv.notify_all()
                    elif made_ready > 1:
                        idle_cv.notify(made_ready - 1)
                    elif made_ready == 0:
                        # Nothing new published; peers may still be
                        # waiting on tasks stolen from us — cheap notify.
                        idle_cv.notify(1)

        threads = [threading.Thread(target=worker, args=(w,), daemon=True)
                   for w in range(nw)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            # All workers are joined; the queued-but-never-run tasks were
            # drained as no-ops.  Surface the first failure, typed.
            if observe:
                rec.add("scheduler.failures", len(errors))
                rec.add("scheduler.cancelled_tasks",
                        state["remaining"] - len(errors))
                self._merge_stats(rec, wstats,
                                  len(tasks) - state["remaining"])
            raise errors[0]
        for events in wevents:
            for ev in events:
                trace.record(ev)
        trace.events.sort(key=lambda e: (e.t_start, e.t_end, e.task_uid))
        for w, idles in enumerate(widle):
            for a, b in idles:
                trace.record_idle(w, a, b)
        if observe:
            self._merge_stats(rec, wstats, len(tasks))
        self.trace = trace
        return trace

    @staticmethod
    def _merge_stats(rec, wstats: list["_WorkerStats"], n_tasks: int) -> None:
        """Fold the per-worker counter slots into the recorder."""
        rec.add("scheduler.tasks", n_tasks)
        for w, st in enumerate(wstats):
            rec.add("scheduler.steal.attempts", st.steal_attempts)
            rec.add("scheduler.steal.successes", st.steal_successes)
            rec.add("scheduler.park.count", st.parks)
            rec.add("scheduler.park.time_s", st.park_s)
            rec.add("scheduler.dep_resolve.time_s", st.dep_s)
            rec.bulk_samples("scheduler.queue_depth", w, st.depth_samples)
            rec.observe_many("scheduler.queue_depth",
                             (d for _, d in st.depth_samples))


class _WorkerStats:
    """Per-worker telemetry slots, merged into the recorder after join
    (no locks or recorder calls on the worker loop)."""

    __slots__ = ("steal_attempts", "steal_successes", "parks", "park_s",
                 "dep_s", "depth_samples")

    def __init__(self) -> None:
        self.steal_attempts = 0
        self.steal_successes = 0
        self.parks = 0
        self.park_s = 0.0
        self.dep_s = 0.0
        self.depth_samples: list[tuple[float, float]] = []


# ---------------------------------------------------------------------------
# Persistent worker pool: fused execution of many sub-graphs
# ---------------------------------------------------------------------------


#: Queue-depth samples buffered per worker before flushing to the
#: recorder (bounds telemetry memory in a long-lived pool).
_DEPTH_FLUSH = 1024


class _FusedDeque:
    """One pool worker's ready set: lock-guarded heap of keyed entries.

    Entries are ``(key, (task, run))`` where ``key = (-priority,
    global_order)`` is unique pool-wide, so heap comparison never reaches
    the (non-comparable) payload and tasks from different sub-graphs
    interleave by priority, then overall submission order."""

    __slots__ = ("lock", "heap")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.heap: list[tuple[tuple[int, int], tuple]] = []

    def push(self, key: tuple[int, int], item: tuple) -> None:
        with self.lock:
            heapq.heappush(self.heap, (key, item))

    def pop(self) -> Optional[tuple]:
        with self.lock:
            if self.heap:
                return heapq.heappop(self.heap)[1]
        return None


class PoolRun:
    """One sub-graph submitted to a :class:`WorkerPool`.

    Owns the run's dependency countdowns, trace events, failure record
    and completion signal.  Isolation boundary of the fused super-DAG:
    a task failure marks *this* run failed (its queued tasks drain as
    no-ops) while every other run proceeds untouched.

    ``inflight`` counts tasks of this run currently executing on some
    worker.  Completion (and the ``on_done`` hook, which may recycle the
    run's workspace buffers) only happens once the run is finalized AND
    ``inflight`` is zero — a failed run must not release buffers while a
    peer worker is still writing into them.
    """

    __slots__ = ("graph", "n_tasks", "pending", "remaining", "t0",
                 "events", "errors", "finalized", "trace", "recorder",
                 "injector", "order_base", "on_done", "_done_event",
                 "n_executed", "lock", "inflight", "_deferred")

    def __init__(self, graph: TaskGraph, order_base: int,
                 recorder=None, injector=None,
                 on_done: Optional[Callable[["PoolRun"], None]] = None):
        self.graph = graph
        self.n_tasks = len(graph.tasks)
        self.pending = [t.n_deps for t in graph.tasks]
        self.remaining = self.n_tasks
        self.t0 = time.perf_counter()
        self.events: list[TraceEvent] = []   # list.append is GIL-atomic
        self.errors: list[BaseException] = []
        self.finalized = False
        self.trace: Optional[Trace] = None
        self.recorder = recorder
        self.injector = injector
        self.order_base = order_base
        self.on_done = on_done
        self.n_executed = 0
        self.lock = threading.Lock()   # guards the lifecycle fields below
        self.inflight = 0              # tasks executing on a worker now
        self._deferred = False         # completion awaits inflight == 0
        self._done_event = threading.Event()

    @property
    def failed(self) -> bool:
        return bool(self.errors)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the run completes (or fails); True when done."""
        return self._done_event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Trace:
        """The run's trace; re-raises the first task failure, typed."""
        if not self._done_event.wait(timeout):
            raise SchedulerError("timed out waiting for pool run")
        if self.errors:
            raise self.errors[0]
        return self.trace


class WorkerPool:
    """Persistent work-stealing worker pool executing fused sub-graphs.

    The scheduling core is the same as :class:`ThreadScheduler` —
    per-worker priority deques, striped dependency counting, stealing on
    empty, condvar parking — but the ``n_workers`` OS threads are
    spawned **once** and park between solves instead of being joined:
    :meth:`submit` seeds a new sub-graph's source tasks into the worker
    deques and returns immediately with a :class:`PoolRun` handle, so
    panel tasks from one problem fill workers idled by another problem's
    serial merge spine (the fused super-DAG of the session layer).

    Isolation is per run: dependency countdowns, traces, fault injectors
    and failure state are all run-local; the only shared state is the
    ready deques and the idle condvar.
    """

    def __init__(self, n_workers: Optional[int] = None, n_stripes: int = 64,
                 recorder=None, flight=None):
        if n_workers is None:
            n_workers = default_thread_workers()
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_stripes = max(1, n_stripes)
        self.recorder = recorder
        #: Optional :class:`~repro.obs.live.FlightRecorder` shared by
        #: every run of the pool (one bounded append per task).
        self.flight = flight
        #: Per-worker currently-executing task slots (``None`` = idle);
        #: GIL-atomic stores, read racily by the sampling profiler and
        #: the health endpoint.
        self._current: list = [None] * n_workers
        self._parked = 0        # workers blocked on the condvar now
        self._deques = [_FusedDeque() for _ in range(n_workers)]
        self._stripes = [threading.Lock() for _ in range(self.n_stripes)]
        self._cv = threading.Condition()
        self._state = {"version": 0}
        self._shutdown = False
        self._order = 0          # global submission-order counter
        self._rr = 0             # round-robin seeding cursor
        self._active: set[PoolRun] = set()   # submitted, not yet completed
        self._t0 = time.perf_counter()       # pool epoch for telemetry
        self.runs_completed = 0
        observe = recorder is not None and getattr(recorder, "enabled",
                                                   False)
        self._wstats = ([_WorkerStats() for _ in range(n_workers)]
                        if observe else None)
        self._threads = [
            threading.Thread(target=self._worker, args=(w,), daemon=True,
                             name=f"repro-pool-{w}")
            for w in range(n_workers)]
        for th in self._threads:
            th.start()

    # -- submission ------------------------------------------------------
    def submit(self, graph: TaskGraph, *, recorder=None, injector=None,
               on_done: Optional[Callable[[PoolRun], None]] = None
               ) -> PoolRun:
        """Fuse ``graph`` into the running super-DAG; returns its handle."""
        graph.validate_acyclic()
        with self._cv:
            if self._shutdown:
                raise SchedulerError("worker pool is shut down")
            run = PoolRun(graph, self._order, recorder=recorder,
                          injector=injector, on_done=on_done)
            self._order += max(1, run.n_tasks)
            if run.n_tasks == 0:
                run.finalized = True
            else:
                self._active.add(run)
                nw = self.n_workers
                seeded = self._rr
                for t in graph.tasks:
                    if t.n_deps == 0:
                        self._deques[seeded % nw].push(
                            (-t.priority, run.order_base + t.seq), (t, run))
                        seeded += 1
                self._rr = seeded % nw
                self._state["version"] += 1
                self._cv.notify_all()
        if run.n_tasks == 0:
            # Completed outside the condvar: on_done hooks may take locks.
            self._complete(run)
        return run

    # -- worker loop -----------------------------------------------------
    def _try_pop(self, wid: int,
                 st: Optional[_WorkerStats]) -> Optional[tuple]:
        entry = self._deques[wid].pop()
        if entry is not None:
            return entry
        if st is not None:
            st.steal_attempts += 1
        nw = self.n_workers
        for off in range(1, nw):
            entry = self._deques[(wid + off) % nw].pop()
            if entry is not None:
                if st is not None:
                    st.steal_successes += 1
                return entry
        return None

    def _worker(self, wid: int) -> None:
        my = self._deques[wid]
        cv = self._cv
        stripes = self._stripes
        state = self._state
        st = self._wstats[wid] if self._wstats is not None else None
        fl = self.flight
        current = self._current
        while True:
            # Unlocked reads are safe under the GIL; the condvar re-checks
            # before parking, so no wakeup can be lost.
            if self._shutdown:
                return
            version = state["version"]
            entry = self._try_pop(wid, st)
            if entry is None:
                with cv:
                    if not self._shutdown and state["version"] == version:
                        pa = time.perf_counter()
                        self._parked += 1
                        # Timeout is a lost-wakeup safety net only.
                        cv.wait(timeout=0.05)
                        self._parked -= 1
                        if st is not None:
                            st.parks += 1
                            st.park_s += time.perf_counter() - pa
                continue

            task, run = entry
            with run.lock:
                if run.finalized:
                    continue        # failed run: drain queued tasks as no-ops
                run.inflight += 1
            current[wid] = task
            a = time.perf_counter()
            try:
                if run.injector is not None:
                    run.injector.maybe_fail(task)
                task.run()
            except Exception as exc:
                current[wid] = None
                if fl is not None:
                    fl.record("task.fail", task.name, wid, task.seq,
                              a, time.perf_counter(),
                              detail=f"{type(exc).__name__}: {exc}")
                failure = wrap_task_error(task, exc, worker=wid)
                if failure is not exc:
                    failure.__cause__ = exc
                self._fail_run(run, failure)
                continue
            except BaseException as exc:    # KeyboardInterrupt & co.
                current[wid] = None
                self._fail_run(run, exc)
                continue
            b = time.perf_counter()
            task.mark_done()
            current[wid] = None
            run.events.append(TraceEvent(task.uid, task.name, wid,
                                         a - run.t0, b - run.t0, task.tag,
                                         task.priority))
            if fl is not None:
                fl.record_task(task, wid, a, b)

            made_ready = 0
            if not run.failed:
                if st is not None:
                    ra = time.perf_counter()
                base = run.order_base
                pending = run.pending
                for s in task.successors:
                    with stripes[s.seq % self.n_stripes]:
                        pending[s.seq] -= 1
                        now_ready = pending[s.seq] == 0
                    if now_ready:
                        my.push((-s.priority, base + s.seq), (s, run))
                        made_ready += 1
                if st is not None:
                    st.dep_s += time.perf_counter() - ra
                    st.depth_samples.append((b - self._t0,
                                             float(len(my.heap))))
                    if len(st.depth_samples) >= _DEPTH_FLUSH:
                        self._flush_depth(wid, st)
            done = False
            with run.lock:
                run.inflight -= 1
                run.remaining -= 1
                run.n_executed += 1
                if not run.finalized:
                    if run.remaining == 0:
                        run.finalized = True
                        done = True
                elif run._deferred and run.inflight == 0:
                    # Last in-flight task of a failed run: completion was
                    # deferred until no task could still write into the
                    # run's (about to be recycled) workspace buffers.
                    run._deferred = False
                    done = True
            with cv:
                state["version"] += 1
                if made_ready > 1:
                    cv.notify(made_ready - 1)
                elif made_ready == 0:
                    # Nothing new published; peers may still be waiting
                    # on tasks stolen from us — cheap notify.
                    cv.notify(1)
            if done:
                self._complete(run)

    # -- run completion --------------------------------------------------
    def _fail_run(self, run: PoolRun, failure: BaseException) -> None:
        """Record a task failure.  Completion is deferred while peers are
        still executing tasks of this run: the on_done hook may hand the
        run's workspace buffers to a concurrent same-shape solve, so it
        must not fire until no in-flight task can write into them."""
        complete_now = False
        with run.lock:
            first = not run.finalized
            run.finalized = True
            run.errors.append(failure)
            run.inflight -= 1
            run.remaining -= 1
            run.n_executed += 1
            if first:
                run._deferred = True
            if run._deferred and run.inflight == 0:
                run._deferred = False
                complete_now = True
        with self._cv:
            self._state["version"] += 1
            self._cv.notify_all()
        if complete_now:
            self._complete(run)

    def _complete(self, run: PoolRun) -> None:
        """Build the run's trace/stats and signal completion.

        Called exactly once per run, only when no task of the run is
        executing or can still start (finalized and ``inflight == 0``).
        """
        rec = run.recorder
        observe = rec is not None and getattr(rec, "enabled", False)
        if not run.failed:
            trace = Trace(n_workers=self.n_workers,
                          worker_names=[f"pool-worker-{w}"
                                        for w in range(self.n_workers)])
            run.events.sort(key=lambda e: (e.t_start, e.t_end, e.task_uid))
            trace.events = run.events
            run.trace = trace
            if observe:
                rec.add("scheduler.tasks", run.n_tasks)
        elif observe:
            rec.add("scheduler.failures", len(run.errors))
            rec.add("scheduler.cancelled_tasks", max(0, run.remaining))
            rec.add("scheduler.tasks", run.n_executed)
        with self._cv:
            self.runs_completed += 1
            self._active.discard(run)
        if run.on_done is not None:
            try:
                run.on_done(run)
            except Exception:       # a hook must never kill a worker
                pass
        run._done_event.set()

    # -- telemetry -------------------------------------------------------
    def _flush_depth(self, wid: int, st: _WorkerStats) -> None:
        """Export and clear one worker's queue-depth samples.

        Unlike the one-shot :class:`ThreadScheduler` (which merges once
        after join), a persistent pool must flush periodically or the
        sample lists grow without bound over the session's lifetime.
        Timestamps are pool-epoch relative (seconds since construction).
        """
        samples, st.depth_samples = st.depth_samples, []
        rec = self.recorder
        if rec is not None and getattr(rec, "enabled", False):
            rec.bulk_samples("scheduler.queue_depth", wid, samples)
            rec.observe_many("scheduler.queue_depth",
                             (d for _, d in samples))

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop and join the workers.

        Runs that still have unexecuted tasks when the workers exit are
        *failed* (a :class:`SchedulerError` is recorded and their
        completion hooks run), never silently abandoned — a waiting
        ``PoolRun.result()`` raises instead of blocking forever.
        Idempotent.
        """
        with self._cv:
            if self._shutdown:
                return
            self._shutdown = True
            self._cv.notify_all()
        for th in self._threads:
            th.join()
        with self._cv:
            stranded = list(self._active)
            self._active.clear()
        for run in stranded:
            with run.lock:
                if run._done_event.is_set():
                    continue
                run.errors.append(SchedulerError(
                    "worker pool shut down before run completed"))
                run.finalized = True
                run._deferred = False
            self._complete(run)
        rec = self.recorder
        if (rec is not None and getattr(rec, "enabled", False)
                and self._wstats is not None):
            for w, st in enumerate(self._wstats):
                rec.add("scheduler.steal.attempts", st.steal_attempts)
                rec.add("scheduler.steal.successes", st.steal_successes)
                rec.add("scheduler.park.count", st.parks)
                rec.add("scheduler.park.time_s", st.park_s)
                rec.add("scheduler.dep_resolve.time_s", st.dep_s)
                self._flush_depth(w, st)

    # -- introspection (health endpoint / sampling profiler) -------------
    def current_tasks(self) -> list:
        """Per-worker currently-executing task (``None`` = idle)."""
        return list(self._current)

    def queue_depths(self) -> list[int]:
        """Per-worker ready-queue depths (unlocked, approximate)."""
        return [len(d.heap) for d in self._deques]

    @property
    def parked(self) -> int:
        """Workers currently blocked on the idle condvar."""
        return self._parked

    @property
    def workers_alive(self) -> int:
        return sum(1 for th in self._threads if th.is_alive())

    @property
    def closed(self) -> bool:
        return self._shutdown

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
