"""Out-of-order execution backends for a :class:`~repro.runtime.dag.TaskGraph`.

Two backends execute the same DAG:

* :class:`SequentialScheduler` — runs tasks in submission order on the
  calling thread; the reference for correctness and for the paper's
  "sequential execution" timings.
* :class:`ThreadScheduler` — a worker pool that pops ready tasks and
  resolves successors as tasks complete, i.e. the dynamic out-of-order
  scheduling of QUARK.  NumPy/BLAS kernels release the GIL, so the heavy
  tasks (``UpdateVect`` GEMMs, vectorized secular solves) genuinely
  overlap.

Both record a :class:`~repro.runtime.trace.Trace` using wall-clock time.
Deterministic multicore *timing* studies use the discrete-event backend in
:mod:`repro.runtime.simulator` instead.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Optional

from .dag import TaskGraph
from .task import Task
from .trace import Trace, TraceEvent


class _ReadyQueue:
    """Priority queue over ready tasks: higher priority first, then the
    sequential-task-flow submission order (QUARK's default policy)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (-task.priority, task.seq, task))

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class SequentialScheduler:
    """Run the whole graph on the calling thread, in submission order."""

    def __init__(self) -> None:
        self.trace: Optional[Trace] = None

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        trace = Trace(n_workers=1)
        t0 = time.perf_counter()
        for task in graph.tasks:
            a = time.perf_counter() - t0
            task.run()
            task.mark_done()
            b = time.perf_counter() - t0
            trace.record(TraceEvent(task.uid, task.name, 0, a, b, task.tag))
        self.trace = trace
        return trace


class ThreadScheduler:
    """Dynamic out-of-order scheduler over ``n_workers`` OS threads."""

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.trace: Optional[Trace] = None

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        trace = Trace(n_workers=self.n_workers)
        lock = threading.Lock()
        cv = threading.Condition(lock)
        ready = _ReadyQueue()
        remaining = len(graph.tasks)
        errors: list[BaseException] = []

        for t in graph.tasks:
            if t.n_deps == 0:
                ready.push(t)
        # Per-run countdown of unresolved dependencies (don't mutate the
        # graph's n_deps so the same graph could be re-analyzed).
        pending = {t.uid: t.n_deps for t in graph.tasks}
        t0 = time.perf_counter()

        def worker(wid: int) -> None:
            nonlocal remaining
            while True:
                with cv:
                    while len(ready) == 0 and remaining > 0 and not errors:
                        cv.wait()
                    if remaining == 0 or errors:
                        cv.notify_all()
                        return
                    task = ready.pop()
                a = time.perf_counter() - t0
                try:
                    task.run()
                except BaseException as exc:  # propagate to caller
                    with cv:
                        errors.append(exc)
                        remaining = 0
                        cv.notify_all()
                    return
                b = time.perf_counter() - t0
                with cv:
                    task.mark_done()
                    trace.record(TraceEvent(task.uid, task.name, wid,
                                            a, b, task.tag))
                    for s in task.successors:
                        pending[s.uid] -= 1
                        if pending[s.uid] == 0:
                            ready.push(s)
                    remaining -= 1
                    cv.notify_all()

        threads = [threading.Thread(target=worker, args=(w,), daemon=True)
                   for w in range(self.n_workers)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        self.trace = trace
        return trace
