"""Out-of-order execution backends for a :class:`~repro.runtime.dag.TaskGraph`.

Two backends execute the same DAG:

* :class:`SequentialScheduler` — runs tasks in submission order on the
  calling thread; the reference for correctness and for the paper's
  "sequential execution" timings.
* :class:`ThreadScheduler` — a work-stealing worker pool: each worker
  owns a priority deque of ready tasks, resolves successor dependency
  counts with striped per-task locks, and steals from its peers when its
  own deque runs dry.  A condition variable is used *only* to park idle
  workers — the task hot path (pop, run, resolve successors) never takes
  a global lock, which is what keeps per-task overhead low enough for
  the paper's fine-grained panel tasks (the QUARK design point).
  NumPy/BLAS kernels release the GIL, so the heavy tasks (``UpdateVect``
  GEMMs, vectorized secular solves) genuinely overlap.

Both record a :class:`~repro.runtime.trace.Trace` using wall-clock time.
Deterministic multicore *timing* studies use the discrete-event backend in
:mod:`repro.runtime.simulator` instead.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Optional

from ..errors import wrap_task_error
from .dag import TaskGraph
from .task import Task
from .trace import Trace, TraceEvent


class _ReadyQueue:
    """Priority queue over ready tasks: higher priority first, then the
    sequential-task-flow submission order (QUARK's default policy)."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (-task.priority, task.seq, task))

    def pop(self) -> Task:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class SequentialScheduler:
    """Run the whole graph on the calling thread, in submission order."""

    def __init__(self, recorder=None, injector=None) -> None:
        self.trace: Optional[Trace] = None
        self.recorder = recorder
        self.injector = injector

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        trace = Trace(n_workers=1)
        inj = self.injector
        rec = self.recorder
        t0 = time.perf_counter()
        for i, task in enumerate(graph.tasks):
            a = time.perf_counter() - t0
            try:
                if inj is not None:
                    inj.maybe_fail(task)
                task.run()
            except Exception as exc:
                # First failure cancels the run: the remaining tasks are
                # dropped and the exception propagates with task context.
                if rec is not None and rec.enabled:
                    rec.add("scheduler.failures")
                    rec.add("scheduler.cancelled_tasks",
                            len(graph.tasks) - i - 1)
                raise wrap_task_error(task, exc) from exc
            task.mark_done()
            b = time.perf_counter() - t0
            trace.record(TraceEvent(task.uid, task.name, 0, a, b, task.tag))
        if rec is not None and rec.enabled:
            rec.add("scheduler.tasks", len(graph.tasks))
        self.trace = trace
        return trace


class _WorkerDeque:
    """One worker's ready set: a lock-guarded priority heap.

    The owner and thieves pop the same way — best (priority, seq) first —
    so QUARK's ordering policy is preserved locally; global order is only
    approximate under stealing, which does not affect correctness (any
    topological order is valid) and matches real work-stealing runtimes.
    """

    __slots__ = ("lock", "heap")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        with self.lock:
            heapq.heappush(self.heap, (-task.priority, task.seq, task))

    def pop(self) -> Optional[Task]:
        with self.lock:
            if self.heap:
                return heapq.heappop(self.heap)[2]
        return None


class ThreadScheduler:
    """Work-stealing out-of-order scheduler over ``n_workers`` OS threads.

    Design (per the low-per-task-overhead requirement of fine-grained
    task flows):

    * **per-worker ready deques** seeded round-robin in submission order
      (so the initial distribution follows the sequential task flow);
    * **striped dependency counting**: a completing task decrements each
      successor's pending count under one of ``n_stripes`` locks chosen
      by task id — no global scheduler lock on the hot path;
    * **stealing on empty**: a worker whose deque is empty sweeps its
      peers (starting from its right neighbour) and steals the best
      ready task it finds;
    * **condvar parking only when idle**: workers block on the shared
      condition variable only after an unsuccessful sweep; completions
      that publish new ready tasks bump a version counter and notify.
    """

    def __init__(self, n_workers: int = 4, n_stripes: int = 64,
                 recorder=None, injector=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_stripes = max(1, n_stripes)
        self.recorder = recorder
        self.injector = injector
        self.trace: Optional[Trace] = None

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        nw = self.n_workers
        trace = Trace(n_workers=nw)
        tasks = graph.tasks
        # Per-run countdown of unresolved dependencies, indexed by the
        # submission order ``seq`` (don't mutate the graph's n_deps so
        # the same graph can be re-analyzed / re-instantiated).
        pending = [t.n_deps for t in tasks]
        stripes = [threading.Lock() for _ in range(self.n_stripes)]
        deques = [_WorkerDeque() for _ in range(nw)]
        wevents: list[list[TraceEvent]] = [[] for _ in range(nw)]
        widle: list[list[tuple[float, float]]] = [[] for _ in range(nw)]
        rec = self.recorder
        inj = self.injector
        # Telemetry is strictly off-hot-path: when disabled nothing below
        # allocates or times; when enabled, counters accumulate in plain
        # per-worker slots and merge into the recorder once after join.
        observe = rec is not None and getattr(rec, "enabled", False)
        wstats = [_WorkerStats() for _ in range(nw)] if observe else None

        seeded = 0
        for t in tasks:
            if t.n_deps == 0:
                deques[seeded % nw].push(t)
                seeded += 1

        idle_cv = threading.Condition()
        state = {"remaining": len(tasks), "version": 0}
        errors: list[BaseException] = []
        t0 = time.perf_counter()

        def try_pop(wid: int, st: Optional["_WorkerStats"]) -> Optional[Task]:
            task = deques[wid].pop()
            if task is not None:
                return task
            if st is not None:
                st.steal_attempts += 1
            for off in range(1, nw):        # steal sweep
                task = deques[(wid + off) % nw].pop()
                if task is not None:
                    if st is not None:
                        st.steal_successes += 1
                    return task
            return None

        def worker(wid: int) -> None:
            events = wevents[wid]
            idles = widle[wid]
            my = deques[wid]
            st = wstats[wid] if observe else None
            while True:
                # Unlocked reads are safe under the GIL; the condvar
                # re-checks before parking, so no wakeup can be lost.
                if errors or state["remaining"] == 0:
                    return
                version = state["version"]
                task = try_pop(wid, st)
                if task is None:
                    parked = False
                    with idle_cv:
                        if (state["remaining"] > 0 and not errors
                                and state["version"] == version):
                            pa = time.perf_counter() - t0
                            # Timeout is a lost-wakeup safety net only.
                            idle_cv.wait(timeout=0.05)
                            pb = time.perf_counter() - t0
                            parked = True
                    if parked:
                        idles.append((pa, pb))
                        if st is not None:
                            st.parks += 1
                            st.park_s += pb - pa
                    continue

                a = time.perf_counter() - t0
                try:
                    if inj is not None:
                        inj.maybe_fail(task)
                    task.run()
                except Exception as exc:
                    # First failure marks the run failed: peers drain
                    # their queues as no-ops and park/join within the
                    # condvar timeout bound; the exception propagates
                    # to the caller wrapped with its task context.
                    failure = wrap_task_error(task, exc, worker=wid)
                    if failure is not exc:
                        failure.__cause__ = exc
                    with idle_cv:
                        errors.append(failure)
                        idle_cv.notify_all()
                    return
                except BaseException as exc:   # KeyboardInterrupt & co.
                    with idle_cv:
                        errors.append(exc)
                        idle_cv.notify_all()
                    return
                b = time.perf_counter() - t0
                task.mark_done()
                events.append(TraceEvent(task.uid, task.name, wid,
                                         a, b, task.tag))

                made_ready = 0
                if st is not None:
                    ra = time.perf_counter()
                for s in task.successors:
                    with stripes[s.seq % self.n_stripes]:
                        pending[s.seq] -= 1
                        now_ready = pending[s.seq] == 0
                    if now_ready:
                        my.push(s)             # locality: keep it local
                        made_ready += 1
                if st is not None:
                    st.dep_s += time.perf_counter() - ra
                    st.depth_samples.append((b, float(len(my.heap))))
                with idle_cv:
                    state["remaining"] -= 1
                    state["version"] += 1
                    if state["remaining"] == 0:
                        idle_cv.notify_all()
                    elif made_ready > 1:
                        idle_cv.notify(made_ready - 1)
                    elif made_ready == 0:
                        # Nothing new published; peers may still be
                        # waiting on tasks stolen from us — cheap notify.
                        idle_cv.notify(1)

        threads = [threading.Thread(target=worker, args=(w,), daemon=True)
                   for w in range(nw)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            # All workers are joined; the queued-but-never-run tasks were
            # drained as no-ops.  Surface the first failure, typed.
            if observe:
                rec.add("scheduler.failures", len(errors))
                rec.add("scheduler.cancelled_tasks",
                        state["remaining"] - len(errors))
                self._merge_stats(rec, wstats,
                                  len(tasks) - state["remaining"])
            raise errors[0]
        for events in wevents:
            for ev in events:
                trace.record(ev)
        trace.events.sort(key=lambda e: (e.t_start, e.t_end, e.task_uid))
        for w, idles in enumerate(widle):
            for a, b in idles:
                trace.record_idle(w, a, b)
        if observe:
            self._merge_stats(rec, wstats, len(tasks))
        self.trace = trace
        return trace

    @staticmethod
    def _merge_stats(rec, wstats: list["_WorkerStats"], n_tasks: int) -> None:
        """Fold the per-worker counter slots into the recorder."""
        rec.add("scheduler.tasks", n_tasks)
        for w, st in enumerate(wstats):
            rec.add("scheduler.steal.attempts", st.steal_attempts)
            rec.add("scheduler.steal.successes", st.steal_successes)
            rec.add("scheduler.park.count", st.parks)
            rec.add("scheduler.park.time_s", st.park_s)
            rec.add("scheduler.dep_resolve.time_s", st.dep_s)
            rec.bulk_samples("scheduler.queue_depth", w, st.depth_samples)
            rec.observe_many("scheduler.queue_depth",
                             (d for _, d in st.depth_samples))


class _WorkerStats:
    """Per-worker telemetry slots, merged into the recorder after join
    (no locks or recorder calls on the worker loop)."""

    __slots__ = ("steal_attempts", "steal_successes", "parks", "park_s",
                 "dep_s", "depth_samples")

    def __init__(self) -> None:
        self.steal_attempts = 0
        self.steal_successes = 0
        self.parks = 0
        self.park_s = 0.0
        self.dep_s = 0.0
        self.depth_samples: list[tuple[float, float]] = []
