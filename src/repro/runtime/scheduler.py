"""Wall-clock execution substrates for a :class:`~repro.runtime.dag.TaskGraph`.

The shared engine (:mod:`repro.runtime.engine`) owns readiness,
cancellation, fault injection and emission; this module contributes the
in-process substrates that execute under it:

* :class:`SequentialScheduler` — runs tasks in submission order on the
  calling thread; the reference for correctness and for the paper's
  "sequential execution" timings.
* :class:`WorkerPool` — the work-stealing thread substrate: ``n_workers``
  persistent OS threads, each owning a priority
  :class:`~repro.runtime.engine.ReadyQueue`, resolving successor
  dependency counts with striped per-task locks and stealing from peers
  when their own queue runs dry.  A condition variable is used *only* to
  park idle workers — the task hot path (pop, run, resolve successors)
  never takes a global lock, which is what keeps per-task overhead low
  enough for the paper's fine-grained panel tasks (the QUARK design
  point).  NumPy/BLAS kernels release the GIL, so the heavy tasks
  (``UpdateVect`` GEMMs, vectorized secular solves) genuinely overlap.
  Many sub-graphs execute fused: each :meth:`WorkerPool.submit` returns
  an :class:`~repro.runtime.engine.EngineRun` isolation record.
* :class:`ThreadScheduler` — the one-shot facade over the same
  substrate: ``run(graph)`` spins up a private pool, submits the graph,
  joins the workers and returns the trace (the paper's 1-16 thread
  study shape).

All substrates record a :class:`~repro.runtime.trace.Trace` using
wall-clock time.  Deterministic multicore *timing* studies use the
discrete-event substrates in :mod:`repro.runtime.simulator` /
:mod:`repro.runtime.distributed` / :mod:`repro.runtime.hetero` instead.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

from ..errors import SchedulerError
from .dag import TaskGraph
from .engine import EngineRun, ExecutionCore, ReadyQueue, WorkerStats
from .trace import Trace, TraceEvent

#: Back-compat alias: the pool's run-isolation record now lives in the
#: engine (one record shared with the process substrate).
PoolRun = EngineRun


def default_thread_workers() -> int:
    """Default worker count for ``backend="threads"``: one per core.

    Derived from ``os.cpu_count()`` (clamped to [1, 32]) so defaults
    scale with the machine like the paper's 1-16 thread study assumes,
    instead of the historical hardcoded 4.
    """
    return max(1, min(32, os.cpu_count() or 4))


class SequentialScheduler:
    """Run the whole graph on the calling thread, in submission order."""

    def __init__(self, recorder=None, injector=None, flight=None) -> None:
        self.trace: Optional[Trace] = None
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder`: one bounded
        #: ring append per executed task (plus failures), so a session
        #: can reconstruct the recent past after a crash.
        self.flight = flight
        self._current: list = [None]

    def current_tasks(self) -> list:
        """The task executing now (one slot; ``None`` when idle)."""
        return list(self._current)

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        trace = Trace(n_workers=1)
        core = ExecutionCore(self.recorder, self.injector, self.flight)
        guard = core.guard
        task_done = core.task_done
        cur = self._current
        tasks = graph.tasks
        t0 = time.perf_counter()
        for i, task in enumerate(tasks):
            cur[0] = task
            a = time.perf_counter() - t0
            try:
                guard(task)
                task.run()
            except Exception as exc:
                # First failure cancels the run: the remaining tasks are
                # dropped and the exception propagates with task context.
                cur[0] = None
                core.emit_failure(1, len(tasks) - i - 1)
                raise core.task_failed(task, exc, t0=t0 + a,
                                       t1=time.perf_counter()) from exc
            task.mark_done()
            b = time.perf_counter() - t0
            cur[0] = None
            trace.record(TraceEvent(task.uid, task.name, 0, a, b, task.tag,
                                    task.priority))
            task_done(task, 0, t0 + a, t0 + b)
        core.emit_success(len(tasks))
        self.trace = trace
        return trace


# ---------------------------------------------------------------------------
# Persistent worker pool: fused execution of many sub-graphs
# ---------------------------------------------------------------------------


#: Queue-depth samples buffered per worker before flushing to the
#: recorder (bounds telemetry memory in a long-lived pool).
_DEPTH_FLUSH = 1024

#: Sentinel: "use the pool's default proper worker names".
_POOL_DEFAULT = object()


class WorkerPool:
    """Persistent work-stealing worker pool executing fused sub-graphs.

    The thread substrate of the engine: per-worker priority queues
    (:class:`~repro.runtime.engine.ReadyQueue`), striped dependency
    counting via :meth:`EngineRun.release`, stealing on empty, condvar
    parking.  The ``n_workers`` OS threads are spawned **once** and park
    between solves instead of being joined: :meth:`submit` seeds a new
    sub-graph's source tasks into the worker queues and returns
    immediately with an :class:`~repro.runtime.engine.EngineRun` handle,
    so panel tasks from one problem fill workers idled by another
    problem's serial merge spine (the fused super-DAG of the session
    layer).

    Isolation is per run: dependency countdowns, traces, fault injectors
    and failure state are all run-local (owned by the
    :class:`EngineRun`); the only shared state is the ready queues and
    the idle condvar.
    """

    def __init__(self, n_workers: Optional[int] = None, n_stripes: int = 64,
                 recorder=None, flight=None, worker_names=_POOL_DEFAULT,
                 record_idle: bool = False):
        if n_workers is None:
            n_workers = default_thread_workers()
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_stripes = max(1, n_stripes)
        self.recorder = recorder
        #: Optional :class:`~repro.obs.live.FlightRecorder` shared by
        #: every run of the pool (one bounded append per task).
        self.flight = flight
        self._core = ExecutionCore(recorder, None, flight)
        if worker_names is _POOL_DEFAULT:
            names = [f"pool-worker-{w}" for w in range(n_workers)]
        else:
            names = list(worker_names) if worker_names else None
        self._worker_names = names
        #: Absolute ``(wid, park_start, park_end)`` intervals, collected
        #: only when ``record_idle`` (the one-shot facade's idle track).
        self._idles: Optional[list[tuple[int, float, float]]] = (
            [] if record_idle else None)
        #: Per-worker currently-executing task slots (``None`` = idle);
        #: GIL-atomic stores, read racily by the sampling profiler and
        #: the health endpoint.
        self._current: list = [None] * n_workers
        self._parked = 0        # workers blocked on the condvar now
        self._deques = [ReadyQueue(locked=True) for _ in range(n_workers)]
        self._stripes = [threading.Lock() for _ in range(self.n_stripes)]
        self._cv = threading.Condition()
        self._state = {"version": 0}
        self._shutdown = False
        self._order = 0          # global submission-order counter
        self._rr = 0             # round-robin seeding cursor
        self._active: set[EngineRun] = set()  # submitted, not completed
        self._t0 = time.perf_counter()       # pool epoch for telemetry
        self.runs_completed = 0
        observe = recorder is not None and getattr(recorder, "enabled",
                                                   False)
        self._wstats = ([WorkerStats() for _ in range(n_workers)]
                        if observe else None)
        self._threads = [
            threading.Thread(target=self._worker, args=(w,), daemon=True,
                             name=f"repro-pool-{w}")
            for w in range(n_workers)]
        for th in self._threads:
            th.start()

    # -- submission ------------------------------------------------------
    def submit(self, graph: TaskGraph, *, recorder=None, injector=None,
               on_done: Optional[Callable[[EngineRun], None]] = None
               ) -> EngineRun:
        """Fuse ``graph`` into the running super-DAG; returns its handle."""
        graph.validate_acyclic()
        with self._cv:
            if self._shutdown:
                raise SchedulerError("worker pool is shut down")
            run = EngineRun(graph, self._order, recorder=recorder,
                            injector=injector, on_done=on_done)
            self._order += max(1, run.n_tasks)
            if run.n_tasks == 0:
                run.finalized = True
            else:
                self._active.add(run)
                nw = self.n_workers
                seeded = self._rr
                base = run.order_base
                for t in graph.tasks:
                    if t.n_deps == 0:
                        self._deques[seeded % nw].push(t, run, base)
                        seeded += 1
                self._rr = seeded % nw
                self._state["version"] += 1
                self._cv.notify_all()
        if run.n_tasks == 0:
            # Completed outside the condvar: on_done hooks may take locks.
            self._complete(run)
        return run

    # -- worker loop -----------------------------------------------------
    def _try_pop(self, wid: int,
                 st: Optional[WorkerStats]) -> Optional[tuple]:
        entry = self._deques[wid].pop()
        if entry is not None:
            return entry
        if st is not None:
            st.steal_attempts += 1
        nw = self.n_workers
        for off in range(1, nw):
            entry = self._deques[(wid + off) % nw].pop()
            if entry is not None:
                if st is not None:
                    st.steal_successes += 1
                return entry
        return None

    def _worker(self, wid: int) -> None:
        my = self._deques[wid]
        cv = self._cv
        stripes = self._stripes
        n_stripes = self.n_stripes
        state = self._state
        st = self._wstats[wid] if self._wstats is not None else None
        core = self._core
        idles = self._idles
        current = self._current
        while True:
            # Unlocked reads are safe under the GIL; the condvar re-checks
            # before parking, so no wakeup can be lost.
            if self._shutdown:
                return
            version = state["version"]
            entry = self._try_pop(wid, st)
            if entry is None:
                with cv:
                    if not self._shutdown and state["version"] == version:
                        pa = time.perf_counter()
                        self._parked += 1
                        # Timeout is a lost-wakeup safety net only.
                        cv.wait(timeout=0.05)
                        self._parked -= 1
                        pb = time.perf_counter()
                        if st is not None:
                            st.parks += 1
                            st.park_s += pb - pa
                        if idles is not None:
                            idles.append((wid, pa, pb))
                continue

            task, run = entry
            with run.lock:
                if run.finalized:
                    continue        # failed run: drain queued tasks as no-ops
                run.inflight += 1
            current[wid] = task
            inj = run.injector
            a = time.perf_counter()
            try:
                if inj is not None:
                    inj.maybe_fail(task)
                task.run()
            except Exception as exc:
                current[wid] = None
                self._fail_run(run, core.task_failed(
                    task, exc, worker=wid, t0=a, t1=time.perf_counter()))
                continue
            except BaseException as exc:    # KeyboardInterrupt & co.
                current[wid] = None
                self._fail_run(run, exc)
                continue
            b = time.perf_counter()
            task.mark_done()
            current[wid] = None
            run.events.append(TraceEvent(task.uid, task.name, wid,
                                         a - run.t0, b - run.t0, task.tag,
                                         task.priority))
            core.task_done(task, wid, a, b)

            made_ready = 0
            if not run.failed:
                if st is not None:
                    ra = time.perf_counter()
                base = run.order_base
                for s in run.release(task, stripes, n_stripes):
                    my.push(s, run, base)      # locality: keep it local
                    made_ready += 1
                if st is not None:
                    st.dep_s += time.perf_counter() - ra
                    st.depth_samples.append((b - self._t0, float(len(my))))
                    if len(st.depth_samples) >= _DEPTH_FLUSH:
                        self._flush_depth(wid, st)
            done = False
            with run.lock:
                run.inflight -= 1
                run.remaining -= 1
                run.n_executed += 1
                if not run.finalized:
                    if run.remaining == 0:
                        run.finalized = True
                        done = True
                elif run._deferred and run.inflight == 0:
                    # Last in-flight task of a failed run: completion was
                    # deferred until no task could still write into the
                    # run's (about to be recycled) workspace buffers.
                    run._deferred = False
                    done = True
            with cv:
                state["version"] += 1
                if made_ready > 1:
                    cv.notify(made_ready - 1)
                elif made_ready == 0:
                    # Nothing new published; peers may still be waiting
                    # on tasks stolen from us — cheap notify.
                    cv.notify(1)
            if done:
                self._complete(run)

    # -- run completion --------------------------------------------------
    def _fail_run(self, run: EngineRun, failure: BaseException) -> None:
        """Record a task failure.  Completion is deferred while peers are
        still executing tasks of this run: the on_done hook may hand the
        run's workspace buffers to a concurrent same-shape solve, so it
        must not fire until no in-flight task can write into them."""
        complete_now = False
        with run.lock:
            first = not run.finalized
            run.finalized = True
            run.errors.append(failure)
            run.inflight -= 1
            run.remaining -= 1
            run.n_executed += 1
            if first:
                run._deferred = True
            if run._deferred and run.inflight == 0:
                run._deferred = False
                complete_now = True
        with self._cv:
            self._state["version"] += 1
            self._cv.notify_all()
        if complete_now:
            self._complete(run)

    def _complete(self, run: EngineRun) -> None:
        """Pool bookkeeping, then the engine's single emission point."""
        with self._cv:
            self.runs_completed += 1
            self._active.discard(run)
        run.finish(self.n_workers, self._worker_names)

    # -- telemetry -------------------------------------------------------
    def _flush_depth(self, wid: int, st: WorkerStats) -> None:
        """Export and clear one worker's queue-depth samples.

        Unlike the one-shot facade (which merges once after join), a
        persistent pool must flush periodically or the sample lists grow
        without bound over the session's lifetime.  Timestamps are
        pool-epoch relative (seconds since construction).
        """
        rec = self.recorder
        if rec is not None and getattr(rec, "enabled", False):
            st.flush_depth(rec, wid)

    # -- lifecycle -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop and join the workers.

        Runs that still have unexecuted tasks when the workers exit are
        *failed* (a :class:`SchedulerError` is recorded and their
        completion hooks run), never silently abandoned — a waiting
        ``EngineRun.result()`` raises instead of blocking forever.
        Idempotent.
        """
        with self._cv:
            if self._shutdown:
                return
            self._shutdown = True
            self._cv.notify_all()
        for th in self._threads:
            th.join()
        with self._cv:
            stranded = list(self._active)
            self._active.clear()
        for run in stranded:
            with run.lock:
                if run._done_event.is_set():
                    continue
                run.errors.append(SchedulerError(
                    "worker pool shut down before run completed"))
                run.finalized = True
                run._deferred = False
            self._complete(run)
        rec = self.recorder
        if (rec is not None and getattr(rec, "enabled", False)
                and self._wstats is not None):
            for w, st in enumerate(self._wstats):
                st.emit(rec, w)

    # -- introspection (health endpoint / sampling profiler) -------------
    def current_tasks(self) -> list:
        """Per-worker currently-executing task (``None`` = idle)."""
        return list(self._current)

    def queue_depths(self) -> list[int]:
        """Per-worker ready-queue depths (unlocked, approximate)."""
        return [len(d) for d in self._deques]

    @property
    def idle_intervals(self) -> list[tuple[int, float, float]]:
        """Absolute park intervals (empty unless ``record_idle``)."""
        return self._idles or []

    @property
    def parked(self) -> int:
        """Workers currently blocked on the idle condvar."""
        return self._parked

    @property
    def workers_alive(self) -> int:
        return sum(1 for th in self._threads if th.is_alive())

    @property
    def closed(self) -> bool:
        return self._shutdown

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ThreadScheduler:
    """One-shot facade over the work-stealing thread substrate.

    ``run(graph)`` spins up a private :class:`WorkerPool`, submits the
    graph, joins the workers and returns the trace — the shape of the
    paper's 1-16 thread scaling study, where every measurement starts
    and ends with a quiesced machine.  Scheduling semantics (per-worker
    priority queues, striped dependency counting, stealing on empty,
    condvar parking, first-failure cancellation) are exactly the pool's;
    this class only adds the join-and-raise protocol and the idle-time
    track on the returned trace.
    """

    def __init__(self, n_workers: Optional[int] = None, n_stripes: int = 64,
                 recorder=None, injector=None, flight=None):
        if n_workers is None:
            n_workers = default_thread_workers()
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.n_stripes = max(1, n_stripes)
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder` (one bounded
        #: ring append per executed task / failure).
        self.flight = flight
        self.trace: Optional[Trace] = None
        self._pool: Optional[WorkerPool] = None

    def current_tasks(self) -> list:
        """Per-worker currently-executing task slots (``None`` = idle)."""
        pool = self._pool
        if pool is not None:
            return pool.current_tasks()
        return [None] * self.n_workers

    def queue_depths(self) -> list[int]:
        """Per-worker ready-queue depths (unlocked, approximate)."""
        pool = self._pool
        if pool is not None:
            return pool.queue_depths()
        return [0] * self.n_workers

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        pool = WorkerPool(self.n_workers, self.n_stripes,
                          recorder=self.recorder, flight=self.flight,
                          worker_names=None, record_idle=True)
        self._pool = pool
        try:
            run = pool.submit(graph, recorder=self.recorder,
                              injector=self.injector)
            run.wait()
        finally:
            pool.shutdown()
        if run.errors:
            # All workers are joined; the queued-but-never-run tasks
            # were drained as no-ops.  Surface the first failure, typed.
            raise run.errors[0]
        trace = run.trace
        for w, pa, pb in pool.idle_intervals:
            trace.record_idle(w, pa - run.t0, pb - run.t0)
        self.trace = trace
        return trace
