"""Task-flow runtime (QUARK equivalent) used by the D&C eigensolver.

Public surface:

* :class:`~repro.runtime.task.DataHandle`, :class:`~repro.runtime.task.Task`,
  :class:`~repro.runtime.task.TaskCost` and the access qualifiers
  ``INPUT`` / ``OUTPUT`` / ``INOUT`` / ``GATHERV``;
* :class:`~repro.runtime.dag.TaskGraph` — dependency analysis;
* :mod:`~repro.runtime.engine` — the shared execution core
  (:class:`~repro.runtime.engine.ExecutionCore`,
  :class:`~repro.runtime.engine.EngineRun`,
  :class:`~repro.runtime.engine.ReadyQueue`,
  :class:`~repro.runtime.engine.VirtualExecutor`): readiness, priority
  order, first-failure cancellation, fault injection and emission, owned
  once for every substrate;
* :class:`~repro.runtime.scheduler.SequentialScheduler` /
  :class:`~repro.runtime.scheduler.ThreadScheduler` /
  :class:`~repro.runtime.scheduler.WorkerPool` — wall-clock in-process
  substrates;
* :class:`~repro.runtime.procpool.ProcPool` /
  :class:`~repro.runtime.procpool.ProcScheduler` — process substrates
  (shared-memory solver pool, generic picklable task flows);
* :class:`~repro.runtime.simulator.Machine` /
  :class:`~repro.runtime.simulator.SimulatedMachine` — deterministic
  discrete-event execution on a virtual multicore, with
  :class:`~repro.runtime.distributed.ClusterMachine` and
  :class:`~repro.runtime.hetero.HeteroMachine` extending the same
  virtual substrate across nodes and accelerators;
* :class:`~repro.runtime.quark.Quark` — QUARK-style facade;
* :class:`~repro.runtime.trace.Trace` — schedule recording/analysis;
* :class:`~repro.runtime.faults.FaultSpec` /
  :class:`~repro.runtime.faults.FaultInjector` — deterministic fault
  injection for exercising the failure paths.
"""

from .task import (Access, DataHandle, Task, TaskCost,
                   INPUT, OUTPUT, INOUT, GATHERV)
from .dag import TaskGraph
from .engine import (EngineRun, ExecutionCore, ReadyQueue, VirtualExecutor,
                     WorkerStats, parent_epilogue)
from .faults import FaultInjector, FaultSpec
from .scheduler import (PoolRun, SequentialScheduler, ThreadScheduler,
                        WorkerPool, default_thread_workers)
from .simulator import Machine, SimulatedMachine
from .procpool import ProcPool, ProcRun, ProcScheduler
from .quark import Quark
from .hetero import Accelerator, HeteroMachine, GPU_OFFLOAD_POLICY
from .distributed import ClusterMachine, Network, tree_placement
from .trace import Trace, TraceEvent, PAPER_KERNELS

__all__ = [
    "Access", "DataHandle", "Task", "TaskCost",
    "INPUT", "OUTPUT", "INOUT", "GATHERV",
    "TaskGraph",
    "EngineRun", "ExecutionCore", "ReadyQueue", "VirtualExecutor",
    "WorkerStats", "parent_epilogue",
    "SequentialScheduler", "ThreadScheduler",
    "WorkerPool", "PoolRun", "default_thread_workers",
    "ProcPool", "ProcRun", "ProcScheduler",
    "Machine", "SimulatedMachine", "Quark",
    "FaultSpec", "FaultInjector",
    "Accelerator", "HeteroMachine", "GPU_OFFLOAD_POLICY",
    "ClusterMachine", "Network", "tree_placement",
    "Trace", "TraceEvent", "PAPER_KERNELS",
]
