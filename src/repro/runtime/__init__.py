"""Task-flow runtime (QUARK equivalent) used by the D&C eigensolver.

Public surface:

* :class:`~repro.runtime.task.DataHandle`, :class:`~repro.runtime.task.Task`,
  :class:`~repro.runtime.task.TaskCost` and the access qualifiers
  ``INPUT`` / ``OUTPUT`` / ``INOUT`` / ``GATHERV``;
* :class:`~repro.runtime.dag.TaskGraph` — dependency analysis;
* :class:`~repro.runtime.scheduler.SequentialScheduler` /
  :class:`~repro.runtime.scheduler.ThreadScheduler` — real execution;
* :class:`~repro.runtime.simulator.Machine` /
  :class:`~repro.runtime.simulator.SimulatedMachine` — deterministic
  discrete-event execution on a virtual multicore;
* :class:`~repro.runtime.quark.Quark` — QUARK-style facade;
* :class:`~repro.runtime.trace.Trace` — schedule recording/analysis;
* :class:`~repro.runtime.faults.FaultSpec` /
  :class:`~repro.runtime.faults.FaultInjector` — deterministic fault
  injection for exercising the failure paths.
"""

from .task import (Access, DataHandle, Task, TaskCost,
                   INPUT, OUTPUT, INOUT, GATHERV)
from .dag import TaskGraph
from .faults import FaultInjector, FaultSpec
from .scheduler import (PoolRun, SequentialScheduler, ThreadScheduler,
                        WorkerPool, default_thread_workers)
from .simulator import Machine, SimulatedMachine
from .quark import Quark
from .hetero import Accelerator, HeteroMachine, GPU_OFFLOAD_POLICY
from .distributed import ClusterMachine, Network, tree_placement
from .trace import Trace, TraceEvent, PAPER_KERNELS

__all__ = [
    "Access", "DataHandle", "Task", "TaskCost",
    "INPUT", "OUTPUT", "INOUT", "GATHERV",
    "TaskGraph", "SequentialScheduler", "ThreadScheduler",
    "WorkerPool", "PoolRun", "default_thread_workers",
    "Machine", "SimulatedMachine", "Quark",
    "FaultSpec", "FaultInjector",
    "Accelerator", "HeteroMachine", "GPU_OFFLOAD_POLICY",
    "ClusterMachine", "Network", "tree_placement",
    "Trace", "TraceEvent", "PAPER_KERNELS",
]
