"""A QUARK-flavoured facade over the task-flow runtime.

``Quark`` bundles a :class:`~repro.runtime.dag.TaskGraph` with an execution
backend so algorithm code reads like the original PLASMA sources: a master
submits tasks with data-access qualifiers and finally calls ``barrier()``
(QUARK's ``QUARK_Barrier``) to execute everything submitted so far.

Backends
--------
``"sequential"``
    Submission-order execution on the calling thread.
``"threads"``
    Real out-of-order execution on ``n_workers`` OS threads.
``"processes"``
    Real out-of-order execution on ``n_workers`` spawned OS processes
    (:class:`~repro.runtime.procpool.ProcScheduler`); task functions and
    arguments must be picklable, results come back via ``task.result``.
``"simulated"``
    Deterministic discrete-event execution on a virtual
    :class:`~repro.runtime.simulator.Machine` (default: the paper's
    16-core dual-socket Xeon).

Every backend is a substrate of the shared engine
(:mod:`repro.runtime.engine`), so fault injection, flight recording,
priorities and first-failure cancellation behave identically on all of
them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from .dag import TaskGraph
from .faults import FaultInjector, FaultSpec
from .scheduler import (SequentialScheduler, ThreadScheduler,
                        default_thread_workers)
from .simulator import Machine, SimulatedMachine
from .task import Access, DataHandle, Task, TaskCost
from .trace import Trace


class Quark:
    """Sequential-task-flow entry point, mirroring the QUARK C API."""

    def __init__(self, backend: str = "sequential", *,
                 n_workers: Optional[int] = None,
                 machine: Optional[Machine] = None,
                 recorder=None, fault_injection: Optional[FaultSpec] = None,
                 flight=None):
        self.backend = backend
        self.recorder = recorder
        #: Optional :class:`~repro.obs.live.FlightRecorder` handed to
        #: every backend (the simulator records virtual timestamps —
        #: task identity and ordering stay inspectable in the ring).
        self.flight = flight
        self.injector = (FaultInjector(fault_injection)
                         if fault_injection is not None else None)
        self.machine = machine if machine is not None else (
            Machine() if backend == "simulated" else None)
        if n_workers is None:
            # threads/processes: one worker per core (clamped), like the
            # paper's 1-16 thread study — not a hardcoded constant.
            n_workers = self.machine.n_cores if self.machine else (
                default_thread_workers()
                if backend in ("threads", "processes") else 1)
        self.n_workers = n_workers
        self.graph = TaskGraph()
        self.traces: list[Trace] = []

    # -- submission ------------------------------------------------------------
    def insert_task(self, func: Callable[..., Any],
                    accesses: Sequence[tuple[DataHandle, Access]] = (),
                    **kwargs: Any) -> Task:
        return self.graph.insert_task(func, accesses, **kwargs)

    def new_handle(self, name: str = "", payload: Any = None) -> DataHandle:
        return DataHandle(name, payload)

    # -- execution ---------------------------------------------------------------
    def _make_scheduler(self):
        if self.backend == "sequential":
            return SequentialScheduler(recorder=self.recorder,
                                       injector=self.injector,
                                       flight=self.flight)
        if self.backend == "threads":
            return ThreadScheduler(self.n_workers, recorder=self.recorder,
                                   injector=self.injector,
                                   flight=self.flight)
        if self.backend == "processes":
            from .procpool import ProcScheduler
            return ProcScheduler(self.n_workers, recorder=self.recorder,
                                 injector=self.injector,
                                 flight=self.flight)
        if self.backend == "simulated":
            return SimulatedMachine(self.machine, n_workers=self.n_workers,
                                    recorder=self.recorder,
                                    injector=self.injector,
                                    flight=self.flight)
        raise ValueError(f"unknown backend {self.backend!r}")

    def barrier(self) -> Trace:
        """Execute every task submitted since the previous barrier."""
        scheduler = self._make_scheduler()
        trace = scheduler.run(self.graph)
        self.traces.append(trace)
        self.graph = TaskGraph()
        return trace

    @property
    def last_trace(self) -> Optional[Trace]:
        return self.traces[-1] if self.traces else None
