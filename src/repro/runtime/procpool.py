"""Process-parallel execution backend: the task flow on real cores.

Python's GIL serializes fine-grained pure-Python tasks, so the threads
backend only scales where NumPy releases the GIL (the cubic GEMMs).
The paper's point (Pichon et al., IPDPS 2015) is that the *quadratic*
merge kernels — Compute_deflation, PermuteV, LAED4, CopyBack — must run
alongside them.  :class:`ProcPool` gets real concurrency from OS
processes while keeping the task-flow semantics of
:class:`~repro.runtime.scheduler.WorkerPool` intact:

* **Shared-memory workspaces.**  V / Vws / D (and every merge's secular
  block X) live in ``multiprocessing.shared_memory`` segments managed
  by a :class:`~repro.core.session.SharedWorkspacePool`, so panel tasks
  in worker processes mutate the same physical pages the parent reads —
  task dispatch ships only ``(run id, task.seq)`` over a pipe, never
  array data.

* **Replica graphs + state deltas.**  Each worker builds an *identical*
  replica of the solve's :class:`DCContext` and task graph from the
  tiny problem description ``(d, e, opts, subset)`` — graph
  instantiation is deterministic, and the parent ships its calibration
  so priorities and panel widths match bit for bit.  Kernels that
  produce small Python state (deflation results, secular roots, the
  rank-one vector) return a pickled *delta*; the parent applies it to
  its own replica and broadcasts it to the other workers **before**
  marking successors ready, so FIFO pipe order guarantees every task
  sees its predecessors' state.  Everything O(n²) stays in shared
  memory.

* **Parent-side scheduling.**  The parent's dispatcher thread drives
  the shared engine (:mod:`repro.runtime.engine`): readiness and
  release through :class:`~repro.runtime.engine.EngineRun`, the b-level
  priority order through :class:`~repro.runtime.engine.ReadyQueue`
  (same keys as ``WorkerPool``: ``(-priority, order_base + seq)``),
  per-run fault injectors at dispatch, the secular-failure STEQR
  fallback (child replicas set ``ctx._defer_fallback``; the parent-side
  countdown is the engine's :func:`~repro.runtime.engine.parent_epilogue`
  hook), and degrades a worker crash into a typed
  :class:`~repro.errors.TaskFailure` while surviving workers drain and
  a replacement is respawned for future runs.

Numerics are bitwise identical to the sequential backend: every kernel
executes exactly once, on operands that are either shared pages or
exact pickled copies of the producing kernel's outputs.
"""

from __future__ import annotations

import concurrent.futures as cf
import itertools
import os
import pickle
import queue
import signal
import threading
import time
import multiprocessing as mp
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Any, Callable, Optional

import numpy as np

from ..errors import SchedulerError, TaskFailure
from .engine import EngineRun, ExecutionCore, ReadyQueue, parent_epilogue
from .scheduler import default_thread_workers
from .trace import Trace, TraceEvent

__all__ = ["ProcPool", "ProcRun", "ProcScheduler"]

#: Back-compat alias: the run-isolation record now lives in the engine
#: (one record shared with the thread substrate's ``PoolRun``).
ProcRun = EngineRun

#: Tasks dispatched ahead to each worker so the pipe hides latency.
_PREFETCH = 2
#: Bound on the child -> parent event queue (backpressure, not loss).
_RESULT_QUEUE_CAP = 1024
_BLAS_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


# Resource-tracker note: spawned children inherit the parent's tracker
# process, and ``SharedMemory`` registers a segment only on *create*.
# Every name is therefore registered exactly once (parent workspaces by
# the parent pool, X blocks by the child that allocates them) and
# unregistered exactly once by whoever unlinks it — and if a worker is
# killed between creating an X block and the parent adopting it, the
# shared tracker still reclaims the segment at exit.

# ---------------------------------------------------------------------------
# Kernel state deltas
# ---------------------------------------------------------------------------
#
# Kernels either mutate shared arrays in place (no delta) or produce
# small Python state on their owner object (the DCContext or a
# MergeState).  The owner is recovered from the task's bound method, so
# extraction/application need no registry of spans — ``task.func`` on
# any replica is bound to that replica's owner.

def _extract_delta(task, segs) -> Optional[bytes]:
    """Pickle the Python state ``task`` produced, or None."""
    f = task.func
    name = getattr(f, "__name__", "")
    o = getattr(f, "__self__", None)
    data: Any
    if name == "t_scale":
        data = (o.d, o.e, o.scale_info)
    elif name == "t_partition":
        data = o.d_adj
    elif name == "t_compute_deflation":
        x_name = segs.name_of(o.X) if o.X is not None and o.X.size else None
        data = {"defl": o.defl, "x": x_name,
                "stats": (o.stats.n, o.stats.k, o.stats.n_rotations)}
    elif name == "t_laed4_panel":
        p0, _ = task.args
        ok = p0 in o._sweeps
        roots = o.clip_roots(*task.args) if ok else None
        data = {"vals": (o.orig[roots], o.tau[roots], o.lam[roots])
                        if ok and roots.size else None,
                "sweeps": o._sweeps.get(p0),
                "failed": o.secular_failed,
                "exc": str(o.fallback_exc) if o.fallback_exc else None}
        if data["vals"] is None and data["sweeps"] is None \
                and not data["failed"]:
            return None                       # empty panel past k: no-op
    elif name == "t_local_w_panel":
        pid = task.args[2]
        w = o.wparts.get(pid)
        if w is None:
            return None                       # skipped (empty / failed)
        data = (pid, w)
    elif name == "t_reduce_w":
        data = {"zhat": o.zhat,
                "sweeps": o.stats.secular_sweeps,
                "wanted": o.wanted_stored,
                "failed": o.secular_failed,
                "exc": str(o.fallback_exc) if o.fallback_exc else None}
    elif name == "t_sort_join":
        data = (o.order, o.D_sorted)
    elif name == "t_scale_back":
        data = o.D_sorted
    else:
        return None                           # shared-array kernel
    return pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)


def _apply_delta(task, data, attach) -> None:
    """Apply a delta to this process's replica.

    ``attach(name, shape)`` maps a shared-memory segment into this
    process (the parent adopts ownership; children only attach).
    """
    from ..errors import ConvergenceError
    from ..kernels.deflation import rotation_chains

    f = task.func
    name = getattr(f, "__name__", "")
    o = getattr(f, "__self__", None)
    if name == "t_scale":
        o.d, o.e, o.scale_info = data
    elif name == "t_partition":
        o.d_adj = data
    elif name == "t_compute_deflation":
        defl = data["defl"]
        o.defl = defl
        o.chains = rotation_chains(defl.rotations)
        cuts = np.flatnonzero(np.diff(defl.perm) != 1) + 1
        o._perm_runs = [0, *cuts.tolist(), defl.perm.size]
        k = defl.k
        o.orig = np.zeros(k, dtype=np.intp)
        o.tau = np.zeros(k)
        o.lam = np.zeros(k)
        o.X = attach(data["x"], (k, k)) if data["x"] else np.zeros((0, 0))
        o.stats.n, o.stats.k, o.stats.n_rotations = data["stats"]
        o.ctx._merge_stats[(o.lo, o.hi)] = o.stats
    elif name == "t_laed4_panel":
        if data["vals"] is not None:
            roots = o.clip_roots(*task.args)
            o.orig[roots], o.tau[roots], o.lam[roots] = data["vals"]
        if data["sweeps"] is not None:
            o._sweeps[task.args[0]] = data["sweeps"]
        if data["failed"]:
            o._mark_secular_failure(ConvergenceError(
                data["exc"] or "secular solve failed on a worker process"))
    elif name == "t_local_w_panel":
        pid, w = data
        o.wparts[pid] = w
    elif name == "t_reduce_w":
        o.stats.secular_sweeps = data["sweeps"]
        o.wanted_stored = data["wanted"]
        o.zhat = data["zhat"]
        if data["failed"]:
            o._mark_secular_failure(ConvergenceError(
                data["exc"] or "rank-one reduction failed on a worker "
                               "process"))
    elif name == "t_sort_join":
        o.order, o.D_sorted = data
    elif name == "t_scale_back":
        o.D_sorted = data


def _encode_exc(exc: BaseException):
    """Best-effort portable encoding of a worker exception."""
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return blob
    except Exception:
        return (type(exc).__name__, str(exc))


def _decode_exc(enc) -> BaseException:
    if isinstance(enc, (bytes, bytearray)):
        try:
            return pickle.loads(enc)
        except Exception:
            return RuntimeError("worker raised an unpicklable exception")
    name, text = enc
    return RuntimeError(f"{name}: {text}")


# ---------------------------------------------------------------------------
# Child process
# ---------------------------------------------------------------------------

class _SegCache:
    """Child-side shared-memory attachments + X-block allocator.

    Doubles as the replica context's ``workspace`` so
    ``t_compute_deflation`` allocates its secular block X in a fresh
    segment; the name travels in the kernel's delta and the parent pool
    *adopts* the segment (ownership, and the unlink duty, never rest
    with a worker that may be killed).
    """

    shared = True

    def __init__(self, max_entries: int = 512):
        self._max = max_entries
        self._entries: OrderedDict[str, tuple] = OrderedDict()
        self._by_id: dict[int, str] = {}
        self._seq = itertools.count()

    def attach(self, name: str, shape) -> np.ndarray:
        ent = self._entries.get(name)
        if ent is not None and ent[1].shape == tuple(shape):
            self._entries.move_to_end(name)
            return ent[1]
        shm = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(tuple(shape), dtype=np.float64, order="F",
                         buffer=shm.buf)
        self._put(name, shm, arr)
        return arr

    def take(self, shape) -> np.ndarray:
        nbytes = max(1, 8 * int(np.prod(shape)))
        name = f"repro-x-{os.getpid()}-{next(self._seq)}"
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        arr = np.ndarray(tuple(shape), dtype=np.float64, order="F",
                         buffer=shm.buf)
        self._put(name, shm, arr)
        return arr

    def name_of(self, arr: np.ndarray) -> str:
        return self._by_id[id(arr)]

    def _put(self, name: str, shm, arr: np.ndarray) -> None:
        self._entries[name] = (shm, arr)
        self._by_id[id(arr)] = name
        while len(self._entries) > self._max:
            _, (old_shm, old_arr) = self._entries.popitem(last=False)
            self._by_id.pop(id(old_arr), None)
            try:
                old_shm.close()
            except BufferError:
                # The array is still referenced by an active replica:
                # keep the mapping alive; GC reclaims it later.
                pass


def _child_begin(payload: dict, segs: _SegCache) -> dict:
    """Build this worker's replica of one solve: context + graph.

    Graph instantiation is deterministic (task ``seq`` numbering follows
    submission order), and the parent's calibration is installed first,
    so the replica's DAG is identical to the parent's — same seqs, same
    priorities, same panel widths.
    """
    from ..core.calibrate import set_calibration
    from ..core.merge import DCContext

    set_calibration(payload["cal"])
    opts = payload["opts"]
    # jobz='N' payloads carry no V/Vws segments — attach whatever the
    # parent shipped (D and the strips are always present).
    buffers = {key: segs.attach(*payload[key])
               for key in ("D", "V", "Vws", "S", "P", "Pws")
               if key in payload}
    ctx = DCContext(payload["d"], payload["e"], opts,
                    subset=payload["subset"], buffers=buffers)
    ctx.workspace = segs
    # The parent dispatcher owns the writer countdown and performs the
    # STEQR fallback with exclusive access to the shared arrays.
    ctx._defer_fallback = True
    if opts.reuse_graph:
        from ..core.graph_cache import graph_template_cache, template_key
        subset = ctx.subset
        key = template_key(ctx.n, opts,
                           None if subset is None else int(subset.shape[0]))
        graph, info = graph_template_cache.get_or_build(ctx, key)
    else:
        from ..core.tasks import submit_dc
        from ..core.tree import build_tree
        from .dag import TaskGraph
        graph = TaskGraph()
        info = submit_dc(graph, ctx, build_tree(ctx.n, opts.minpart))
    return {"ctx": ctx, "graph": graph, "info": info}


def _proc_worker_main(wid: int, conn, results) -> None:
    """Worker process main loop.

    Protocol (parent -> child over a one-way pipe, FIFO):
      ``("begin", rid, payload)``  build a replica for run ``rid``
      ``("delta", rid, seq, blob)`` apply a peer task's state delta
      ``("task", rid, seq)``        execute task ``seq`` of run ``rid``
      ``("end", rid)``              drop the replica
      ``("stop",)``                 exit

    Child -> parent over one bounded queue:
      ``("ready", wid)`` / ``("done", wid, rid, seq, t0, t1, delta)`` /
      ``("fail", wid, rid, seq, t0, t1, exc)`` /
      ``("bounce", wid, rid, seq)`` (task for an unknown run) /
      ``("beginfail", wid, rid, exc)``
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):            # pragma: no cover
        pass
    segs = _SegCache()
    runs: dict[int, Optional[dict]] = {}
    results.put(("ready", wid))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "task":
            _, rid, seq = msg
            entry = runs.get(rid)
            if entry is None:
                if rid in runs:              # poisoned replica
                    results.put(("fail", wid, rid, seq,
                                 time.perf_counter(), time.perf_counter(),
                                 _encode_exc(RuntimeError(
                                     "replica state unavailable on this "
                                     "worker"))))
                else:
                    results.put(("bounce", wid, rid, seq))
                continue
            task = entry["graph"].tasks[seq]
            t0 = time.perf_counter()
            try:
                task.run()
                delta = _extract_delta(task, segs)
            except BaseException as exc:
                results.put(("fail", wid, rid, seq, t0,
                             time.perf_counter(), _encode_exc(exc)))
                continue
            t1 = time.perf_counter()
            task.mark_done()
            results.put(("done", wid, rid, seq, t0, t1, delta))
        elif kind == "delta":
            _, rid, seq, blob = msg
            entry = runs.get(rid)
            if entry is None:
                continue
            try:
                _apply_delta(entry["graph"].tasks[seq],
                             pickle.loads(blob), segs.attach)
            except BaseException:
                # Corrupted replica: poison the run; subsequent tasks
                # for it fail back to the parent instead of computing
                # on stale state.
                runs[rid] = None
        elif kind == "begin":
            _, rid, payload = msg
            try:
                runs[rid] = _child_begin(payload, segs)
            except BaseException as exc:
                runs[rid] = None
                results.put(("beginfail", wid, rid, _encode_exc(exc)))
        elif kind == "end":
            runs.pop(msg[1], None)
        elif kind == "stop":
            break
    try:
        conn.close()
    except OSError:                          # pragma: no cover
        pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("wid", "epoch", "proc", "send", "outq", "sender", "alive",
                 "load")

    def __init__(self, wid: int, epoch: int, proc, send):
        self.wid = wid
        self.epoch = epoch
        self.proc = proc
        self.send = send
        self.outq: queue.SimpleQueue = queue.SimpleQueue()
        self.alive = True
        self.load = 0                         # tasks dispatched, not done
        self.sender = threading.Thread(target=self._sender_loop,
                                       name=f"proc-sender-{wid}",
                                       daemon=True)
        self.sender.start()

    def _sender_loop(self) -> None:
        # A dedicated sender per worker keeps the dispatcher from
        # blocking on a full pipe while a child runs a long task.
        while True:
            msg = self.outq.get()
            if msg is None:
                break
            try:
                self.send.send(msg)
            except (OSError, ValueError, BrokenPipeError):
                break


class ProcPool:
    """Persistent pool of spawned worker processes executing task flows.

    Workers are created once (spawn context — no inherited locks or BLAS
    state) and reused across every solve of the session, exactly like
    the thread-backed :class:`~repro.runtime.scheduler.WorkerPool`.
    ``submit_solve`` is thread-safe; a single dispatcher thread owns all
    scheduling state.
    """

    def __init__(self, n_workers: int, *, workspace, recorder=None,
                 flight=None):
        self.n_workers = max(1, int(n_workers))
        self.workspace = workspace
        self.recorder = recorder
        self.flight = flight
        self._core = ExecutionCore(None, None, flight)
        self._worker_names = [f"proc-worker-{w}"
                              for w in range(self.n_workers)]
        self._mp = mp.get_context("spawn")
        self._results = self._mp.Queue(maxsize=_RESULT_QUEUE_CAP)
        self._submits: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._order = 0
        self._rids = itertools.count()
        self._epochs = itertools.count()
        self._active: dict[int, EngineRun] = {}
        self._ready = ReadyQueue()            # (task, run) by engine key
        self._current: list = [None] * self.n_workers
        self.runs_completed = 0
        self._shutdown = False
        self._workers = [self._spawn(w) for w in range(self.n_workers)]
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="proc-pool-dispatch",
                                            daemon=True)
        self._dispatcher.start()

    # -- lifecycle -------------------------------------------------------
    def _spawn(self, wid: int) -> _Worker:
        recv, send = self._mp.Pipe(duplex=False)
        # Children must not oversubscribe: each runs single-threaded
        # BLAS unless the user pinned the knobs explicitly.  The env is
        # only mutated around the spawn and restored right after.
        added = [v for v in _BLAS_VARS if v not in os.environ]
        for v in added:
            os.environ[v] = "1"
        try:
            proc = self._mp.Process(target=_proc_worker_main,
                                    args=(wid, recv, self._results),
                                    name=f"proc-worker-{wid}", daemon=True)
            proc.start()
        finally:
            for v in added:
                os.environ.pop(v, None)
        recv.close()
        return _Worker(wid, next(self._epochs), proc, send)

    def shutdown(self) -> None:
        """Stop the dispatcher, the workers, and fail stranded runs."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._submits.put(("stop",))
        self._wake()
        self._dispatcher.join(timeout=60)
        for w in self._workers:
            w.proc.join(timeout=5)
            if w.proc.is_alive():            # pragma: no cover
                w.proc.terminate()
                w.proc.join(timeout=5)
            try:
                w.send.close()
            except OSError:                  # pragma: no cover
                pass
        self._results.close()
        self._results.cancel_join_thread()

    def __enter__(self) -> "ProcPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission ------------------------------------------------------
    def submit_solve(self, ctx, graph, info, opts, *, injector=None,
                     on_done: Optional[Callable[[EngineRun], None]] = None
                     ) -> EngineRun:
        """Submit one solve; returns its :class:`EngineRun` handle.

        ``ctx``/``graph``/``info`` are the parent's replica — the same
        objects the sequential backend would execute.  Workers rebuild
        them independently from ``(d, e, opts, subset)``.
        """
        graph.validate_acyclic()
        with self._lock:
            if self._shutdown:
                raise SchedulerError("worker pool is shut down")
            run = EngineRun(graph, self._order, recorder=opts.telemetry,
                            injector=injector, on_done=on_done,
                            rid=next(self._rids), ctx=ctx, info=info,
                            opts=opts)
            self._order += max(1, run.n_tasks)
        self._submits.put(("run", run))
        self._wake()
        return run

    def _wake(self) -> None:
        try:
            self._results.put_nowait(("wake",))
        except queue.Full:                   # dispatcher is awake anyway
            pass

    # -- dispatcher ------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            stop = False
            while True:
                try:
                    cmd = self._submits.get_nowait()
                except queue.Empty:
                    break
                if cmd[0] == "stop":
                    stop = True
                else:
                    self._begin_run(cmd[1])
            if stop:
                break
            self._check_workers()
            self._dispatch_ready()
            try:
                msg = self._results.get(timeout=0.05)
            except queue.Empty:
                continue
            self._handle(msg)
            for _ in range(256):
                try:
                    msg = self._results.get_nowait()
                except queue.Empty:
                    break
                self._handle(msg)
        self._teardown()

    def _teardown(self) -> None:
        for run in list(self._active.values()):
            run.finalized = True
            run.errors.append(SchedulerError(
                "worker pool shut down before run completed"))
            self._finish_run(run)
        self._ready.clear()
        for w in self._workers:
            if w.alive:
                w.outq.put(("stop",))
            w.outq.put(None)

    def _begin_run(self, run: EngineRun) -> None:
        if run.n_tasks == 0:
            run.finalized = True
            self._finish_run(run)
            return
        run.eligible = {w.wid for w in self._workers if w.alive}
        self._active[run.rid] = run
        if not run.eligible:                 # pragma: no cover
            self._fail_run(run, SchedulerError(
                "no live worker processes"), count_task=False)
            return
        payload = self._begin_payload(run)
        for w in self._workers:
            if w.wid in run.eligible:
                w.outq.put(("begin", run.rid, payload))
        base = run.order_base
        for t in run.graph.tasks:
            if t.n_deps == 0:
                self._ready.push(t, run, base)

    def _begin_payload(self, run: EngineRun) -> dict:
        from ..core.calibrate import get_calibration
        ws = self.workspace
        ctx = run.ctx
        # Strip parent-only machinery: telemetry/flight stay parent-side
        # (events are forwarded), injectors run at dispatch, post-mortem
        # bundles are written by the session.
        opts = run.opts.with_(telemetry=None, fault_injection=None,
                              postmortem_dir=None)
        payload = {"d": ctx.d_in, "e": ctx.e_in, "subset": ctx.subset,
                   "opts": opts, "cal": get_calibration(),
                   "D": (ws.name_of(ctx.D), ctx.D.shape),
                   "S": (ws.name_of(ctx.S), ctx.S.shape),
                   "P": (ws.name_of(ctx.P), ctx.P.shape),
                   "Pws": (ws.name_of(ctx.Pws), ctx.Pws.shape)}
        if ctx.V is not None:                # jobz='V' eigenvector buffers
            payload["V"] = (ws.name_of(ctx.V), ctx.V.shape)
            payload["Vws"] = (ws.name_of(ctx.Vws), ctx.Vws.shape)
        return payload

    def _pick_worker(self, run: EngineRun) -> Optional[_Worker]:
        best = None
        for w in self._workers:
            if (w.alive and w.wid in run.eligible and w.load < _PREFETCH
                    and (best is None or w.load < best.load)):
                best = w
        return best

    def _dispatch_ready(self) -> None:
        ready = self._ready
        free = sum(1 for w in self._workers
                   if w.alive and w.load < _PREFETCH)
        blocked: list[tuple] = []
        while len(ready) and free > 0:
            task, run = ready.pop()
            if self._active.get(run.rid) is not run or run.finalized:
                continue                      # stale entry of a dead run
            w = self._pick_worker(run)
            if w is None:
                blocked.append((task, run))
                if len(blocked) >= 64:
                    break
                continue
            inj = run.injector
            if inj is not None:
                try:
                    inj.maybe_fail(task)
                except Exception as exc:
                    self._record_task_fail(run, task, -1, exc)
                    continue
            w.outq.put(("task", run.rid, task.seq))
            w.load += 1
            if w.load >= _PREFETCH:
                free -= 1
            run.outstanding[task.seq] = (w.wid, w.epoch)
            self._current[w.wid] = task
        for task, run in blocked:
            ready.push(task, run, run.order_base)

    # -- message handling ------------------------------------------------
    def _handle(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "done":
            self._on_task_done(*msg[1:])
        elif kind == "fail":
            self._on_task_fail(*msg[1:])
        elif kind == "bounce":
            self._on_bounce(*msg[1:])
        elif kind == "beginfail":
            self._on_begin_fail(*msg[1:])
        # "ready" / "wake": nothing to do.

    def _credit_worker(self, wid: int, epoch: int) -> None:
        w = self._workers[wid]
        if w.epoch == epoch:
            w.load = max(0, w.load - 1)
            if self._current[wid] is not None:
                self._current[wid] = None

    def _on_task_done(self, wid, rid, seq, t0, t1, blob) -> None:
        run = self._active.get(rid)
        if run is None:
            return
        entry = run.outstanding.pop(seq, None)
        if entry is None:
            return                           # already written off (crash)
        self._credit_worker(*entry)
        task = run.graph.tasks[seq]
        if run.finalized:
            self._reap_orphan_segment(task, blob)
            run.remaining -= 1
            run.n_executed += 1
            if not run.outstanding:
                self._finish_run(run)
            return
        if blob is not None:
            try:
                data = pickle.loads(blob)
                _apply_delta(task, data, self.workspace.adopt)
                self._parent_obs(run, task)
            except Exception as exc:
                self._record_task_fail(run, task, wid, exc)
                return
            for ow in self._workers:
                if (ow.wid != wid and ow.alive
                        and ow.wid in run.eligible):
                    ow.outq.put(("delta", rid, seq, blob))
        epilogue = parent_epilogue(task)
        if epilogue is not None:
            # Parent-owned fallback countdown (e.g. the eigenvector
            # writers' ``_writer_done``): the last writer of a
            # secular-failed merge triggers the STEQR fallback here, with
            # exclusive access (successors are not yet dispatched).
            epilogue()
        task.mark_done()
        run.events.append(TraceEvent(task.uid, task.name, wid,
                                     t0 - run.t0, t1 - run.t0, task.tag,
                                     task.priority))
        self._core.task_done(task, wid, t0, t1)
        base = run.order_base
        for s in run.release(task):
            self._ready.push(s, run, base)
        run.remaining -= 1
        run.n_executed += 1
        if run.remaining == 0 and not run.outstanding:
            run.finalized = True
            self._finish_run(run)

    def _on_task_fail(self, wid, rid, seq, t0, t1, enc) -> None:
        run = self._active.get(rid)
        if run is None:
            return
        entry = run.outstanding.pop(seq, None)
        if entry is None:
            return
        self._credit_worker(*entry)
        task = run.graph.tasks[seq]
        if run.finalized:
            run.remaining -= 1
            run.n_executed += 1
            if not run.outstanding:
                self._finish_run(run)
            return
        if wid not in run.eligible:
            # The worker's replica never initialized ("beginfail" raced
            # ahead of tasks already in its pipe): not a real failure —
            # requeue on the surviving workers.
            self._ready.push(task, run, run.order_base)
            return
        exc = _decode_exc(enc)
        self._record_task_fail(run, task, wid, exc, t0=t0, t1=t1)

    def _on_bounce(self, wid, rid, seq) -> None:
        run = self._active.get(rid)
        if run is None:
            return
        entry = run.outstanding.pop(seq, None)
        if entry is None:
            return
        self._credit_worker(*entry)
        if run.finalized:
            if not run.outstanding:
                self._finish_run(run)
            return
        self._ready.push(run.graph.tasks[seq], run, run.order_base)

    def _on_begin_fail(self, wid, rid, enc) -> None:
        run = self._active.get(rid)
        if run is None:
            return
        run.eligible.discard(wid)
        if not run.eligible and not run.finalized:
            exc = _decode_exc(enc)
            self._fail_run(run, SchedulerError(
                f"no worker process could initialize the run: {exc}"),
                count_task=False)

    # -- failure paths ---------------------------------------------------
    def _record_task_fail(self, run: EngineRun, task, wid: int,
                          exc: BaseException, t0: Optional[float] = None,
                          t1: Optional[float] = None) -> None:
        now = time.perf_counter()
        failure = self._core.task_failed(
            task, exc, worker=None if wid < 0 else wid,
            t0=now if t0 is None else t0, t1=now if t1 is None else t1,
            flight_worker=wid)
        self._fail_run(run, failure)

    def _fail_run(self, run: EngineRun, failure: BaseException,
                  count_task: bool = True) -> None:
        """First failure cancels the run; queued tasks drain as no-ops
        and completion waits until no dispatched task is in flight."""
        run.finalized = True
        run.errors.append(failure)
        if count_task:
            run.remaining -= 1
            run.n_executed += 1
        if not run.outstanding:
            self._finish_run(run)

    def _check_workers(self) -> None:
        for w in self._workers:
            if not w.alive or w.proc.is_alive():
                continue
            w.alive = False
            w.outq.put(None)                  # stop the sender thread
            self._current[w.wid] = None
            exitcode = w.proc.exitcode
            for run in list(self._active.values()):
                run.eligible.discard(w.wid)
                lost = [seq for seq, (owid, oep) in run.outstanding.items()
                        if owid == w.wid and oep == w.epoch]
                for seq in lost:
                    run.outstanding.pop(seq, None)
                if lost and not run.finalized:
                    task = run.graph.tasks[lost[0]]
                    self._record_task_fail(run, task, w.wid, TaskFailure(
                        f"worker process {w.wid} died (exit code "
                        f"{exitcode}) while executing task {task.name!r} "
                        f"(seq {lost[0]})", task_name=task.name,
                        seq=lost[0], tag=task.tag, worker=w.wid))
                    # _record_task_fail accounted for lost[0].
                    for seq in lost[1:]:
                        run.remaining -= 1
                        run.n_executed += 1
                elif lost:
                    for seq in lost:
                        run.remaining -= 1
                        run.n_executed += 1
                elif (not run.finalized and not run.eligible
                        and run.remaining > 0):
                    self._fail_run(run, SchedulerError(
                        "all worker processes assigned to this run died"),
                        count_task=False)
                    continue
                if run.finalized and not run.outstanding \
                        and not run._done_event.is_set():
                    self._finish_run(run)
            if not self._shutdown:
                # Replacement workers serve runs submitted after the
                # respawn; existing runs keep their surviving set.
                self._workers[w.wid] = self._spawn(w.wid)

    def _reap_orphan_segment(self, task, blob) -> None:
        """Unlink the X segment of a deflation delta drained after its
        run already failed (nobody will adopt it)."""
        if blob is None or getattr(task.func, "__name__", "") \
                != "t_compute_deflation":
            return
        try:
            name = pickle.loads(blob).get("x")
            if name:
                shm = shared_memory.SharedMemory(name=name)
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        except Exception:                    # pragma: no cover
            pass

    # -- parent-side telemetry -------------------------------------------
    def _parent_obs(self, run: EngineRun, task) -> None:
        """Re-emit the deflation metrics the kernel would have recorded
        (child replicas run with telemetry stripped)."""
        if getattr(task.func, "__name__", "") != "t_compute_deflation":
            return
        st = task.func.__self__
        ctx = st.ctx
        obs = ctx.obs
        if not obs.enabled:
            return
        defl = st.defl
        n_rot = len(defl.rotations)
        obs.observe("merge.deflation_ratio", defl.deflation_ratio)
        obs.observe("merge.deflation_ratio.givens", n_rot / defl.n)
        obs.observe("merge.deflation_ratio.smallz",
                    (defl.n_deflated - n_rot) / defl.n)
        obs.observe_many("merge.givens_chain_len",
                         (len(c) for c in st.chains))
        obs.add("merge.rotations", n_rot)
        obs.add("merge.count")
        obs.gauge_max("workspace.x_block_bytes", 8 * st.X.size)
        if st.n == ctx.n:
            from ..analysis.memory import solve_high_water_bytes
            obs.gauge_max("workspace.high_water_bytes",
                          solve_high_water_bytes(
                              ctx.n, defl.k, ctx.opts.extra_workspace,
                              jobz=ctx.opts.jobz))

    # -- completion ------------------------------------------------------
    def _finish_run(self, run: EngineRun) -> None:
        """Pool bookkeeping, then the engine's single emission point."""
        self._active.pop(run.rid, None)
        self.runs_completed += 1
        for w in self._workers:
            if w.wid in run.eligible and w.alive:
                w.outq.put(("end", run.rid))
        run.finish(self.n_workers, self._worker_names)

    # -- introspection (health endpoint / session stats) -----------------
    def current_tasks(self) -> list:
        """Per-worker most-recently-dispatched task (``None`` = idle)."""
        return list(self._current)

    def queue_depths(self) -> list[int]:
        """Per-worker in-flight dispatch depths (unlocked, approximate)."""
        return [w.load for w in self._workers]

    @property
    def parked(self) -> int:
        """Workers with nothing dispatched to them right now."""
        return sum(1 for w in self._workers if w.alive and w.load == 0)

    @property
    def workers_alive(self) -> int:
        return sum(1 for w in self._workers if w.proc.is_alive())

    @property
    def closed(self) -> bool:
        return self._shutdown


# ---------------------------------------------------------------------------
# Generic process scheduler (Quark facade, backend="processes")
# ---------------------------------------------------------------------------


def _invoke(func, args):
    """Module-level trampoline so child processes can unpickle the call."""
    return func(*args)


class ProcScheduler:
    """One-shot process-parallel scheduler for *generic* task graphs.

    The :class:`ProcPool` above is specialized for the eigensolver (it
    ships shared-memory workspaces and replica-graph deltas); this class
    is the process substrate of the generic
    :class:`~repro.runtime.quark.Quark` facade: ``run(graph)`` executes
    any picklable task flow on a spawn-context
    :class:`concurrent.futures.ProcessPoolExecutor`, with the engine's
    readiness rule (:class:`~repro.runtime.engine.ReadyQueue` priority
    order via :meth:`EngineRun.release`), dispatch-time fault injection,
    first-failure cancellation and flight recording — the same contract
    as every other substrate.

    Limitations inherent to process isolation: ``task.func``/``args``
    must be picklable (module-level functions, not closures), and side
    effects on parent objects do not propagate — a task's return value
    comes back as ``task.result``, everything else stays in the child.
    Worker attribution in the trace is by dispatch lane, not OS process.
    """

    def __init__(self, n_workers: Optional[int] = None, recorder=None,
                 injector=None, flight=None):
        if n_workers is None:
            n_workers = default_thread_workers()
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.recorder = recorder
        self.injector = injector
        #: Optional :class:`~repro.obs.live.FlightRecorder` (one bounded
        #: ring append per executed task / failure).
        self.flight = flight
        self.trace: Optional[Trace] = None

    def run(self, graph) -> Trace:
        graph.validate_acyclic()
        core = ExecutionCore(self.recorder, self.injector, self.flight)
        trace = Trace(n_workers=self.n_workers)
        run = EngineRun(graph, 0)
        total = run.n_tasks
        ready = ReadyQueue()
        for t in graph.tasks:
            if t.n_deps == 0:
                ready.push(t)
        # Children must not oversubscribe BLAS (same policy as ProcPool).
        added = [v for v in _BLAS_VARS if v not in os.environ]
        for v in added:
            os.environ[v] = "1"
        first: Optional[tuple[BaseException, BaseException]] = None
        n_done = 0
        try:
            with cf.ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=mp.get_context("spawn")) as ex:
                inflight: dict = {}       # future -> (task, lane, t_start)
                lanes = list(range(self.n_workers - 1, -1, -1))
                t0 = time.perf_counter()
                while n_done < total or inflight:
                    while first is None and lanes and len(ready):
                        task, _ = ready.pop()
                        lane = lanes.pop()
                        a = time.perf_counter() - t0
                        try:
                            core.guard(task)
                        except Exception as exc:
                            lanes.append(lane)
                            core.emit_failure(1, total - n_done - 1)
                            first = (core.task_failed(
                                task, exc, worker=lane, t0=t0 + a,
                                t1=time.perf_counter()), exc)
                            break
                        fut = ex.submit(_invoke, task.func, task.args)
                        inflight[fut] = (task, lane, a)
                    if not inflight:
                        break
                    done, _ = cf.wait(inflight,
                                      return_when=cf.FIRST_COMPLETED)
                    for fut in done:
                        task, lane, a = inflight.pop(fut)
                        lanes.append(lane)
                        b = time.perf_counter() - t0
                        try:
                            task.result = fut.result()
                        except Exception as exc:
                            if first is None:
                                core.emit_failure(1, total - n_done - 1)
                                first = (core.task_failed(
                                    task, exc, worker=lane, t0=t0 + a,
                                    t1=t0 + b), exc)
                            continue
                        if first is not None:
                            continue      # cancelled run: drain as no-ops
                        task.mark_done()
                        trace.record(TraceEvent(task.uid, task.name, lane,
                                                a, b, task.tag,
                                                task.priority))
                        core.task_done(task, lane, t0 + a, t0 + b)
                        for s in run.release(task):
                            ready.push(s)
                        n_done += 1
        finally:
            for v in added:
                os.environ.pop(v, None)
        if first is not None:
            failure, exc = first
            raise failure from exc
        if n_done < total:                   # pragma: no cover
            raise SchedulerError(
                "ProcScheduler: no runnable tasks but the graph is "
                "incomplete")
        core.emit_success(total)
        self.trace = trace
        return trace
