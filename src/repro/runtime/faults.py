"""Deterministic fault injection for the task-flow runtime.

Fault-handling code is only trustworthy if it can be exercised on
demand, so the runtime accepts an optional
``DCOptions(fault_injection=FaultSpec(...))`` describing *which* task
should fail:

* ``FaultSpec(task_seq=17)`` — the task with submission index 17;
* ``FaultSpec(kernel="LAED4")`` — every task of one kernel name
  (optionally only the ``nth`` match);
* ``FaultSpec(probability=0.01, seed=3)`` — each task fails with the
  given probability, decided by a counter-based hash of ``(seed,
  task.seq)`` so the outcome is a pure function of the spec and the DAG
  — identical across backends, schedules and reruns.

The schedulers consult :class:`FaultInjector` immediately *before*
running a task; a match raises
:class:`~repro.errors.InjectedFault`, which the scheduler then wraps
into a :class:`~repro.errors.TaskFailure` exactly like an organic
failure — injected and real faults exercise the same path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import InjectedFault, InputError

__all__ = ["FaultSpec", "FaultInjector"]

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (SplitMix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


@dataclass(frozen=True)
class FaultSpec:
    """Which task(s) to fail.  All selectors are ANDed when combined."""

    task_seq: Optional[int] = None   # fail the task with this submission index
    kernel: Optional[str] = None     # fail tasks of this kernel name
    nth: Optional[int] = None        # with kernel: only the nth match (0-based)
    probability: float = 0.0         # per-task failure probability
    seed: int = 0                    # determinizes `probability`

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise InputError("fault probability must be in [0, 1]")
        if (self.task_seq is None and self.kernel is None
                and self.probability == 0.0):
            raise InputError("empty fault spec: set task_seq, kernel "
                             "or probability")

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse a compact CLI spec.

        ``task:SEQ`` | ``kernel:NAME[:NTH]`` | ``p:PROB[:SEED]``
        """
        head, _, rest = spec.partition(":")
        try:
            if head == "task":
                return cls(task_seq=int(rest))
            if head == "kernel":
                name, _, nth = rest.partition(":")
                return cls(kernel=name, nth=int(nth) if nth else None)
            if head == "p":
                prob, _, seed = rest.partition(":")
                return cls(probability=float(prob),
                           seed=int(seed) if seed else 0)
        except ValueError as exc:
            raise InputError(f"bad fault spec {spec!r}: {exc}") from exc
        raise InputError(f"bad fault spec {spec!r} "
                         "(use task:SEQ | kernel:NAME[:NTH] | p:PROB[:SEED])")


class FaultInjector:
    """Stateful matcher consulted by the schedulers before each task.

    Thread-safe: the ``nth``-match counter and the injected-fault count
    are updated under a lock (the probability and ``task_seq`` selectors
    are pure functions of the task and never take it).
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.injected = 0
        self._lock = threading.Lock()
        self._kernel_matches = 0

    def _roll(self, seq: int) -> bool:
        h = _splitmix64(((self.spec.seed & _MASK) << 32) ^ (seq & _MASK))
        return (h >> 11) / float(1 << 53) < self.spec.probability

    def maybe_fail(self, task) -> None:
        """Raise :class:`InjectedFault` if ``task`` matches the spec.

        Selectors are ANDed: the probability roll applies on top of any
        ``task_seq``/``kernel`` filter, and the ``nth`` counter is
        consumed last so tasks vetoed by another selector (including a
        failed roll) never advance it.  The roll is a pure function of
        ``(seed, task.seq)``, so the outcome is identical on every
        backend and schedule.
        """
        spec = self.spec
        if spec.task_seq is not None and task.seq != spec.task_seq:
            return
        if spec.kernel is not None and task.name != spec.kernel:
            return
        if spec.probability and not self._roll(task.seq):
            return
        if spec.kernel is not None and spec.nth is not None:
            with self._lock:
                mine = self._kernel_matches
                self._kernel_matches += 1
            if mine != spec.nth:
                return
        with self._lock:
            self.injected += 1
        raise InjectedFault(
            f"injected fault in task {task.name!r} (seq {task.seq})")
