"""Heterogeneous (CPU + accelerator) discrete-event machine.

The paper's conclusion: "For future work, we plan to study the
implementation for both heterogeneous and distributed architectures, in
the MAGMA and DPLASMA libraries", and its related work [16] reports a
GPU D&C where "both the secular equation and the GEMMs are computed on
GPUs".  This module prototypes that study on the simulator: a
:class:`HeteroMachine` adds accelerator devices to the CPU socket model,
tasks carry a device-placement policy (by kernel name), and data
movement between host and device is charged per handle crossing.

The DAG, the numerics and the readiness rules are identical to the
homogeneous case — placement and transfers are purely a scheduling
concern, as they would be in a StarPU/PaRSEC-style runtime.  The engine
loop (readiness, payload execution with fault injection and flight
recording, deadlock detection, counter emission) comes from
:class:`~repro.runtime.engine.VirtualExecutor`; this module owns only
the device placement and the PCIe charge model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .engine import ReadyQueue, VirtualExecutor
from .simulator import Machine
from .task import Access, Task

__all__ = ["Accelerator", "HeteroMachine", "GPU_OFFLOAD_POLICY"]


@dataclass(frozen=True)
class Accelerator:
    """One accelerator device (GPU-like).

    ``gflops`` applies to offloadable compute kernels; ``n_streams`` is
    the number of concurrent task streams; ``pcie_bw`` is the
    host↔device transfer bandwidth (bytes/s), ``pcie_latency`` the
    per-transfer latency.
    """

    gflops: float = 900.0
    n_streams: int = 4
    pcie_bw: float = 12e9
    pcie_latency: float = 8e-6


#: The offload split of the paper's related work [16]: secular equation
#: and GEMMs on the GPU, everything else on the host.
GPU_OFFLOAD_POLICY = frozenset({"UpdateVect", "LAED4", "ComputeVect",
                                "ComputeLocalW"})


class HeteroMachine(VirtualExecutor):
    """Discrete-event substrate: CPU cores plus accelerators.

    Placement: tasks whose kernel name is in ``offload`` run on an
    accelerator stream when one is free (host otherwise); all other
    tasks run on CPU cores.  Every handle tracks its last location;
    reading a handle written on the other side charges a PCIe transfer
    of the producing task's ``bytes_moved`` (approximating the touched
    data), and writing migrates the handle.
    """

    def __init__(self, machine: Optional[Machine] = None,
                 accelerators: int = 1,
                 accel: Optional[Accelerator] = None,
                 offload: frozenset[str] = GPU_OFFLOAD_POLICY,
                 execute: bool = True, *, recorder=None, injector=None,
                 flight=None):
        self.machine = machine or Machine()
        self.accel = accel or Accelerator()
        self.n_accel_streams = accelerators * self.accel.n_streams
        self.offload = offload
        super().__init__(execute=execute, recorder=recorder,
                         injector=injector, flight=flight)

    # -- duration model ---------------------------------------------------
    def _duration(self, task: Task, on_gpu: bool,
                  transfer_bytes: float) -> float:
        cost = task.resolved_cost()
        m = self.machine
        t = m.task_overhead + cost.serial_overhead
        if transfer_bytes > 0.0:
            t += self.accel.pcie_latency + transfer_bytes / self.accel.pcie_bw
        if on_gpu:
            t += cost.flops / (self.accel.gflops * 1e9)
            # Device memory traffic is folded into the flop rate.
            return t
        kind, work, _ = m.work_of(cost, task.name)
        if kind == "bytes":
            # (no fluid sharing here: the hetero model keeps memory-bound
            # tasks at the single-stream rate, a mild simplification)
            return t + work / m.stream_bw
        return t + work / m.flop_rate(task.name)

    # -- substrate hooks ---------------------------------------------------
    def _virtual_workers(self) -> int:
        return self.machine.n_cores + self.n_accel_streams

    def _setup(self, graph) -> None:
        n_cpu = self.machine.n_cores
        n_workers = n_cpu + self.n_accel_streams
        self._free_cpu = list(range(n_cpu - 1, -1, -1))
        self._free_gpu = list(range(n_workers - 1, n_cpu - 1, -1))
        #: handle uid -> ("cpu"|"gpu", resident bytes estimate)
        self._location: dict[int, tuple[str, float]] = {}
        #: (end_time, start_time, task, worker)
        self._running: list[tuple[float, float, Task, int]] = []
        self._deferred: list[Task] = []

    def _has_running(self) -> bool:
        return bool(self._running)

    def _dispatch(self, ready: ReadyQueue) -> None:
        # Assign every startable task; GPU-preferring tasks take an
        # accelerator stream when one is free, otherwise a CPU core.
        candidates: list[Task] = self._deferred
        self._deferred = []
        while len(ready):
            candidates.append(ready.pop()[0])
        for task in candidates:
            wants_gpu = task.name in self.offload
            if wants_gpu and self._free_gpu:
                worker, on_gpu = self._free_gpu.pop(), True
            elif self._free_cpu:
                worker, on_gpu = self._free_cpu.pop(), False
            else:
                self._deferred.append(task)
                continue
            self._exec_payload(task)
            side = "gpu" if on_gpu else "cpu"
            transfer = 0.0
            cost = task.resolved_cost()
            for handle, mode in task.accesses:
                loc = self._location.get(handle.uid)
                if loc is not None and loc[0] != side:
                    transfer += loc[1]
                if mode is not Access.INPUT:
                    self._location[handle.uid] = (
                        side, max(cost.bytes_moved,
                                  cost.flops * 8e-3, 4096.0))
            dur = self._duration(task, on_gpu, transfer)
            self._running.append((self._now + dur, self._now, task, worker))

    def _advance(self) -> None:
        self._running.sort(key=lambda r: r[0])
        end, start, task, worker = self._running.pop(0)
        self._now = end
        if worker < self.machine.n_cores:
            self._free_cpu.append(worker)
        else:
            self._free_gpu.append(worker)
        self._complete_task(task, worker, start, end)
