"""Heterogeneous (CPU + accelerator) discrete-event machine.

The paper's conclusion: "For future work, we plan to study the
implementation for both heterogeneous and distributed architectures, in
the MAGMA and DPLASMA libraries", and its related work [16] reports a
GPU D&C where "both the secular equation and the GEMMs are computed on
GPUs".  This module prototypes that study on the simulator: a
:class:`HeteroMachine` adds accelerator devices to the CPU socket model,
tasks carry a device-placement policy (by kernel name), and data
movement between host and device is charged per handle crossing.

The DAG, the numerics and the readiness rules are identical to the
homogeneous case — placement and transfers are purely a scheduling
concern, as they would be in a StarPU/PaRSEC-style runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .dag import TaskGraph
from .scheduler import _ReadyQueue
from .simulator import Machine
from .task import Access, Task, TaskCost
from .trace import Trace, TraceEvent

__all__ = ["Accelerator", "HeteroMachine", "GPU_OFFLOAD_POLICY"]


@dataclass(frozen=True)
class Accelerator:
    """One accelerator device (GPU-like).

    ``gflops`` applies to offloadable compute kernels; ``n_streams`` is
    the number of concurrent task streams; ``pcie_bw`` is the
    host↔device transfer bandwidth (bytes/s), ``pcie_latency`` the
    per-transfer latency.
    """

    gflops: float = 900.0
    n_streams: int = 4
    pcie_bw: float = 12e9
    pcie_latency: float = 8e-6


#: The offload split of the paper's related work [16]: secular equation
#: and GEMMs on the GPU, everything else on the host.
GPU_OFFLOAD_POLICY = frozenset({"UpdateVect", "LAED4", "ComputeVect",
                                "ComputeLocalW"})


class HeteroMachine:
    """Discrete-event executor over CPU cores plus accelerators.

    Placement: tasks whose kernel name is in ``offload`` run on an
    accelerator stream when one is free (host otherwise); all other
    tasks run on CPU cores.  Every handle tracks its last location;
    reading a handle written on the other side charges a PCIe transfer
    of the producing task's ``bytes_moved`` (approximating the touched
    data), and writing migrates the handle.
    """

    def __init__(self, machine: Optional[Machine] = None,
                 accelerators: int = 1,
                 accel: Optional[Accelerator] = None,
                 offload: frozenset[str] = GPU_OFFLOAD_POLICY,
                 execute: bool = True):
        self.machine = machine or Machine()
        self.accel = accel or Accelerator()
        self.n_accel_streams = accelerators * self.accel.n_streams
        self.offload = offload
        self.execute = execute
        self.trace: Optional[Trace] = None

    # -- duration model ---------------------------------------------------
    def _duration(self, task: Task, on_gpu: bool,
                  transfer_bytes: float) -> float:
        cost = task.resolved_cost()
        m = self.machine
        t = m.task_overhead + cost.serial_overhead
        if transfer_bytes > 0.0:
            t += self.accel.pcie_latency + transfer_bytes / self.accel.pcie_bw
        if on_gpu:
            t += cost.flops / (self.accel.gflops * 1e9)
            # Device memory traffic is folded into the flop rate.
            return t
        kind, work, _ = m.work_of(cost, task.name)
        if kind == "bytes":
            # (no fluid sharing here: the hetero model keeps memory-bound
            # tasks at the single-stream rate, a mild simplification)
            return t + work / m.stream_bw
        return t + work / m.flop_rate(task.name)

    # -- execution ---------------------------------------------------------
    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        n_cpu = self.machine.n_cores
        n_workers = n_cpu + self.n_accel_streams
        trace = Trace(n_workers=n_workers)
        pending = {t.uid: t.n_deps for t in graph.tasks}
        ready = _ReadyQueue()
        for t in graph.tasks:
            if pending[t.uid] == 0:
                ready.push(t)
        free_cpu = list(range(n_cpu - 1, -1, -1))
        free_gpu = list(range(n_workers - 1, n_cpu - 1, -1))
        #: handle uid -> ("cpu"|"gpu", resident bytes estimate)
        location: dict[int, tuple[str, float]] = {}
        #: (end_time, start_time, task, worker)
        running: list[tuple[float, float, Task, int]] = []
        now = 0.0
        done = 0
        total = len(graph.tasks)
        deferred: list[Task] = []

        while done < total:
            # Assign every startable task; GPU-preferring tasks take an
            # accelerator stream when one is free, otherwise a CPU core.
            candidates: list[Task] = deferred
            deferred = []
            while len(ready):
                candidates.append(ready.pop())
            for task in candidates:
                wants_gpu = task.name in self.offload
                if wants_gpu and free_gpu:
                    worker, on_gpu = free_gpu.pop(), True
                elif free_cpu:
                    worker, on_gpu = free_cpu.pop(), False
                else:
                    deferred.append(task)
                    continue
                if self.execute:
                    task.run()
                task.mark_done()
                side = "gpu" if on_gpu else "cpu"
                transfer = 0.0
                cost = task.resolved_cost()
                for handle, mode in task.accesses:
                    loc = location.get(handle.uid)
                    if loc is not None and loc[0] != side:
                        transfer += loc[1]
                    if mode is not Access.INPUT:
                        location[handle.uid] = (
                            side, max(cost.bytes_moved,
                                      cost.flops * 8e-3, 4096.0))
                dur = self._duration(task, on_gpu, transfer)
                running.append((now + dur, now, task, worker))
            if not running:
                if done < total:
                    raise RuntimeError("hetero deadlock")
                break
            running.sort(key=lambda r: r[0])
            end, start, task, worker = running.pop(0)
            now = end
            trace.record(TraceEvent(task.uid, task.name, worker,
                                    start, end, task.tag, task.priority))
            if worker < n_cpu:
                free_cpu.append(worker)
            else:
                free_gpu.append(worker)
            for s in task.successors:
                pending[s.uid] -= 1
                if pending[s.uid] == 0:
                    ready.push(s)
            done += 1
        self.trace = trace
        return trace
