"""Distributed-memory task-flow prototype (paper future work, DPLASMA).

"For future work, we plan to study the implementation for both
heterogeneous and distributed architectures, in the MAGMA and DPLASMA
libraries."  This module runs the unchanged task DAG across several
simulated nodes: every task executes on one node's cores, data handles
live on the node that last wrote them, and reading a remote handle
charges an α–β network transfer — the PaRSEC/DPLASMA execution model in
miniature.

Placement follows data affinity by default (run where most input bytes
live, break ties toward the least-loaded node), or a user-supplied
``placement(task) -> node`` — e.g. the owner-computes tree partition
used by the distributed-D&C study in the EXT-4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .dag import TaskGraph
from .scheduler import _ReadyQueue
from .simulator import Machine
from .task import Access, Task
from .trace import Trace, TraceEvent

__all__ = ["Network", "ClusterMachine", "tree_placement"]


@dataclass(frozen=True)
class Network:
    """α–β interconnect model between nodes."""

    alpha: float = 2e-5             # per-message latency (s)
    beta: float = 1.0 / 6e9         # per-byte time (s/byte)


def tree_placement(n: int, n_nodes: int) -> Callable[[Task], int]:
    """Owner-computes placement for the D&C DAG: a task tagged with a
    column range ``(lo, hi)`` runs on the node owning column lo."""
    def place(task: Task) -> Optional[int]:
        tag = task.tag
        if isinstance(tag, tuple) and len(tag) == 2 \
                and isinstance(tag[0], int):
            return min(n_nodes - 1, tag[0] * n_nodes // n)
        return None
    return place


class ClusterMachine:
    """Discrete-event executor of one task DAG over several nodes.

    Parameters
    ----------
    n_nodes : number of identical nodes.
    machine : per-node CPU model (cores, rates).
    network : interconnect α–β model.
    placement : optional ``task -> node`` (None = data affinity).
    execute : run the functional payloads (False replays a solved graph).
    """

    def __init__(self, n_nodes: int = 2,
                 machine: Optional[Machine] = None,
                 network: Optional[Network] = None,
                 placement: Optional[Callable[[Task], Optional[int]]] = None,
                 execute: bool = True):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.machine = machine or Machine()
        self.network = network or Network()
        self.placement = placement
        self.execute = execute
        self.trace: Optional[Trace] = None
        self.bytes_on_wire = 0.0
        self.n_messages = 0

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate_acyclic()
        m = self.machine
        cpn = m.n_cores                           # cores per node
        n_workers = self.n_nodes * cpn
        trace = Trace(n_workers=n_workers)
        pending = {t.uid: t.n_deps for t in graph.tasks}
        ready = _ReadyQueue()
        for t in graph.tasks:
            if pending[t.uid] == 0:
                ready.push(t)
        free = [list(range(node * cpn + cpn - 1, node * cpn - 1, -1))
                for node in range(self.n_nodes)]
        load = [0.0] * self.n_nodes
        #: handle uid -> (owner node, resident bytes estimate)
        location: dict[int, tuple[int, float]] = {}
        running: list[tuple[float, float, Task, int, int]] = []
        now = 0.0
        done = 0
        total = len(graph.tasks)
        deferred: list[Task] = []
        self.bytes_on_wire = 0.0
        self.n_messages = 0

        def choose_node(task: Task) -> int:
            if self.placement is not None:
                forced = self.placement(task)
                if forced is not None:
                    return forced
            # Data affinity: node holding the most input bytes.
            weights = [0.0] * self.n_nodes
            for handle, _mode in task.accesses:
                loc = location.get(handle.uid)
                if loc is not None:
                    weights[loc[0]] += loc[1]
            best = max(range(self.n_nodes),
                       key=lambda nd: (weights[nd], -load[nd]))
            return best

        while done < total:
            candidates: list[Task] = deferred
            deferred = []
            while len(ready):
                candidates.append(ready.pop())
            for task in candidates:
                node = choose_node(task)
                if not free[node]:
                    # Preferred node busy: steal to any free node (the
                    # dynamic-scheduling half of the DPLASMA model).
                    alts = [nd for nd in range(self.n_nodes) if free[nd]]
                    if not alts:
                        deferred.append(task)
                        continue
                    node = max(alts, key=lambda nd: -load[nd])
                worker = free[node].pop()
                if self.execute:
                    task.run()
                task.mark_done()
                cost = task.resolved_cost()
                comm = 0.0
                for handle, mode in task.accesses:
                    loc = location.get(handle.uid)
                    if loc is not None and loc[0] != node:
                        comm += self.network.alpha \
                            + loc[1] * self.network.beta
                        self.bytes_on_wire += loc[1]
                        self.n_messages += 1
                    if mode is not Access.INPUT:
                        location[handle.uid] = (
                            node, max(cost.bytes_moved,
                                      cost.flops * 8e-3, 4096.0))
                dur = comm + m.duration_solo(cost, task.name)
                load[node] += dur
                running.append((now + dur, now, task, worker, node))
            if not running:
                if done < total:
                    raise RuntimeError("cluster deadlock")
                break
            running.sort(key=lambda r: r[0])
            end, start, task, worker, node = running.pop(0)
            now = end
            trace.record(TraceEvent(task.uid, task.name, worker,
                                    start, end, task.tag, task.priority))
            free[node].append(worker)
            for s in task.successors:
                pending[s.uid] -= 1
                if pending[s.uid] == 0:
                    ready.push(s)
            done += 1
        self.trace = trace
        return trace
