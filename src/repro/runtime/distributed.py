"""Distributed-memory task-flow prototype (paper future work, DPLASMA).

"For future work, we plan to study the implementation for both
heterogeneous and distributed architectures, in the MAGMA and DPLASMA
libraries."  This module runs the unchanged task DAG across several
simulated nodes: every task executes on one node's cores, data handles
live on the node that last wrote them, and reading a remote handle
charges an α–β network transfer — the PaRSEC/DPLASMA execution model in
miniature.

Placement follows data affinity by default (run where most input bytes
live, break ties toward the least-loaded node), or a user-supplied
``placement(task) -> node`` — e.g. the owner-computes tree partition
used by the distributed-D&C study in the EXT-4 benchmark.

The engine loop — readiness, payload execution with fault injection and
flight recording, deadlock detection, counter emission — comes from
:class:`~repro.runtime.engine.VirtualExecutor`; this module owns only
the placement policy and the network charge model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .engine import ReadyQueue, VirtualExecutor
from .simulator import Machine
from .task import Access, Task

__all__ = ["Network", "ClusterMachine", "tree_placement"]


@dataclass(frozen=True)
class Network:
    """α–β interconnect model between nodes."""

    alpha: float = 2e-5             # per-message latency (s)
    beta: float = 1.0 / 6e9         # per-byte time (s/byte)


def tree_placement(n: int, n_nodes: int) -> Callable[[Task], int]:
    """Owner-computes placement for the D&C DAG: a task tagged with a
    column range ``(lo, hi)`` runs on the node owning column lo."""
    def place(task: Task) -> Optional[int]:
        tag = task.tag
        if isinstance(tag, tuple) and len(tag) == 2 \
                and isinstance(tag[0], int):
            return min(n_nodes - 1, tag[0] * n_nodes // n)
        return None
    return place


class ClusterMachine(VirtualExecutor):
    """Discrete-event substrate: one task DAG over several nodes.

    Parameters
    ----------
    n_nodes : number of identical nodes.
    machine : per-node CPU model (cores, rates).
    network : interconnect α–β model.
    placement : optional ``task -> node`` (None = data affinity).
    execute : run the functional payloads (False replays a solved graph).
    recorder, injector, flight : the engine's observability endpoints and
        fault-injection hook (same semantics as every other substrate).
    """

    def __init__(self, n_nodes: int = 2,
                 machine: Optional[Machine] = None,
                 network: Optional[Network] = None,
                 placement: Optional[Callable[[Task], Optional[int]]] = None,
                 execute: bool = True, *, recorder=None, injector=None,
                 flight=None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.machine = machine or Machine()
        self.network = network or Network()
        self.placement = placement
        super().__init__(execute=execute, recorder=recorder,
                         injector=injector, flight=flight)
        self.bytes_on_wire = 0.0
        self.n_messages = 0

    # -- substrate hooks -------------------------------------------------
    def _virtual_workers(self) -> int:
        return self.n_nodes * self.machine.n_cores

    def _setup(self, graph) -> None:
        cpn = self.machine.n_cores                # cores per node
        self._free = [list(range(node * cpn + cpn - 1, node * cpn - 1, -1))
                      for node in range(self.n_nodes)]
        self._load = [0.0] * self.n_nodes
        #: handle uid -> (owner node, resident bytes estimate)
        self._location: dict[int, tuple[int, float]] = {}
        #: (end_time, start_time, task, worker, node)
        self._running: list[tuple[float, float, Task, int, int]] = []
        self._deferred: list[Task] = []
        self.bytes_on_wire = 0.0
        self.n_messages = 0

    def _has_running(self) -> bool:
        return bool(self._running)

    def _choose_node(self, task: Task) -> int:
        if self.placement is not None:
            forced = self.placement(task)
            if forced is not None:
                return forced
        # Data affinity: node holding the most input bytes.
        weights = [0.0] * self.n_nodes
        for handle, _mode in task.accesses:
            loc = self._location.get(handle.uid)
            if loc is not None:
                weights[loc[0]] += loc[1]
        load = self._load
        return max(range(self.n_nodes),
                   key=lambda nd: (weights[nd], -load[nd]))

    def _dispatch(self, ready: ReadyQueue) -> None:
        m = self.machine
        free = self._free
        candidates: list[Task] = self._deferred
        self._deferred = []
        while len(ready):
            candidates.append(ready.pop()[0])
        for task in candidates:
            node = self._choose_node(task)
            if not free[node]:
                # Preferred node busy: steal to any free node (the
                # dynamic-scheduling half of the DPLASMA model).
                alts = [nd for nd in range(self.n_nodes) if free[nd]]
                if not alts:
                    self._deferred.append(task)
                    continue
                node = max(alts, key=lambda nd: -self._load[nd])
            worker = free[node].pop()
            self._exec_payload(task)
            cost = task.resolved_cost()
            comm = 0.0
            for handle, mode in task.accesses:
                loc = self._location.get(handle.uid)
                if loc is not None and loc[0] != node:
                    comm += self.network.alpha \
                        + loc[1] * self.network.beta
                    self.bytes_on_wire += loc[1]
                    self.n_messages += 1
                if mode is not Access.INPUT:
                    self._location[handle.uid] = (
                        node, max(cost.bytes_moved,
                                  cost.flops * 8e-3, 4096.0))
            dur = comm + m.duration_solo(cost, task.name)
            self._load[node] += dur
            self._running.append((self._now + dur, self._now, task,
                                  worker, node))

    def _advance(self) -> None:
        self._running.sort(key=lambda r: r[0])
        end, start, task, worker, node = self._running.pop(0)
        self._now = end
        self._free[node].append(worker)
        self._complete_task(task, worker, start, end)
