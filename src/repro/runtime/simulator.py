"""Deterministic discrete-event simulation of a multicore machine.

The paper evaluates on a dual-socket 16-core Xeon E5-2650v2.  Python's GIL
makes fine-grained *pure-Python* tasks serialize, so wall-clock thread runs
cannot reproduce the paper's scalability curves faithfully.  Instead, this
substrate executes the *identical task DAG* (same tasks, same dependencies,
same out-of-order readiness rule — supplied by the shared
:class:`~repro.runtime.engine.VirtualExecutor` engine loop) on ``P``
virtual cores and charges each task a duration derived from its declared
:class:`~repro.runtime.task.TaskCost`:

* compute-bound tasks (``flops`` dominated) progress at the core's flop
  rate — they scale perfectly with cores, like the paper's GEMM/secular
  kernels;
* memory-bound tasks (``bytes_moved`` dominated: ``PermuteV``,
  ``CopyBackDeflated``) share their socket's bandwidth with every other
  memory-bound task running on the same socket, with a per-core ceiling.
  This processor-sharing fluid model reproduces the bandwidth saturation
  the paper reports (Fig. 4/5: ~4 threads saturate one socket).

The functional payload of every task still runs (in virtual-time order),
so deflation-dependent task costs — evaluated lazily — reflect the real
matrix, exactly as in the paper where the DAG is matrix-independent but
task *work* is not.  Because payloads run under the engine, fault
injection and flight recording work here exactly as on the wall-clock
substrates (flight timestamps are virtual seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .engine import ReadyQueue, VirtualExecutor
from .task import Task, TaskCost


@dataclass(frozen=True)
class Machine:
    """Virtual machine model (defaults approximate the paper's testbed).

    ``core_gflops``
        Double-precision rate of one core for BLAS-3-like kernels.
    ``kernel_efficiency``
        Multiplier applied to ``core_gflops`` for non-GEMM kernels
        (divides/iterative secular work run far below peak).
    ``socket_bw``
        Memory bandwidth of one socket, bytes/s.
    ``stream_bw``
        Bandwidth a single core can draw, bytes/s (socket saturates at
        ``socket_bw / stream_bw`` cores; ~4 on the paper's machine).
    ``task_overhead``
        Fixed per-task runtime/scheduling overhead, seconds.
    """

    n_cores: int = 16
    n_sockets: int = 2
    core_gflops: float = 18.0
    kernel_efficiency: float = 0.25
    socket_bw: float = 40e9
    stream_bw: float = 10e9
    task_overhead: float = 2e-6

    def __post_init__(self) -> None:
        if self.n_cores % self.n_sockets:
            raise ValueError("n_cores must be a multiple of n_sockets")

    @property
    def cores_per_socket(self) -> int:
        return self.n_cores // self.n_sockets

    def socket_of(self, worker: int) -> int:
        return worker // self.cores_per_socket

    # -- cost -> work decomposition ------------------------------------------
    def work_of(self, cost: TaskCost, name: str = "") -> tuple[str, float, float]:
        """Classify a task and return ``(kind, work, overhead_seconds)``.

        ``kind`` is ``"flops"`` or ``"bytes"``; ``work`` is the service
        requirement in that unit.  Efficiency: GEMM-like kernels
        (``UpdateVect``) run at full ``core_gflops``; everything else at
        ``kernel_efficiency * core_gflops``.
        """
        rate = self.flop_rate(name)
        t_flop = cost.flops / rate if cost.flops else 0.0
        t_mem = cost.bytes_moved / self.stream_bw if cost.bytes_moved else 0.0
        over = self.task_overhead + cost.serial_overhead
        if t_mem > t_flop:
            return "bytes", cost.bytes_moved, over
        return "flops", cost.flops, over

    def flop_rate(self, name: str = "") -> float:
        full = {"UpdateVect", "GEMM", "STEDC"}
        eff = 1.0 if name in full else self.kernel_efficiency
        return self.core_gflops * 1e9 * eff

    def duration_solo(self, cost: TaskCost, name: str = "") -> float:
        """Duration of the task running alone on one core (no contention)."""
        kind, work, over = self.work_of(cost, name)
        if kind == "bytes":
            return over + work / self.stream_bw
        return over + work / self.flop_rate(name)


class _Running:
    __slots__ = ("task", "worker", "socket", "kind", "remaining",
                 "overhead_left", "t_start")

    def __init__(self, task: Task, worker: int, socket: int, kind: str,
                 work: float, overhead: float, t_start: float):
        self.task = task
        self.worker = worker
        self.socket = socket
        self.kind = kind
        self.remaining = work
        self.overhead_left = overhead
        self.t_start = t_start


class SimulatedMachine(VirtualExecutor):
    """Discrete-event substrate: a :class:`TaskGraph` on a :class:`Machine`.

    Fluid processor-sharing semantics: on every task start/finish the
    instantaneous rates of all running tasks are recomputed; memory-bound
    tasks on socket *s* each progress at
    ``min(stream_bw, socket_bw / n_mem(s))`` bytes/s.  Readiness,
    payload execution, faults, flight recording and counter emission come
    from :class:`~repro.runtime.engine.VirtualExecutor`; this class owns
    only the machine model (socket placement and the fluid clock).
    """

    def __init__(self, machine: Machine | None = None,
                 n_workers: Optional[int] = None,
                 execute: bool = True, recorder=None, injector=None,
                 flight=None):
        base = machine or Machine()
        self.machine = base
        # Fewer workers than cores keeps the base socket geometry and
        # just uses fewer of them (like a taskset-restricted run).
        self.n_workers = n_workers if (n_workers is not None
                                       and n_workers != base.n_cores) \
            else base.n_cores
        super().__init__(execute=execute, recorder=recorder,
                         injector=injector, flight=flight)

    # -- substrate hooks -------------------------------------------------
    def _virtual_workers(self) -> int:
        return self.n_workers

    def _setup(self, graph) -> None:
        self._free = list(range(self.n_workers - 1, -1, -1))
        self._running: list[_Running] = []

    def _has_running(self) -> bool:
        return bool(self._running)

    def _dispatch(self, ready: ReadyQueue) -> None:
        # Start as many ready tasks as there are free workers.  Pick
        # the free worker on the least-loaded socket (OS schedulers and
        # work stealing spread threads across sockets, which matters
        # for the bandwidth model).
        m = self.machine
        free = self._free
        running = self._running
        while len(ready) and free:
            task, _ = ready.pop()
            busy: dict[int, int] = {}
            for r in running:
                busy[r.socket] = busy.get(r.socket, 0) + 1
            free.sort(key=lambda w: (busy.get(m.socket_of(w), 0), w),
                      reverse=True)
            worker = free.pop()
            self._exec_payload(task)  # functional effect; timing continues
            cost = task.resolved_cost()
            kind, work, over = m.work_of(cost, task.name)
            running.append(_Running(task, worker, m.socket_of(worker),
                                    kind, work, over, self._now))

    def _rates(self) -> dict[int, float]:
        """Instantaneous progress rate for each running task (by uid)."""
        m = self.machine
        mem_per_socket: dict[int, int] = {}
        for r in self._running:
            if r.kind == "bytes":
                mem_per_socket[r.socket] = mem_per_socket.get(r.socket, 0) + 1
        out: dict[int, float] = {}
        for r in self._running:
            if r.kind == "bytes":
                share = m.socket_bw / mem_per_socket[r.socket]
                out[r.task.uid] = min(m.stream_bw, share)
            else:
                out[r.task.uid] = m.flop_rate(r.task.name)
        return out

    def _advance(self) -> None:
        # Advance to the next completion under current rates.
        running = self._running
        rt = self._rates()
        dt = min((r.overhead_left +
                  (r.remaining / rt[r.task.uid] if r.remaining else 0.0))
                 for r in running)
        self._now += dt
        still: list[_Running] = []
        finished: list[_Running] = []
        for r in running:
            d = dt
            if r.overhead_left > 0.0:
                used = min(r.overhead_left, d)
                r.overhead_left -= used
                d -= used
            if d > 0.0 and r.remaining > 0.0:
                r.remaining -= rt[r.task.uid] * d
            # Work units are flops/bytes, so 1e-3 of either is nothing.
            if r.overhead_left <= 1e-18 and r.remaining <= 1e-3:
                finished.append(r)
            else:
                still.append(r)
        if not finished:
            # Guard against FP stagnation: force the closest task out.
            r = min(running, key=lambda r: r.remaining + r.overhead_left)
            r.remaining = 0.0
            r.overhead_left = 0.0
            finished = [r]
            still = [x for x in running if x is not r]
        self._running = still
        for r in finished:
            self._complete_task(r.task, r.worker, r.t_start, self._now)
            self._free.append(r.worker)
        self._free.sort(reverse=True)
