"""Dependency analysis: sequential task flow -> task DAG.

A master thread submits tasks in program order (the *sequential task
flow*).  For every data handle the analyzer maintains the set of
outstanding readers and the last writer(s) and inserts edges following
the usual superscalar rules, extended with the paper's GATHERV
qualifier:

* ``INPUT``  depends on the last writer group (RAW).
* ``OUTPUT``/``INOUT`` depend on the last writer group and every reader
  since then (WAW + WAR).
* ``GATHERV`` writers depend on whatever the *first* writer of the group
  depended on, but **not on each other**; the next non-GATHERV access
  closes the group and depends on all of its members.

The analyzer deduplicates edges per task pair so dependency counts
reflect the DAG, not the access list.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import GraphError
from .task import Access, DataHandle, Task, TaskCost


class TaskGraph:
    """A DAG of tasks built by sequential submission.

    The graph object owns the dependency-tracking state of every handle
    that passes through it; handles are reset lazily when first seen so
    the same logical handles can be reused across graph builds.
    """

    def __init__(self) -> None:
        self.tasks: list[Task] = []
        self._seen_handles: set[int] = set()
        self._edges = 0

    # ------------------------------------------------------------------
    def insert_task(self,
                    func: Callable[..., Any],
                    accesses: Sequence[tuple[DataHandle, Access]] = (),
                    *,
                    args: Sequence[Any] = (),
                    name: str = "",
                    cost: Optional[TaskCost | Callable[[], TaskCost]] = None,
                    priority: int = 0,
                    tag: Any = None) -> Task:
        """Submit one task; mirrors ``QUARK_Insert_Task``."""
        task = Task(func, accesses, args=args, name=name, cost=cost,
                    priority=priority, tag=tag)
        return self.submit(task)

    def submit(self, task: Task) -> Task:
        task.seq = len(self.tasks)
        deps: dict[int, Task] = {}

        for handle, mode in task.accesses:
            if handle.uid not in self._seen_handles:
                handle.reset_tracking()
                self._seen_handles.add(handle.uid)

            if mode is Access.INPUT:
                if handle._gatherv_open:
                    # A read closes the GATHERV group.
                    handle._gatherv_open = False
                for w in handle._last_writers:
                    deps[w.uid] = w
                handle._readers.append(task)

            elif mode in (Access.OUTPUT, Access.INOUT):
                if handle._gatherv_open:
                    handle._gatherv_open = False
                for w in handle._last_writers:
                    deps[w.uid] = w
                for r in handle._readers:
                    if r is not task:
                        deps[r.uid] = r
                handle._last_writers = [task]
                handle._readers = []

            elif mode is Access.GATHERV:
                if not handle._gatherv_open:
                    # Open a new group: remember what the group depends on.
                    base = list(handle._last_writers) + list(handle._readers)
                    handle._group_base = base
                    handle._last_writers = []
                    handle._readers = []
                    handle._gatherv_open = True
                for b in handle._group_base:
                    if b is not task:
                        deps[b.uid] = b
                handle._last_writers.append(task)

            else:  # pragma: no cover - exhaustive over Access
                raise ValueError(f"unknown access mode {mode!r}")

        for dep in deps.values():
            if not dep.done:
                dep.add_successor(task)
                self._edges += 1
            # A completed predecessor imposes no constraint; this only
            # happens when building incrementally while executing.

        self.tasks.append(task)
        return task

    # ------------------------------------------------------------------
    @classmethod
    def fuse(cls, graphs: Iterable["TaskGraph"]) -> "TaskGraph":
        """Concatenate independent graphs into one super-DAG.

        Tasks keep their identity, edges and dependency counts; ``seq``
        is reassigned to the fused submission order (sub-graph order,
        then intra-graph order), so any scheduler runs the fusion like a
        single graph and tasks from different sub-graphs interleave
        freely — the batch analogue of the paper's "independent merges
        overlap" property.  The fused graph takes ownership: the input
        graphs must not be executed separately afterwards.
        """
        fused = cls()
        for sub in graphs:
            for t in sub.tasks:
                t.seq = len(fused.tasks)
                fused.tasks.append(t)
            fused._edges += sub.n_edges
        return fused

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        return self._edges

    def ready_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.n_deps == 0 and not t.done]

    def kernel_counts(self) -> dict[str, int]:
        """Histogram of task kernel names (used to check Fig. 2 / Table II)."""
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.name] = out.get(t.name, 0) + 1
        return out

    def levels(self) -> list[list[Task]]:
        """Topological levels (longest-path depth) of the DAG.

        Level ``i`` contains tasks whose longest dependency chain from a
        source has length ``i``; this matches the row layout used to draw
        the paper's Fig. 2.
        """
        depth = {t.uid: 0 for t in self.tasks}
        indeg = {t.uid: t.n_deps for t in self.tasks}
        from collections import deque
        q = deque(t for t in self.tasks if indeg[t.uid] == 0)
        order = 0
        seen = 0
        while q:
            t = q.popleft()
            seen += 1
            for s in t.successors:
                depth[s.uid] = max(depth[s.uid], depth[t.uid] + 1)
                indeg[s.uid] -= 1
                if indeg[s.uid] == 0:
                    q.append(s)
        if seen != len(self.tasks):
            raise GraphError("task graph has a cycle")
        nlev = 1 + max(depth.values(), default=0)
        levels: list[list[Task]] = [[] for _ in range(nlev)]
        for t in self.tasks:
            levels[depth[t.uid]].append(t)
        return levels

    def blevels(self, estimate: Callable[[Task], float]) -> list[float]:
        """Bottom levels: ``bl[t] = estimate(t) + max(bl[successors])``.

        The longest ``estimate``-weighted path from each task to a DAG
        sink, indexed by ``task.seq``.  Submission order is topological
        (edges only point from earlier to later ``seq``), so one reverse
        sweep suffices.  This is the quantity behind b-level list
        scheduling: a task's bottom level is the remaining critical
        path once it starts, so scheduling larger b-levels first keeps
        the spine moving.
        """
        bl = [0.0] * len(self.tasks)
        for t in reversed(self.tasks):
            succ = max((bl[s.seq] for s in t.successors), default=0.0)
            bl[t.seq] = estimate(t) + succ
        return bl

    def critical_path_cost(self,
                           duration: Callable[[Task], float]) -> float:
        """Length of the weighted critical path through the DAG."""
        # Walk in topological order; finish[uid] first accumulates the max
        # predecessor finish (the ready time), then becomes the task's own
        # finish time once visited.
        finish: dict[int, float] = {}
        for lev in self.levels():
            for t in lev:
                base = finish.get(t.uid, 0.0)
                end = base + duration(t)
                finish[t.uid] = end
                for s in t.successors:
                    finish[s.uid] = max(finish.get(s.uid, 0.0), end)
        return max((finish[t.uid] for t in self.tasks), default=0.0)

    def validate_acyclic(self) -> None:
        self.levels()  # raises on cycle

    def to_dot(self, max_tasks: int = 400) -> str:
        """GraphViz rendering of the DAG (for Fig.-2-style inspection)."""
        shown = {t.uid for t in self.tasks[:max_tasks]}
        lines = ["digraph taskflow {", "  rankdir=TB;"]
        for t in self.tasks[:max_tasks]:
            label = f"{t.name}\\n#{t.uid}"
            lines.append(f'  t{t.uid} [label="{label}"];')
        for t in self.tasks[:max_tasks]:
            for s in t.successors:
                if s.uid in shown:
                    lines.append(f"  t{t.uid} -> t{s.uid};")
        lines.append("}")
        return "\n".join(lines)
