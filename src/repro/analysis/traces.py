"""Trace/schedule analysis helpers used by the figure benchmarks.

Includes the MR³-SMP replay: :func:`mrrr_task_graph` turns the work
records of an MRRR solve into a task DAG (parent → child dependencies of
the representation tree; eigenvector tasks are leaves), which the
discrete-event machine then schedules like MR³-SMP's dynamic task pool —
giving the simulated MRRR makespans of the Fig. 8 benchmark.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..mrrr.solver import WorkRecord, mrrr_eigh
from ..runtime.dag import TaskGraph
from ..runtime.simulator import Machine, SimulatedMachine
from ..runtime.task import DataHandle, INPUT, OUTPUT

__all__ = ["mrrr_task_graph", "mrrr_makespan", "speedup_curve"]


def mrrr_task_graph(records: list[WorkRecord]) -> TaskGraph:
    """Build the dependency DAG of recorded MRRR work items."""
    g = TaskGraph()
    handles: dict[int, DataHandle] = {}
    for r in records:
        h = DataHandle(f"w{r.uid}")
        handles[r.uid] = h
        acc = [(h, OUTPUT)]
        if r.parent >= 0:
            acc.append((handles[r.parent], INPUT))
        g.insert_task(lambda: None, acc, name=r.name, cost=r.cost,
                      tag=r.uid)
    return g


def mrrr_makespan(d: np.ndarray, e: np.ndarray, *,
                  n_workers: int = 16,
                  machine: Optional[Machine] = None) -> float:
    """Simulated MR³-SMP runtime: solve (for the real task tree), then
    replay the tree on the virtual machine."""
    res = mrrr_eigh(d, e, full_result=True)
    g = mrrr_task_graph(res.records)
    sim = SimulatedMachine(machine or Machine(), n_workers=n_workers,
                           execute=False)
    return sim.run(g).makespan


def speedup_curve(makespans: dict[int, float]) -> dict[int, float]:
    """Speedups relative to the 1-worker entry."""
    base = makespans[min(makespans)]
    return {p: base / t for p, t in makespans.items()}
