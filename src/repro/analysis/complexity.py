"""Operation-count analysis: the paper's Table I and Eq. 8.

``merge_step_costs`` evaluates the Θ-model of Table I for one merge;
``worst_case_flops`` is Eq. 8 (no deflation: 4n³/3 + Θ(n²), dominated by
the final merge's ≈ n³); ``measured_merge_flops`` extracts the actual
flop counts from a solve's per-merge statistics so the benches can set
the model against measurement.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..core.merge import MergeStats

__all__ = ["merge_step_costs", "worst_case_flops", "total_merge_flops",
           "deflation_summary"]


def merge_step_costs(n: int, k: int) -> dict[str, float]:
    """Table I: cost of the merge operations for size n, k non-deflated.

    Values are in "operations" of the Θ-model (constants chosen to match
    the implementation's cost callables).
    """
    return {
        "Compute the number of deflated eigenvalues": float(n),          # Θ(n)
        "Permute eigenvectors (copy)": float(n) * n,                     # Θ(n²)
        "Solve the secular equation": float(k) * k,                      # Θ(k²)
        "Compute stabilization values": float(k) * k,                    # Θ(k²)
        "Permute eigenvectors (copy-back)": float(n) * (n - k),          # Θ(n(n−k))
        "Compute eigenvectors X of R": float(k) * k,                     # Θ(k²)
        "Compute eigenvectors V = V~X": float(n) * k * k,                # Θ(nk²)
    }


def worst_case_flops(n: int) -> float:
    """Eq. 8: Σ_i n³/2^{2i} = 4n³/3 + Θ(n²) when nothing deflates."""
    return 4.0 * n ** 3 / 3.0


def total_merge_flops(stats: list[MergeStats]) -> float:
    """GEMM-dominated flop count of a solve from its per-merge stats."""
    total = 0.0
    for s in stats:
        # Structured UpdateVect: the two half-height GEMMs do ≈ n·k²
        # flops in the no-rotation case (k1 ≈ k3 ≈ k/2) — this is why
        # Eq. 8 counts the final no-deflation merge as "about n³".
        total += s.n * s.k * s.k
        total += 10.0 * s.k * s.k             # secular + stabilization
    return total


def deflation_summary(stats: list[MergeStats]) -> dict[str, float]:
    if not stats:
        return {"mean_deflation": 0.0, "final_deflation": 0.0,
                "total_secular_sweeps": 0}
    return {
        "mean_deflation": float(np.mean([s.deflation_ratio for s in stats])),
        "final_deflation": stats[-1].deflation_ratio,
        "total_secular_sweeps": int(sum(s.secular_sweeps for s in stats)),
    }
