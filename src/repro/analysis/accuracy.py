"""Accuracy metrics of the paper's Fig. 9.

``orthogonality_error``  — ‖I − VᵀV‖ / n          (Fig. 9(a))
``tridiagonal_residual`` — ‖T − VΛVᵀ‖ / (‖T‖ n)   (Fig. 9(b))

Norms are max-abs (the metrics are reported per element, divided by n,
exactly like the LAPACK testing infrastructure the paper follows).
"""

from __future__ import annotations

import numpy as np

from ..kernels.scaling import lanst

__all__ = ["orthogonality_error", "tridiagonal_residual", "eigenvalue_error"]


def orthogonality_error(V: np.ndarray) -> float:
    """‖I − VᵀV‖_max / n."""
    n = V.shape[1]
    if n == 0:
        return 0.0
    g = V.T @ V
    g[np.diag_indices(n)] -= 1.0
    return float(np.max(np.abs(g)) / n)


def tridiagonal_residual(d: np.ndarray, e: np.ndarray, lam: np.ndarray,
                         V: np.ndarray) -> float:
    """‖T − VΛVᵀ‖_max / (‖T‖ n), computed as ‖TV − VΛ‖ (V orthonormal)."""
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    tv = d[:, None] * V
    if n > 1:
        tv[:-1] += e[:, None] * V[1:]
        tv[1:] += e[:, None] * V[:-1]
    r = tv - V * lam[None, :]
    nrm = lanst("M", d, e)
    if nrm == 0.0:
        nrm = 1.0
    return float(np.max(np.abs(r)) / (nrm * n))


def eigenvalue_error(lam: np.ndarray, lam_ref: np.ndarray) -> float:
    """max |λ − λ_ref| / max(1, ‖λ_ref‖_inf)."""
    lam = np.asarray(lam)
    lam_ref = np.asarray(lam_ref)
    scale = max(1.0, float(np.max(np.abs(lam_ref))))
    return float(np.max(np.abs(lam - lam_ref)) / scale)
