"""Accuracy, complexity and schedule analysis utilities."""

from .accuracy import (orthogonality_error, tridiagonal_residual,
                       eigenvalue_error)
from .complexity import (merge_step_costs, worst_case_flops,
                         total_merge_flops, deflation_summary)
from .traces import mrrr_task_graph, mrrr_makespan, speedup_curve
from .memory import (dc_workspace_bytes, mrrr_workspace_bytes,
                     solve_high_water_bytes, workspace_report)

__all__ = [
    "orthogonality_error", "tridiagonal_residual", "eigenvalue_error",
    "merge_step_costs", "worst_case_flops", "total_merge_flops",
    "deflation_summary", "mrrr_task_graph", "mrrr_makespan",
    "speedup_curve", "dc_workspace_bytes", "mrrr_workspace_bytes",
    "solve_high_water_bytes",
    "workspace_report",
]
