"""Workspace accounting (the paper's memory trade-off).

The paper repeatedly weighs D&C's robustness/accuracy against its extra
workspace ("the extra amount of memory required by D&C could be
problematic"), versus MRRR's O(n) footprint.  These estimators report
the peak auxiliary memory of each solver in this implementation so the
trade-off is quantifiable.

The compute mode changes the model class: ``jobz='V'`` carries two n²
buffers plus the secular eigenvector blocks, while ``jobz='N'`` keeps
only the three 2×n boundary-row strips, the O(n) solver vectors and one
transient k×nb secular panel — O(n) total, the same class as MRRR.
"""

from __future__ import annotations

__all__ = ["dc_workspace_bytes", "mrrr_workspace_bytes",
           "solve_high_water_bytes", "workspace_report"]

_D = 8  # bytes per double


def _nb_default(n: int) -> int:
    """Mirror of ``DCOptions.effective_nb`` for shape-only accounting
    (kept dependency-free: analysis must not import core)."""
    return min(256, max(32, n // 64))


def dc_workspace_bytes(n: int, extra_workspace: bool = True,
                       jobz: str = "V") -> int:
    """Peak auxiliary bytes of the task-flow D&C beyond the n² output.

    ``jobz='V'``:

    * permute workspace ``Vws``: n² doubles;
    * secular eigenvector block ``X`` of the active merges: bounded by
      the root's k×k ≤ n² (the children's blocks are freed before the
      root's peak in the sequential schedule; out-of-order overlap can
      add the two (n/2)² penultimate blocks);
    * O(n) vectors (d, z, ẑ, λ, τ, permutations).

    ``jobz='N'`` (no n² output either — eigenvalues only):

    * three 2×n boundary-row strips (S, P, Pws): 6n doubles;
    * the same O(n) solver vectors;
    * one transient k×m secular panel inside ``UpdateStrip``, bounded
      by (n/2)·nb at the penultimate merges.
    """
    if jobz == "N":
        return _D * (18 * n + (n // 2) * _nb_default(n))
    x_peak = n * n + (2 * (n // 2) ** 2 if extra_workspace else 0)
    return _D * (n * n + x_peak + 12 * n)


def solve_high_water_bytes(n: int, k_root: int,
                           extra_workspace: bool = True,
                           jobz: str = "V") -> int:
    """Observed peak auxiliary bytes of one solve.

    Same accounting as :func:`dc_workspace_bytes` but with the root
    merge's *actual* secular rank ``k_root`` (deflation shrinks the
    dominant blocks below the worst case) — the telemetry subsystem
    records this as ``workspace.high_water_bytes``.
    """
    if jobz == "N":
        return _D * (18 * n + min(k_root, n // 2) * _nb_default(n))
    x_peak = k_root * k_root + (2 * (n // 2) ** 2 if extra_workspace else 0)
    return _D * (n * n + x_peak + 12 * n)


def mrrr_workspace_bytes(n: int) -> int:
    """Peak auxiliary bytes of MRRR beyond the n² output: a handful of
    O(n) vectors per representation level (D, L, D⁺, L⁺, s, p, γ...)."""
    return _D * (16 * n)


def workspace_report(n: int) -> str:
    dc = dc_workspace_bytes(n)
    dc_n = dc_workspace_bytes(n, jobz="N")
    mr = mrrr_workspace_bytes(n)
    return (f"n = {n}\n"
            f"eigenvector output : {n * n * _D / 1e6:10.2f} MB (both)\n"
            f"D&C workspace      : {dc / 1e6:10.2f} MB "
            f"({dc / (n * n * _D):.1f}x the output)\n"
            f"MRRR workspace     : {mr / 1e6:10.2f} MB (O(n))\n"
            f"ratio D&C / MRRR   : {dc / mr:10.1f}x\n"
            f"D&C jobz=N         : {dc_n / 1e6:10.2f} MB "
            f"(O(n); {dc / dc_n:.1f}x smaller than jobz=V)")
