"""Divide & Conquer SVD (the paper's future-work extension).

The paper's conclusion: *"the Singular Value Decomposition follows the
same scheme as the symmetric eigenproblem, by reducing the initial
matrix to bidiagonal form and using a Divide and Conquer algorithm as
bidiagonal solver, it is also a good candidate for applying the ideas of
this paper."*

This module applies exactly those ideas by the Golub–Kahan route: the
SVD of an upper bidiagonal B (diagonal q, superdiagonal r) is the
positive half of the spectrum of the **TGK matrix** — the permuted
``[[0, Bᵀ], [B, 0]]`` is symmetric *tridiagonal* with zero diagonal and
off-diagonals ``(q₁, r₁, q₂, r₂, …, qₙ)``.  Solving it with the
task-flow D&C eigensolver yields, for each singular triplet
(σ, u, v), the eigenpair ``λ = σ``,
``z = (v₁, u₁, v₂, u₂, …)/√2``.

``svd_bidiagonal`` runs the tridiagonal task-flow D&C on the TGK form;
``svd`` adds Householder bidiagonalization and the back-transformations
for dense matrices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.bidiagonalize import apply_ql, apply_qr, bidiagonalize
from .options import DCOptions
from .solver import dc_eigh

__all__ = ["tgk_tridiagonal", "svd_bidiagonal", "svd"]

_EPS = np.finfo(np.float64).eps


def tgk_tridiagonal(q: np.ndarray, r: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """The Golub–Kahan TGK tridiagonal of the bidiagonal (q, r).

    Returns (d, e) of size 2n with d = 0 and e interleaving q and r.
    """
    q = np.asarray(q, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    n = q.shape[0]
    if r.shape[0] != max(0, n - 1):
        raise ValueError("superdiagonal must have length n-1")
    e = np.empty(2 * n - 1)
    e[0::2] = q
    if n > 1:
        e[1::2] = r
    return np.zeros(2 * n), e


def svd_bidiagonal(q: np.ndarray, r: np.ndarray, *,
                   options: Optional[DCOptions] = None,
                   backend: str = "sequential",
                   n_workers: Optional[int] = None
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD of the upper bidiagonal matrix B = bidiag(q, r).

    Returns ``(U, s, Vt)`` with singular values descending (LAPACK
    convention) and ``B = U @ diag(s) @ Vt``.
    """
    q = np.asarray(q, dtype=np.float64)
    n = q.shape[0]
    if n == 0:
        raise ValueError("empty matrix")
    if n == 1:
        s = abs(float(q[0]))
        sign = 1.0 if q[0] >= 0 else -1.0
        return np.array([[sign]]), np.array([s]), np.eye(1)
    d, e = tgk_tridiagonal(q, r)
    lam, Z = dc_eigh(d, e, options=options, backend=backend,
                     n_workers=n_workers)
    # Positive half of the symmetric spectrum, largest first.
    idx = np.argsort(lam)[::-1][:n]
    s = lam[idx]
    Zp = Z[:, idx]
    # z = (v1, u1, v2, u2, ...)/sqrt(2)
    V = np.sqrt(2.0) * Zp[0::2, :]
    U = np.sqrt(2.0) * Zp[1::2, :]
    # Tiny singular values: the ±σ eigenspaces merge at zero, so the
    # extracted halves of a near-null eigenvector can have any norms
    # (even 0 and 1).  The well-determined columns span the row/column
    # space, so complete each tiny column as an orthogonal-complement
    # direction: that is exactly null(B) / null(Bᵀ) up to O(σ).
    scale = max(float(np.max(np.abs(s))), 1.0)
    tiny = np.abs(s) <= 64.0 * n * _EPS * scale
    nrm_u = np.sqrt(np.sum(U * U, axis=0))
    nrm_v = np.sqrt(np.sum(V * V, axis=0))
    for M, nrm in ((U, nrm_u), (V, nrm_v)):
        safe = np.where(nrm == 0.0, 1.0, nrm)
        M /= safe[None, :]
        if np.any(tiny):
            rng = np.random.default_rng(n)
            others = np.where(~tiny)[0]
            done = list(others)
            for c in np.where(tiny)[0]:
                x = M[:, c] if nrm[c] > 0.25 else rng.normal(size=n)
                for _sweep in range(2):
                    for c2 in done:
                        x = x - np.dot(M[:, c2], x) * M[:, c2]
                nx = np.linalg.norm(x)
                if nx < 1e-3:
                    x = rng.normal(size=n)
                    for _sweep in range(2):
                        for c2 in done:
                            x = x - np.dot(M[:, c2], x) * M[:, c2]
                    nx = np.linalg.norm(x)
                M[:, c] = x / nx
                done.append(c)
    s = np.maximum(s, 0.0)
    return U, s, V.T


def svd(a: np.ndarray, *, options: Optional[DCOptions] = None,
        backend: str = "sequential",
        n_workers: Optional[int] = None
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD of a dense m×n matrix via bidiagonalization + D&C.

    Returns ``(U, s, Vt)`` with ``A = U @ diag(s) @ Vt``; U is m×n,
    Vt is n×n, singular values descending.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("expected a 2-D array")
    m, n = a.shape
    if m < n:
        u, s, vt = svd(a.T, options=options, backend=backend,
                       n_workers=n_workers)
        return vt.T, s, u.T
    bid = bidiagonalize(a)
    ub, s, vbt = svd_bidiagonal(bid.q, bid.r, options=options,
                                backend=backend, n_workers=n_workers)
    # Back-transform: U = Q_L [ub; 0], V = Q_R vb.
    u_full = np.zeros((m, n))
    u_full[:n, :] = ub
    U = apply_ql(bid, u_full)
    V = apply_qr(bid, vbt.T)
    return U, s, V.T
