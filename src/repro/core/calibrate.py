"""Host calibration: turn abstract task costs into seconds.

The cost model (:mod:`repro.core.costs`, paper Table I) counts flops and
bytes.  Scheduling decisions — b-level priorities and the level-adaptive
panel width — need *seconds*, which requires machine rates.  This module
provides them three ways:

``DEFAULT_CALIBRATION``
    Deterministic constants representative of this Python/NumPy runtime
    (vectorized kernels a few Gflop/s, BLAS GEMM tens of Gflop/s,
    ~10 GB/s single-stream bandwidth, ~15 µs per-task dispatch as
    measured on the thread/worker-pool schedulers).  Used whenever
    nothing measured is available, so priorities and panel widths — and
    therefore DAG template keys — are reproducible across hosts.

``from_machine(machine)``
    Mirror of a simulator :class:`~repro.runtime.simulator.Machine`, so
    priorities computed for the simulated backend rank tasks by exactly
    the durations the simulator will charge.

``host_calibration()``
    Micro-benchmarks run once per process (< ~100 ms, memoized):
    effective flop rate, GEMM rate, stream bandwidth, per-task dispatch
    overhead, mean secular sweep count, and the batched-vs-streaming
    Givens crossover height.  Opt-in via ``set_calibration`` or
    ``REPRO_CALIBRATION=host`` because measured rates make priorities
    (and graph-template keys) host-dependent.

The process-wide active calibration is resolved by :func:`get_calibration`
(override > environment > default) and consumed by
``DCOptions.node_nb``, ``submit_dc``'s b-level pass, ``cost_laed4``'s
sweep default and the Givens kernel crossover.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports core)
    from ..runtime.simulator import Machine
    from ..runtime.task import TaskCost

__all__ = [
    "Calibration", "DEFAULT_CALIBRATION", "from_machine",
    "host_calibration", "get_calibration", "set_calibration",
]

#: Kernels timed at full GEMM/BLAS rate; everything else runs at the
#: vectorized-elementwise rate (mirrors ``Machine.flop_rate``).
_GEMM_KERNELS = frozenset({"UpdateVect", "GEMM", "STEDC"})


@dataclass(frozen=True)
class Calibration:
    """Machine rates used to convert :class:`TaskCost` into seconds.

    ``flop_rate`` / ``gemm_flop_rate``
        Sustained flops/s of vectorized elementwise kernels vs. BLAS-3
        kernels (``UpdateVect``/``STEDC``), matching the simulator's
        kernel-efficiency split.
    ``mem_bw``
        Single-stream memory bandwidth in bytes/s for copy-dominated
        kernels.
    ``task_overhead_s``
        Per-task dispatch cost of the runtime (submission + scheduling),
        charged once per task.
    ``secular_sweeps``
        Mean LAED4 iterations per secular root; default of
        :func:`repro.core.costs.cost_laed4`.
    ``givens_crossover``
        Eigenvector-block height below which the batched Givens path
        beats the streaming path (:mod:`repro.kernels.givens`).
    ``source``
        Provenance tag: ``"default"``, ``"machine"`` or ``"host"``.
    """

    flop_rate: float = 4.0e9
    gemm_flop_rate: float = 40.0e9
    mem_bw: float = 10.0e9
    task_overhead_s: float = 15.0e-6
    secular_sweeps: float = 10.0
    givens_crossover: int = 512
    source: str = "default"

    def __post_init__(self) -> None:
        for f in ("flop_rate", "gemm_flop_rate", "mem_bw"):
            if getattr(self, f) <= 0.0:
                raise ValueError(f"{f} must be > 0")
        if self.task_overhead_s < 0.0 or self.secular_sweeps <= 0.0:
            raise ValueError("task_overhead_s must be >= 0, "
                             "secular_sweeps > 0")
        if self.givens_crossover < 1:
            raise ValueError("givens_crossover must be >= 1")

    def rate(self, kernel: str = "") -> float:
        return self.gemm_flop_rate if kernel in _GEMM_KERNELS \
            else self.flop_rate

    def seconds(self, cost: "TaskCost", kernel: str = "") -> float:
        """Estimated duration of one task with cost ``cost``."""
        return (cost.flops / self.rate(kernel)
                + cost.bytes_moved / self.mem_bw
                + cost.serial_overhead
                + self.task_overhead_s)

    @property
    def key(self) -> tuple:
        """Value identity for DAG-template cache keys: two calibrations
        with the same rates produce the same priorities and panel
        widths, whatever their provenance."""
        return (round(self.flop_rate), round(self.gemm_flop_rate),
                round(self.mem_bw), round(self.task_overhead_s, 9),
                round(self.secular_sweeps, 3), self.givens_crossover)


#: Deterministic fallback constants (see module docstring).
DEFAULT_CALIBRATION = Calibration()


def from_machine(machine: "Machine") -> Calibration:
    """Calibration mirroring a simulator machine, so b-level priorities
    rank tasks by the durations the simulator charges."""
    full = machine.core_gflops * 1e9
    return Calibration(
        flop_rate=full * machine.kernel_efficiency,
        gemm_flop_rate=full,
        mem_bw=machine.stream_bw,
        task_overhead_s=machine.task_overhead,
        secular_sweeps=DEFAULT_CALIBRATION.secular_sweeps,
        givens_crossover=DEFAULT_CALIBRATION.givens_crossover,
        source="machine",
    )


# ----------------------------------------------------------------------
# Host micro-benchmarks (memoized once per process).

_lock = threading.Lock()
_host: Optional[Calibration] = None
_override: Optional[Calibration] = None


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_rates() -> tuple[float, float, float]:
    """(flop_rate, gemm_flop_rate, mem_bw) from three tiny kernels."""
    import numpy as np

    x = np.random.default_rng(0).standard_normal(1 << 20)
    y = x.copy()
    out = np.empty_like(x)

    def axpy():
        np.multiply(x, 1.0000001, out=out)
        np.add(out, y, out=out)
    flop = 2.0 * x.size / max(_best_of(axpy), 1e-9)

    a = np.random.default_rng(1).standard_normal((384, 384))
    b = a.copy()

    def gemm():
        a @ b
    gemm_rate = 2.0 * 384.0 ** 3 / max(_best_of(gemm), 1e-9)

    def copy():
        out[:] = x
    bw = 16.0 * x.size / max(_best_of(copy), 1e-9)
    return flop, gemm_rate, bw


def _probe_task_overhead() -> float:
    """Per-task cost of submission + threaded dispatch (no-op tasks)."""
    from ..runtime.dag import TaskGraph
    from ..runtime.scheduler import ThreadScheduler
    from ..runtime.task import OUTPUT, DataHandle

    n = 1000

    def run():
        g = TaskGraph()
        for i in range(n):
            g.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                          name="noop")
        ThreadScheduler(n_workers=4).run(g)

    return _best_of(run, repeats=2) / n


def _probe_secular_sweeps() -> float:
    """Mean LAED4 iterations per root on a representative rank-one
    update (the calibration-time probe behind ``cost_laed4``)."""
    import numpy as np

    from ..kernels.secular import solve_secular

    rng = np.random.default_rng(42)
    k = 96
    dlamda = np.sort(rng.standard_normal(k))
    z = rng.standard_normal(k)
    z /= np.linalg.norm(z)
    res = solve_secular(dlamda, z, 0.7)
    return max(1.0, res.iterations / k)


def _probe_givens_crossover() -> int:
    """Solve the streaming-vs-batched Givens crossover height from two
    timed samples of each path (linear per-rotation model)."""
    import numpy as np

    from ..kernels.deflation import GivensRotation
    from ..kernels.givens import _apply_batched, _apply_streaming

    rng = np.random.default_rng(7)
    heights = (192, 1536)
    per_rot = {"stream": [], "batch": []}
    for h in heights:
        ncols = 64
        V = np.asfortranarray(rng.standard_normal((h, ncols)))
        chains = [[GivensRotation(i, i + 1, 0.8, 0.6)]
                  for i in range(0, ncols - 2, 2)]
        n_rot = len(chains)
        per_rot["stream"].append(
            _best_of(lambda: _apply_streaming(V.copy(), 0, h, chains))
            / n_rot)
        per_rot["batch"].append(
            _best_of(lambda: _apply_batched(V.copy(), 0, h, chains))
            / n_rot)
    h0, h1 = heights
    slope_s = (per_rot["stream"][1] - per_rot["stream"][0]) / (h1 - h0)
    slope_b = (per_rot["batch"][1] - per_rot["batch"][0]) / (h1 - h0)
    int_s = per_rot["stream"][0] - slope_s * h0
    int_b = per_rot["batch"][0] - slope_b * h0
    # Streaming has the higher fixed cost, batching the steeper slope;
    # the crossover is where the lines meet.  Degenerate fits fall back
    # to the default.
    if slope_b <= slope_s:
        cross = DEFAULT_CALIBRATION.givens_crossover
    else:
        cross = int((int_s - int_b) / (slope_b - slope_s))
    return max(128, min(4096, cross))


def host_calibration() -> Calibration:
    """Measure the host once per process (memoized, thread-safe)."""
    global _host
    with _lock:
        if _host is None:
            flop, gemm_rate, bw = _probe_rates()
            _host = Calibration(
                flop_rate=flop,
                gemm_flop_rate=gemm_rate,
                mem_bw=bw,
                task_overhead_s=_probe_task_overhead(),
                secular_sweeps=_probe_secular_sweeps(),
                givens_crossover=_probe_givens_crossover(),
                source="host",
            )
        return _host


def set_calibration(cal: Optional[Calibration]) -> None:
    """Install a process-wide calibration override (``None`` clears it).

    Clearing also resets caches derived from the active calibration
    (currently the Givens crossover cache)."""
    global _override
    with _lock:
        _override = cal
    from ..kernels import givens
    givens._reset_crossover_cache()


def get_calibration() -> Calibration:
    """Active calibration: override > ``REPRO_CALIBRATION`` env > default.

    ``REPRO_CALIBRATION=host`` switches to measured host rates (making
    priorities and template keys host-dependent); any other value, or
    none, selects :data:`DEFAULT_CALIBRATION`.
    """
    if _override is not None:
        return _override
    if os.environ.get("REPRO_CALIBRATION", "").strip().lower() == "host":
        return host_calibration()
    return DEFAULT_CALIBRATION
