"""Solver sessions: persistent workers, fused batch super-DAGs, pooled
workspaces.

The paper's central claim is that a matrix-independent task flow lets
independent (sub)problems share one set of cores without barriers.  A
:class:`SolverSession` applies that claim *across* solves:

* one persistent :class:`~repro.runtime.scheduler.WorkerPool` lives for
  the session's lifetime — workers park between solves instead of being
  spawned and joined per solve;
* :meth:`SolverSession.submit` instantiates a problem's task graph from
  the matrix-independent template cache and fuses it into the pool's
  running super-DAG, so panel tasks from problem B fill workers idled by
  problem A's serial merge spine.  Failure isolation and fault injection
  stay per sub-graph (one failing problem never cancels its batch-mates);
* a :class:`WorkspacePool` arena recycles the n²-sized ``V``/``Vws`` (and
  per-merge ``X``) buffers across same-shape solves, taking workspace
  allocation off the per-solve path.

``dc_eigh`` and ``dc_eigh_many`` are thin wrappers over a one-shot
session, so single-solve behavior — numerics, telemetry spans, error
types — is unchanged; results from concurrent submissions are bitwise
identical to one-shot solves (any topological order of the fused DAG is
valid, and every recycled buffer location is written before it is read).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import (InputError, ReproError, SchedulerError,
                      validate_subset, validate_tridiagonal)
from ..obs.live import (FlightRecorder, SessionMetrics,
                        resolve_postmortem_dir, write_postmortem)
from ..obs.recorder import NULL_RECORDER
from ..runtime.dag import TaskGraph
from ..runtime.faults import FaultInjector
from ..runtime.quark import Quark
from ..runtime.scheduler import WorkerPool, default_thread_workers
from ..runtime.simulator import Machine
from .graph_cache import graph_template_cache, template_key
from .merge import DCContext
from .options import DCOptions
from .tasks import DCGraphInfo, submit_dc
from .tree import build_tree

__all__ = ["SolverSession", "SolveHandle", "WorkspacePool",
           "SharedWorkspacePool"]


class WorkspacePool:
    """Arena recycling solve workspaces across same-shape solves.

    Buffers are keyed by exact shape and handed out **dirty**: the D&C
    task flow writes every V/Vws/X location before reading it, so reuse
    is bitwise exact while skipping the allocation + page-zeroing cost
    of fresh ``np.zeros`` calls (2 × n² doubles per solve).  The result
    buffer of a successful solve (``Vws``, which holds the sorted
    eigenvectors) is *forgotten* — its ownership passes to the caller —
    so results never alias a recycled buffer.

    Retention is bounded twice: per shape (``max_free_per_shape``) and
    globally (``max_free_bytes``, LRU-by-shape eviction).  The global
    cap matters because merge ``X`` buffers are ``(k, k)`` with a
    deflation-dependent — i.e. matrix-dependent — ``k``, so a long-lived
    session over varied inputs would otherwise accumulate a free list
    for every distinct ``k`` it ever saw.

    ``high_water_bytes`` tracks the peak bytes owned by the arena
    (free + lent out) and feeds the existing
    ``workspace.high_water_bytes`` telemetry gauge.

    Allocation and disposal go through the ``_alloc``/``_discard``
    hooks so :class:`SharedWorkspacePool` can back the same arena with
    named shared-memory segments for the processes backend.
    """

    #: True when buffers live in shared-memory segments visible to
    #: child processes (overridden by :class:`SharedWorkspacePool`).
    shared = False

    def __init__(self, max_free_per_shape: int = 8,
                 max_free_bytes: int = 256 * 2 ** 20, recorder=None):
        self.max_free_per_shape = max_free_per_shape
        self.max_free_bytes = max_free_bytes
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._lock = threading.Lock()
        # Shape -> free buffers, in least-recently-used shape order.
        self._free: OrderedDict[tuple[int, ...], list[np.ndarray]] = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.owned_bytes = 0
        self.free_bytes = 0
        self.high_water_bytes = 0

    def take(self, shape: tuple[int, ...]) -> np.ndarray:
        """A Fortran-ordered float64 buffer of ``shape`` (zeroed only
        when freshly allocated; recycled buffers come back dirty)."""
        rec = self.recorder
        with self._lock:
            stack = self._free.get(shape)
            if stack:
                buf = stack.pop()
                if stack:
                    self._free.move_to_end(shape)
                else:
                    del self._free[shape]
                self.free_bytes -= buf.nbytes
                self.hits += 1
                if rec.enabled:
                    rec.add("workspace_pool.hits")
                return buf
            self.misses += 1
            nbytes = 8 * int(np.prod(shape))
            self.owned_bytes += nbytes
            if self.owned_bytes > self.high_water_bytes:
                self.high_water_bytes = self.owned_bytes
            if rec.enabled:
                rec.add("workspace_pool.misses")
                rec.gauge_max("workspace.high_water_bytes",
                              self.high_water_bytes)
        return self._alloc(shape)

    def _alloc(self, shape: tuple[int, ...]) -> np.ndarray:
        """Fresh zeroed buffer (hook for shared-memory subclasses)."""
        return np.zeros(shape, order="F")

    def _discard(self, buf: np.ndarray) -> None:
        """Dispose of a buffer leaving the arena (hook; no-op here —
        the garbage collector reclaims process-private buffers)."""

    def release(self, buf: Optional[np.ndarray]) -> None:
        """Return a buffer for reuse.

        Dropped when the shape's free list is full; past the global
        byte cap, whole least-recently-used *shapes* are evicted, so
        distinct-shape churn cannot grow the arena without bound.
        """
        if buf is None or buf.size == 0:
            return
        dropped: list[np.ndarray] = []
        with self._lock:
            stack = self._free.get(buf.shape)
            if stack is not None and len(stack) >= self.max_free_per_shape:
                self.owned_bytes -= buf.nbytes
                dropped.append(buf)
            else:
                if stack is None:
                    stack = self._free[buf.shape] = []
                else:
                    self._free.move_to_end(buf.shape)
                stack.append(buf)
                self.free_bytes += buf.nbytes
                while self.free_bytes > self.max_free_bytes and self._free:
                    lru_shape, lru_stack = next(iter(self._free.items()))
                    victim = lru_stack.pop()
                    if not lru_stack:
                        del self._free[lru_shape]
                    self.free_bytes -= victim.nbytes
                    self.owned_bytes -= victim.nbytes
                    self.evictions += 1
                    dropped.append(victim)
        for victim in dropped:
            self._discard(victim)

    def forget(self, buf: Optional[np.ndarray]) -> None:
        """Transfer a buffer's ownership out of the pool (result hand-off)."""
        if buf is None or buf.size == 0:
            return
        with self._lock:
            self.owned_bytes -= buf.nbytes

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {"hits": self.hits, "misses": self.misses,
                    "hit_rate": self.hits / lookups if lookups else None,
                    "evictions": self.evictions,
                    "owned_bytes": self.owned_bytes,
                    "free_bytes": self.free_bytes,
                    "high_water_bytes": self.high_water_bytes,
                    "free_buffers": sum(len(v) for v in
                                        self._free.values())}


class SharedWorkspacePool(WorkspacePool):
    """A :class:`WorkspacePool` backed by named shared-memory segments.

    The processes backend maps every V/Vws/D/X workspace into the
    worker processes, so panel tasks mutate the same physical pages the
    parent reads — zero copies cross the process boundary.  Semantics
    match the base arena exactly (dirty reuse, shape-keyed free lists,
    byte-capped LRU eviction): fresh POSIX segments are zero-filled
    just like ``np.zeros``, so the "zeroed only when fresh" contract
    holds bit for bit.

    Ownership is strictly parent-side: segments created here are
    unlinked when dropped, evicted or :meth:`close`\\ d, and
    child-created X segments are handed over via :meth:`adopt` so the
    unlink duty never rests with a worker that may be killed.
    ``forget`` degrades to :meth:`release` — a segment cannot leave the
    pool's ownership, so the processes result path copies eigenvectors
    out of shared memory instead of aliasing them.
    """

    shared = True

    # Process-global so concurrent pools (e.g. a one-shot solve while a
    # session is open) never mint the same segment name.
    _seg_seq = itertools.count()

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seg_lock = threading.Lock()
        self._segs: dict[str, tuple] = {}      # name -> (shm, arr)
        self._by_id: dict[int, str] = {}       # id(arr) -> name

    @staticmethod
    def _unlink(shm) -> None:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def _alloc(self, shape: tuple[int, ...]) -> np.ndarray:
        from multiprocessing import shared_memory
        nbytes = max(1, 8 * int(np.prod(shape)))
        name = f"repro-ws-{os.getpid()}-{next(self._seg_seq)}"
        shm = shared_memory.SharedMemory(create=True, size=nbytes,
                                         name=name)
        arr = np.ndarray(shape, dtype=np.float64, order="F",
                         buffer=shm.buf)
        with self._seg_lock:
            self._segs[name] = (shm, arr)
            self._by_id[id(arr)] = name
        return arr

    def _discard(self, buf: np.ndarray) -> None:
        with self._seg_lock:
            name = self._by_id.pop(id(buf), None)
            entry = self._segs.pop(name, None) if name else None
        if entry is not None:
            self._unlink(entry[0])

    def forget(self, buf: Optional[np.ndarray]) -> None:
        # Ownership of a named segment cannot transfer out of the pool
        # (somebody must unlink it); recycle instead.
        self.release(buf)

    def name_of(self, buf: np.ndarray) -> str:
        """The segment name backing ``buf`` (for task dispatch)."""
        with self._seg_lock:
            return self._by_id[id(buf)]

    def adopt(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """Attach a child-created segment and take ownership of it."""
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.float64, order="F",
                         buffer=shm.buf)
        with self._seg_lock:
            self._segs[name] = (shm, arr)
            self._by_id[id(arr)] = name
        rec = self.recorder
        with self._lock:
            self.owned_bytes += arr.nbytes
            if self.owned_bytes > self.high_water_bytes:
                self.high_water_bytes = self.owned_bytes
            # Adopted child segments are real auxiliary memory of the
            # solve: fold them into the same telemetry gauge that
            # parent-side allocations feed.
            if rec.enabled:
                rec.gauge_max("workspace.high_water_bytes",
                              self.high_water_bytes)
        return arr

    def close(self) -> None:
        """Unlink every segment.  Linux keeps the pages alive until the
        last unmap, so still-referenced result views stay valid; new
        attaches become impossible and the names are reclaimed."""
        with self._lock:
            self._free.clear()
            self.free_bytes = 0
            self.owned_bytes = 0
        with self._seg_lock:
            segs = list(self._segs.values())
            self._segs.clear()
            self._by_id.clear()
        for shm, _ in segs:
            self._unlink(shm)


class SolveHandle:
    """Future-style handle for one submitted problem.

    ``result()`` blocks until the solve completes and returns ``(lam,
    V)`` (or a :class:`~repro.core.solver.DCResult` when the submission
    asked for ``full_result``); a failed solve re-raises its typed
    :class:`~repro.errors.ReproError`.  ``latency_s`` is the submit →
    completion wall time, the per-solve latency of a batch.
    """

    __slots__ = ("t_submit", "t_done", "_run", "_ctx", "_graph", "_info",
                 "_full", "_value", "_error", "_has_value")

    def __init__(self, ctx=None, graph=None, info=None, full=False):
        self.t_submit = time.perf_counter()
        self.t_done: Optional[float] = None
        self._run = None
        self._ctx = ctx
        self._graph = graph
        self._info = info
        self._full = full
        self._value = None
        self._error: Optional[BaseException] = None
        self._has_value = False

    def done(self) -> bool:
        """True once the solve has finished (successfully or not)."""
        return self._run is None or self._run.wait(0)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The solve's error, or None on success.  Blocks like result()."""
        self._wait(timeout)
        return self._error

    def result(self, timeout: Optional[float] = None):
        """Block for completion; the solve's result or raised error."""
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        if not self._has_value:
            # Finalization is pure reads of D_sorted/Vws, so a race
            # between two result() callers is benign.
            lam, V = self._ctx.result()
            if self._full:
                from .solver import DCResult
                self._value = DCResult(lam, V, self._run.trace,
                                       self._graph, self._info)
            else:
                self._value = (lam, V)
            self._has_value = True
        return self._value

    @property
    def latency_s(self) -> Optional[float]:
        """Submit → completion wall time (None while still running)."""
        return None if self.t_done is None else self.t_done - self.t_submit

    def _wait(self, timeout: Optional[float]) -> None:
        run = self._run
        if run is not None:
            if not run.wait(timeout):
                raise SchedulerError("timed out waiting for solve")
            if run.failed and self._error is None:
                self._error = run.errors[0]


class SolverSession:
    """A long-lived eigensolver service: one worker pool, many solves.

    Parameters
    ----------
    backend:
        ``"threads"`` (default) runs concurrent submissions on one
        persistent work-stealing pool, fused into a single super-DAG.
        ``"processes"`` runs them on a persistent pool of *worker
        processes* with shared-memory workspaces — the same task flow
        without the GIL, so the quadratic pure-Python merge phases
        (LAED4, PermuteV, deflation) scale on real cores.
        ``"sequential"`` / ``"simulated"`` execute each submission
        eagerly on the calling thread (still with pooled workspaces and
        cached graph templates) — useful for debugging and equivalence
        testing against the same API.
    n_workers / machine:
        Pool size (defaults to one per core, clamped) / virtual machine
        for the simulated backend.
    options:
        Session-wide :class:`DCOptions`.  ``reuse_graph`` is forced on:
        the task graph is matrix independent, so same-shape submissions
        skip dependency analysis entirely.  Per-submission ``options``
        overrides are accepted by :meth:`submit`.
    workspace_pool:
        Recycle V/Vws/X buffers across solves (default on; pass False to
        allocate per solve like ``dc_eigh``).
    max_inflight:
        Bound on concurrently executing fused sub-graphs; further
        ``submit`` calls block until a slot frees.  Caps the live
        workspace footprint at ``max_inflight × 3n²`` doubles.
        Default: ``max(2, min(8, n_workers))``.
    flight:
        The always-on :class:`~repro.obs.live.FlightRecorder`: a bounded
        ring of recent task events dumped as a post-mortem bundle when a
        solve fails (see ``DCOptions.postmortem_dir``).  ``True``
        (default) builds one; pass a recorder to share it across
        sessions, or ``False`` to strip even the ring append from the
        task path.
    serve_port / serve_host:
        When ``serve_port`` is not None, start a background
        :class:`~repro.obs.live.MetricsServer` exposing ``/metrics``,
        ``/healthz`` and ``/debug/state`` (``0`` binds an ephemeral
        port; read it from ``session.server.port``).
    profile_interval_s:
        When set, attach a task-attributed
        :class:`~repro.obs.profile.SamplingProfiler` to the worker pool
        at this sampling period (threads backend only; opt-in).

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, *, backend: str = "threads",
                 n_workers: Optional[int] = None,
                 machine: Optional[Machine] = None,
                 options: Optional[DCOptions] = None,
                 workspace_pool: bool = True,
                 max_inflight: Optional[int] = None,
                 flight=True,
                 serve_port: Optional[int] = None,
                 serve_host: str = "127.0.0.1",
                 profile_interval_s: Optional[float] = None,
                 _one_shot: bool = False):
        if backend not in ("sequential", "threads", "processes",
                           "simulated"):
            raise InputError(f"unknown backend {backend!r}")
        self.backend = backend
        self.machine = machine if machine is not None else (
            Machine() if backend == "simulated" else None)
        if n_workers is None:
            n_workers = self.machine.n_cores if self.machine else (
                default_thread_workers()
                if backend in ("threads", "processes") else 1)
        self.n_workers = n_workers
        self._one_shot = _one_shot
        opts = options or DCOptions()
        if not _one_shot:
            opts = opts.with_(reuse_graph=True)
        self.options = opts
        self._obs = opts.telemetry if opts.telemetry is not None \
            else NULL_RECORDER
        # The processes backend always routes through the pool path —
        # even one-shot — because only the persistent machinery knows
        # how to drive worker processes; one-shot tears it down after
        # the single solve.
        self._persistent = (backend == "threads" and not _one_shot) \
            or backend == "processes"
        if backend == "processes":
            # Child processes can only see shared-memory workspaces, so
            # the arena is mandatory; without retention (one-shot or
            # workspace_pool=False) it degrades to alloc/unlink per
            # solve via zero retention caps.
            retain = workspace_pool and not _one_shot
            self._workspace = SharedWorkspacePool(
                recorder=opts.telemetry) if retain else \
                SharedWorkspacePool(max_free_per_shape=0, max_free_bytes=0,
                                    recorder=opts.telemetry)
        else:
            self._workspace = (WorkspacePool(recorder=opts.telemetry)
                               if workspace_pool and not _one_shot
                               else None)
        self._pool = None
        self._lock = threading.Lock()
        self._outstanding: set[SolveHandle] = set()
        self._closed = False
        if max_inflight is None:
            max_inflight = max(2, min(8, self.n_workers))
        self.max_inflight = max_inflight
        self._slots = threading.BoundedSemaphore(max_inflight) \
            if self._persistent else None
        #: Always-on service observability (zero solver-numerics impact).
        self.metrics = SessionMetrics()
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder() if flight is True
            else (flight if flight else None))
        self._profile_interval = profile_interval_s
        self.profiler = None
        self.server = None
        if serve_port is not None:
            from ..obs.live import MetricsServer
            self.server = MetricsServer(self, port=serve_port,
                                        host=serve_host)

    # -- public API ------------------------------------------------------
    def submit(self, d, e, *, subset=None, full_result: bool = False,
               options: Optional[DCOptions] = None) -> SolveHandle:
        """Solve asynchronously; returns a :class:`SolveHandle`.

        Input validation errors raise immediately; execution failures
        surface from ``handle.result()`` as typed
        :class:`~repro.errors.ReproError`\\ s, isolated to this problem.
        """
        if self._closed:
            raise SchedulerError("session is closed")
        opts = options if options is not None else self.options
        if not self._one_shot and not opts.reuse_graph:
            opts = opts.with_(reuse_graph=True)
        d, e = validate_tridiagonal(d, e)
        subset = validate_subset(subset, d.shape[0])
        if d.shape[0] == 1:
            return self._solve_n1(d, e, subset, full_result, opts)
        if self._persistent:
            return self._submit_pool(d, e, subset, full_result, opts)
        return self._submit_inline(d, e, subset, full_result, opts)

    def solve(self, d, e, *, subset=None, full_result: bool = False,
              options: Optional[DCOptions] = None):
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(d, e, subset=subset, full_result=full_result,
                           options=options).result()

    def map(self, problems, *, subset=None, full_result: bool = False,
            raise_on_error: bool = False) -> list:
        """Solve a batch; result records in input order.

        Failures are isolated per problem: a failing solve produces a
        :class:`~repro.core.solver.SolveFailure` in its slot while its
        batch-mates complete.  ``raise_on_error=True`` re-raises the
        first (lowest-index) failure instead.
        """
        from .solver import SolveFailure
        handles: list = []
        for i, (d, e) in enumerate(problems):
            try:
                handles.append(self.submit(d, e, subset=subset,
                                           full_result=full_result))
            except ReproError as exc:
                if raise_on_error:
                    raise
                handles.append(SolveFailure(i, exc))
        out: list = []
        for i, h in enumerate(handles):
            if isinstance(h, SolveFailure):
                out.append(h)
                continue
            try:
                out.append(h.result())
            except ReproError as exc:
                if raise_on_error:
                    raise
                out.append(SolveFailure(i, exc))
        return out

    def stats(self) -> dict:
        """Session-level service stats: pool, workspaces, template cache."""
        out: dict = {"backend": self.backend, "n_workers": self.n_workers,
                     "graph_cache": graph_template_cache.stats()}
        if self._workspace is not None:
            out["workspace"] = self._workspace.stats()
        if self._pool is not None:
            out["runs_completed"] = self._pool.runs_completed
            out["pool"] = {"workers_alive": self._pool.workers_alive,
                           "workers_parked": self._pool.parked,
                           "inflight_runs": len(self._pool._active)}
        out["metrics"] = self.metrics.to_dict()
        if self.flight is not None:
            out["flight"] = self.flight.occupancy()
        return out

    def close(self, wait: bool = True) -> None:
        """Drain outstanding solves (``wait=True``) and stop the workers.

        Idempotent.  Further ``submit`` calls raise
        :class:`~repro.errors.SchedulerError`.  ``_closed`` flips under
        the session lock — the same lock ``_submit_pool`` holds while
        registering a handle — so every submission either lands in the
        drain snapshot below or observes the closed session and raises;
        a run that still slips into the pool is *failed* (not stranded)
        by ``WorkerPool.shutdown``.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            pending = list(self._outstanding)
        if already:
            return
        if wait:
            for h in pending:
                run = h._run
                if run is None:
                    # The submitter registered the handle but has not
                    # fused its graph yet; assignment is imminent.
                    deadline = time.perf_counter() + 1.0
                    while h._run is None and time.perf_counter() < deadline:
                        time.sleep(0.001)
                    run = h._run
                if run is not None:
                    run.wait()
        if self.profiler is not None:
            self.profiler.stop()
        if self._pool is not None:
            self._pool.shutdown()
        ws = self._workspace
        if ws is not None and ws.shared:
            # Parent owns every shared-memory segment: unlink them all
            # (already-materialized results were copied out).
            ws.close()
        if self.server is not None:
            self.server.close()
        if self.flight is not None:
            self.flight.record("session.close", self.backend)

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------
    def _instantiate(self, ctx: DCContext, opts: DCOptions, obs
                     ) -> tuple[TaskGraph, DCGraphInfo]:
        """The graph for one solve: template cache hit or fresh analysis."""
        if opts.reuse_graph:
            key = template_key(ctx.n, opts,
                               None if ctx.subset is None
                               else ctx.subset.shape[0])
            with obs.span("graph.instantiate", key=key):
                return graph_template_cache.get_or_build(ctx, key)
        with obs.span("graph.build"):
            graph = TaskGraph()
            tree = build_tree(ctx.n, opts.minpart)
            info = submit_dc(graph, ctx, tree)
            return graph, info

    def _finish_solve(self, handle: SolveHandle, ctx: Optional[DCContext],
                      opts: DCOptions, error: Optional[BaseException],
                      n_tasks: int) -> None:
        """Post-solve bookkeeping, shared by every execution path: feed
        the session digests/counters, note the outcome in the flight
        ring, and dump a post-mortem bundle when the solve failed or
        degraded to the STEQR fallback (and a bundle directory is
        configured).  Never raises — runs on pool completion hooks."""
        try:
            merge_stats = ctx.merge_stats if ctx is not None else []
        except Exception:
            merge_stats = []
        self.metrics.note_solve(handle.latency_s, merge_stats,
                                failed=error is not None, n_tasks=n_tasks,
                                jobz=opts.jobz)
        fallback = any(s.fallback for s in merge_stats)
        if self.flight is not None:
            self.flight.record("solve.fail" if error is not None
                               else "solve.done", self.backend,
                               detail=(f"{type(error).__name__}: {error}"
                                       if error is not None else
                                       ("steqr-fallback" if fallback
                                        else "")))
        if error is None and not fallback:
            return
        directory = resolve_postmortem_dir(opts)
        if directory is None:
            return
        try:
            write_postmortem(
                directory,
                reason="solve-failure" if error is not None
                       else "steqr-fallback",
                error=error, options=opts, flight=self.flight,
                session_stats=self.stats(), metrics=self.metrics)
        except OSError:
            pass        # an unwritable crash dir must not mask the solve

    def _solve_n1(self, d, e, subset, full_result, opts) -> SolveHandle:
        # The 1x1 fast path honours `subset` and `jobz` like the
        # general path.
        lam = d.copy() if subset is None else d[subset]
        V = None if opts.jobz == "N" else \
            np.ones((1, 1 if subset is None else subset.shape[0]))
        h = SolveHandle(full=full_result)
        if full_result:
            from .solver import DCResult
            q = Quark("sequential")
            h._value = DCResult(lam, V, q.barrier(), TaskGraph(),
                                DCGraphInfo(DCContext(d, e, opts),
                                            build_tree(1, 1)))
        else:
            h._value = (lam, V)
        h._has_value = True
        h.t_done = time.perf_counter()
        self.metrics.note_solve(h.latency_s, jobz=opts.jobz)
        return h

    def _submit_inline(self, d, e, subset, full_result, opts) -> SolveHandle:
        """Eager execution on the calling thread (sequential/simulated
        backends and one-shot sessions) — the classic ``dc_eigh`` path,
        plus workspace pooling when the session has an arena."""
        obs = opts.telemetry if opts.telemetry is not None else NULL_RECORDER
        n = d.shape[0]
        handle = SolveHandle(full=full_result)
        ctx = None
        info = None
        n_tasks = 0
        try:
            with obs.span("solve", n=n, backend=self.backend):
                ctx = DCContext(d, e, opts, subset=subset,
                                workspace=self._workspace)
                quark = Quark(self.backend, n_workers=self.n_workers,
                              machine=self.machine, recorder=opts.telemetry,
                              fault_injection=opts.fault_injection,
                              flight=self.flight)
                graph, info = self._instantiate(ctx, opts, obs)
                quark.graph = graph
                n_tasks = len(graph.tasks)
                if obs.enabled:
                    obs.add("solve.count")
                    obs.add(f"solve.jobz.{opts.jobz}")
                    obs.add("solve.tasks_submitted", n_tasks)
                with obs.span("execute"):
                    trace = quark.barrier()
                with obs.span("finalize"):
                    lam, V = ctx.result()
            ctx.release_workspace(info.states.values(), keep_result=True)
            if full_result:
                from .solver import DCResult
                handle._value = DCResult(lam, V, trace, graph, info)
            else:
                handle._value = (lam, V)
            handle._has_value = True
        except ReproError as exc:
            if ctx is not None:
                ctx.release_workspace(
                    info.states.values() if info is not None else (),
                    keep_result=False)
            handle._error = exc
        handle.t_done = time.perf_counter()
        self._finish_solve(handle, ctx, opts, handle._error, n_tasks)
        return handle

    def _submit_pool(self, d, e, subset, full_result, opts) -> SolveHandle:
        """Fuse one problem's instantiated graph into the persistent
        pool's running super-DAG."""
        obs = opts.telemetry if opts.telemetry is not None else NULL_RECORDER
        with obs.span("solve.submit", n=d.shape[0], backend=self.backend):
            ctx = DCContext(d, e, opts, subset=subset,
                            workspace=self._workspace)
            graph, info = self._instantiate(ctx, opts, obs)
            injector = (FaultInjector(opts.fault_injection)
                        if opts.fault_injection is not None else None)
            if obs.enabled:
                obs.add("solve.count")
                obs.add(f"solve.jobz.{opts.jobz}")
                obs.add("solve.tasks_submitted", len(graph.tasks))
            handle = SolveHandle(ctx=ctx, graph=graph, info=info,
                                 full=full_result)
            # Bound the live workspace footprint; released by the pool's
            # completion hook (a worker thread), so a blocked submit
            # always unblocks.
            self._slots.acquire()

            procs = self.backend == "processes"

            def _on_done(run, h=handle, o=opts):
                if procs and not run.failed:
                    # Materialize (lam, V) out of shared memory *before*
                    # releasing the workspace: shared segments never
                    # leave the pool (somebody must unlink them), so the
                    # result cannot alias them.  np.copy preserves the
                    # bytes exactly — bitwise identity is unaffected.
                    lam, V = h._ctx.result()
                    if V is not None:       # jobz='N' has no vectors
                        V = V.copy(order="F")
                    if h._full:
                        from .solver import DCResult
                        h._value = DCResult(lam, V, run.trace,
                                            h._graph, h._info)
                    else:
                        h._value = (lam, V)
                    h._has_value = True
                h._ctx.release_workspace(
                    h._info.states.values(),
                    keep_result=not run.failed and not procs)
                h.t_done = time.perf_counter()
                with self._lock:
                    self._outstanding.discard(h)
                self._slots.release()
                self._finish_solve(h, h._ctx, o,
                                   run.errors[0] if run.failed else None,
                                   run.n_executed)

            try:
                with self._lock:
                    # Re-checked under the lock: a concurrent close()
                    # either sees this handle in _outstanding or this
                    # submit raises — never a silently stranded handle.
                    if self._closed:
                        raise SchedulerError("session is closed")
                    if self._pool is None:
                        if procs:
                            from ..runtime.procpool import ProcPool
                            self._pool = ProcPool(self.n_workers,
                                                  workspace=self._workspace,
                                                  recorder=opts.telemetry,
                                                  flight=self.flight)
                        else:
                            self._pool = WorkerPool(self.n_workers,
                                                    recorder=opts.telemetry,
                                                    flight=self.flight)
                        if self._profile_interval is not None and not procs:
                            from ..obs.profile import SamplingProfiler
                            self.profiler = SamplingProfiler(
                                self._pool, self._profile_interval,
                                metrics=self.metrics).start()
                    pool = self._pool
                    self._outstanding.add(handle)
                if procs:
                    handle._run = pool.submit_solve(
                        ctx, graph, info, opts, injector=injector,
                        on_done=_on_done)
                else:
                    handle._run = pool.submit(graph,
                                              recorder=opts.telemetry,
                                              injector=injector,
                                              on_done=_on_done)
            except BaseException:
                with self._lock:
                    self._outstanding.discard(handle)
                self._slots.release()
                raise
        if procs and self._one_shot:
            # dc_eigh(..., backend="processes"): a transient pool for a
            # single solve — drain and tear it down before returning.
            handle._run.wait()
            self.close(wait=False)
        return handle
