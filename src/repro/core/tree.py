"""Recursive partitioning of the tridiagonal matrix (paper Fig. 1).

The matrix T is split into p subproblems forming a binary tree; every
internal node is a rank-one merge (Eq. 5), every leaf a small independent
eigenproblem solved by QR iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Node", "build_tree"]


@dataclass
class Node:
    """A subproblem covering global rows/columns ``[lo, hi)``."""

    lo: int
    hi: int
    left: Optional["Node"] = None
    right: Optional["Node"] = None

    @property
    def n(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def mid(self) -> int:
        """Global index of the split row (first row of the right child)."""
        if self.is_leaf:
            raise ValueError("leaf has no split")
        return self.right.lo

    def leaves(self) -> Iterator["Node"]:
        if self.is_leaf:
            yield self
        else:
            yield from self.left.leaves()
            yield from self.right.leaves()

    def post_order(self) -> Iterator["Node"]:
        """Children before parents — the submission order of the merges."""
        if not self.is_leaf:
            yield from self.left.post_order()
            yield from self.right.post_order()
        yield self

    def merges_by_level(self) -> list[list["Node"]]:
        """Internal nodes grouped bottom-up by tree level.

        Level 0 holds the deepest merges; the root merge is last.  Used
        by the ``level_barrier`` scheduling variant (Fig. 3(b)).
        """
        levels: dict[int, list[Node]] = {}

        def depth(node: "Node") -> int:
            if node.is_leaf:
                return -1
            d = 1 + max(depth(node.left), depth(node.right))
            levels.setdefault(d, []).append(node)
            return d

        depth(self)
        return [levels[d] for d in sorted(levels)]

    @property
    def height(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.height, self.right.height)

    def count_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    def cut_points(self) -> list[int]:
        """Global indices m of every split (rows m-1/m get the β correction)."""
        if self.is_leaf:
            return []
        return (self.left.cut_points() + [self.mid]
                + self.right.cut_points())


def build_tree(n: int, minpart: int, lo: int = 0) -> Node:
    """Split ``[lo, lo+n)`` in halves until blocks are ≤ ``minpart``.

    Matches the paper's example: n=1000 with minimal partition size 300
    yields four leaves of 250.
    """
    if n < 1:
        raise ValueError("empty problem")
    node = Node(lo, lo + n)
    if n > minpart:
        n1 = n // 2
        node.left = build_tree(n1, minpart, lo)
        node.right = build_tree(n - n1, minpart, lo + n1)
    return node
