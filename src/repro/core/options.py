"""Tuning options of the task-flow D&C solver (paper Sec. IV)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class DCOptions:
    """Knobs of the task-flow Divide & Conquer eigensolver.

    ``minpart``
        Maximal size of a leaf subproblem (the paper's "minimal partition
        size"; 300 in the Fig. 2 example, LAPACK uses 25).  Leaves are
        solved by QR iteration (``STEDC`` tasks).
    ``nb``
        Panel width: every merge kernel is split into tasks of at most
        ``nb`` eigenvector columns.  Smaller nb → more parallelism,
        more scheduling overhead (the tuning trade-off of Sec. IV).
        ``None`` (default) auto-tunes to ``clamp(n // 64, 32, 256)`` so
        the root merge always exposes enough panels for the cores.
    ``extra_workspace``
        The paper's user option: with extra workspace, ``LAED4`` may
        overlap the ``PermuteV`` copies and ``ComputeVect`` may overlap
        ``CopyBackDeflated``; without it they serialize on the shared
        buffer.  Only scheduling freedom changes, never the numbers.
    ``level_barrier``
        When True, a synchronization barrier is inserted between levels
        of the merge tree (the *un*-optimized variant of Fig. 3(b); the
        paper's contribution removes it — Fig. 3(c)).
    ``fork_join``
        When True, only ``UpdateVect`` (the GEMM) is parallel and all
        other kernels run as a sequential stream — the multithreaded-BLAS
        model of MKL LAPACK (Fig. 3(a)).  Implies ``level_barrier``.
    ``deflation_tol_factor``
        Multiplier of machine epsilon in the deflation test (LAPACK: 8).
    ``reuse_graph``
        Consult the process-wide DAG template cache: the task graph is
        matrix independent (Sec. IV), so repeated solves of the same
        (n, nb, minpart, variant) shape skip ``build_tree`` +
        ``submit_dc`` and only rebind fresh per-solve state onto the
        cached task/dependency skeleton.  Numerics never change.
    ``telemetry``
        Optional :class:`~repro.obs.Collector` (or any
        :class:`~repro.obs.Recorder`).  When set, the solver, schedulers
        and kernels record spans, scheduler/cache counters and
        numeric-health metrics into it; ``None`` (default) is the
        guaranteed zero-overhead path — numerics are bitwise identical
        either way.  Excluded from equality/hashing: it is a sink, not a
        tuning knob.
    ``fault_injection``
        Optional :class:`~repro.runtime.faults.FaultSpec` — a
        deterministic test hook that makes the selected task(s) raise
        :class:`~repro.errors.InjectedFault` at execution time (fail
        task N / kernel name / probability with seed), exercising the
        cancellation and error-propagation paths.  ``None`` (default)
        adds no work to the hot path.
    """

    minpart: int = 64
    nb: int | None = None
    extra_workspace: bool = True
    level_barrier: bool = False
    fork_join: bool = False
    deflation_tol_factor: float = 8.0
    reuse_graph: bool = False
    telemetry: Any = field(default=None, compare=False)
    fault_injection: Any = None

    def __post_init__(self) -> None:
        if self.minpart < 1:
            raise ValueError("minpart must be >= 1")
        if self.nb is not None and self.nb < 1:
            raise ValueError("nb must be >= 1")

    def effective_nb(self, n: int) -> int:
        """Panel width used for a problem of size ``n``."""
        if self.nb is not None:
            return self.nb
        return min(256, max(32, n // 64))

    def with_(self, **kwargs) -> "DCOptions":
        return replace(self, **kwargs)


#: Scheduler configurations of the paper's Fig. 3 trace study.
FIG3_CONFIGS = {
    "sequential": DCOptions(fork_join=True, level_barrier=True, nb=1 << 30),
    "parallel-gemm": DCOptions(fork_join=True, level_barrier=True),
    "parallel-merge": DCOptions(level_barrier=True),
    "full-taskflow": DCOptions(),
}
