"""Tuning options of the task-flow D&C solver (paper Sec. IV)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

#: Adaptive-nb policy constants: spine levels aim for ``OVERSUB x
#: workers`` panels across the level; no panel narrower than 16 columns
#: or ``OVERHEAD_RATIO`` per-task dispatch costs of work.  OVERSUB = 3
#: won a sweep over {2..8} on the simulated 16-core machine at the
#: Fig-6 sizes (n >= 2500): enough slack to keep the stealing queues
#: fed and the panel tails balanced (2 starves the work-bound shapes;
#: 4+ drowns the overhead-bound ones in dispatch cost).
_ADAPTIVE_OVERSUB = 3
_ADAPTIVE_MIN_NB = 16
_ADAPTIVE_OVERHEAD_RATIO = 20


@dataclass(frozen=True)
class DCOptions:
    """Knobs of the task-flow Divide & Conquer eigensolver.

    ``jobz``
        Compute mode, after LAPACK's ``jobz`` argument.  ``"V"``
        (default) computes eigenvalues and eigenvectors — bitwise
        identical to the historical pipeline.  ``"N"`` computes
        eigenvalues only: the graph builder emits a reduced kernel set
        in which the O(n³) eigenvector machinery (``UpdateVect`` GEMMs,
        ``PermuteV``, ``CopyBackDeflated``, full ``ComputeVect``) is
        replaced by O(k)-per-panel boundary-row *strip* kernels
        (``GivensStrip``/``PermuteStrip``/``UpdateStrip``) that carry
        only the 2 boundary rows of each subproblem's eigenvector
        matrix through the merge tree — enough to form every level's
        rank-one z — so per-solve auxiliary memory drops from O(n²) to
        O(n).  Eigenvalues are bitwise identical between the modes;
        ``result()``/``dc_eigh`` return ``V = None`` in ``"N"`` mode.
    ``minpart``
        Maximal size of a leaf subproblem (the paper's "minimal partition
        size"; 300 in the Fig. 2 example, LAPACK uses 25).  Leaves are
        solved by QR iteration (``STEDC`` tasks).
    ``nb``
        Panel width: every merge kernel is split into tasks of at most
        ``nb`` eigenvector columns.  Smaller nb → more parallelism,
        more scheduling overhead (the tuning trade-off of Sec. IV).
        ``None`` (default) auto-tunes to ``clamp(n // 64, 32, 256)`` so
        the root merge always exposes enough panels for the cores.
    ``extra_workspace``
        The paper's user option: with extra workspace, ``LAED4`` may
        overlap the ``PermuteV`` copies and ``ComputeVect`` may overlap
        ``CopyBackDeflated``; without it they serialize on the shared
        buffer.  Only scheduling freedom changes, never the numbers.
    ``level_barrier``
        When True, a synchronization barrier is inserted between levels
        of the merge tree (the *un*-optimized variant of Fig. 3(b); the
        paper's contribution removes it — Fig. 3(c)).
    ``fork_join``
        When True, only ``UpdateVect`` (the GEMM) is parallel and all
        other kernels run as a sequential stream — the multithreaded-BLAS
        model of MKL LAPACK (Fig. 3(a)).  Implies ``level_barrier``.
    ``deflation_tol_factor``
        Multiplier of machine epsilon in the deflation test (LAPACK: 8).
    ``reuse_graph``
        Consult the process-wide DAG template cache: the task graph is
        matrix independent (Sec. IV), so repeated solves of the same
        (n, nb, minpart, variant) shape skip ``build_tree`` +
        ``submit_dc`` and only rebind fresh per-solve state onto the
        cached task/dependency skeleton.  Numerics never change.
    ``telemetry``
        Optional :class:`~repro.obs.Collector` (or any
        :class:`~repro.obs.Recorder`).  When set, the solver, schedulers
        and kernels record spans, scheduler/cache counters and
        numeric-health metrics into it; ``None`` (default) is the
        guaranteed zero-overhead path — numerics are bitwise identical
        either way.  Excluded from equality/hashing: it is a sink, not a
        tuning knob.
    ``fault_injection``
        Optional :class:`~repro.runtime.faults.FaultSpec` — a
        deterministic test hook that makes the selected task(s) raise
        :class:`~repro.errors.InjectedFault` at execution time (fail
        task N / kernel name / probability with seed), exercising the
        cancellation and error-propagation paths.  ``None`` (default)
        adds no work to the hot path.
    ``priority_mode``
        ``"blevel"`` (default): every task is submitted with its
        bottom-level priority — the cost-weighted longest path from the
        task to the DAG sink, in calibrated seconds (see
        :mod:`repro.core.calibrate`) — so all backends run the
        critical path first.  ``"none"`` submits every task at priority
        0 (the pre-scheduling-layer behavior).  Priorities only reorder
        independent work: numerics are bitwise identical either way.
    ``adaptive_nb``
        When True (and ``nb`` is None), the panel width is chosen per
        merge level instead of globally: merges deep in the tree, where
        sibling subproblems already saturate the workers, get one full
        panel (fewer tasks, less dispatch overhead); merges on the
        spine split into enough panels to feed the workers, never
        narrower than the calibrated cost floor (panel work at least
        ``_ADAPTIVE_OVERHEAD_RATIO`` x the per-task dispatch cost).
        Default False: panel boundaries change the association of the
        ``ReduceW`` partial products (last-ulp differences), so the
        default stays bitwise identical to the historical global width.
        An explicit ``nb`` always wins.
    ``target_parallelism``
        Worker count the adaptive-nb policy plans for.  ``None`` plans
        for 16 (the paper's machine).  Deliberately *not* auto-filled
        from the executing backend's worker count: the planned width is
        part of the DAG shape, and panel boundaries carry last-ulp
        differences, so it must be an explicit knob for results to stay
        bitwise identical across backends.
    ``postmortem_dir``
        Directory for automatic crash bundles.  When set (or when the
        ``REPRO_POSTMORTEM_DIR`` environment variable is), a session
        solve that fails (``TaskFailure``/``ConvergenceError``/...) or
        degrades to the STEQR fallback dumps a JSONL post-mortem — the
        flight recorder's recent events, this options record, the fault
        spec, the calibration key, and pool/workspace stats — via
        :func:`repro.obs.live.write_postmortem`.  ``None`` (default)
        writes nothing; numerics are unaffected either way.
    """

    jobz: str = "V"
    minpart: int = 64
    nb: int | None = None
    extra_workspace: bool = True
    level_barrier: bool = False
    fork_join: bool = False
    deflation_tol_factor: float = 8.0
    reuse_graph: bool = False
    telemetry: Any = field(default=None, compare=False)
    fault_injection: Any = None
    priority_mode: str = "blevel"
    adaptive_nb: bool = False
    target_parallelism: int | None = None
    postmortem_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobz not in ("V", "N"):
            raise ValueError(f"jobz must be 'V' or 'N', got {self.jobz!r}")
        if self.minpart < 1:
            raise ValueError("minpart must be >= 1")
        if self.nb is not None and self.nb < 1:
            raise ValueError("nb must be >= 1")
        if self.priority_mode not in ("none", "blevel"):
            raise ValueError("priority_mode must be 'none' or 'blevel', "
                             f"got {self.priority_mode!r}")
        if self.target_parallelism is not None and self.target_parallelism < 1:
            raise ValueError("target_parallelism must be >= 1")

    def effective_nb(self, n: int) -> int:
        """Global panel width used for a problem of size ``n``."""
        if self.nb is not None:
            return self.nb
        return min(256, max(32, n // 64))

    def resolved_parallelism(self) -> int:
        """Worker count the scheduling layer plans for."""
        return self.target_parallelism if self.target_parallelism else 16

    def node_nb(self, node_n: int, n: int) -> int:
        """Panel width for one merge node of size ``node_n`` in a
        problem of size ``n``.

        With ``adaptive_nb`` off (or an explicit ``nb``) this is the
        global :meth:`effective_nb`.  Adaptive mode implements the
        level policy: a level with at least ``resolved_parallelism()``
        concurrent merges gets one full-width panel per merge; spine
        levels split into ``_ADAPTIVE_OVERSUB x workers / concurrent``
        panels, clamped below by the calibrated cost floor so no panel
        task is smaller than ``_ADAPTIVE_OVERHEAD_RATIO`` dispatch
        overheads of work.
        """
        if self.nb is not None or not self.adaptive_nb:
            return self.effective_nb(n)
        node_n = max(1, node_n)
        w = self.resolved_parallelism()
        concurrent = max(1, n // node_n)
        if concurrent >= w:
            return node_n
        want = -(-_ADAPTIVE_OVERSUB * w // concurrent)  # ceil division
        nb = -(-node_n // min(want, node_n))
        floor = min(node_n, max(_ADAPTIVE_MIN_NB, self._nb_cost_floor(node_n)))
        return max(floor, nb)

    def _nb_cost_floor(self, node_n: int) -> int:
        """Smallest panel width whose per-panel work still dwarfs the
        calibrated per-task dispatch cost."""
        from .calibrate import get_calibration
        cal = get_calibration()
        # Per-column work of the merge panel pipeline at zero deflation
        # (k = node_n): the UpdateVect GEMM column plus the secular /
        # stabilization Theta(k) kernels.
        per_col_s = (float(node_n) * node_n / cal.gemm_flop_rate
                     + 6.0 * (cal.secular_sweeps + 2.0) * node_n
                     / cal.flop_rate)
        if per_col_s <= 0.0:
            return 1
        want_s = _ADAPTIVE_OVERHEAD_RATIO * cal.task_overhead_s
        return max(1, math.ceil(want_s / per_col_s))

    def with_(self, **kwargs) -> "DCOptions":
        return replace(self, **kwargs)


#: Scheduler configurations of the paper's Fig. 3 trace study.
FIG3_CONFIGS = {
    "sequential": DCOptions(fork_join=True, level_barrier=True, nb=1 << 30),
    "parallel-gemm": DCOptions(fork_join=True, level_barrier=True),
    "parallel-merge": DCOptions(level_barrier=True),
    "full-taskflow": DCOptions(),
}
