"""Full dense symmetric eigensolver pipeline (paper Eqs. 1–3).

``eigh(A)`` = Householder tridiagonalization + task-flow D&C tridiagonal
eigensolve + back-transformation of the eigenvectors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels.householder import apply_q_inplace, tridiagonalize
from ..runtime.quark import Quark
from ..runtime.task import DataHandle, GATHERV, TaskCost
from .merge import panel_ranges
from .options import DCOptions
from .solver import dc_eigh

__all__ = ["eigh"]


def eigh(a: np.ndarray, *, options: Optional[DCOptions] = None,
         backend: str = "sequential",
         n_workers: Optional[int] = None,
         two_stage: bool = False,
         bandwidth: Optional[int] = None) -> tuple[np.ndarray, np.ndarray]:
    """All eigenpairs of the dense symmetric matrix ``a``.

    Returns ``(lam, V)`` with ``a @ V == V @ diag(lam)`` and ``lam``
    ascending.  The tridiagonal stage uses the task-flow D&C solver; the
    back-transformation (Eq. 3, "relies on matrix products and is
    already efficient") runs as independent column-panel tasks on the
    same runtime backend.

    ``two_stage=True`` reduces via the PLASMA-style two-stage pipeline
    (dense → band of the given ``bandwidth`` → tridiagonal by bulge
    chasing, paper ref. [3]) instead of the direct Householder
    reduction; numerically equivalent, different kernel mix.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if n == 0:
        raise ValueError("empty matrix")
    if n == 1:
        return a[0, :1].astype(float).copy(), np.ones((1, 1))
    opts = options or DCOptions()
    if two_stage:
        from ..kernels.band import two_stage_tridiagonalize
        d2, e2, q2 = two_stage_tridiagonalize(a, bandwidth)
        lam, vt = dc_eigh(d2, e2, options=opts, backend=backend,
                          n_workers=n_workers)
        return lam, q2 @ vt
    tri = tridiagonalize(a)
    lam, vt = dc_eigh(tri.d, tri.e, options=opts, backend=backend,
                      n_workers=n_workers)
    # Task-flow back-transformation: reflectors act on rows, so column
    # panels transform independently (GATHERV on the output matrix).
    out = np.array(vt, copy=True, order="F")
    quark = Quark(backend, n_workers=n_workers)
    hV = DataHandle("V-back")
    for (p0, p1) in panel_ranges(n, opts.effective_nb(n)):
        quark.insert_task(
            lambda a0=p0, a1=p1: apply_q_inplace(tri, out[:, a0:a1]),
            [(hV, GATHERV)], name="ApplyQ",
            cost=TaskCost(flops=4.0 * n * n * (p1 - p0)))
    quark.barrier()
    return lam, out
