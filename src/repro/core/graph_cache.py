"""Matrix-independent DAG template cache (paper Sec. IV, exploited).

The paper's task graph is *matrix independent*: the set of tasks and
their dependencies is a pure function of the problem shape — (n, panel
width, minimal partition size, scheduling variant) — never of the matrix
entries (deflation only turns surplus panel tasks into no-ops at
execution time).  Repeated solves of the same shape therefore do not
need to re-run the sequential-task-flow dependency analysis of
``submit_dc``: the task/edge skeleton can be built once, cached as a
:class:`GraphTemplate`, and *rebound* onto a fresh
:class:`~repro.core.merge.DCContext` / ``MergeState`` set for every new
matrix — the key overhead reduction for a high-throughput service that
solves many same-shape problems.

A template records, for every task of a previously analyzed graph,

* a **descriptor** of its functional payload — which kernel method of
  the per-solve context or per-merge state object to bind, plus its
  static arguments (panel ranges, tree nodes; all shape-only), and
* the **successor index lists** and dependency counts of the DAG.

:func:`instantiate` replays that skeleton in O(tasks + edges) with no
dependency analysis, producing a fresh executable
:class:`~repro.runtime.dag.TaskGraph`.  Task costs that depend on
runtime values (deflation counts) are rebuilt as fresh closures over the
new states, so the discrete-event simulator keeps charging
matrix-dependent work on the matrix-independent DAG.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from ..runtime.dag import TaskGraph
from ..runtime.task import Task, TaskCost
from . import costs
from .merge import DCContext, MergeState, panel_ranges
from .options import DCOptions
from .tasks import DCGraphInfo, submit_dc
from .tree import Node, build_tree

__all__ = ["GraphTemplate", "GraphTemplateCache", "graph_template_cache",
           "template_key", "build_template", "instantiate"]


def template_key(n: int, opts: DCOptions,
                 subset_size: Optional[int] = None) -> tuple:
    """Cache key: everything the DAG shape (or its binding) depends on.

    ``jobz`` leads the shape fields: the compute mode selects the kernel
    set itself ('N' drops the whole eigenvector pipeline), so 'N' and
    'V' templates of one shape must never collide.
    ``deflation_tol_factor`` is deliberately excluded — it changes task
    *work*, never the graph.  The subset size does not change the graph
    either, but it selects the root-merge output restriction, so it is
    part of the key defensively (shape reuse across subset sizes would
    still be correct; distinct keys keep the cache semantics obvious).

    The scheduling layer contributes too: ``priority_mode`` selects
    whether cached tasks carry b-level priorities, adaptive mode makes
    panel counts depend on the planned worker count, and the active
    calibration's value key covers both the adaptive cost floor and the
    priority scale (a recalibrated process must not reuse stale
    priorities or widths).
    """
    from .calibrate import get_calibration
    adaptive = opts.adaptive_nb and opts.nb is None
    scheduling = (opts.priority_mode,
                  adaptive,
                  opts.resolved_parallelism() if adaptive else 0,
                  get_calibration().key
                  if (adaptive or opts.priority_mode == "blevel") else None)
    return (n, opts.jobz, opts.minpart, opts.effective_nb(n),
            opts.fork_join, opts.level_barrier, opts.extra_workspace,
            subset_size, scheduling)


class _TaskDescriptor:
    """Shape-only recipe for rebinding one task onto a fresh solve."""

    __slots__ = ("kind", "span", "method", "args", "name", "tag", "priority",
                 "static_cost")

    def __init__(self, kind: str, span: Optional[tuple[int, int]],
                 method: str, args: tuple, name: str, tag, priority: int,
                 static_cost: Optional[TaskCost]):
        self.kind = kind            # "ctx" | "state" | "noop"
        self.span = span            # merge node (lo, hi) for kind="state"
        self.method = method
        self.args = args
        self.name = name
        self.tag = tag
        self.priority = priority
        self.static_cost = static_cost   # shape-only costs, reused as-is


#: Rebuilders for costs that depend on runtime state (deflation counts).
#: Keyed by kernel name; each returns a fresh zero-argument closure over
#: the new MergeState.  Must mirror the wiring in ``tasks.submit_dc``.
_DYNAMIC_COSTS: dict[str, Callable[..., Callable[[], TaskCost]]] = {
    "ApplyGivens": lambda st, g, m: (
        lambda: costs.cost_apply_givens(
            st.n, sum(len(c) for c in st.chains[g::m]))),
    "PermuteV": lambda st, p0, p1: (
        lambda: costs.cost_permute(st.permute_rows_moved(p0, p1))),
    "LAED4": lambda st, p0, p1: (
        lambda: costs.cost_laed4(st.k, st.clip_roots(p0, p1).size)),
    "ComputeLocalW": lambda st, p0, p1, pid: (
        lambda: costs.cost_local_w(st.k, st.clip_roots(p0, p1).size)),
    "CopyBackDeflated": lambda st, p0, p1: (
        lambda: costs.cost_copyback(st.copyback_rows_moved(p0, p1))),
    "ComputeVect": lambda st, p0, p1: (
        lambda: costs.cost_compute_vect(st.k, st.clip_roots(p0, p1).size)),
    "UpdateVect": lambda st, p0, p1: (
        lambda: costs.cost_update_vect(*st.update_vect_shape(p0, p1))),
    "GivensStrip": lambda st: (
        lambda: costs.cost_strip_rotate(st.n, st.strip_rotations())),
    "UpdateStrip": lambda st, p0, p1: (
        lambda: costs.cost_strip_update(st.k, st.clip_roots(p0, p1).size)),
    "UpdateEig": lambda st, p0, p1: (
        lambda: costs.cost_update_eig(st.clip_roots(p0, p1).size)),
}


def _reduce_w_cost(st: MergeState, npan: int) -> Callable[[], TaskCost]:
    return lambda: costs.cost_reduce_w(st.k, npan)


class GraphTemplate:
    """The reusable task/dependency skeleton of one solve shape."""

    def __init__(self, key: tuple, tree: Node,
                 descriptors: list[_TaskDescriptor],
                 successors: list[list[int]], n_deps: list[int],
                 n_edges: int):
        self.key = key
        self.tree = tree
        self.descriptors = descriptors
        self.successors = successors
        self.n_deps = n_deps
        self.n_edges = n_edges

    @property
    def n_tasks(self) -> int:
        return len(self.descriptors)


def build_template(graph: TaskGraph, info: DCGraphInfo,
                   key: tuple) -> GraphTemplate:
    """Derive a :class:`GraphTemplate` from an analyzed task graph.

    Every task inserted by ``submit_dc`` is a bound method of either the
    :class:`DCContext` or one of its ``MergeState`` objects (plus the
    no-op level barriers), so the binding target can be recovered from
    ``task.func`` and re-targeted at instantiation time.
    """
    ctx = info.ctx
    index_of = {t.uid: i for i, t in enumerate(graph.tasks)}
    descriptors: list[_TaskDescriptor] = []
    for t in graph.tasks:
        owner = getattr(t.func, "__self__", None)
        if owner is ctx:
            kind, span = "ctx", None
        elif isinstance(owner, MergeState):
            kind, span = "state", (owner.lo, owner.hi)
        else:                                   # LevelBarrier lambda
            kind, span = "noop", None
        static_cost = t.cost if not callable(t.cost) else None
        descriptors.append(_TaskDescriptor(
            kind, span, getattr(t.func, "__name__", ""), t.args,
            t.name, t.tag, t.priority, static_cost))
    successors = [[index_of[s.uid] for s in t.successors]
                  for t in graph.tasks]
    n_deps = [t.n_deps for t in graph.tasks]
    return GraphTemplate(key, info.tree, descriptors, successors,
                         n_deps, graph.n_edges)


def instantiate(template: GraphTemplate,
                ctx: DCContext) -> tuple[TaskGraph, DCGraphInfo]:
    """Rebind the cached skeleton onto a fresh solve context.

    O(tasks + edges); skips ``build_tree`` and the whole sequential-task-
    flow dependency analysis of ``submit_dc``.
    """
    tree = template.tree
    info = DCGraphInfo(ctx, tree)
    for node in tree.post_order():
        if not node.is_leaf:
            info.states[(node.lo, node.hi)] = MergeState(ctx, node)
    npan_of = {span: len(panel_ranges(st.node.n,
                                      ctx.opts.node_nb(st.node.n, ctx.n)))
               for span, st in info.states.items()}

    graph = TaskGraph()
    tasks: list[Task] = []
    for i, d in enumerate(template.descriptors):
        if d.kind == "ctx":
            func = getattr(ctx, d.method)
            cost = d.static_cost
        elif d.kind == "state":
            st = info.states[d.span]
            func = getattr(st, d.method)
            if d.static_cost is not None:
                cost = d.static_cost
            elif d.name == "ReduceW":
                cost = _reduce_w_cost(st, npan_of[d.span])
            else:
                cost = _DYNAMIC_COSTS[d.name](st, *d.args)
        else:
            func, cost = _noop, d.static_cost
        task = Task(func, (), args=d.args, name=d.name, cost=cost,
                    priority=d.priority, tag=d.tag)
        task.seq = i
        task.n_deps = template.n_deps[i]
        tasks.append(task)
    for i, succ in enumerate(template.successors):
        t = tasks[i]
        for j in succ:
            t.successors.append(tasks[j])
    graph.tasks = tasks
    graph._edges = template.n_edges
    return graph, info


def _noop() -> None:
    return None


class GraphTemplateCache:
    """Thread-safe LRU registry of :class:`GraphTemplate` objects by shape.

    Long-running sessions solve streams of mixed shapes; LRU eviction
    (every hit refreshes its entry) keeps the hot templates resident
    where the earlier FIFO policy would age them out by insertion time.
    ``hits``/``misses``/``evictions`` are cache-lifetime totals, also
    exported per solve through the obs ``telemetry_block``.
    """

    def __init__(self, maxsize: int = 32):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._templates: OrderedDict[tuple, GraphTemplate] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[GraphTemplate]:
        with self._lock:
            tpl = self._templates.get(key)
            if tpl is None:
                self.misses += 1
            else:
                self.hits += 1
                self._templates.move_to_end(key)
            return tpl

    def put(self, template: GraphTemplate, recorder=None) -> None:
        with self._lock:
            if template.key in self._templates:
                self._templates.move_to_end(template.key)
            elif len(self._templates) >= self.maxsize:
                # Evict the least-recently-used entry (head of the
                # OrderedDict: get() refreshes recency on every hit).
                self._templates.popitem(last=False)
                self.evictions += 1
                if recorder is not None and recorder.enabled:
                    recorder.add("graph_cache.evictions")
            self._templates[template.key] = template

    def stats(self) -> dict:
        """Lifetime counter snapshot (hit rate, eviction count, size)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._templates),
                    "hit_rate": self.hits / lookups if lookups else None}

    def get_or_build(self, ctx: DCContext,
                     key: tuple) -> tuple[TaskGraph, DCGraphInfo]:
        """Instantiate from cache, building the template on a miss.

        On a miss the graph is built the normal way (``build_tree`` +
        ``submit_dc``) and its skeleton is cached for the next solve of
        the same shape.  Hits/misses and build/instantiation time are
        recorded into the solve's telemetry sink when one is attached.
        """
        obs = ctx.obs
        tpl = self.get(key)
        if tpl is not None:
            if not obs.enabled:
                return instantiate(tpl, ctx)
            obs.add("graph_cache.hits")
            t0 = time.perf_counter()
            out = instantiate(tpl, ctx)
            obs.observe("graph_cache.instantiate_s",
                        time.perf_counter() - t0)
            return out
        if obs.enabled:
            obs.add("graph_cache.misses")
            t0 = time.perf_counter()
        graph = TaskGraph()
        tree = build_tree(ctx.n, ctx.opts.minpart)
        info = submit_dc(graph, ctx, tree)
        self.put(build_template(graph, info, key), recorder=obs)
        if obs.enabled:
            obs.observe("graph_cache.build_s", time.perf_counter() - t0)
        return graph, info

    def clear(self) -> None:
        with self._lock:
            self._templates.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._templates)


#: Process-wide cache consulted by ``dc_eigh(options=...(reuse_graph=True))``.
graph_template_cache = GraphTemplateCache()
