"""Abstract cost model of every D&C kernel (paper Table I).

Each function returns a :class:`~repro.runtime.task.TaskCost` from the
*actual* runtime sizes (n, k, panel width, deflation counts), so the
discrete-event simulator charges matrix-dependent work on a
matrix-independent DAG — exactly the paper's design.  The same numbers
feed the Table I verification benchmark.

Cost conventions: one fused multiply-add counts as 2 flops; copies count
read+write bytes (16 per double moved).
"""

from __future__ import annotations

import math

from ..runtime.task import TaskCost

__all__ = [
    "cost_compute_deflation", "cost_apply_givens", "cost_permute",
    "cost_laed4", "cost_local_w", "cost_reduce_w", "cost_copyback",
    "cost_compute_vect", "cost_update_vect", "cost_stedc", "cost_laset",
    "cost_sort", "cost_scale", "cost_strip_rotate", "cost_strip_permute",
    "cost_strip_update", "cost_update_eig",
]


def cost_compute_deflation(n: int) -> TaskCost:
    """Θ(n) scan + O(n log n) merge sort; trivially cheap (paper: <1%)."""
    lg = math.log2(n) if n > 1 else 1.0
    return TaskCost(flops=12.0 * n, bytes_moved=8.0 * n * (2.0 + lg))


def cost_apply_givens(n_node: int, n_rot: int) -> TaskCost:
    """Eager deflating rotations: 6 flops per element pair."""
    return TaskCost(flops=6.0 * n_node * n_rot,
                    bytes_moved=24.0 * n_node * n_rot)


def cost_permute(rows_moved: float) -> TaskCost:
    """Pure copy of ``rows_moved`` doubles (Θ(n·m) of Table I)."""
    return TaskCost(bytes_moved=16.0 * rows_moved)


def cost_laed4(k: int, m: int, sweeps: float | None = None) -> TaskCost:
    """Secular solve for m roots against k poles: Θ(k·m) per sweep.

    ``sweeps`` defaults to the active calibration's measured mean
    iteration count per root (``Calibration.secular_sweeps``, probed at
    calibration time); without calibration this resolves to the
    historical constant 10.0.
    """
    if sweeps is None:
        from .calibrate import get_calibration
        sweeps = get_calibration().secular_sweeps
    return TaskCost(flops=6.0 * sweeps * k * m)


def cost_local_w(k: int, m: int) -> TaskCost:
    """Partial stabilization products: Θ(k·m) (Table I: Θ(k²) total)."""
    return TaskCost(flops=6.0 * k * m)


def cost_reduce_w(k: int, n_panels: int) -> TaskCost:
    return TaskCost(flops=2.0 * k * max(1, n_panels))


def cost_copyback(rows_moved: float) -> TaskCost:
    """Copy-back of deflated vectors (Θ(n(n−k)) of Table I)."""
    return TaskCost(bytes_moved=16.0 * rows_moved)


def cost_compute_vect(k: int, m: int) -> TaskCost:
    """Secular eigenvector block: divide + normalize, Θ(k·m)."""
    return TaskCost(flops=5.0 * k * m)


def cost_update_vect(n1: int, n2: int, k12: int, k23: int, m: int) -> TaskCost:
    """Structured GEMM of the merge (Θ(n·k²) total over panels)."""
    return TaskCost(flops=2.0 * m * (n1 * k12 + n2 * k23))


def cost_strip_rotate(n_node: int, n_rot: float) -> TaskCost:
    """GivensStrip: stack the 2×n_node strip + 6 flops per rotated
    2-vector pair (two rows instead of n_node)."""
    return TaskCost(flops=12.0 * n_rot, bytes_moved=32.0 * n_node)


def cost_strip_permute(n_node: int) -> TaskCost:
    """PermuteStrip: gather 2·n_node doubles."""
    return TaskCost(bytes_moved=32.0 * n_node)


def cost_strip_update(k: int, m: int) -> TaskCost:
    """UpdateStrip: transient secular columns (Θ(k·m), as ComputeVect)
    plus the two row·X products (4 flops per element)."""
    return TaskCost(flops=9.0 * k * m)


def cost_update_eig(m: int) -> TaskCost:
    """UpdateEig: eigenvalue writes of one root panel (pure copy)."""
    return TaskCost(bytes_moved=16.0 * m)


def cost_stedc(m: int) -> TaskCost:
    """Leaf QR iteration with eigenvectors: ≈ 9 m³ flops."""
    return TaskCost(flops=9.0 * m ** 3)


def cost_laset(rows: int, cols: int) -> TaskCost:
    return TaskCost(bytes_moved=8.0 * rows * cols)


def cost_sort(rows: int, cols: int) -> TaskCost:
    return TaskCost(bytes_moved=16.0 * rows * cols)


def cost_scale(n: int) -> TaskCost:
    return TaskCost(flops=2.0 * n, bytes_moved=16.0 * n)
