"""Task-graph construction for the D&C eigensolver (paper Sec. IV, Fig. 2).

``submit_dc`` walks the partition tree bottom-up and inserts the tasks of
Algorithm 1 into a :class:`~repro.runtime.dag.TaskGraph` with the access
qualifiers described in the paper:

* panel tasks carry an O(1) number of dependencies: their own panel
  handles plus a GATHERV on the full (logical) matrix of the merge;
* the join kernels (``Compute_deflation``, ``ReduceW``) take a single
  INOUT on the merge's data;
* the DAG is **matrix independent**: one task per panel is submitted for
  every kernel regardless of deflation; tasks whose panel falls entirely
  in the deflated range become no-ops at execution time.

Scheduling variants used in the evaluation are expressed purely with
extra dependencies:

* ``fork_join`` threads a serial token through every non-GEMM task
  (``UpdateVect`` panels form GATHERV groups on the token) — the
  multithreaded-BLAS model of MKL LAPACK (Fig. 3(a));
* ``level_barrier`` inserts a barrier task between merge-tree levels
  (Fig. 3(b));
* without either, independent merges overlap freely (Fig. 3(c) — the
  paper's contribution).

Compute modes (``DCOptions.jobz``): both modes share the deflation /
secular / stabilization spine and the boundary-row *strip* kernels
(``GivensStrip``/``PermuteStrip``/``UpdateStrip``) that carry each
node's two boundary rows — the single source of every merge's rank-one
z.  ``'V'`` additionally runs the classic eigenvector kernels
(``LASET``, ``ApplyGivens``, ``PermuteV``, ``CopyBackDeflated``,
``ComputeVect``, ``UpdateVect``, per-panel ``SortEigenvectors``);
``'N'`` omits them all — no O(n·k) task remains, the root merge writes
eigenvalues with O(m)-per-panel ``UpdateEig`` tasks, and the DAG's
auxiliary state is O(n).
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from ..runtime.dag import TaskGraph
from ..runtime.task import DataHandle, INPUT, INOUT, OUTPUT, GATHERV, TaskCost
from . import costs
from .calibrate import get_calibration
from .merge import DCContext, MergeState, panel_ranges
from .options import DCOptions
from .tree import Node, build_tree

__all__ = ["submit_dc", "DCGraphInfo"]

#: Seconds per priority unit.  b-levels are quantized coarsely — 0.5 ms
#: per unit — on purpose: tasks within ~one quantum of critical path
#: keep equal priority and fall back to FIFO submission order, which
#: pipelines one merge's kernels to completion instead of starting every
#: ready merge's memory-bound phase at once (bandwidth saturation; on
#: high-deflation matrices a fine 10 us quantum measurably *hurt* the
#: simulated makespan).  Cross-level and cross-problem (fused super-DAG)
#: differences are far larger than the quantum, so the critical-path
#: preference survives quantization.
_PRIORITY_QUANTUM = 500e-6

#: Assumed deflation ratio of the shape-only cost estimates behind the
#: b-level pass.  Real costs depend on deflation counts unknown until
#: execution; the DAG (and therefore the priorities) must stay matrix
#: independent, so estimates assume a fixed moderate ratio.
_EST_DEFLATION = 0.25


class DCGraphInfo:
    """Handles and states of a submitted D&C task graph."""

    def __init__(self, ctx: DCContext, tree: Node):
        self.ctx = ctx
        self.tree = tree
        self.states: dict[tuple[int, int], MergeState] = {}
        self.hV: dict[tuple[int, int], DataHandle] = {}


def submit_dc(graph: TaskGraph, ctx: DCContext,
              tree: Optional[Node] = None) -> DCGraphInfo:
    """Insert the complete D&C task flow for ``ctx`` into ``graph``.

    With ``opts.priority_mode == "blevel"`` every inserted task also
    receives its bottom-level priority: the longest path, in calibrated
    seconds of shape-only cost estimates, from the task to the DAG sink
    (computed in one reverse sweep once the whole flow is submitted).
    """
    opts = ctx.opts
    n = ctx.n
    tree = tree or build_tree(n, opts.minpart)
    info = DCGraphInfo(ctx, tree)

    hT = DataHandle("T")
    serial = DataHandle("serial-token") if opts.fork_join else None

    def acc(base, parallel: bool = False):
        """Append the fork/join serial token to an access list.

        In fork/join mode every task is serialized on the token except
        the ``UpdateVect`` GEMMs, which form GATHERV groups on it — the
        parallel-BLAS region between two sequential sections."""
        if serial is not None:
            base = list(base) + [(serial, GATHERV if parallel else INOUT)]
        return base

    # Shape-only duration estimates (calibrated seconds) collected per
    # task for the b-level pass; ``None`` when priorities are off.
    start = graph.n_tasks
    cal = get_calibration()
    estimates: Optional[list[float]] = \
        [] if opts.priority_mode == "blevel" else None

    def ins(func, accesses, *, est, name, args=(), cost=None, tag=None):
        t = graph.insert_task(func, accesses, args=args, name=name,
                              cost=cost if cost is not None else est,
                              tag=tag)
        if estimates is not None:
            estimates.append(cal.seconds(est, name))
        return t

    ins(ctx.t_scale, acc([(hT, INOUT)]), name="ScaleT",
        est=costs.cost_scale(n))
    ins(ctx.t_partition, acc([(hT, INOUT)]), args=(tree,),
        name="Partition", est=costs.cost_scale(n))

    # --- leaves ---------------------------------------------------------
    for leaf in tree.leaves():
        h = DataHandle(f"V[{leaf.lo}:{leaf.hi}]")
        info.hV[(leaf.lo, leaf.hi)] = h
        if opts.jobz == "V":
            ins(ctx.t_laset, acc([(h, OUTPUT)]), args=(leaf,),
                name="LASET", tag=(leaf.lo, leaf.hi),
                est=costs.cost_laset(n, leaf.n))
        ins(ctx.t_stedc_leaf,
            acc([(hT, INPUT), (h, INOUT)]), args=(leaf,),
            name="STEDC", tag=(leaf.lo, leaf.hi),
            est=costs.cost_stedc(leaf.n))

    # --- merges, bottom-up with optional level barriers ------------------
    rec = ctx.obs
    prev_level_barrier: Optional[DataHandle] = None
    for level_nodes in tree.merges_by_level():
        if opts.level_barrier:
            hbar = DataHandle("level-barrier")
            deps = [(info.hV[(nd.left.lo, nd.left.hi)], INPUT)
                    for nd in level_nodes]
            deps += [(info.hV[(nd.right.lo, nd.right.hi)], INPUT)
                     for nd in level_nodes]
            ins(lambda: None, acc(deps + [(hbar, OUTPUT)]),
                name="LevelBarrier", est=TaskCost())
            prev_level_barrier = hbar
        if rec.enabled and level_nodes:
            rec.observe("schedule.level_nb",
                        float(opts.node_nb(level_nodes[0].n, n)))
        for node in level_nodes:
            _submit_merge(ins, info, node, acc, prev_level_barrier)

    # --- final ordering + scale back -------------------------------------
    hroot = info.hV[(tree.lo, tree.hi)]
    hsort = DataHandle("sort-order")
    ins(ctx.t_sort_join, acc([(hroot, INPUT), (hsort, OUTPUT)]),
        name="SortEigenvectors", est=costs.cost_scale(n))
    if opts.jobz == "V":
        hVout = DataHandle("V-sorted")
        for (p0, p1) in panel_ranges(n, opts.node_nb(n, n)):
            ins(ctx.t_sort_panel,
                acc([(hsort, INPUT), (hroot, INPUT), (hVout, GATHERV)]),
                args=(p0, p1), name="SortEigenvectors", tag=("sort", p0),
                est=costs.cost_sort(n, p1 - p0))
        ins(ctx.t_scale_back, acc([(hsort, INPUT), (hVout, INOUT)]),
            name="ScaleBack", est=costs.cost_scale(n))
    else:
        # jobz='N': no eigenvector panels to reorder, only the
        # eigenvalue array is unscaled.
        ins(ctx.t_scale_back, acc([(hsort, INOUT)]),
            name="ScaleBack", est=costs.cost_scale(n))

    if estimates is not None:
        _assign_blevels(graph, start, estimates, rec)
    return info


def _assign_blevels(graph: TaskGraph, start: int,
                    estimates: list[float], rec) -> None:
    """One reverse sweep over the tasks submitted since ``start``:
    ``bl[t] = est[t] + max(bl[successors])``, quantized to
    ``_PRIORITY_QUANTUM`` so priorities of independently submitted
    (later fused) problems compare as remaining-path seconds."""
    t0 = time.perf_counter()
    tasks = graph.tasks[start:]
    bl = [0.0] * len(tasks)
    for i in range(len(tasks) - 1, -1, -1):
        t = tasks[i]
        succ = 0.0
        for s in t.successors:
            # Successors of this submission slice stay inside it: edges
            # point forward in seq and nothing later exists yet.
            b = bl[s.seq - start]
            if b > succ:
                succ = b
        bl[i] = estimates[i] + succ
        t.priority = int(bl[i] / _PRIORITY_QUANTUM)
    if rec.enabled and tasks:
        rec.add("schedule.blevel_tasks", float(len(tasks)))
        rec.add("schedule.blevel_s", time.perf_counter() - t0)
        pr = [t.priority for t in tasks]
        rec.gauge_max("schedule.priority_span", float(max(pr) - min(pr)))


def _merge_estimates(node_n: int, npan: int, n_rot_groups: int,
                     cal) -> dict[str, TaskCost]:
    """Shape-only per-task cost estimates of one merge at the assumed
    deflation ratio (see ``_EST_DEFLATION``)."""
    d = _EST_DEFLATION
    k = max(1, int(round((1.0 - d) * node_n)))
    m = max(1, -(-node_n // npan))          # panel width (ceil)
    mk = max(1, int(round((1.0 - d) * m)))  # non-deflated roots per panel
    n1 = node_n - node_n // 2
    return {
        "ApplyGivens": costs.cost_apply_givens(
            node_n, d * node_n / max(1, n_rot_groups)),
        "PermuteV": costs.cost_permute((1.0 - d) * m * node_n),
        "LAED4": costs.cost_laed4(k, mk, sweeps=cal.secular_sweeps),
        "ComputeLocalW": costs.cost_local_w(k, mk),
        "ReduceW": costs.cost_reduce_w(k, npan),
        "CopyBackDeflated": costs.cost_copyback(d * m * node_n),
        "ComputeVect": costs.cost_compute_vect(k, mk),
        "UpdateVect": costs.cost_update_vect(n1, node_n - n1,
                                             k - k // 2, k // 2, m),
        "GivensStrip": costs.cost_strip_rotate(node_n, d * node_n),
        "PermuteStrip": costs.cost_strip_permute(node_n),
        "UpdateStrip": costs.cost_strip_update(k, mk),
        "UpdateEig": costs.cost_update_eig(m),
    }


def _submit_merge(ins, info: DCGraphInfo, node: Node,
                  acc, level_barrier: Optional[DataHandle]) -> None:
    ctx = info.ctx
    opts = ctx.opts
    eig_only = opts.jobz == "N"
    is_root = node.n == ctx.n
    st = MergeState(ctx, node)
    info.states[(node.lo, node.hi)] = st

    hL = info.hV[(node.left.lo, node.left.hi)]
    hR = info.hV[(node.right.lo, node.right.hi)]
    hV = DataHandle(f"V[{node.lo}:{node.hi}]")
    info.hV[(node.lo, node.hi)] = hV
    hdefl = DataHandle(f"defl[{node.lo}:{node.hi}]")
    hVws = DataHandle(f"Vws[{node.lo}:{node.hi}]")
    hW = DataHandle(f"W[{node.lo}:{node.hi}]")
    hcb = DataHandle(f"cbdone[{node.lo}:{node.hi}]")
    panels = panel_ranges(node.n, opts.node_nb(node.n, ctx.n))
    npan = len(panels)
    hsec = [DataHandle(f"sec[{node.lo}:{node.hi}]p{i}") for i in range(npan)]
    hX = [DataHandle(f"X[{node.lo}:{node.hi}]p{i}") for i in range(npan)]
    tag = (node.lo, node.hi)

    barrier_dep = [(level_barrier, INPUT)] if level_barrier is not None else []

    # Deflating rotations: a fixed, small number of groups (keeps the DAG
    # matrix-independent and every panel task's dependency count O(1));
    # chains are distributed round-robin at execution time.
    n_rot_groups = min(npan, 4)
    est = _merge_estimates(node.n, npan, n_rot_groups, get_calibration())

    ins(st.t_compute_deflation,
        acc([(hL, INPUT), (hR, INPUT), (hdefl, OUTPUT)] + barrier_dep),
        name="Compute_deflation", tag=tag,
        est=costs.cost_compute_deflation(node.n))

    # Boundary-row strip pipeline (both modes; skipped at the root, whose
    # strip has no consumer).  One task each — the strip is 2 rows, so
    # panelization would be pure dispatch overhead.  hdefl alone orders
    # GivensStrip after every writer of the child blocks (through
    # Compute_deflation's hL/hR inputs).
    if not is_root:
        hP = DataHandle(f"P[{node.lo}:{node.hi}]")
        hPws = DataHandle(f"Pws[{node.lo}:{node.hi}]")
        ins(st.t_givens_strip, acc([(hdefl, INPUT), (hP, OUTPUT)]),
            name="GivensStrip", tag=tag, est=est["GivensStrip"],
            cost=(lambda s=st:
                  costs.cost_strip_rotate(s.n, s.strip_rotations())))
        ins(st.t_permute_strip,
            acc([(hdefl, INPUT), (hP, INPUT), (hPws, OUTPUT)]),
            name="PermuteStrip", tag=tag, est=est["PermuteStrip"])

    if not eig_only:
        for g in range(n_rot_groups):
            ins(st.t_apply_givens,
                acc([(hdefl, INPUT), (hL, GATHERV), (hR, GATHERV)]),
                args=(g, n_rot_groups), name="ApplyGivens", tag=tag,
                est=est["ApplyGivens"],
                cost=(lambda s=st, g=g, m=n_rot_groups:
                      costs.cost_apply_givens(
                          s.n, sum(len(c) for c in s.chains[g::m]))))

        for pid, (p0, p1) in enumerate(panels):
            ins(st.t_permute_panel,
                acc([(hdefl, INPUT), (hL, INPUT), (hR, INPUT),
                     (hVws, GATHERV)]),
                args=(p0, p1), name="PermuteV", tag=tag,
                est=est["PermuteV"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_permute(s.permute_rows_moved(a, b))))

    for pid, (p0, p1) in enumerate(panels):
        laed4_acc = [(hdefl, INPUT), (hsec[pid], OUTPUT)]
        if not eig_only and not opts.extra_workspace:
            # No extra buffer: the secular solve waits for all permutes
            # (submission order puts every PermuteV before the first
            # LAED4, so this INPUT closes the whole GATHERV group).
            laed4_acc.append((hVws, INPUT))
        ins(st.t_laed4_panel, acc(laed4_acc),
            args=(p0, p1), name="LAED4", tag=tag,
            est=est["LAED4"],
            cost=(lambda s=st, a=p0, b=p1:
                  costs.cost_laed4(s.k, s.clip_roots(a, b).size)))
        ins(st.t_local_w_panel,
            acc([(hdefl, INPUT), (hsec[pid], INPUT), (hW, GATHERV)]),
            args=(p0, p1, pid), name="ComputeLocalW", tag=tag,
            est=est["ComputeLocalW"],
            cost=(lambda s=st, a=p0, b=p1:
                  costs.cost_local_w(s.k, s.clip_roots(a, b).size)))

    ins(st.t_reduce_w, acc([(hdefl, INPUT), (hW, INOUT)]),
        name="ReduceW", tag=tag, est=est["ReduceW"],
        cost=(lambda s=st, m=npan: costs.cost_reduce_w(s.k, m)))

    if not eig_only:
        for pid, (p0, p1) in enumerate(panels):
            ins(st.t_copyback_panel,
                acc([(hdefl, INPUT), (hVws, INPUT),
                     (hV, GATHERV), (hcb, GATHERV)]),
                args=(p0, p1), name="CopyBackDeflated", tag=tag,
                est=est["CopyBackDeflated"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_copyback(s.copyback_rows_moved(a, b))))

        for pid, (p0, p1) in enumerate(panels):
            cv_acc = [(hdefl, INPUT), (hsec[pid], INPUT), (hW, INPUT),
                      (hX[pid], OUTPUT)]
            if not opts.extra_workspace:
                # ComputeVect waits for every copy-back to free the buffer.
                cv_acc.append((hcb, INPUT))
            ins(st.t_compute_vect_panel, acc(cv_acc),
                args=(p0, p1), name="ComputeVect", tag=tag,
                est=est["ComputeVect"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_compute_vect(s.k, s.clip_roots(a, b).size)))

        # UpdateVect panels are submitted as one contiguous group so that
        # in fork/join mode they form a single GATHERV group on the serial
        # token (the parallel-BLAS region); dependencies order them anyway.
        for pid, (p0, p1) in enumerate(panels):
            ins(st.t_update_vect_panel,
                acc([(hdefl, INPUT), (hVws, INPUT),
                     (hX[pid], INPUT), (hV, GATHERV)],
                    parallel=True),
                args=(p0, p1), name="UpdateVect", tag=tag,
                est=est["UpdateVect"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_update_vect(*s.update_vect_shape(a, b))))

    # Node-output writers of the strip path.  UpdateStrip joins the hV
    # GATHERV group (after CopyBackDeflated/UpdateVect in 'V' mode, alone
    # in 'N' mode) so the parent's Compute_deflation waits for the
    # completed strip; in fork/join mode it is serialized on the token
    # (closing the UpdateVect parallel region, not joining it).
    if not is_root:
        for pid, (p0, p1) in enumerate(panels):
            ins(st.t_strip_update_panel,
                acc([(hdefl, INPUT), (hsec[pid], INPUT), (hW, INPUT),
                     (hPws, INPUT), (hV, GATHERV)]),
                args=(p0, p1), name="UpdateStrip", tag=tag,
                est=est["UpdateStrip"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_strip_update(s.k,
                                              s.clip_roots(a, b).size)))
    elif eig_only:
        for pid, (p0, p1) in enumerate(panels):
            ins(st.t_update_eig_panel,
                acc([(hdefl, INPUT), (hsec[pid], INPUT), (hW, INPUT),
                     (hV, GATHERV)]),
                args=(p0, p1), name="UpdateEig", tag=tag,
                est=est["UpdateEig"],
                cost=(lambda s=st, a=p0, b=p1:
                      costs.cost_update_eig(s.clip_roots(a, b).size)))
