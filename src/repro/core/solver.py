"""Top-level D&C tridiagonal eigensolver API.

``dc_eigh(d, e)`` computes all eigenpairs of the symmetric tridiagonal
matrix with diagonal ``d`` and off-diagonal ``e`` using the task-flow
Divide & Conquer algorithm of Pichon et al. (IPDPS 2015).

The same task graph runs on any runtime backend:

* ``backend="sequential"`` — submission-order execution (the reference);
* ``backend="threads"`` — out-of-order execution on OS threads (NumPy
  kernels release the GIL, so GEMM/secular panels overlap);
* ``backend="processes"`` — out-of-order execution on worker
  *processes* with shared-memory workspaces: the quadratic pure-Python
  merge kernels scale past the GIL on real cores;
* ``backend="simulated"`` — deterministic discrete-event execution on a
  virtual multicore (timing studies; numerics identical).

All backends produce bitwise-identical ``(lam, V)``.

``DCOptions(jobz="N")`` requests eigenvalues only: the solver runs the
reduced boundary-row-strip DAG (O(n) auxiliary state, no cubic GEMM)
and returns ``V = None``.  The eigenvalues are bitwise identical to the
``jobz="V"`` path on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ReproError
from ..runtime.dag import TaskGraph
from ..runtime.simulator import Machine
from ..runtime.trace import Trace
from .options import DCOptions
from .session import SolverSession
from .tasks import DCGraphInfo

__all__ = ["dc_eigh", "dc_eigh_many", "DCResult", "SolveFailure",
           "DCOptions"]


@dataclass
class DCResult:
    """Eigen-decomposition plus solve diagnostics.

    ``lam``/``V`` satisfy ``T V = V diag(lam)`` with ``lam`` ascending.
    ``V`` is ``None`` for an eigenvalue-only solve (``jobz="N"``).
    """

    lam: np.ndarray
    V: Optional[np.ndarray]
    trace: Trace
    graph: TaskGraph
    info: DCGraphInfo

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    def deflation_ratios(self) -> list[float]:
        return [s.deflation_ratio for s in self.info.ctx.merge_stats]

    @property
    def total_deflation(self) -> float:
        """Deflation ratio of the final (dominant) merge."""
        stats = self.info.ctx.merge_stats
        return stats[-1].deflation_ratio if stats else 0.0


@dataclass
class SolveFailure:
    """Error record for one failed problem of a :func:`dc_eigh_many` batch.

    Takes the failed problem's slot in the result list so the batch keeps
    its input order; ``error`` is the typed :class:`~repro.errors.ReproError`
    (with the original cause chained) that the solve raised.
    """

    index: int
    error: ReproError


def dc_eigh(d: np.ndarray, e: np.ndarray, *,
            options: Optional[DCOptions] = None,
            backend: str = "sequential",
            n_workers: Optional[int] = None,
            machine: Optional[Machine] = None,
            subset: Optional[np.ndarray] = None,
            full_result: bool = False):
    """Eigendecomposition of a symmetric tridiagonal matrix by D&C.

    Parameters
    ----------
    d, e:
        Diagonal (n) and off-diagonal (n−1) of T.
    options:
        :class:`DCOptions` tuning (panel size, leaf size, scheduling
        variants).
    backend, n_workers, machine:
        Runtime selection, see module docstring.
    subset:
        Optional eigenvalue indices (0-based, in ascending-eigenvalue
        order) to return eigenvectors for.  All eigenvalues are always
        computed; the final merge's expensive eigenvector update is
        restricted to the wanted columns (the paper's Sec. I discussion
        of [6]).  ``V`` then has ``len(subset)`` columns.
    full_result:
        Return a :class:`DCResult` (with trace/graph/deflation stats)
        instead of the plain ``(lam, V)`` pair.

    Returns
    -------
    ``(lam, V)`` with ascending eigenvalues and orthonormal eigenvector
    columns, or a :class:`DCResult`.  With ``options.jobz == "N"`` the
    eigenvalues are identical (bitwise) and ``V`` is ``None``.

    Implemented as a one-shot :class:`~repro.core.session.SolverSession`
    (no persistent pool, no workspace arena), so single-solve numerics
    and telemetry are byte-for-byte what they always were; long-running
    callers should hold a session instead and amortize worker spin-up
    and workspace allocation across solves.
    """
    session = SolverSession(backend=backend, n_workers=n_workers,
                            machine=machine, options=options,
                            workspace_pool=False, _one_shot=True)
    return session.solve(d, e, subset=subset, full_result=full_result)


def dc_eigh_many(problems, *,
                 options: Optional[DCOptions] = None,
                 backend: str = "sequential",
                 n_workers: Optional[int] = None,
                 machine: Optional[Machine] = None,
                 subset: Optional[np.ndarray] = None,
                 full_result: bool = False,
                 raise_on_error: bool = False,
                 use_session: bool = True) -> list:
    """Solve a batch of tridiagonal eigenproblems, reusing the DAG.

    ``problems`` is an iterable of ``(d, e)`` pairs.  Graph reuse is
    forced on: each same-shape solve after the first skips the task
    submission/dependency analysis entirely and only rebinds fresh
    per-solve state onto the cached skeleton — the high-throughput batch
    entry point.  Mixed shapes are fine; each distinct shape is analyzed
    once.

    With ``use_session=True`` (the default) the batch runs inside a
    :class:`~repro.core.session.SolverSession`: workspaces are pooled
    across solves and, on the threads backend, all submissions execute
    concurrently on one persistent worker pool as a fused super-DAG —
    panel tasks of one problem fill the workers idled by another's
    serial merge spine.  ``use_session=False`` keeps the historical
    serial one-shot loop (one scheduler spin-up per problem).

    Failures are isolated per problem: a solve that raises a typed
    :class:`~repro.errors.ReproError` (bad input, unrecoverable
    convergence failure, task failure) produces a :class:`SolveFailure`
    record in that problem's slot and the batch continues — on the
    fused pool only the failing sub-graph is cancelled.  Pass
    ``raise_on_error=True`` to abort on the first failure instead.

    Returns a list of ``(lam, V)`` pairs (or :class:`DCResult` when
    ``full_result=True``) and :class:`SolveFailure` records, in input
    order.
    """
    opts = (options or DCOptions()).with_(reuse_graph=True)
    if use_session:
        with SolverSession(backend=backend, n_workers=n_workers,
                           machine=machine, options=opts) as session:
            return session.map(problems, subset=subset,
                               full_result=full_result,
                               raise_on_error=raise_on_error)
    out: list = []
    for i, (d, e) in enumerate(problems):
        try:
            out.append(dc_eigh(d, e, options=opts, backend=backend,
                               n_workers=n_workers, machine=machine,
                               subset=subset, full_result=full_result))
        except ReproError as exc:
            if raise_on_error:
                raise
            out.append(SolveFailure(i, exc))
    return out
