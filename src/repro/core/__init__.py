"""The paper's contribution: the task-flow D&C tridiagonal eigensolver."""

from .options import DCOptions, FIG3_CONFIGS
from .tree import Node, build_tree
from .merge import DCContext, MergeState, panel_ranges
from .tasks import submit_dc, DCGraphInfo
from .solver import dc_eigh, DCResult
from .dense import eigh
from .svd import svd, svd_bidiagonal, tgk_tridiagonal
from .reduction import taskflow_tridiagonalize

__all__ = [
    "DCOptions", "FIG3_CONFIGS", "Node", "build_tree",
    "DCContext", "MergeState", "panel_ranges",
    "submit_dc", "DCGraphInfo", "dc_eigh", "DCResult", "eigh",
    "svd", "svd_bidiagonal", "tgk_tridiagonal", "taskflow_tridiagonalize",
]
