"""The paper's contribution: the task-flow D&C tridiagonal eigensolver."""

from .options import DCOptions, FIG3_CONFIGS
from .tree import Node, build_tree
from .merge import DCContext, MergeState, panel_ranges
from .tasks import submit_dc, DCGraphInfo
from .graph_cache import (GraphTemplate, GraphTemplateCache,
                          graph_template_cache, template_key)
from .session import SolveHandle, SolverSession, WorkspacePool
from .solver import dc_eigh, dc_eigh_many, DCResult, SolveFailure
from .dense import eigh
from .svd import svd, svd_bidiagonal, tgk_tridiagonal
from .reduction import taskflow_tridiagonalize

__all__ = [
    "DCOptions", "FIG3_CONFIGS", "Node", "build_tree",
    "DCContext", "MergeState", "panel_ranges",
    "submit_dc", "DCGraphInfo", "dc_eigh", "dc_eigh_many", "DCResult",
    "SolveFailure", "SolverSession", "SolveHandle", "WorkspacePool",
    "GraphTemplate", "GraphTemplateCache", "graph_template_cache",
    "template_key", "eigh",
    "svd", "svd_bidiagonal", "tgk_tridiagonal", "taskflow_tridiagonalize",
]
