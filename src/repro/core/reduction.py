"""Task-flow Householder tridiagonalization (paper context, ref. [3]).

The paper's pipeline (Eqs. 1–3) starts with the reduction A = Q T Qᵀ,
whose PLASMA implementation [3] ("Parallel reduction to condensed forms
for symmetric eigenvalue problems using aggregated fine-grained and
memory-aware kernels") is the task-based counterpart of this module:
the reduction is expressed as a sequential task flow over column tiles
and scheduled by the same runtime as the D&C solver.

Per Householder step k:

    PanelFactor(k)      compute the reflector v_k from column k
    SymvPart(k, tile)   partial w += A[:, tile] @ v  (GATHERV on w)
    SymvFinish(k)       w ← τ(Av − ½τ(vᵀAv)v)        (join on w)
    Rank2Update(k,tile) A[:, tile] −= v w ᵀ + w v ᵀ   (per-tile INOUT)

The panel factorization chains sequentially (as in any one-stage
reduction — the reason [3] moves to two stages), while the O(n²)
symv/update work of every step parallelizes over tiles.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..kernels.householder import Tridiagonalization
from ..runtime.quark import Quark
from ..runtime.simulator import Machine
from ..runtime.task import DataHandle, GATHERV, INOUT, INPUT, OUTPUT, TaskCost
from .merge import panel_ranges

__all__ = ["taskflow_tridiagonalize"]


def taskflow_tridiagonalize(a: np.ndarray, *,
                            backend: str = "sequential",
                            n_workers: Optional[int] = None,
                            machine: Optional[Machine] = None,
                            tile: Optional[int] = None,
                            full_result: bool = False):
    """Reduce a dense symmetric matrix to tridiagonal form as a task flow.

    Returns a :class:`~repro.kernels.householder.Tridiagonalization`
    (same contract as the sequential kernel: ``apply_q``/``q()`` work on
    it), or ``(tri, trace, graph)`` when ``full_result=True``.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n) or n == 0:
        raise ValueError("matrix must be square and non-empty")
    scale = max(1.0, float(np.max(np.abs(a))))
    if n > 1 and not np.allclose(a, a.T, atol=1e-12 * scale):
        raise ValueError("matrix must be symmetric")
    tile = tile or max(32, n // 16)

    work = np.array(a, copy=True)
    d = np.empty(n)
    e = np.empty(max(0, n - 1))
    refl = np.zeros((n, n))
    taus = np.zeros(max(0, n - 1))
    state = {"v": None, "w": None, "tau": 0.0,
             "wparts": {}}

    quark = Quark(backend, n_workers=n_workers, machine=machine)
    htile = {t0: DataHandle(f"A[:, {t0}:{t1}]")
             for (t0, t1) in panel_ranges(n, tile)}
    tiles = list(panel_ranges(n, tile))
    hv = DataHandle("v")
    hw = DataHandle("w")

    def panel_factor(k: int) -> None:
        x = work[k + 1:, k]
        alpha = x[0]
        sigma = float(np.dot(x[1:], x[1:]))
        v = x.copy()
        v[0] = 1.0
        if sigma == 0.0:
            tau, beta = 0.0, float(alpha)
        else:
            beta = -math.copysign(math.hypot(alpha, math.sqrt(sigma)),
                                  alpha)
            tau = (beta - alpha) / beta
            v[1:] = x[1:] / (alpha - beta)
        taus[k] = tau
        refl[k + 1:, k] = v
        d[k] = work[k, k]
        e[k] = beta
        work[k + 1:, k] = 0.0
        work[k + 1, k] = beta
        work[k, k + 1:] = work[k + 1:, k]
        state["v"] = v
        state["tau"] = tau
        state["wparts"] = {}

    def symv_part(k: int, t0: int, t1: int) -> None:
        lo = max(t0, k + 1)
        if lo >= t1 or state["tau"] == 0.0:
            return
        v = state["v"]
        # Columns lo:t1 of the trailing block, rows k+1:.
        block = work[k + 1:, lo:t1]
        state["wparts"][t0] = (lo, block @ v[lo - (k + 1):t1 - (k + 1)])

    def symv_finish(k: int) -> None:
        tau = state["tau"]
        if tau == 0.0:
            state["w"] = None
            return
        v = state["v"]
        w = np.zeros(n - (k + 1))
        for lo, part in state["wparts"].values():
            w += part
        w *= tau
        w -= (0.5 * tau * np.dot(w, v)) * v
        state["w"] = w

    def rank2_update(k: int, t0: int, t1: int) -> None:
        if state["w"] is None:
            return
        lo = max(t0, k + 1)
        if lo >= t1:
            return
        v = state["v"]
        w = state["w"]
        cols = slice(lo, t1)
        vc = v[lo - (k + 1):t1 - (k + 1)]
        wc = w[lo - (k + 1):t1 - (k + 1)]
        work[k + 1:, cols] -= np.outer(v, wc)
        work[k + 1:, cols] -= np.outer(w, vc)

    for k in range(n - 2):
        col_tile = next(h for (t0, t1), h in
                        zip(tiles, htile.values()) if t0 <= k < t1)
        m = n - (k + 1)
        quark.insert_task(panel_factor,
                          [(col_tile, INOUT), (hv, OUTPUT)], args=(k,),
                          name="PanelFactor", tag=k,
                          cost=TaskCost(flops=4.0 * m))
        for (t0, t1) in tiles:
            if t1 <= k + 1:
                continue
            quark.insert_task(symv_part,
                              [(hv, INPUT), (htile[t0], INPUT),
                               (hw, GATHERV)], args=(k, t0, t1),
                              name="SymvPart", tag=(k, t0),
                              cost=TaskCost(flops=2.0 * m
                                            * (min(t1, n) - max(t0, k + 1))))
        quark.insert_task(symv_finish, [(hv, INPUT), (hw, INOUT)],
                          args=(k,), name="SymvFinish", tag=k,
                          cost=TaskCost(flops=4.0 * m))
        for (t0, t1) in tiles:
            if t1 <= k + 1:
                continue
            quark.insert_task(rank2_update,
                              [(hv, INPUT), (hw, INPUT),
                               (htile[t0], INOUT)], args=(k, t0, t1),
                              name="Rank2Update", tag=(k, t0),
                              cost=TaskCost(flops=4.0 * m
                                            * (min(t1, n) - max(t0, k + 1))))

    graph = quark.graph
    trace = quark.barrier()
    if n >= 2:
        d[n - 2] = work[n - 2, n - 2]
        e[n - 2] = work[n - 1, n - 2]
    d[n - 1] = work[n - 1, n - 1]
    tri = Tridiagonalization(d=d, e=e, reflectors=refl, taus=taus)
    if full_result:
        return tri, trace, graph
    return tri
