"""Functional payloads of the D&C tasks (Algorithm 1 of the paper).

Every function here is the *work* of one task of the merge DAG; the task
graph wiring lives in :mod:`repro.core.tasks`.  All state flows through
:class:`DCContext` (one per solve: the eigenvalue array ``D``, the
eigenvector matrix ``V``, the permute workspace ``Vws`` and the 2×n
boundary-row strips ``S``/``P``/``Pws``) and :class:`MergeState` (one
per merge node: deflation output, secular roots, stabilized ẑ and the
secular eigenvector block X).

Compute modes (``DCOptions.jobz``): ``'V'`` runs the full pipeline;
``'N'`` (eigenvalues only) drops ``V``/``Vws`` entirely (both are
``None``) and the O(n²)/O(n³) eigenvector kernels with them — only the
strips survive, carrying the two boundary rows each merge needs to form
its rank-one z.  Both modes source z from the same strip kernels (see
:mod:`repro.kernels.strips`), so the eigenvalues are bitwise identical
between them by construction.

Column storage convention: after a merge, the node's columns are stored
in *compressed order* — the k non-deflated eigenpairs first (grouped by
column type, ascending eigenvalue inside the grouping), then the n−k
deflated ones.  The next level's deflation re-sorts globally, so no
explicit inter-level permutation is required; a final
``SortEigenvectors`` pass orders the root ascending.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConvergenceError, InputError
from ..kernels.deflation import DeflationResult, deflate, rotation_chains
from ..kernels.givens import apply_rotation_chains
from ..kernels.scaling import ScaleInfo, scale_tridiagonal
from ..kernels.secular import solve_secular
from ..kernels.stabilize import (eigenvector_columns, local_w_product,
                                 reduce_w)
from ..kernels.steqr import steqr
from ..kernels.strips import (permute_strip, rotate_strip_columns,
                              stack_boundary_rows, strip_row_products)
from ..obs.recorder import NULL_RECORDER
from .options import DCOptions
from .tree import Node

__all__ = ["DCContext", "MergeState", "panel_ranges"]


def panel_ranges(n: int, nb: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into panels of width ``nb`` (at least one)."""
    if n <= 0:
        return [(0, 0)]
    return [(p, min(p + nb, n)) for p in range(0, n, nb)]


@dataclass
class MergeStats:
    """Per-merge record used for the Table I / complexity analyses."""

    n: int = 0
    k: int = 0
    n_rotations: int = 0
    secular_sweeps: int = 0
    lo: int = 0
    hi: int = 0
    fallback: bool = False

    @property
    def deflation_ratio(self) -> float:
        return 1.0 - self.k / self.n if self.n else 0.0


class DCContext:
    """Shared state of one D&C solve."""

    def __init__(self, d: np.ndarray, e: np.ndarray, opts: DCOptions,
                 subset: np.ndarray | None = None, workspace=None,
                 buffers: Optional[dict] = None):
        d = np.asarray(d, dtype=np.float64)
        e = np.asarray(e, dtype=np.float64)
        n = d.shape[0]
        if n == 0:
            raise InputError("empty matrix")
        if e.shape[0] != max(0, n - 1):
            raise InputError("e must have length n-1")
        if not np.isfinite(d).all() or not np.isfinite(e).all():
            # Defense in depth: dc_eigh validates at the API boundary,
            # but DCContext is also constructed directly by tests/tools.
            raise InputError("tridiagonal input contains non-finite entries")
        self.n = n
        self.opts = opts
        # Telemetry sink: the shared no-op unless DCOptions(telemetry=...)
        # was given.  Every metric below is guarded by ``obs.enabled``.
        self.obs = opts.telemetry if opts.telemetry is not None \
            else NULL_RECORDER
        self.d_in = d
        self.e_in = e
        # Subset computation ([6]-style): indices of wanted eigenpairs.
        # All eigenvalues are always computed; only the final merge's
        # eigenvector update and the output are restricted.
        if subset is not None:
            subset = np.unique(np.asarray(subset, dtype=np.intp))
            # Empty is legal: "all eigenvalues, no eigenvectors".
            if subset.size and (subset[0] < 0 or subset[-1] >= n):
                bad = int(subset[0]) if subset[0] < 0 else int(subset[-1])
                raise InputError(
                    f"subset index {bad} out of range for n={n}")
        self.subset = subset
        # Filled by the ScaleT / Partition tasks:
        self.d: Optional[np.ndarray] = None
        self.e: Optional[np.ndarray] = None
        self.scale_info: Optional[ScaleInfo] = None
        self.d_adj: Optional[np.ndarray] = None
        # Global solve storage (column-major so column ops are contiguous).
        # With a WorkspacePool the two n^2 buffers are recycled from
        # earlier same-shape solves instead of freshly allocated; every
        # read of V/Vws is preceded by a task that writes it (LASET
        # zeroes all of V, PermuteV/SortEigenvectors write every Vws
        # location later read), so recycled contents never leak into
        # results — numerics are bitwise identical either way.
        # Boundary-row strips (see repro.kernels.strips): S holds each
        # completed node's two boundary rows, P/Pws are the per-merge
        # stacked and permuted working strips.  Allocated in BOTH modes
        # (6n doubles) — z is always derived from them — while the n²
        # buffers V/Vws exist only when eigenvectors are requested.
        # Dirty reuse of pooled strips is exact: every leaf writes its
        # S columns before any read, GivensStrip writes P[:, lo:hi]
        # before PermuteStrip reads it, and PermuteStrip writes
        # Pws[:, lo:hi] before UpdateStrip reads it.
        self.workspace = workspace
        self._d_pooled = False
        jobz_v = opts.jobz == "V"
        if buffers is not None:
            # Process-backend replica: the buffers are externally managed
            # views of shared-memory segments owned by the parent pool.
            self.D = buffers["D"]
            self.V = buffers.get("V")
            self.Vws = buffers.get("Vws")
            self.S = buffers["S"]
            self.P = buffers["P"]
            self.Pws = buffers["Pws"]
        elif workspace is not None:
            # A shared (process-backend) pool must also serve D so child
            # processes see eigenvalue writes; dirty reuse is exact for
            # the same reason as V/Vws (leaves write all of D[0:n) before
            # any read).
            if getattr(workspace, "shared", False):
                self.D = workspace.take((n,))
                self._d_pooled = True
            else:
                self.D = np.zeros(n)
            self.V = workspace.take((n, n)) if jobz_v else None
            self.Vws = workspace.take((n, n)) if jobz_v else None
            self.S = workspace.take((2, n))
            self.P = workspace.take((2, n))
            self.Pws = workspace.take((2, n))
        else:
            self.D = np.zeros(n)
            self.V = np.zeros((n, n), order="F") if jobz_v else None
            self.Vws = np.zeros((n, n), order="F") if jobz_v else None
            self.S = np.zeros((2, n), order="F")
            self.P = np.zeros((2, n), order="F")
            self.Pws = np.zeros((2, n), order="F")
        # Process backend: child replicas defer the secular-failure
        # STEQR fallback to the parent dispatcher (exclusive access).
        self._defer_fallback = False
        # Final ordering (SortEigenvectors / ScaleBack).
        self.order: Optional[np.ndarray] = None
        self.D_sorted: Optional[np.ndarray] = None
        # Keyed by merge span so concurrent registration (threads backend)
        # never races on a list and the exposed order is deterministic.
        self._merge_stats: dict[tuple[int, int], MergeStats] = {}

    @property
    def merge_stats(self) -> list[MergeStats]:
        """Per-merge stats, bottom-up by tree level (root merge last).

        Entries are registered in execution order, which is backend
        dependent; sorting by (span size, lo) restores the deterministic
        bottom-up tree order regardless of the schedule.
        """
        return [self._merge_stats[key] for key in
                sorted(self._merge_stats, key=lambda s: (s[1] - s[0], s[0]))]

    # -- root-level tasks --------------------------------------------------
    def t_scale(self) -> None:
        self.d, self.e, self.scale_info = scale_tridiagonal(self.d_in,
                                                            self.e_in)

    def t_partition(self, tree: Node) -> None:
        """Apply the −|β| corner corrections at every cut (Eq. 5)."""
        d_adj = self.d.copy()
        for m in tree.cut_points():
            b = abs(self.e[m - 1])
            d_adj[m - 1] -= b
            d_adj[m] -= b
        self.d_adj = d_adj

    def t_laset(self, node: Node) -> None:
        lo, hi = node.lo, node.hi
        self.V[:, lo:hi] = 0.0
        self.V[lo:hi, lo:hi][np.diag_indices(hi - lo)] = 1.0

    def t_stedc_leaf(self, node: Node) -> None:
        lo, hi = node.lo, node.hi
        lam, Vl = steqr(self.d_adj[lo:hi], self.e[lo:hi - 1])
        self.D[lo:hi] = lam
        if self.V is not None:
            self.V[lo:hi, lo:hi] = Vl
        # Seed the boundary-row strip with the leaf's first/last
        # eigenvector rows (exact copies of the steqr output, so V-mode
        # level-1 merges see the same z bits as always).
        self.S[0, lo:hi] = Vl[0, :]
        self.S[1, lo:hi] = Vl[hi - lo - 1, :]

    def t_sort_join(self) -> None:
        order = np.argsort(self.D, kind="stable")
        if self.subset is not None:
            order = order[self.subset]
        self.order = order
        self.D_sorted = self.D[order]

    def t_sort_panel(self, p0: int, p1: int) -> None:
        p1 = min(p1, self.order.shape[0])
        if p0 < p1:
            self.Vws[:, p0:p1] = self.V[:, self.order[p0:p1]]

    def t_scale_back(self) -> None:
        self.scale_info.unscale_eigenvalues(self.D_sorted)

    def result(self) -> tuple[np.ndarray, Optional[np.ndarray]]:
        if self.Vws is None:            # jobz='N': eigenvalues only
            return self.D_sorted, None
        if self.subset is not None:
            return self.D_sorted, self.Vws[:, :self.subset.shape[0]]
        return self.D_sorted, self.Vws

    def release_workspace(self, states=(), keep_result: bool = True) -> None:
        """Return pooled buffers to the arena once the solve is over.

        ``V`` and every merge's secular block ``X`` go back to the pool
        for the next same-shape solve.  ``Vws`` holds the sorted
        eigenvectors — the solve's *result* — so on success its
        ownership transfers out of the pool to the caller
        (``keep_result=True``); a failed solve has no result and
        recycles it too.  Idempotent; a no-op without a pool.
        """
        ws = self.workspace
        if ws is None:
            return
        self.workspace = None
        for st in states:
            if st.X is not None and st.X.size:
                ws.release(st.X)
            st.X = None
        for buf in (self.S, self.P, self.Pws):
            if buf is not None:
                ws.release(buf)
        self.S = self.P = self.Pws = None
        if self.V is not None:
            ws.release(self.V)
            self.V = None
        if self._d_pooled:
            ws.release(self.D)
            self.D = None
            self._d_pooled = False
        if self.Vws is None:
            pass                        # jobz='N': nothing to hand out
        elif keep_result:
            ws.forget(self.Vws)
        else:
            ws.release(self.Vws)
            self.Vws = None


class MergeState:
    """Per-merge-node state, produced/consumed by the eight kernels."""

    def __init__(self, ctx: DCContext, node: Node):
        self.ctx = ctx
        self.node = node
        self.lo, self.hi = node.lo, node.hi
        self.mid = node.mid
        self.defl: Optional[DeflationResult] = None
        self.chains: list = []
        self.orig: Optional[np.ndarray] = None
        self.tau: Optional[np.ndarray] = None
        self.lam: Optional[np.ndarray] = None
        self.zhat: Optional[np.ndarray] = None
        self.wparts: dict[int, np.ndarray] = {}
        self.X: Optional[np.ndarray] = None
        self.wanted_stored: Optional[np.ndarray] = None
        self.stats = MergeStats(lo=node.lo, hi=node.hi)
        # Secular sweep counts, accumulated per panel (keyed by p0) and
        # reduced into ``stats`` by t_reduce_w: panel tasks run
        # concurrently under the threads backend, so a shared
        # read-modify-write on stats.secular_sweeps would race.
        self._sweeps: dict[int, int] = {}
        # Graceful degradation: when the secular solve of this merge
        # fails (no convergence / non-finite roots), the merge falls
        # back to STEQR on its subproblem.  The rewrite must happen
        # after *every* writer of the node's output block has finished —
        # the writer panels share one GATHERV group on hV, so they carry
        # no mutual edges and run concurrently under the threads
        # backend.  Each writer task decrements the countdown when it
        # completes; the last one performs the fallback.  Detection
        # always precedes the last writer: every writer depends
        # (transitively, through ReduceW → hW) on every LAED4 panel.
        # Writers per mode: jobz='V' has CopyBackDeflated + UpdateVect
        # (+ UpdateStrip below the root); jobz='N' has UpdateStrip only
        # (UpdateEig at the root).
        self.secular_failed = False
        self.fallback_exc: Optional[BaseException] = None
        self._flock = threading.Lock()
        npan = len(panel_ranges(node.n, ctx.opts.node_nb(node.n, ctx.n)))
        is_root = node.n == ctx.n
        if ctx.opts.jobz == "N":
            self._writers_left = npan
        else:
            self._writers_left = 2 * npan + (0 if is_root else npan)

    # convenience ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self.hi - self.lo

    @property
    def n1(self) -> int:
        return self.mid - self.lo

    @property
    def k(self) -> int:
        return self.defl.k

    def clip_roots(self, p0: int, p1: int) -> np.ndarray:
        """Root indices of panel [p0, p1) — empty once past k (the
        paper's deflation-independent DAG: surplus tasks become no-ops)."""
        return np.arange(p0, min(p1, self.k), dtype=np.intp)

    # -- secular-failure fallback ------------------------------------------
    def _mark_secular_failure(self, exc: BaseException) -> None:
        """Record a secular-solve failure; first cause wins."""
        with self._flock:
            self.secular_failed = True
            if self.fallback_exc is None:
                self.fallback_exc = exc

    def _writer_done(self) -> None:
        """Countdown called by every CopyBackDeflated/UpdateVect panel.

        The last writer sees the final value of ``secular_failed`` (all
        detection sites are ordered before it by the DAG) and performs
        the STEQR fallback with exclusive access to the block.  Process
        backend: child replicas only ever see a *partial* countdown (the
        writers are spread across workers), so they defer; the parent
        dispatcher, which observes every completion, drives its own
        replica's countdown and applies the fallback there."""
        with self._flock:
            self._writers_left -= 1
            last = self._writers_left == 0
        if last and self.secular_failed and not self.ctx._defer_fallback:
            self._apply_fallback()

    def _apply_fallback(self) -> None:
        """Recompute the merge's block directly with STEQR (Sec. II QR
        iteration) after a secular failure.

        After the merge of [lo, hi) completes, the block must hold the
        eigendecomposition of the *scaled* tridiagonal T[lo:hi] with the
        −|β| corner corrections of the still-unmerged ancestor cuts
        (Eq. 5): interior cut corrections were undone by the subtree's
        own merges, so only the lo/hi boundaries remain adjusted."""
        ctx = self.ctx
        lo, hi = self.lo, self.hi
        d_sub = ctx.d[lo:hi].copy()
        if lo > 0:
            d_sub[0] -= abs(ctx.e[lo - 1])
        if hi < ctx.n:
            d_sub[-1] -= abs(ctx.e[hi - 1])
        try:
            lam, Vb = steqr(d_sub, ctx.e[lo:hi - 1])
        except Exception as exc:
            raise ConvergenceError(
                f"secular solve failed on merge [{lo}, {hi}) "
                f"({self.fallback_exc}) and the STEQR fallback "
                f"also failed") from exc
        ctx.D[lo:hi] = lam
        if ctx.V is not None:
            ctx.V[:, lo:hi] = 0.0
            ctx.V[lo:hi, lo:hi] = Vb
        # Rewrite the strip too: the parent's z reads it.
        ctx.S[0, lo:hi] = Vb[0, :]
        ctx.S[1, lo:hi] = Vb[hi - lo - 1, :]
        self.stats.fallback = True
        obs = ctx.obs
        if obs.enabled:
            obs.add("solve.fallbacks")

    # -- kernels ------------------------------------------------------------
    def t_compute_deflation(self) -> None:
        ctx = self.ctx
        lo, mid, hi = self.lo, self.mid, self.hi
        beta = float(ctx.e[mid - 1])
        dvals = ctx.D[lo:hi]
        # Rank-one vector (Eq. 4): last row of the left child's block,
        # first row of the right child's — read from the boundary-row
        # strips, the single z source of both compute modes.
        z = np.concatenate([ctx.S[1, lo:mid], ctx.S[0, mid:hi]])
        self.defl = deflate(dvals, z, beta, mid - lo,
                            tol_factor=ctx.opts.deflation_tol_factor)
        self.chains = rotation_chains(self.defl.rotations)
        # Run boundaries of the permutation (indices where consecutive
        # source columns break): precomputed once so every PermuteV panel
        # can block-copy runs without per-panel run detection.
        cuts = np.flatnonzero(np.diff(self.defl.perm) != 1) + 1
        self._perm_runs = [0, *cuts.tolist(), self.defl.perm.size]
        k = self.defl.k
        self.orig = np.zeros(k, dtype=np.intp)
        self.tau = np.zeros(k)
        self.lam = np.zeros(k)
        # Secular eigenvector block: pooled when the solve has a
        # workspace arena (every column of X is written by a ComputeVect
        # panel before UpdateVect reads it, so recycling is exact).
        # jobz='N' never materializes the k×k block — UpdateStrip forms
        # its own transient k×m panel — which is what kills the O(n²)
        # term of the merge.
        ws = ctx.workspace
        if k and ctx.opts.jobz == "V":
            self.X = np.zeros((k, k), order="F") if ws is None \
                else ws.take((k, k))
        else:
            self.X = np.zeros((0, 0))
        self.stats.n = self.n
        self.stats.k = k
        self.stats.n_rotations = len(self.defl.rotations)
        ctx._merge_stats[(self.lo, self.hi)] = self.stats
        obs = ctx.obs
        if obs.enabled:
            defl = self.defl
            n_rot = len(defl.rotations)
            # Deflation ratio split by type: Givens pairs (close
            # eigenvalues) vs negligible-z components.
            obs.observe("merge.deflation_ratio", defl.deflation_ratio)
            obs.observe("merge.deflation_ratio.givens", n_rot / defl.n)
            obs.observe("merge.deflation_ratio.smallz",
                        (defl.n_deflated - n_rot) / defl.n)
            obs.observe_many("merge.givens_chain_len",
                             (len(c) for c in self.chains))
            obs.add("merge.rotations", n_rot)
            obs.add("merge.count")
            obs.gauge_max("workspace.x_block_bytes", 8 * self.X.size)
            if self.n == ctx.n:       # root merge: the solve's peak
                from ..analysis.memory import solve_high_water_bytes
                obs.gauge_max("workspace.high_water_bytes",
                              solve_high_water_bytes(
                                  ctx.n, k, ctx.opts.extra_workspace,
                                  jobz=ctx.opts.jobz))

    def t_apply_givens(self, group: int, n_groups: int) -> None:
        """Apply the deflating rotations of chains ``group mod n_groups``.

        Chains touch disjoint columns, so groups can run concurrently
        (GATHERV on the child eigenvector blocks).  Within a group the
        chains are batched into vectorized rounds by
        :func:`~repro.kernels.givens.apply_rotation_chains`: round ``r``
        applies the ``r``-th rotation of every chain with one fancy-indexed
        gather/scatter instead of per-rotation BLAS-1 column updates."""
        if not self.chains:
            return
        ctx = self.ctx
        apply_rotation_chains(ctx.V, self.lo, self.hi,
                              self.chains[group::n_groups])

    def t_apply_givens_ref(self, group: int, n_groups: int) -> None:
        """Seed (per-rotation temporaries) implementation of
        :meth:`t_apply_givens`; kept as the reference for equivalence
        tests and the hot-path microbenchmarks."""
        ctx = self.ctx
        lo, hi = self.lo, self.hi
        for ci in range(group, len(self.chains), n_groups):
            for r in self.chains[ci]:
                qi = ctx.V[lo:hi, lo + r.i]
                qj = ctx.V[lo:hi, lo + r.j]
                tmp = r.c * qi + r.s * qj
                qj *= r.c
                qj -= r.s * qi
                qi[...] = tmp

    def _dest_rows(self, dest: int) -> slice:
        """Row range holding the nonzeros of compressed column ``dest``."""
        k1, k2, _ = self.defl.ctot
        if dest < k1:
            return slice(self.lo, self.mid)        # type 1: top block only
        if dest < k1 + k2 or dest >= self.k:
            return slice(self.lo, self.hi)         # dense / deflated
        return slice(self.mid, self.hi)            # type 3: bottom block

    def _dest_segments(self, p0: int, p1: int
                       ) -> list[tuple[int, int, slice]]:
        """Split panel [p0, p1) into contiguous runs of equal row class.

        The compressed layout groups columns as [type-1 | dense | type-3 |
        deflated], so a panel intersects at most four runs; each run can
        be moved with a single fancy-indexed gather."""
        k1, k2, _ = self.defl.ctot
        k = self.k
        top = slice(self.lo, self.mid)
        full = slice(self.lo, self.hi)
        bot = slice(self.mid, self.hi)
        out = []
        for a, b, rows in ((0, k1, top), (k1, k1 + k2, full),
                           (k1 + k2, k, bot), (k, self.n, full)):
            d0, d1 = max(p0, a), min(p1, b)
            if d0 < d1:
                out.append((d0, d1, rows))
        return out

    def t_permute_panel(self, p0: int, p1: int) -> None:
        """Copy columns [p0, p1) into the workspace in compressed order.

        Within each row-range class (type-1 / dense / type-3 / deflated)
        the permutation is an interleave of a few sorted child sequences,
        so it decomposes into long runs of *consecutive* source columns
        (~10 runs for a full merge).  Each run is one contiguous 2D block
        copy — same bytes as the seed's per-column loop, a small constant
        number of numpy calls.  When a segment is pathologically
        fragmented and the columns are short, a single fancy-indexed
        gather is cheaper than the run loop."""
        ctx = self.ctx
        perm = self.defl.perm
        runs = self._perm_runs
        lo = self.lo
        V, W = ctx.V, ctx.Vws
        for d0, d1, rows in self._dest_segments(p0, p1):
            i0 = bisect_right(runs, d0) - 1
            i1 = bisect_left(runs, d1)
            if (i1 - i0 > (d1 - d0) >> 2
                    and rows.stop - rows.start <= 1024):
                # Fragmented permutation, short columns: one gather beats
                # the run loop.
                W[rows, lo + d0:lo + d1] = V[rows, lo + perm[d0:d1]]
                continue
            d = d0
            for a in range(i0, i1):
                end = min(runs[a + 1], d1)
                s = lo + int(perm[d])
                W[rows, lo + d:lo + end] = V[rows, s:s + end - d]
                d = end

    def t_permute_panel_ref(self, p0: int, p1: int) -> None:
        """Seed (column-at-a-time) implementation of
        :meth:`t_permute_panel`; reference for tests/benchmarks."""
        ctx = self.ctx
        perm = self.defl.perm
        p1 = min(p1, self.n)
        for dest in range(p0, p1):
            rows = self._dest_rows(dest)
            ctx.Vws[rows, self.lo + dest] = ctx.V[rows, self.lo + perm[dest]]

    def permute_rows_moved(self, p0: int, p1: int) -> float:
        """Doubles moved by t_permute_panel (for the cost model)."""
        return float(sum((d1 - d0) * (rows.stop - rows.start)
                         for d0, d1, rows in self._dest_segments(p0, p1)))

    def t_laed4_panel(self, p0: int, p1: int) -> None:
        roots = self.clip_roots(p0, p1)
        if roots.size == 0:
            return
        d = self.defl
        obs = self.ctx.obs
        try:
            res = solve_secular(d.dlamda, d.zsec, d.rho, index=roots,
                                recorder=obs if obs.enabled else None)
        except Exception as exc:
            # Graceful degradation: flag the merge for the STEQR
            # fallback instead of failing the whole solve.
            self._mark_secular_failure(exc)
            return
        if not (np.isfinite(res.tau).all() and np.isfinite(res.lam).all()):
            self._mark_secular_failure(ConvergenceError(
                f"secular solve produced non-finite roots on merge "
                f"[{self.lo}, {self.hi})"))
            return
        self.orig[roots] = res.orig
        self.tau[roots] = res.tau
        self.lam[roots] = res.lam
        # Per-panel accumulation (distinct keys): reduced by t_reduce_w.
        self._sweeps[p0] = res.iterations

    def t_local_w_panel(self, p0: int, p1: int, pid: int) -> None:
        if self.secular_failed:
            # This panel's LAED4 is ordered before us; if it flagged the
            # failure its outputs are unset, so skip the product.
            return
        roots = self.clip_roots(p0, p1)
        if roots.size == 0:
            return
        d = self.defl
        self.wparts[pid] = local_w_product(d.dlamda, self.orig[roots],
                                           self.tau[roots], roots)

    def t_reduce_w(self) -> None:
        # Subset computation at the ROOT merge: every eigenvalue is
        # known here (LAED4 done, deflated values known), so the final
        # rank of each stored column can be computed and the expensive
        # UpdateVect restricted to the wanted ones (the [6] optimization
        # of the last update step; see paper Sec. I).
        ctx = self.ctx
        # All LAED4 panels are ordered before ReduceW (through the
        # ComputeLocalW -> hW GATHERV group), so this reduction is safe
        # and `secular_failed` is final here.
        self.stats.secular_sweeps = sum(self._sweeps.values())
        if self.secular_failed:
            return
        if ctx.subset is not None and self.n == ctx.n:
            lam_stored = np.concatenate([self.lam, self.defl.d_defl])
            ranks = np.empty(self.n, dtype=np.intp)
            ranks[np.argsort(lam_stored, kind="stable")] = np.arange(self.n)
            wanted = np.zeros(self.n, dtype=bool)
            wanted[np.isin(ranks, ctx.subset)] = True
            self.wanted_stored = wanted
        if self.k == 0:
            self.zhat = np.zeros(0)
            return
        parts = [self.wparts[pid] for pid in sorted(self.wparts)]
        zhat = reduce_w(parts, self.defl.zsec, self.defl.rho)
        if not np.isfinite(zhat).all():
            self._mark_secular_failure(ConvergenceError(
                f"rank-one update vector is non-finite on merge "
                f"[{self.lo}, {self.hi})"))
            return
        self.zhat = zhat

    def t_copyback_panel(self, p0: int, p1: int) -> None:
        try:
            ctx = self.ctx
            d = self.defl
            lo, hi = self.lo, self.hi
            k = self.k
            a, b = max(p0, k), min(p1, self.n)
            if a >= b:
                return
            ctx.V[lo:hi, lo + a:lo + b] = ctx.Vws[lo:hi, lo + a:lo + b]
            ctx.D[lo + a:lo + b] = d.d_defl[a - k:b - k]
        finally:
            # hV writer countdown (the copies above are redundant when a
            # secular failure was flagged, but skipping them on a flag
            # that may not be final yet would be racy; the fallback
            # rewrite supersedes them either way).
            self._writer_done()

    def t_copyback_panel_ref(self, p0: int, p1: int) -> None:
        """Seed (column-at-a-time) implementation of
        :meth:`t_copyback_panel`; reference for tests/benchmarks."""
        ctx = self.ctx
        d = self.defl
        lo, hi = self.lo, self.hi
        for dest in range(max(p0, self.k), min(p1, self.n)):
            ctx.V[lo:hi, lo + dest] = ctx.Vws[lo:hi, lo + dest]
            ctx.D[lo + dest] = d.d_defl[dest - self.k]

    def copyback_rows_moved(self, p0: int, p1: int) -> float:
        n_cols = max(0, min(p1, self.n) - max(p0, self.k))
        return float(n_cols * self.n)

    def t_compute_vect_panel(self, p0: int, p1: int) -> None:
        if self.secular_failed:
            # Final here: ReduceW (a detection site ordered after every
            # LAED4) precedes all ComputeVect panels; zhat may be unset.
            return
        cols = self.clip_roots(p0, p1)
        if cols.size == 0:
            return
        d = self.defl
        self.X[:, cols] = eigenvector_columns(d.dlamda, self.orig[cols],
                                              self.tau[cols], self.zhat,
                                              row_order=d.rowidx)

    def update_cols(self, p0: int, p1: int) -> np.ndarray:
        """Columns of panel [p0, p1) whose eigenvectors must be formed
        (all non-deflated ones, or only the wanted subset at the root)."""
        cols = self.clip_roots(p0, p1)
        if self.wanted_stored is not None and cols.size:
            cols = cols[self.wanted_stored[cols]]
        return cols

    def t_update_vect_panel(self, p0: int, p1: int) -> None:
        try:
            if self.secular_failed:
                # Final here (every UpdateVect depends on ReduceW and
                # all LAED4 panels): lam/X are unset, the fallback will
                # rewrite the block.
                return
            ctx = self.ctx
            # Eigenvalues are always produced for every panel root (the
            # final ordering needs them), even when the vector is skipped.
            roots = self.clip_roots(p0, p1)
            if roots.size == 0:
                return
            ctx.D[self.lo + roots] = self.lam[roots]
            cols = self.update_cols(p0, p1)
            if cols.size == 0:
                return
            lo, mid, hi = self.lo, self.mid, self.hi
            k1, k2, _ = self.defl.ctot
            k = self.k
            k12 = k1 + k2
            if cols.size == roots.size:
                dst = slice(lo + int(cols[0]), lo + int(cols[-1]) + 1)
                xs: slice | np.ndarray = slice(int(cols[0]),
                                               int(cols[-1]) + 1)
            else:   # subset at the root: possibly non-contiguous columns
                dst = lo + cols
                xs = cols
            if k12:
                ctx.V[lo:mid, dst] = \
                    ctx.Vws[lo:mid, lo:lo + k12] @ self.X[:k12, xs]
            else:
                ctx.V[lo:mid, dst] = 0.0
            if k - k1:
                ctx.V[mid:hi, dst] = \
                    ctx.Vws[mid:hi, lo + k1:lo + k] @ self.X[k1:k, xs]
            else:
                ctx.V[mid:hi, dst] = 0.0
        finally:
            self._writer_done()

    def update_vect_shape(self, p0: int, p1: int) -> tuple[int, int, int, int, int]:
        """(n1, n2, k12, k23, m) for the cost model; m reflects subset
        restriction at the root (the [6] cost saving)."""
        k1, k2, _ = self.defl.ctot
        m = int(self.update_cols(p0, p1).size)
        return (self.n1, self.n - self.n1, k1 + k2, self.k - k1, m)

    # -- boundary-row strip kernels (both modes; see kernels.strips) -------
    def t_givens_strip(self) -> None:
        """Stack the children's boundary rows into the working strip P
        and apply this merge's deflating rotations to it.

        Single task per merge (O(n_node) work): the strip is 2 rows, so
        panelization would be all dispatch overhead.  Depends only on
        hdefl — Compute_deflation already ordered us after every writer
        of the child blocks."""
        ctx = self.ctx
        stack_boundary_rows(ctx.S, ctx.P, self.lo, self.mid, self.hi)
        rotate_strip_columns(ctx.P, self.lo, self.chains)

    def t_permute_strip(self) -> None:
        """Gather the working strip into compressed column order."""
        ctx = self.ctx
        permute_strip(ctx.P, ctx.Pws, self.lo, self.defl.perm)

    def t_strip_update_panel(self, p0: int, p1: int) -> None:
        """Form the merged node's strip columns of panel [p0, p1).

        Non-deflated columns get the two ``row·X`` secular products
        (the strip restriction of UpdateVect's structured GEMM) from a
        *transient* k×m eigenvector panel — never the stored n²-backed
        ``self.X``, so jobz='N' allocates O(k·nb) at peak.  Deflated
        columns are copied from the permuted strip (the CopyBackDeflated
        restriction).  In jobz='N' this panel is also the eigenvalue
        writer (lam for roots, d_defl for deflated); in jobz='V' the
        classic kernels own D and this writes the strip only."""
        try:
            if self.secular_failed:
                # Final here (ordered after ReduceW and all LAED4).
                return
            ctx = self.ctx
            d = self.defl
            lo = self.lo
            k = self.k
            n_node = self.n
            eig_only = ctx.V is None
            a, b = max(p0, k), min(p1, n_node)
            if a < b:
                ctx.S[:, lo + a:lo + b] = ctx.Pws[:, lo + a:lo + b]
                if eig_only:
                    ctx.D[lo + a:lo + b] = d.d_defl[a - k:b - k]
            roots = self.clip_roots(p0, p1)
            if roots.size == 0:
                return
            if eig_only:
                ctx.D[lo + roots] = self.lam[roots]
            # Strips feed the *parent's* z, so no subset restriction —
            # every non-deflated column is formed.
            k1, k2, _ = d.ctot
            k12 = k1 + k2
            Xp = eigenvector_columns(d.dlamda, self.orig[roots],
                                     self.tau[roots], self.zhat,
                                     row_order=d.rowidx)
            top, bot = strip_row_products(ctx.Pws[0, lo:lo + k12],
                                          ctx.Pws[1, lo + k1:lo + k],
                                          Xp, k1)
            dst = slice(lo + int(roots[0]), lo + int(roots[-1]) + 1)
            ctx.S[0, dst] = top
            ctx.S[1, dst] = bot
        finally:
            self._writer_done()

    def t_update_eig_panel(self, p0: int, p1: int) -> None:
        """jobz='N' root merge: write the eigenvalues of panel [p0, p1)
        (lam for secular roots, d_defl for deflated columns) — no strip
        products, the root's strip has no consumer."""
        try:
            if self.secular_failed:
                return
            ctx = self.ctx
            d = self.defl
            lo = self.lo
            k = self.k
            a, b = max(p0, k), min(p1, self.n)
            if a < b:
                ctx.D[lo + a:lo + b] = d.d_defl[a - k:b - k]
            roots = self.clip_roots(p0, p1)
            if roots.size:
                ctx.D[lo + roots] = self.lam[roots]
        finally:
            self._writer_done()

    def strip_rotations(self) -> int:
        """Rotation count for the GivensStrip cost model."""
        return sum(len(c) for c in self.chains)


# Engine parent-side epilogue tags (see repro.runtime.engine
# .parent_epilogue): the process backend runs `_writer_done()` on the
# *parent's* replica after each eigenvector writer completes on a worker
# — the last writer of a secular-failed merge performs the STEQR
# fallback with exclusive access to the shared arrays.  The tag lives on
# the function object, so it survives graph-template instantiation and
# bound-method extraction on any replica.
for _writer in (MergeState.t_copyback_panel, MergeState.t_update_vect_panel,
                MergeState.t_strip_update_panel,
                MergeState.t_update_eig_panel):
    _writer._parent_epilogue = "_writer_done"
del _writer
