"""Sturm-count bisection for tridiagonal eigenvalues.

``sturm_count`` counts eigenvalues below a shift through the inertia of
``T − σI`` (negative pivots of its LDLᵀ factorization); the count is
vectorized over many shifts at once, so bisecting all n eigenvalues
costs one O(n) pass per bisection sweep instead of n.

These counts drive both the initial eigenvalue approximations of the
MRRR solver and the Bisection+Inverse-Iteration baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gershgorin", "sturm_count", "bisect_eigenvalues",
           "sturm_count_ldl", "bisect_ldl"]

_EPS = np.finfo(np.float64).eps
_TINY = np.finfo(np.float64).tiny


def gershgorin(d: np.ndarray, e: np.ndarray) -> tuple[float, float]:
    """Inclusive bounds [gl, gu] on the spectrum of (d, e)."""
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    r = np.zeros(n)
    if n > 1:
        ae = np.abs(e)
        r[:-1] += ae
        r[1:] += ae
    gl = float(np.min(d - r))
    gu = float(np.max(d + r))
    bnorm = max(abs(gl), abs(gu), _TINY)
    return gl - 2 * _EPS * bnorm * n, gu + 2 * _EPS * bnorm * n


def sturm_count(d: np.ndarray, e: np.ndarray,
                sigma: np.ndarray | float) -> np.ndarray:
    """Number of eigenvalues of (d, e) strictly below each shift.

    Vectorized over shifts: one pass over the matrix, SIMD over σ.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    sig = np.atleast_1d(np.asarray(sigma, dtype=np.float64))
    n = d.shape[0]
    count = np.zeros(sig.shape, dtype=np.int64)
    q = d[0] - sig
    count += q < 0.0
    for i in range(1, n):
        # Guard exact zeros: nudge by a tiny amount (standard practice).
        q = np.where(q == 0.0, _TINY, q)
        q = (d[i] - sig) - (e[i - 1] * e[i - 1]) / q
        count += q < 0.0
    if np.isscalar(sigma):
        return count[0]
    return count


def bisect_eigenvalues(d: np.ndarray, e: np.ndarray,
                       indices: np.ndarray | None = None,
                       rtol: float = 1e-12,
                       max_iter: int = 128) -> np.ndarray:
    """Eigenvalues (ascending, selected by ``indices``) by bisection.

    Converges each eigenvalue to ``|hi−lo| <= rtol*max(|lo|,|hi|) + tiny``.
    All requested eigenvalues bisect simultaneously.
    """
    d = np.asarray(d, dtype=np.float64)
    n = d.shape[0]
    if indices is None:
        indices = np.arange(n)
    idx = np.asarray(indices, dtype=np.int64)
    gl, gu = gershgorin(d, e)
    lo = np.full(idx.shape, gl)
    hi = np.full(idx.shape, gu)
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        cnt = sturm_count(d, e, mid)
        below = cnt <= idx          # eigenvalue #idx is above mid
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
        tol = rtol * np.maximum(np.abs(lo), np.abs(hi)) + 2 * _TINY
        if np.all(hi - lo <= tol):
            break
    return 0.5 * (lo + hi)


def sturm_count_ldl(dfac: np.ndarray, lfac: np.ndarray,
                    sigma: np.ndarray | float) -> np.ndarray:
    """Eigenvalue count of the representation ``L D Lᵀ`` below σ.

    Uses the differential stationary qds transform (dstqds): the signs of
    D⁺ where ``L⁺D⁺L⁺ᵀ = LDLᵀ − σI`` give the inertia.  High relative
    accuracy w.r.t. the representation's data — the property MRRR builds
    on.
    """
    dfac = np.asarray(dfac, dtype=np.float64)
    lfac = np.asarray(lfac, dtype=np.float64)
    sig = np.atleast_1d(np.asarray(sigma, dtype=np.float64))
    n = dfac.shape[0]
    count = np.zeros(sig.shape, dtype=np.int64)
    s = -sig.copy()
    for i in range(n - 1):
        dplus = dfac[i] + s
        count += dplus < 0.0
        dplus = np.where(dplus == 0.0, _TINY, dplus)
        s = (lfac[i] * lfac[i] * dfac[i]) * (s / dplus) - sig
    count += (dfac[n - 1] + s) < 0.0
    if np.isscalar(sigma):
        return count[0]
    return count


def sturm_count_ldl_multi(dmat: np.ndarray, lmat: np.ndarray,
                          sigma: np.ndarray) -> np.ndarray:
    """Like :func:`sturm_count_ldl`, but column j of ``dmat``/``lmat``
    carries its *own* representation — one pass counts eigenvalues of m
    different LDLᵀ factorizations below their m shifts simultaneously.
    Used to refine the eigenvalues of many sibling clusters at once."""
    n = dmat.shape[0]
    count = np.zeros(sigma.shape, dtype=np.int64)
    s = -sigma.copy()
    for i in range(n - 1):
        dplus = dmat[i] + s
        count += dplus < 0.0
        dplus = np.where(dplus == 0.0, _TINY, dplus)
        s = (lmat[i] * lmat[i] * dmat[i]) * (s / dplus) - sigma
    count += (dmat[n - 1] + s) < 0.0
    return count


def bisect_ldl_multi(dmat: np.ndarray, lmat: np.ndarray,
                     indices: np.ndarray,
                     lo: np.ndarray, hi: np.ndarray,
                     rtol: float = 4.0 * _EPS,
                     max_iter: int = 128) -> np.ndarray:
    """Per-column-representation version of :func:`bisect_ldl`."""
    idx = np.asarray(indices, dtype=np.int64)
    lo = np.array(lo, dtype=np.float64, copy=True)
    hi = np.array(hi, dtype=np.float64, copy=True)
    active = np.arange(idx.shape[0])
    for _ in range(max_iter):
        mid = 0.5 * (lo[active] + hi[active])
        cnt = sturm_count_ldl_multi(dmat[:, active], lmat[:, active], mid)
        below = cnt <= idx[active]
        lo[active] = np.where(below, mid, lo[active])
        hi[active] = np.where(below, hi[active], mid)
        tol = rtol * np.maximum(np.abs(lo[active]), np.abs(hi[active])) \
            + 2 * _TINY
        keep = (hi[active] - lo[active]) > tol
        active = active[keep]
        if active.size == 0:
            break
    return 0.5 * (lo + hi)


def bisect_ldl(dfac: np.ndarray, lfac: np.ndarray,
               indices: np.ndarray,
               lo: np.ndarray, hi: np.ndarray,
               rtol: float = 4.0 * _EPS,
               max_iter: int = 128) -> np.ndarray:
    """Refine eigenvalues of ``LDLᵀ`` inside brackets to high relative
    accuracy (the per-representation refinement step of MRRR)."""
    idx = np.asarray(indices, dtype=np.int64)
    lo = np.array(lo, dtype=np.float64, copy=True)
    hi = np.array(hi, dtype=np.float64, copy=True)
    active = np.arange(idx.shape[0])
    for _ in range(max_iter):
        mid = 0.5 * (lo[active] + hi[active])
        cnt = sturm_count_ldl(dfac, lfac, mid)
        below = cnt <= idx[active]
        lo[active] = np.where(below, mid, lo[active])
        hi[active] = np.where(below, hi[active], mid)
        tol = rtol * np.maximum(np.abs(lo[active]), np.abs(hi[active])) \
            + 2 * _TINY
        keep = (hi[active] - lo[active]) > tol
        active = active[keep]
        if active.size == 0:
            break
    return 0.5 * (lo + hi)
