"""MRRR symmetric tridiagonal eigensolver (MR³-SMP equivalent)."""

from .bisect import (gershgorin, sturm_count, bisect_eigenvalues,
                     sturm_count_ldl, bisect_ldl)
from .ldl import LDL, ldl_factor, dstqds, dqds_progressive, twist_data
from .twisted import getvec, getvec_batch
from .solver import mrrr_eigh, MRRRResult, WorkRecord

__all__ = [
    "gershgorin", "sturm_count", "bisect_eigenvalues", "sturm_count_ldl",
    "bisect_ldl", "LDL", "ldl_factor", "dstqds", "dqds_progressive",
    "twist_data", "getvec", "getvec_batch", "mrrr_eigh", "MRRRResult",
    "WorkRecord",
]
