"""MRRR tridiagonal eigensolver (MR³-SMP equivalent, the paper's Fig. 8
comparison point).

Algorithm (Dhillon's MR³, as in LAPACK dstemr / MR³-SMP):

1. split T into unreduced blocks at negligible off-diagonals;
2. per block: initial eigenvalues by Sturm bisection, root RRR
   ``T − σ₀I = L D Lᵀ`` with σ₀ outside the spectrum;
3. walk the representation tree: eigenvalues with a large *relative* gap
   are singletons — refine to full relative accuracy and compute the
   eigenvector by twisted factorization; clusters are shifted close to
   the cluster (new RRR via dstqds) so the relative gaps inside open up,
   and recursed on;
4. pathological clusters (exact duplicates / depth cap / element growth)
   fall back to inverse iteration with modified Gram-Schmidt — the slow
   path that makes MRRR lose on matrices like Table III type 2, exactly
   as the paper reports.

Every piece of work is also recorded as a :class:`WorkRecord` so the
discrete-event machine can replay the (matrix-dependent) task tree of an
MR³-SMP-style dynamic scheduler — used by the Fig. 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..kernels.scaling import scale_tridiagonal
from ..runtime.task import TaskCost
from .bisect import bisect_ldl, bisect_ldl_multi, gershgorin
from .ldl import LDL, dstqds, ldl_factor
from .twisted import getvec, getvec_batch

__all__ = ["mrrr_eigh", "MRRRResult", "WorkRecord"]

_EPS = np.finfo(np.float64).eps
_TINY = np.finfo(np.float64).tiny


@dataclass
class WorkRecord:
    """One unit of MRRR work for the simulated task replay."""

    uid: int
    name: str             # Factor / RefineInit / Refine / Getvec / ClusterShift / ClusterBI
    cost: TaskCost
    parent: int           # uid of the prerequisite record (-1 = none)


@dataclass
class MRRRResult:
    lam: np.ndarray
    V: np.ndarray
    records: list[WorkRecord] = field(default_factory=list)
    n_clusters: int = 0
    n_fallbacks: int = 0
    n_reorth_groups: int = 0
    max_depth: int = 0


class _Recorder:
    def __init__(self) -> None:
        self.records: list[WorkRecord] = []

    def add(self, name: str, cost: TaskCost, parent: int = -1) -> int:
        uid = len(self.records)
        self.records.append(WorkRecord(uid, name, cost, parent))
        return uid


def _split_blocks(d: np.ndarray, e: np.ndarray) -> list[tuple[int, int]]:
    """Unreduced blocks: split where |e_i| is negligible (dlarra)."""
    n = d.shape[0]
    blocks = []
    lo = 0
    for i in range(n - 1):
        if abs(e[i]) <= _EPS * (abs(d[i]) + abs(d[i + 1])):
            blocks.append((lo, i + 1))
            lo = i + 1
    blocks.append((lo, n))
    return blocks


def _tridiag_solve_shifted(d: np.ndarray, e: np.ndarray, sigma: float,
                           b: np.ndarray) -> np.ndarray:
    """Solve (T − σI) x = b by LU with partial pivoting (dgtsv-style)."""
    n = d.shape[0]
    dl = e.copy() if n > 1 else np.empty(0)
    du = e.copy() if n > 1 else np.empty(0)
    dd = d - sigma
    du2 = np.zeros(max(0, n - 2))
    x = b.copy()
    dd = dd.copy()
    for i in range(n - 1):
        if abs(dd[i]) >= abs(dl[i]):
            piv = dd[i] if dd[i] != 0.0 else _TINY
            m = dl[i] / piv
            dd[i + 1] -= m * du[i]
            x[i + 1] -= m * x[i]
            dl[i] = 0.0  # marker: no swap
        else:
            m = dd[i] / dl[i]
            dd[i], dl[i] = dl[i], m
            du[i], dd[i + 1] = dd[i + 1], du[i] - m * dd[i + 1]
            if i < n - 2:
                du2[i] = du[i + 1]
                du[i + 1] = -m * du[i + 1]
            x[i], x[i + 1] = x[i + 1], x[i] - m * x[i + 1]
            dl[i] = 1.0  # marker: swapped
    # Back substitution (du2 holds the second superdiagonal fill-in).
    piv = dd[n - 1] if dd[n - 1] != 0.0 else _TINY
    x[n - 1] /= piv
    if n > 1:
        piv = dd[n - 2] if dd[n - 2] != 0.0 else _TINY
        x[n - 2] = (x[n - 2] - du[n - 2] * x[n - 1]) / piv
    for i in range(n - 3, -1, -1):
        piv = dd[i] if dd[i] != 0.0 else _TINY
        x[i] = (x[i] - du[i] * x[i + 1] - du2[i] * x[i + 2]) / piv
    return x


def _cluster_fallback(rep: LDL, lams_rep: np.ndarray,
                      V: np.ndarray, cols: np.ndarray) -> None:
    """Inverse iteration + MGS for a pathological cluster (BI path).

    Runs against the *representation* tridiagonal ``LDLᵀ`` with
    rep-relative eigenvalues: after the cluster shifts, ‖LDLᵀ‖ is of the
    order of the cluster's own scale, so inverse iteration retains the
    relative accuracy that plain BI on the original matrix would lose.
    """
    d, e = rep.to_tridiagonal()
    lams = lams_rep
    n = d.shape[0]
    scale = max(np.max(np.abs(d)), np.max(np.abs(e)) if e.size else 0.0,
                _TINY)
    rng = np.random.default_rng(len(cols) * 7919 + n)
    done: list[np.ndarray] = []
    for j, col in enumerate(cols):
        # Perturb duplicates so the shifted systems stay non-singular.
        sig = lams[j] + (j + 1) * 4.0 * _EPS * scale
        x = rng.normal(size=n)
        for _ in range(3):
            x = _tridiag_solve_shifted(d, e, sig, x)
            # Twice-is-enough reorthogonalization: after the solve the
            # component along earlier vectors dominates by ~1/ε, so a
            # single Gram-Schmidt sweep leaves O(ε/η) contamination.
            for _sweep in range(2):
                for q in done:
                    x -= np.dot(q, x) * q
            nrm = np.linalg.norm(x)
            if nrm == 0.0 or not np.isfinite(nrm):
                x = rng.normal(size=n)
                nrm = np.linalg.norm(x)
            x /= nrm
        done.append(x)
        V[:, col] = x


def _reorth_noise_groups(d: np.ndarray, e: np.ndarray, lam: np.ndarray,
                         V: np.ndarray, offset: int, rec: _Recorder,
                         result: MRRRResult) -> None:
    """Safety net: modified Gram-Schmidt inside groups of eigenvalues
    whose separations are below the noise level ``c·n·ε·‖T‖``.

    Eigenvalues that close are numerically multiple — any orthonormal
    basis of their joint eigenspace is correct, but vectors computed
    from *different* representations may lose mutual orthogonality.
    MGS preserves the span (hence the residual up to the group width)
    and restores orthogonality; the O(n·c²) cost per group is charged
    to the work records, reproducing MRRR's characteristic slowness on
    heavily clustered spectra (paper Fig. 8, types 1/2).
    """
    n = lam.shape[0]
    if n < 2:
        return
    nrm = max(float(np.max(np.abs(d))),
              float(np.max(np.abs(e))) if e.size else 0.0, _TINY)
    tol = 64.0 * _EPS * nrm
    order = np.argsort(lam, kind="stable")
    lam_sorted = lam[order]
    start = 0
    for i in range(1, n + 1):
        if i < n and lam_sorted[i] - lam_sorted[i - 1] <= tol:
            continue
        if i - start > 1:
            nb = d.shape[0]
            rows = slice(offset, offset + nb)
            cols = offset + order[start:i]
            # Skip columns never computed (subset runs leave them zero).
            computed = np.linalg.norm(V[rows, :][:, cols], axis=0) > 0.5
            cols = cols[computed]
            if cols.size < 2:
                start = i
                continue
            block = V[rows, :][:, cols]
            c = cols.size
            gram = block.T @ block - np.eye(c)
            if np.max(np.abs(gram)) > 1e-11:
                # Regenerate the whole group by inverse iteration,
                # orthogonalizing against accepted group members and
                # against neighbors within dstein's ortol radius.
                center = 0.5 * (lam_sorted[start] + lam_sorted[i - 1])
                near = np.where(np.abs(lam - center) <= 1e-3 * nrm)[0]
                near = near[~np.isin(near, order[start:i])]
                done: list[np.ndarray] = [V[rows, offset + q].copy()
                                          for q in near]
                rng = np.random.default_rng(int(cols[0]) * 31 + c)
                for j, col in enumerate(cols):
                    sig = float(lam_sorted[start + j]) \
                        + ((j % 8) + 1) * _EPS * nrm
                    x = rng.normal(size=nb)
                    for _ in range(3):
                        x = _tridiag_solve_shifted(d, e, sig, x)
                        for _sweep in range(2):
                            for q in done:
                                x -= np.dot(q, x) * q
                        nv = np.linalg.norm(x)
                        if nv == 0.0 or not np.isfinite(nv):
                            x = rng.normal(size=nb)
                            nv = np.linalg.norm(x)
                        x /= nv
                    done.append(x)
                    V[rows, col] = x
                rec.add("Reorth",
                        TaskCost(flops=(24.0 + 4.0 * len(done)) * nb * c))
                result.n_reorth_groups += 1
        start = i


def _process_block(d: np.ndarray, e: np.ndarray, V: np.ndarray,
                   lam_out: np.ndarray, offset: int, rec: _Recorder,
                   gaptol: float, maxdepth: int,
                   result: MRRRResult,
                   wanted: np.ndarray | None = None) -> None:
    n = d.shape[0]
    if n == 1:
        lam_out[offset] = d[0]
        V[offset, offset] = 1.0
        return
    if wanted is None:
        wanted = np.ones(n, dtype=bool)
    gl, gu = gershgorin(d, e)
    spdiam = max(gu - gl, _TINY)

    root_id = rec.add("Factor", TaskCost(flops=10.0 * n))

    # Root representation: definite shift just below the spectrum.
    sigma0 = gl - 1e-3 * spdiam
    rep0 = ldl_factor(d, e, sigma0)
    # Eigenvalues of the root representation to full *relative* accuracy
    # (classification into singletons/clusters and the duplicate test
    # are meaningless at any coarser precision).
    lam_rep = bisect_ldl(rep0.d, rep0.l, np.arange(n),
                         np.zeros(n),
                         np.full(n, (gu - sigma0) * (1.0 + 1e-6)),
                         rtol=4.0 * _EPS)
    # MR3-SMP parallelizes the initial bisection over eigenvalue chunks;
    # record it that way so the replayed schedule can too.
    chunk = 32
    rec_init = root_id
    for lo_c in range(0, n, chunk):
        m_c = min(chunk, n - lo_c)
        rec_init = rec.add("RefineInit",
                           TaskCost(flops=5.0 * 60 * n * m_c),
                           parent=root_id)

    Vb = V[offset:offset + n, :]

    # Work stack: (rep, λ's w.r.t. rep, global indices, lgap, rgap, depth, parent record)
    stack = [(rep0, lam_rep, np.arange(n), spdiam, spdiam, 0, rec_init)]
    while stack:
        rep, lam, idx, lgap0, rgap0, depth, parent = stack.pop()
        result.max_depth = max(result.max_depth, depth)
        m = lam.shape[0]
        # Separations between consecutive eigenvalues (absolute), with
        # the inherited boundary gaps at the ends.
        sep = np.empty(m + 1)
        sep[0] = lgap0
        sep[m] = rgap0
        if m > 1:
            sep[1:m] = np.maximum(lam[1:] - lam[:-1], 0.0)
        # Relative separation: a boundary splits two eigenvalues when the
        # gap is large relative to the magnitudes (w.r.t. this rep).
        mag = np.maximum(np.abs(lam), _EPS * spdiam)
        is_split = np.ones(m + 1, dtype=bool)
        if m > 1:
            is_split[1:m] = sep[1:m] >= gaptol * np.maximum(mag[:-1], mag[1:])
        # Group into maximal runs.
        a = 0
        groups = []
        for b in range(1, m + 1):
            if is_split[b]:
                groups.append((a, b))
                a = b
        singles: list[tuple[int, float, float, float]] = []
        jobs: list[tuple] = []
        for (a, b) in groups:
            # Absolute gaps to the neighbors outside the group.
            lg = float(sep[a])
            rg = float(sep[b])
            if b - a == 1:
                if wanted[idx[a]]:
                    singles.append((a, float(lam[a]), lg, rg))
                else:
                    # Subset computation: the eigenvalue is already
                    # refined to full relative accuracy w.r.t. this
                    # representation — record it and skip the vector.
                    lam_out[offset + idx[a]] = lam[a] + rep.sigma
            elif not np.any(wanted[idx[a:b]]):
                # Entire cluster unwanted: no shift, no recursion —
                # this is MRRR's Θ(nk) subset advantage (paper Sec. I).
                lam_out[offset + idx[a:b]] = lam[a:b] + rep.sigma
            else:
                job = _prepare_cluster(rep, lam[a:b], idx[a:b], lg, rg,
                                       depth, Vb, lam_out, offset, rec,
                                       parent, spdiam, maxdepth, result)
                if job is not None:
                    jobs.append(job)
        if jobs:
            # Refine the eigenvalues of ALL sibling clusters in one
            # multi-representation bisection (each cluster has its own
            # shifted RRR; columns are independent).
            ncols = sum(j[2].shape[0] for j in jobs)
            nn = rep.n
            dmat = np.empty((nn, ncols))
            lmat = np.empty((max(0, nn - 1), ncols))
            loa = np.empty(ncols)
            hia = np.empty(ncols)
            idxs = np.empty(ncols, dtype=np.int64)
            pos = 0
            for (new_rep, shift, gidx, lo_j, hi_j, li_j, lg, rg, rid) in jobs:
                c = gidx.shape[0]
                dmat[:, pos:pos + c] = new_rep.d[:, None]
                lmat[:, pos:pos + c] = new_rep.l[:, None]
                loa[pos:pos + c] = lo_j
                hia[pos:pos + c] = hi_j
                idxs[pos:pos + c] = li_j
                pos += c
            refined_all = bisect_ldl_multi(dmat, lmat, idxs, loa, hia)
            pos = 0
            for (new_rep, shift, gidx, lo_j, hi_j, li_j, lg, rg, rid) in jobs:
                c = gidx.shape[0]
                refined = refined_all[pos:pos + c]
                pos += c
                stack.append((new_rep, refined, gidx, lg, rg,
                              depth + 1, rid))
        if singles:
            _do_singletons(rep, singles, idx, Vb, lam_out, offset, rec,
                           parent, spdiam)


def _do_singletons(rep: LDL, singles: list[tuple[int, float, float, float]],
                   idx: np.ndarray, Vb: np.ndarray, lam_out: np.ndarray,
                   offset: int, rec: _Recorder, parent: int,
                   spdiam: float) -> None:
    """Refine + twisted-factorization vectors for all singletons of an
    item, vectorized over the whole batch."""
    from .bisect import sturm_count_ldl
    n = rep.n
    m = len(singles)
    pos = np.array([s[0] for s in singles])
    lams = np.array([s[1] for s in singles])
    lgaps = np.array([s[2] for s in singles])
    rgaps = np.array([s[3] for s in singles])
    gaps = np.maximum(np.minimum(lgaps, rgaps),
                      4.0 * _EPS * np.maximum(np.abs(lams), spdiam))
    # Final precision comes from the vectorized Rayleigh-quotient loop
    # inside getvec_batch (replaces a last bisection refinement).
    Z, lam_fin, _resid = getvec_batch(rep, lams, gaps)
    cols = offset + idx[pos]
    Vb[:, cols] = Z
    lam_out[cols] = lam_fin + rep.sigma
    for _ in range(m):
        rec.add("Getvec", TaskCost(flops=42.0 * n + 5.0 * 30 * n),
                parent=parent)


def _prepare_cluster(rep: LDL, lam: np.ndarray,
                     idx: np.ndarray, lgap: float, rgap: float, depth: int,
                     Vb: np.ndarray, lam_out: np.ndarray, offset: int,
                     rec: _Recorder, parent: int, spdiam: float,
                     maxdepth: int, result: MRRRResult):
    """Handle one cluster: either resolve it by the inverse-iteration
    fallback (returns None) or build its shifted representation and
    return a refinement job ``(new_rep, shift, idx, lo, hi, local_idx,
    lgap, rgap, record_id)`` for the caller's batched bisection."""
    n = rep.n
    c = lam.shape[0]
    width = float(lam[-1] - lam[0])
    result.n_clusters += 1
    # A cluster is a numerically multiple eigenvalue when its width is a
    # few ulps of either the representation-relative value or of the
    # eigenvalue's magnitude in the ORIGINAL matrix (differences at that
    # level are rounding noise and must not be split across
    # representations — any orthonormal basis of the eigenspace is
    # correct, so use the inverse-iteration fallback).
    lam_abs = max(abs(lam[0] + rep.sigma), abs(lam[-1] + rep.sigma))
    tiny_width = (width <= 8.0 * _EPS * max(abs(lam[0]), abs(lam[-1]))
                  or width <= 32.0 * _EPS * lam_abs)
    if depth >= maxdepth or tiny_width:
        # Pathological cluster: inverse-iteration fallback (the expensive
        # path; cost grows with cluster size squared).
        result.n_fallbacks += 1
        _cluster_fallback(rep, lam, Vb, offset + idx)
        lam_out[offset + idx] = lam + rep.sigma
        rec.add("ClusterBI", TaskCost(flops=8.0 * n * c + 2.0 * n * c * c),
                parent=parent)
        return None
    # Shift just outside the cluster on the side with the larger gap
    # (dlarrf), then refine the cluster eigenvalues w.r.t. the new rep.
    candidates = []
    delta = max(width * 0.25, 2.0 * _EPS * max(abs(lam[0]), abs(lam[-1])))
    if lgap >= rgap:
        candidates = [lam[0] - delta, lam[-1] + delta,
                      lam[0] - 4 * delta, lam[-1] + 4 * delta]
    else:
        candidates = [lam[-1] + delta, lam[0] - delta,
                      lam[-1] + 4 * delta, lam[0] - 4 * delta]
    new_rep = None
    for sig in candidates:
        cand, _ = dstqds(rep, sig)
        if np.all(np.isfinite(cand.d)) and np.all(np.isfinite(cand.l)):
            # Element growth: reject only absurd representations (the
            # twisted factorization tolerates large but finite growth).
            growth = np.max(np.abs(cand.d))
            if growth <= spdiam / _EPS:
                new_rep = cand
                shift = sig
                break
    if new_rep is None:
        result.n_fallbacks += 1
        _cluster_fallback(rep, lam, Vb, offset + idx)
        lam_out[offset + idx] = lam + rep.sigma
        rec.add("ClusterBI", TaskCost(flops=8.0 * n * c + 2.0 * n * c * c),
                parent=parent)
        return None
    # Brackets around the whole cluster in the new representation's
    # coordinates; full relative accuracy is obtained by the caller's
    # batched multi-representation bisection.
    from .bisect import sturm_count_ldl
    lo_edge = lam[0] - shift - 0.5 * lgap
    hi_edge = lam[-1] - shift + 0.5 * rgap
    base = int(sturm_count_ldl(new_rep.d, new_rep.l,
                               np.array([lo_edge]))[0])
    local_idx = base + np.arange(c)
    # The dstqds factorization is serial, but refining the cluster's c
    # eigenvalues against the new representation parallelizes over
    # eigenvalue chunks (as in MR3-SMP) — record it that way.
    shift_id = rec.add("ClusterShift", TaskCost(flops=10.0 * n),
                       parent=parent)
    rid = shift_id
    for lo_c in range(0, c, 32):
        m_c = min(32, c - lo_c)
        rid = rec.add("Refine", TaskCost(flops=5.0 * 50 * n * m_c),
                      parent=shift_id)
    # Boundary gaps are absolute distances, invariant under the shift.
    return (new_rep, shift, idx, np.full(c, lo_edge), np.full(c, hi_edge),
            local_idx, lgap, rgap, rid)


def mrrr_eigh(d: np.ndarray, e: np.ndarray, *, gaptol: float = 1e-3,
              maxdepth: int = 3,
              subset: np.ndarray | None = None,
              full_result: bool = False):
    """All (or a subset of) eigenpairs of the tridiagonal (d, e) by MRRR.

    ``subset`` selects eigenpair indices (0-based ranks in ascending
    order).  Subset computation is MRRR's traditional strength (paper
    Sec. I: complexity Θ(nk) for k eigenpairs): clusters containing no
    wanted eigenvalue are never shifted or recursed on, and unwanted
    singleton vectors are never formed.  Eigenvalues are computed for
    the whole spectrum either way (they are needed for the gap
    classification); ``lam``/``V`` are returned for ``subset`` only.

    Returns ``(lam, V)`` ascending, or an :class:`MRRRResult` with the
    work-record task tree when ``full_result=True``.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0:
        raise ValueError("empty matrix")
    if e.shape[0] != max(0, n - 1):
        raise ValueError("e must have length n-1")
    if subset is not None:
        subset = np.unique(np.asarray(subset, dtype=np.intp))
        if subset.size == 0 or subset[0] < 0 or subset[-1] >= n:
            raise ValueError("subset indices out of range")
    ds, es, scale = scale_tridiagonal(d, e)
    result = MRRRResult(lam=np.zeros(n), V=np.zeros((n, n), order="F"))
    rec = _Recorder()
    wanted_mask = None
    if subset is not None:
        # Map global eigenvalue ranks to per-block positions.  With one
        # unreduced block the ranks ARE the block positions; with
        # several, the merged ordering is resolved by a cheap bisection
        # pass per block before marking the wanted entries.
        blocks = _split_blocks(ds, es)
        wanted_mask = np.zeros(n, dtype=bool)
        if len(blocks) == 1:
            wanted_mask[subset] = True
        else:
            from .bisect import bisect_eigenvalues
            all_lam = np.empty(n)
            for (lo, hi) in blocks:
                eb = es[lo:hi - 1] if hi - lo > 1 else np.empty(0)
                all_lam[lo:hi] = bisect_eigenvalues(ds[lo:hi], eb,
                                                    rtol=1e-10)
            order0 = np.argsort(all_lam, kind="stable")
            wanted_mask[order0[subset]] = True
    for (lo, hi) in _split_blocks(ds, es):
        eb = es[lo:hi - 1] if hi - lo > 1 else np.empty(0)
        _process_block(ds[lo:hi], eb, result.V, result.lam, lo, rec,
                       gaptol, maxdepth, result,
                       wanted=None if wanted_mask is None
                       else wanted_mask[lo:hi])
        _reorth_noise_groups(ds[lo:hi], eb, result.lam[lo:hi], result.V,
                             lo, rec, result)
    scale.unscale_eigenvalues(result.lam)
    order = np.argsort(result.lam, kind="stable")
    result.lam = result.lam[order]
    result.V = result.V[:, order]
    if subset is not None:
        result.lam = result.lam[subset]
        result.V = result.V[:, subset]
    result.records = rec.records
    if full_result:
        return result
    return result.lam, result.V
