"""Eigenvector computation by twisted factorization (dlar1v equivalent).

Given an RRR ``LDLᵀ`` and an accurate eigenvalue λ *of that
representation*, the eigenvector solves ``N_r Δ_r N_rᵀ z = γ_r e_r``
where r is the twist index with minimal |γ_r|:

    z_r = 1
    z_i = −L⁺_i z_{i+1}      (i = r−1 … 0,   stationary part)
    z_{i+1} = −U⁻_i z_i      (i = r … n−2,  progressive part)

A Rayleigh-quotient correction λ ← λ + γ_r/‖z‖² sharpens the eigenvalue
until the residual |γ_r|/‖z‖ is negligible against the local gap.
"""

from __future__ import annotations

import numpy as np

from .ldl import LDL, twist_data

__all__ = ["getvec", "getvec_batch"]

_EPS = np.finfo(np.float64).eps


def getvec(rep: LDL, lam: float, gap: float,
           max_rqi: int = 6) -> tuple[np.ndarray, float, int]:
    """Eigenvector of ``rep`` for eigenvalue ``lam`` (relative to rep).

    Parameters
    ----------
    rep : the relatively robust representation.
    lam : eigenvalue of ``LDLᵀ`` (NOT including rep.sigma).
    gap : distance to the nearest other eigenvalue of the rep, used in
        the residual acceptance test.

    Returns
    -------
    (z, lam_refined, rqi_steps): normalized eigenvector, improved
    eigenvalue, and the number of Rayleigh-quotient steps taken.
    """
    n = rep.n
    if n == 1:
        return np.ones(1), float(rep.d[0]), 0
    lam = float(lam)
    best = None
    steps = 0
    for it in range(max_rqi):
        plus, dminus, uminus, gamma = twist_data(rep, lam)
        r = int(np.argmin(np.abs(gamma)))
        z = np.zeros(n)
        z[r] = 1.0
        # Stationary recurrence upward.
        for i in range(r - 1, -1, -1):
            z[i] = -plus.l[i] * z[i + 1]
            if z[i] == 0.0 and z[i + 1] == 0.0:
                break
        # Progressive recurrence downward.
        for i in range(r, n - 1):
            z[i + 1] = -uminus[i] * z[i]
        nrm = float(np.linalg.norm(z))
        if not np.isfinite(nrm) or nrm == 0.0:
            # Degenerate recurrence: bail out with the best so far.
            break
        resid = abs(gamma[r]) / nrm
        cand = (resid, z / nrm, lam)
        if best is None or cand[0] < best[0]:
            best = cand
        # Accept when the residual is tiny against the gap (the MRRR
        # criterion ‖r‖ = O(nε·gap) guarantees orthogonality), floored
        # at the achievable relative accuracy.
        if resid <= max(32.0 * n * _EPS * gap, 8.0 * _EPS * abs(lam)):
            break
        # Rayleigh-quotient step.
        delta = gamma[r] / (nrm * nrm)
        if not np.isfinite(delta) or abs(delta) > max(abs(lam), gap):
            break
        lam = lam + delta
        steps += 1
    resid, z, lam_out = best
    return z, lam_out, steps


def _dstqds_batch(rep: LDL, lams: np.ndarray):
    """Stationary qds transform vectorized over shifts (rows loop, SIMD
    over the m eigenvalues)."""
    d, l = rep.d, rep.l
    n = d.shape[0]
    m = lams.shape[0]
    tiny = np.finfo(np.float64).tiny
    lplus = np.empty((max(0, n - 1), m))
    svec = np.empty((n, m))
    s = -lams.copy()
    for i in range(n - 1):
        svec[i] = s
        dplus = d[i] + s
        dplus = np.where(dplus == 0.0, tiny, dplus)
        lplus[i] = (d[i] * l[i]) / dplus
        s = lplus[i] * l[i] * s - lams
    svec[n - 1] = s
    return lplus, svec


def _dqds_batch(rep: LDL, lams: np.ndarray):
    """Progressive qds transform vectorized over shifts."""
    d, l = rep.d, rep.l
    n = d.shape[0]
    m = lams.shape[0]
    tiny = np.finfo(np.float64).tiny
    uminus = np.empty((max(0, n - 1), m))
    pvec = np.empty((n, m))
    p = d[n - 1] - lams
    pvec[n - 1] = p
    for i in range(n - 2, -1, -1):
        dminus = d[i] * l[i] * l[i] + p
        dminus = np.where(dminus == 0.0, tiny, dminus)
        t = d[i] / dminus
        uminus[i] = l[i] * t
        p = p * t - lams
        pvec[i] = p
    return uminus, pvec


def _zvec_batch(lplus: np.ndarray, uminus: np.ndarray, r: np.ndarray,
                n: int, m: int) -> np.ndarray:
    """Twisted eigenvector recurrences, SIMD across columns via masking."""
    z = np.zeros((n, m))
    z[r, np.arange(m)] = 1.0
    for i in range(n - 2, -1, -1):       # stationary part, above the twist
        mask = i < r
        z[i] = np.where(mask, -lplus[i] * z[i + 1], z[i])
    for i in range(n - 1):               # progressive part, below the twist
        mask = i >= r
        z[i + 1] = np.where(mask, -uminus[i] * z[i], z[i + 1])
    return z


def getvec_batch(rep: LDL, lams: np.ndarray, gaps: np.ndarray,
                 max_rqi: int = 8) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Twisted-factorization eigenvectors for a batch of eigenvalues.

    One O(n) pass per recurrence, SIMD across the m eigenvalues (the
    per-λ twist indices are handled by masking).  A vectorized
    Rayleigh-quotient loop sharpens every eigenvalue until its residual
    |γ_r|/‖z‖ passes the MRRR acceptance test — this replaces a
    final-precision bisection and typically converges in 1–3 steps from
    moderately accurate inputs.

    Returns ``(Z, lam_refined, resid)`` with normalized columns.
    """
    n = rep.n
    lams = np.array(lams, dtype=np.float64, copy=True)
    gaps = np.asarray(gaps, dtype=np.float64)
    m = lams.shape[0]
    if n == 1:
        return np.ones((1, m)), rep.d[:1].repeat(m), np.zeros(m)
    cols = np.arange(m)
    best_z = np.zeros((n, m))
    best_resid = np.full(m, np.inf)
    best_lam = lams.copy()
    active = np.ones(m, dtype=bool)
    # MRRR acceptance: residual small against the GAP (orthogonality is
    # resid/gap); floored at the relative accuracy achievable w.r.t. the
    # representation's own scale.
    tol = np.maximum(32.0 * n * _EPS * gaps, 8.0 * _EPS * np.abs(lams))
    for it in range(max_rqi):
        lplus, svec = _dstqds_batch(rep, lams)
        uminus, pvec = _dqds_batch(rep, lams)
        gamma = svec + pvec + lams[None, :]
        r = np.argmin(np.abs(gamma), axis=0)
        z = _zvec_batch(lplus, uminus, r, n, m)
        nrm2 = np.sum(z * z, axis=0)
        nrm = np.sqrt(nrm2)
        ok = np.isfinite(nrm) & (nrm > 0.0)
        resid = np.where(ok, np.abs(gamma[r, cols]) / np.where(ok, nrm, 1.0),
                         np.inf)
        improved = active & ok & (resid < best_resid)
        best_resid = np.where(improved, resid, best_resid)
        best_lam = np.where(improved, lams, best_lam)
        best_z[:, improved] = z[:, improved] / nrm[improved][None, :]
        active &= resid > tol
        if not np.any(active):
            break
        # Rayleigh-quotient step; reject wild jumps (would leave the
        # eigenvalue's own interval).
        delta = gamma[r, cols] / np.where(ok, nrm2, 1.0)
        wild = (~np.isfinite(delta)) | (np.abs(delta) >
                                        np.maximum(np.abs(lams), gaps))
        active &= ~wild
        lams = np.where(active, lams + delta, lams)
    # Scalar rescue for columns that never met the tolerance.
    for j in np.where(best_resid > tol)[0]:
        zj, lam_j, _ = getvec(rep, float(best_lam[j]), float(gaps[j]))
        best_z[:, j] = zj
        best_lam[j] = lam_j
        best_resid[j] = 0.0
    return best_z, best_lam, best_resid
