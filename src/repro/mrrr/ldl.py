"""LDLᵀ representations and differential qds transforms (MRRR core).

A *relatively robust representation* (RRR) stores ``T − σI = L D Lᵀ``
through the pivots ``D`` and multipliers ``L``; small relative changes
in (D, L) cause small relative changes in the eigenvalues the RRR is
responsible for.  New representations are derived by the differential
stationary (dstqds) and progressive (dqds) transforms, which also yield
the twisted factorization data used for eigenvector computation
(Dhillon 1997; LAPACK dlarrf/dlar1v).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LDL", "ldl_factor", "dstqds", "dqds_progressive", "twist_data"]

_TINY = np.finfo(np.float64).tiny


@dataclass
class LDL:
    """Representation ``L D Lᵀ = T − sigma·I`` (sigma accumulated from
    the original matrix).  ``d`` are the n pivots, ``l`` the n−1
    multipliers."""

    d: np.ndarray
    l: np.ndarray
    sigma: float

    @property
    def n(self) -> int:
        return self.d.shape[0]

    def element_growth(self) -> float:
        """max|D| relative to the representation scale (quality check)."""
        scale = float(np.max(np.abs(self.d))) or 1.0
        off = float(np.max(np.abs(self.l * self.d[:-1]))) if self.l.size else 0.0
        return max(scale, off) / max(_TINY, float(np.min(np.abs(self.d))))

    def to_tridiagonal(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize (d, e) of LDLᵀ (tests/diagnostics)."""
        n = self.n
        d = np.empty(n)
        e = np.empty(max(0, n - 1))
        d[0] = self.d[0]
        for i in range(n - 1):
            e[i] = self.l[i] * self.d[i]
            d[i + 1] = self.d[i + 1] + self.l[i] * self.l[i] * self.d[i]
        return d, e


def ldl_factor(d: np.ndarray, e: np.ndarray, sigma: float) -> LDL:
    """Factor ``T − σI = L D Lᵀ`` for tridiagonal (d, e)."""
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    dd = np.empty(n)
    ll = np.empty(max(0, n - 1))
    dd[0] = d[0] - sigma
    for i in range(n - 1):
        piv = dd[i] if dd[i] != 0.0 else _TINY
        ll[i] = e[i] / piv
        dd[i + 1] = (d[i + 1] - sigma) - ll[i] * e[i]
    return LDL(dd, ll, sigma)


def dstqds(rep: LDL, sigma: float) -> tuple[LDL, np.ndarray]:
    """Differential stationary qds: ``L⁺D⁺L⁺ᵀ = LDLᵀ − σI``.

    Returns the new representation (with accumulated shift) and the
    auxiliary ``s`` vector (``s[i]`` enters the twisted factorization).
    """
    d, l = rep.d, rep.l
    n = d.shape[0]
    dplus = np.empty(n)
    lplus = np.empty(max(0, n - 1))
    svec = np.empty(n)
    s = -sigma
    for i in range(n - 1):
        svec[i] = s
        dplus[i] = d[i] + s
        piv = dplus[i] if dplus[i] != 0.0 else _TINY
        lplus[i] = (d[i] * l[i]) / piv
        s = lplus[i] * l[i] * s - sigma
    svec[n - 1] = s
    dplus[n - 1] = d[n - 1] + s
    return LDL(dplus, lplus, rep.sigma + sigma), svec


def dqds_progressive(rep: LDL, sigma: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Differential progressive qds: ``U D⁻ Uᵀ = LDLᵀ − σI`` from the
    bottom up.  Returns (dminus, uminus, pvec); ``pvec[i]`` enters the
    twisted factorization."""
    d, l = rep.d, rep.l
    n = d.shape[0]
    dminus = np.empty(n)
    uminus = np.empty(max(0, n - 1))
    pvec = np.empty(n)
    p = d[n - 1] - sigma
    pvec[n - 1] = p
    for i in range(n - 2, -1, -1):
        dminus[i + 1] = d[i] * l[i] * l[i] + p
        piv = dminus[i + 1] if dminus[i + 1] != 0.0 else _TINY
        t = d[i] / piv
        uminus[i] = l[i] * t
        p = p * t - sigma
        pvec[i] = p
    dminus[0] = p
    return dminus, uminus, pvec


def twist_data(rep: LDL, lam: float):
    """Both qds transforms at λ plus the twist residuals γ.

    ``γ_r = s_r + p_r + λ`` is the (r, r) pivot of the twisted
    factorization ``N_r Δ_r N_rᵀ = LDLᵀ − λI`` (checks: r = 1 gives the
    progressive pivot p_1, r = n the stationary pivot d_n + s_n); the
    eigenvector solve picks the r minimizing |γ_r|.
    """
    plus, svec = dstqds(rep, lam)
    dminus, uminus, pvec = dqds_progressive(rep, lam)
    gamma = svec + pvec + lam
    return plus, dminus, uminus, gamma
