"""Pytest bootstrap: make `repro` importable from the source tree.

The environment used for this reproduction has no network and no `wheel`
package, so `pip install -e .` (PEP 660) cannot build an editable wheel.
Prepending `src/` here is the offline equivalent; with a normal editable
install this file is a harmless no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
