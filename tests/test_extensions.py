"""Tests for the extension features: subset computation, Chrome-trace
export, workspace accounting."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import dc_eigh
from repro.analysis import (dc_workspace_bytes, mrrr_workspace_bytes,
                            workspace_report)
from repro.runtime import Machine, SimulatedMachine


# ---------------------------------------------------------------------------
# subset computation (paper Sec. I / [6])
# ---------------------------------------------------------------------------

def _setup(n=250, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n), rng.normal(size=n - 1)


def assert_matches_full(d, e, subset):
    lam_full, V_full = dc_eigh(d, e)
    lam_s, V_s = dc_eigh(d, e, subset=subset)
    np.testing.assert_array_equal(lam_s, lam_full[subset])
    assert V_s.shape == (len(d), len(subset))
    # Same vectors and sign conventions (same computation); the
    # restricted GEMM may use a strided BLAS path, so allow last-ulp
    # differences.
    np.testing.assert_allclose(V_s, V_full[:, subset], atol=5e-14)


def test_subset_basic():
    d, e = _setup()
    assert_matches_full(d, e, np.array([0, 5, 100, 150, 249]))


def test_subset_extremes():
    d, e = _setup(seed=1)
    assert_matches_full(d, e, np.array([0]))
    assert_matches_full(d, e, np.array([249]))
    assert_matches_full(d, e, np.arange(250))   # full subset == full


def test_subset_contiguous_interior_window():
    d, e = _setup(seed=2)
    assert_matches_full(d, e, np.arange(80, 120))


def test_subset_residual_and_orthogonality():
    d, e = _setup(seed=3)
    sub = np.arange(0, 250, 7)
    lam, V = dc_eigh(d, e, subset=sub)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12
    assert np.max(np.abs(V.T @ V - np.eye(len(sub)))) < 1e-12


def test_subset_reduces_simulated_update_cost():
    d, e = _setup(seed=4)
    full = dc_eigh(d, e, backend="simulated", full_result=True)
    small = dc_eigh(d, e, backend="simulated", subset=np.arange(5),
                    full_result=True)
    t_full = full.trace.kernel_times()["UpdateVect"]
    t_small = small.trace.kernel_times()["UpdateVect"]
    # Only the last merge is restricted, which holds ~75% of the work.
    assert t_small < 0.8 * t_full


def test_subset_with_high_deflation():
    n = 200
    d = np.ones(n)
    e = np.full(n - 1, 1e-14)
    sub = np.array([0, n - 1])
    lam, V = dc_eigh(d, e, subset=sub)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12


def test_subset_duplicates_and_unsorted_are_normalized():
    d, e = _setup(seed=5)
    lam1, V1 = dc_eigh(d, e, subset=[10, 3, 10, 7])
    lam2, V2 = dc_eigh(d, e, subset=[3, 7, 10])
    np.testing.assert_array_equal(lam1, lam2)


def test_subset_out_of_range():
    d, e = _setup()
    with pytest.raises(ValueError):
        dc_eigh(d, e, subset=[250])
    with pytest.raises(ValueError):
        dc_eigh(d, e, subset=[-1])


def test_subset_empty():
    # Empty subset is legal: all eigenvalues, no eigenvectors.
    d, e = _setup()
    lam, V = dc_eigh(d, e, subset=[])
    assert lam.shape == (0,)
    assert V.shape == (d.shape[0], 0)


@settings(max_examples=10, deadline=None)
@given(st.integers(10, 80), st.integers(0, 2 ** 31 - 1),
       st.data())
def test_property_subset_equals_full_slice(n, seed, data):
    rng = np.random.default_rng(seed)
    d = rng.uniform(-5, 5, size=n)
    e = rng.uniform(-5, 5, size=n - 1)
    k = data.draw(st.integers(1, n))
    subset = np.sort(rng.choice(n, size=k, replace=False))
    lam_full, V_full = dc_eigh(d, e)
    lam_s, V_s = dc_eigh(d, e, subset=subset)
    np.testing.assert_array_equal(lam_s, lam_full[subset])
    np.testing.assert_allclose(V_s, V_full[:, subset], atol=5e-14)


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

def test_chrome_trace_roundtrips_as_json():
    d, e = _setup(100)
    res = dc_eigh(d, e, backend="simulated", full_result=True)
    events = res.trace.to_chrome_trace()
    blob = json.dumps(events)
    parsed = json.loads(blob)
    # Metadata (process/thread names) leads, one X event per task follows.
    assert parsed[0]["ph"] == "M"
    tasks = [ev for ev in parsed if ev["ph"] == "X"]
    assert len(tasks) == len(res.trace.events)
    assert {e["tid"] for e in parsed} <= set(range(16))
    # Durations positive, timestamps sorted.
    assert all(ev["dur"] > 0 for ev in tasks)
    ts = [ev["ts"] for ev in tasks]
    assert ts == sorted(ts)


# ---------------------------------------------------------------------------
# workspace accounting
# ---------------------------------------------------------------------------

def test_workspace_scaling():
    assert dc_workspace_bytes(2000) > dc_workspace_bytes(1000) * 3.5
    assert mrrr_workspace_bytes(2000) == 2 * mrrr_workspace_bytes(1000)
    # The paper's point: D&C needs Θ(n²) extra, MRRR Θ(n).
    assert dc_workspace_bytes(4000) / mrrr_workspace_bytes(4000) > 100


def test_workspace_report_text():
    rep = workspace_report(1000)
    assert "D&C workspace" in rep and "MRRR" in rep and "MB" in rep
