"""End-to-end correctness of the task-flow D&C solver (repro.core.solver)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import dc_eigh
from repro.core import DCOptions, eigh


def tridiag(d, e):
    T = np.diag(np.asarray(d, dtype=float))
    e = np.asarray(e, dtype=float)
    if e.size:
        T += np.diag(e, 1) + np.diag(e, -1)
    return T


def check(d, e, lam, V, tol=2e-13):
    n = len(d)
    T = tridiag(d, e)
    scale = max(1.0, np.max(np.abs(T)))
    assert np.all(np.diff(lam) >= -1e-300)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < tol * n
    assert np.max(np.abs(T @ V - V * lam[None, :])) < tol * n * scale
    lam_ref = np.linalg.eigvalsh(T)
    np.testing.assert_allclose(lam, lam_ref, atol=tol * n * scale)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 64, 65, 130, 400])
def test_random_matrices(n):
    rng = np.random.default_rng(n)
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam, V = dc_eigh(d, e)
    check(d, e, lam, V)


def test_toeplitz_121_known_spectrum():
    n = 200
    d = 2.0 * np.ones(n)
    e = np.ones(n - 1)
    lam, V = dc_eigh(d, e)
    ref = 2.0 - 2.0 * np.cos(np.pi * np.arange(1, n + 1) / (n + 1))
    np.testing.assert_allclose(lam, np.sort(ref), atol=1e-12)
    check(d, e, lam, V)


def test_wilkinson_clustered_pairs():
    m = 60  # W121+: eigenvalue pairs agree to many digits
    d = np.abs(np.arange(-m, m + 1)).astype(float)
    e = np.ones(2 * m)
    lam, V = dc_eigh(d, e)
    check(d, e, lam, V)


def test_identical_diagonal_full_deflation():
    # All-equal diagonal with tiny couplings: massive deflation path.
    n = 150
    d = np.ones(n)
    e = np.full(n - 1, 1e-14)
    lam, V = dc_eigh(d, e, full_result=True).lam, None
    res = dc_eigh(d, e, full_result=True)
    check(d, e, res.lam, res.V)
    assert res.total_deflation > 0.9


def test_zero_offdiagonals():
    rng = np.random.default_rng(3)
    n = 100
    d = rng.normal(size=n)
    e = np.zeros(n - 1)
    lam, V = dc_eigh(d, e)
    check(d, e, lam, V)
    np.testing.assert_allclose(lam, np.sort(d), atol=1e-14)


def test_scaling_extreme_magnitudes():
    rng = np.random.default_rng(4)
    n = 80
    d = rng.normal(size=n) * 1e301
    e = rng.normal(size=n - 1) * 1e301
    lam, V = dc_eigh(d, e)
    lam_ref = np.linalg.eigvalsh(tridiag(d / 1e301, e / 1e301)) * 1e301
    np.testing.assert_allclose(lam, lam_ref, rtol=1e-11)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-12


def test_backends_bitwise_identical():
    rng = np.random.default_rng(5)
    n = 160
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam_seq, V_seq = dc_eigh(d, e, backend="sequential")
    lam_thr, V_thr = dc_eigh(d, e, backend="threads", n_workers=4)
    lam_sim, V_sim = dc_eigh(d, e, backend="simulated")
    np.testing.assert_array_equal(lam_seq, lam_thr)
    np.testing.assert_array_equal(lam_seq, lam_sim)
    np.testing.assert_array_equal(V_seq, V_thr)
    np.testing.assert_array_equal(V_seq, V_sim)


@pytest.mark.parametrize("variant", [
    dict(extra_workspace=False),
    dict(level_barrier=True),
    dict(fork_join=True, level_barrier=True),
    dict(minpart=16, nb=8),
    dict(minpart=200),
    dict(nb=1),
])
def test_scheduling_variants_do_not_change_numbers(variant):
    rng = np.random.default_rng(6)
    n = 120
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    ref, _ = dc_eigh(d, e)
    lam, V = dc_eigh(d, e, options=DCOptions(**variant))
    check(d, e, lam, V)
    # Same minpart => identical tree => bit-identical eigenvalues.
    if "minpart" not in variant:
        np.testing.assert_array_equal(lam, ref)


def test_full_result_diagnostics():
    rng = np.random.default_rng(7)
    n = 200
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    res = dc_eigh(d, e, backend="simulated", full_result=True)
    assert res.makespan > 0
    assert res.graph.n_tasks == len(res.trace.events)
    assert 0.0 <= res.total_deflation <= 1.0
    assert len(res.deflation_ratios()) == res.info.tree.count_leaves() - 1
    kernels = set(res.trace.kernel_counts())
    for expected in ("STEDC", "LAED4", "PermuteV", "UpdateVect",
                     "Compute_deflation", "ComputeLocalW", "ReduceW",
                     "ComputeVect", "CopyBackDeflated", "LASET",
                     "SortEigenvectors"):
        assert expected in kernels


def test_dense_eigh_pipeline():
    rng = np.random.default_rng(8)
    n = 90
    A = rng.normal(size=(n, n))
    A = 0.5 * (A + A.T)
    lam, V = eigh(A)
    assert np.max(np.abs(A @ V - V * lam[None, :])) < 1e-11 * n
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-12 * n
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(A), atol=1e-11 * n)


def test_input_arrays_not_mutated():
    rng = np.random.default_rng(9)
    d = rng.normal(size=50)
    e = rng.normal(size=49)
    d0, e0 = d.copy(), e.copy()
    dc_eigh(d, e)
    np.testing.assert_array_equal(d, d0)
    np.testing.assert_array_equal(e, e0)


def test_bad_inputs():
    with pytest.raises(ValueError):
        dc_eigh(np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        dc_eigh(np.ones(4), np.ones(4))


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 90), st.integers(0, 2 ** 31 - 1))
def test_property_dc_solves_random_tridiagonals(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.uniform(-10, 10, size=n)
    e = rng.uniform(-10, 10, size=n - 1)
    lam, V = dc_eigh(d, e, options=DCOptions(minpart=16))
    check(d, e, lam, V)
    # Trace invariant.
    assert np.sum(lam) == pytest.approx(np.sum(d), abs=1e-9 * n * 10)
