"""Tests for scaling, Givens, stabilization and Householder kernels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (lanst, scale_tridiagonal, lartg, rot, lapy2,
                           solve_secular, local_w_product, reduce_w,
                           eigenvector_columns, tridiagonalize, apply_q)


# ---------------------------------------------------------------------------
# scaling
# ---------------------------------------------------------------------------

def test_lanst_norms():
    d = np.array([1.0, -4.0, 2.0])
    e = np.array([3.0, -0.5])
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert lanst("M", d, e) == 4.0
    assert lanst("1", d, e) == np.max(np.sum(np.abs(T), axis=0))
    assert lanst("F", d, e) == pytest.approx(np.linalg.norm(T))
    assert lanst("M", np.empty(0), np.empty(0)) == 0.0


def test_scale_noop_in_safe_range():
    d = np.array([1.0, 2.0])
    e = np.array([0.5])
    ds, es, info = scale_tridiagonal(d, e)
    assert not info.scaled
    np.testing.assert_array_equal(ds, d)


def test_scale_huge_matrix():
    d = np.array([1e300, -1e301])
    e = np.array([1e299])
    ds, es, info = scale_tridiagonal(d, e)
    assert info.scaled
    assert lanst("M", ds, es) <= 1e290
    lam = ds.copy()
    info.unscale_eigenvalues(lam)
    np.testing.assert_allclose(lam, d)


def test_scale_tiny_matrix():
    d = np.array([1e-300, 3e-301])
    e = np.array([1e-302])
    ds, es, info = scale_tridiagonal(d, e)
    assert info.scaled
    assert lanst("M", ds, es) >= 1e-200


# ---------------------------------------------------------------------------
# givens
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("f,g", [(3.0, 4.0), (-3.0, 4.0), (1e-200, 1e-200),
                                 (5.0, 0.0), (0.0, 5.0), (1e150, 1e150)])
def test_lartg_annihilates(f, g):
    c, s, r = lartg(f, g)
    assert c * f + s * g == pytest.approx(r, rel=1e-14)
    assert -s * f + c * g == pytest.approx(0.0, abs=1e-14 * max(abs(f), abs(g), 1e-300))
    assert c * c + s * s == pytest.approx(1.0)


def test_rot_matches_matrix_form():
    rng = np.random.default_rng(0)
    x = rng.normal(size=6)
    y = rng.normal(size=6)
    th = 0.7
    c, s = math.cos(th), math.sin(th)
    xr, yr = x.copy(), y.copy()
    rot(xr, yr, c, s)
    np.testing.assert_allclose(xr, c * x + s * y)
    np.testing.assert_allclose(yr, c * y - s * x)


def test_lapy2():
    assert lapy2(3.0, 4.0) == 5.0
    assert lapy2(1e200, 1e200) == pytest.approx(math.sqrt(2) * 1e200)


# ---------------------------------------------------------------------------
# stabilization (Gu ẑ and eigenvector assembly)
# ---------------------------------------------------------------------------

def _secular_setup(seed=0, k=40):
    rng = np.random.default_rng(seed)
    d = np.sort(rng.normal(size=k)) + np.arange(k) * 1e-3
    z = rng.uniform(0.1, 1.0, size=k) * rng.choice([-1.0, 1.0], size=k)
    z /= np.linalg.norm(z)
    rho = 0.8
    roots = solve_secular(d, z, rho)
    return d, z, rho, roots


def test_w_product_panel_split_invariance():
    d, z, rho, roots = _secular_setup()
    k = d.shape[0]
    whole = local_w_product(d, roots.orig, roots.tau, np.arange(k))
    split = [local_w_product(d, roots.orig[p], roots.tau[p], p)
             for p in np.array_split(np.arange(k), 5)]
    np.testing.assert_allclose(np.prod(np.asarray(split), axis=0), whole,
                               rtol=1e-12)


def test_reduce_w_recovers_z():
    # With accurately computed roots, ẑ must reproduce z to O(ε).
    d, z, rho, roots = _secular_setup()
    part = local_w_product(d, roots.orig, roots.tau, np.arange(len(d)))
    zhat = reduce_w([part], z, rho)
    np.testing.assert_allclose(zhat, z, atol=5e-13)


def test_eigenvector_columns_diagonalize():
    d, z, rho, roots = _secular_setup(3, 60)
    part = local_w_product(d, roots.orig, roots.tau, np.arange(len(d)))
    zhat = reduce_w([part], z, rho)
    X = eigenvector_columns(d, roots.orig, roots.tau, zhat)
    k = len(d)
    assert np.max(np.abs(X.T @ X - np.eye(k))) < 1e-13 * k
    Rhat = np.diag(d) + rho * np.outer(zhat, zhat)
    assert np.max(np.abs(X.T @ Rhat @ X - np.diag(roots.lam))) < 1e-12 * k


def test_eigenvector_columns_row_order():
    d, z, rho, roots = _secular_setup(4, 20)
    part = local_w_product(d, roots.orig, roots.tau, np.arange(len(d)))
    zhat = reduce_w([part], z, rho)
    perm = np.random.default_rng(0).permutation(20)
    X = eigenvector_columns(d, roots.orig, roots.tau, zhat)
    Xp = eigenvector_columns(d, roots.orig, roots.tau, zhat, row_order=perm)
    np.testing.assert_array_equal(Xp, X[perm, :])


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 30), st.integers(0, 2 ** 31 - 1))
def test_property_stabilized_vectors_orthogonal(k, seed):
    rng = np.random.default_rng(seed)
    d = np.sort(rng.uniform(-1, 1, size=k)) + np.arange(k) * 1e-4
    z = rng.uniform(0.05, 1.0, size=k) * rng.choice([-1.0, 1.0], size=k)
    z /= np.linalg.norm(z)
    rho = float(rng.uniform(0.1, 10.0))
    roots = solve_secular(d, z, rho)
    part = local_w_product(d, roots.orig, roots.tau, np.arange(k))
    zhat = reduce_w([part], z, rho)
    X = eigenvector_columns(d, roots.orig, roots.tau, zhat)
    assert np.max(np.abs(X.T @ X - np.eye(k))) < 1e-11 * k


# ---------------------------------------------------------------------------
# householder
# ---------------------------------------------------------------------------

def test_tridiagonalize_reconstructs():
    rng = np.random.default_rng(2)
    for n in (1, 2, 3, 10, 40):
        A = rng.normal(size=(n, n))
        A = 0.5 * (A + A.T)
        tri = tridiagonalize(A)
        T = np.diag(tri.d)
        if n > 1:
            T += np.diag(tri.e, 1) + np.diag(tri.e, -1)
        Q = tri.q()
        assert np.max(np.abs(Q.T @ Q - np.eye(n))) < 1e-13 * n
        assert np.max(np.abs(Q @ T @ Q.T - A)) < 1e-12 * n * max(
            1.0, np.max(np.abs(A)))


def test_tridiagonalize_rejects_nonsymmetric():
    with pytest.raises(ValueError):
        tridiagonalize(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError):
        tridiagonalize(np.ones((2, 3)))


def test_apply_q_on_vectors():
    rng = np.random.default_rng(6)
    n = 25
    A = rng.normal(size=(n, n))
    A = 0.5 * (A + A.T)
    tri = tridiagonalize(A)
    Q = tri.q()
    C = rng.normal(size=(n, 4))
    np.testing.assert_allclose(apply_q(tri, C), Q @ C, atol=1e-12)


def test_already_tridiagonal_is_fixed_point():
    d = np.array([1.0, 2.0, 3.0, 4.0])
    e = np.array([0.1, 0.2, 0.3])
    A = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    tri = tridiagonalize(A)
    np.testing.assert_allclose(tri.d, d, atol=1e-14)
    np.testing.assert_allclose(np.abs(tri.e), np.abs(e), atol=1e-14)
