"""Graceful degradation: STEQR fallback when the secular solve fails."""

import numpy as np
import pytest

from repro import dc_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual
from repro.core.options import DCOptions
from repro.errors import ConvergenceError
from repro.kernels.secular import solve_secular
from repro.obs import Collector

GATE = 1e-13   # both metrics are normalized by n; paper scale is ~1e-16


def _problem(n=220, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n), rng.standard_normal(n - 1)


@pytest.fixture
def broken_secular(monkeypatch):
    """Make every secular solve fail (forces the fallback on all merges)."""
    def boom(*args, **kwargs):
        raise ConvergenceError("synthetic secular failure")
    monkeypatch.setattr("repro.core.merge.solve_secular", boom)


@pytest.fixture
def broken_root_secular(monkeypatch):
    """Fail the secular solve only for the (root-sized) largest merge."""
    calls = {}

    def sometimes(dlamda, *args, **kwargs):
        if dlamda.shape[0] > 110:     # only the root merge is this big
            raise ConvergenceError("synthetic secular failure at root")
        return solve_secular(dlamda, *args, **kwargs)

    monkeypatch.setattr("repro.core.merge.solve_secular", sometimes)
    return calls


@pytest.mark.parametrize("backend", ["sequential", "threads"])
def test_fallback_passes_accuracy_gate(broken_secular, backend):
    d, e = _problem()
    lam, V = dc_eigh(d, e, backend=backend)
    assert np.all(np.diff(lam) >= 0)
    assert orthogonality_error(V) < GATE
    assert tridiagonal_residual(d, e, lam, V) < GATE


@pytest.mark.parametrize("backend", ["sequential", "threads"])
def test_fallback_on_root_merge_only(broken_root_secular, backend):
    d, e = _problem()
    lam, V = dc_eigh(d, e, backend=backend)
    assert orthogonality_error(V) < GATE
    assert tridiagonal_residual(d, e, lam, V) < GATE
    lam_ref = np.linalg.eigvalsh(np.diag(d) + np.diag(e, 1) + np.diag(e, -1))
    np.testing.assert_allclose(lam, lam_ref, atol=1e-10)


def test_fallback_counted_in_telemetry(broken_secular):
    d, e = _problem()
    col = Collector()
    res = dc_eigh(d, e, options=DCOptions(telemetry=col), full_result=True)
    stats = res.info.ctx.merge_stats
    assert stats and all(s.fallback for s in stats)
    assert col.counters["solve.fallbacks"] == len(stats)
    assert orthogonality_error(res.V) < GATE


def test_no_fallback_on_healthy_solve():
    d, e = _problem()
    col = Collector()
    res = dc_eigh(d, e, options=DCOptions(telemetry=col), full_result=True)
    assert "solve.fallbacks" not in col.counters
    assert not any(s.fallback for s in res.info.ctx.merge_stats)


def test_fallback_backends_agree(broken_secular):
    d, e = _problem(seed=3)
    lam_s, V_s = dc_eigh(d, e, backend="sequential")
    lam_t, V_t = dc_eigh(d, e, backend="threads")
    np.testing.assert_array_equal(lam_s, lam_t)
    np.testing.assert_array_equal(V_s, V_t)


def test_nonfinite_secular_roots_trigger_fallback(monkeypatch):
    """Non-finite roots (not just raised errors) also degrade gracefully."""
    def poisoned(dlamda, *args, **kwargs):
        res = solve_secular(dlamda, *args, **kwargs)
        res.tau[...] = np.nan
        return res

    monkeypatch.setattr("repro.core.merge.solve_secular", poisoned)
    d, e = _problem(seed=5)
    lam, V = dc_eigh(d, e)
    assert np.isfinite(lam).all() and np.isfinite(V).all()
    assert orthogonality_error(V) < GATE
    assert tridiagonal_residual(d, e, lam, V) < GATE


@pytest.mark.parametrize("backend", ["sequential", "threads"])
def test_fallback_under_graph_reuse(broken_secular, backend):
    """The per-merge writer countdown is per-solve state: repeated
    solves on the cached DAG template must each fall back cleanly."""
    d, e = _problem(seed=9)
    opts = DCOptions(reuse_graph=True)
    for _ in range(3):
        lam, V = dc_eigh(d, e, options=opts, backend=backend)
        assert orthogonality_error(V) < GATE
        assert tridiagonal_residual(d, e, lam, V) < GATE


def test_fallback_with_subset(broken_secular):
    d, e = _problem(seed=7)
    lam_full, _ = np.linalg.eigh(np.diag(d) + np.diag(e, 1) + np.diag(e, -1))
    sub = [0, 5, 100]
    lam, V = dc_eigh(d, e, subset=sub)
    assert V.shape == (d.shape[0], 3)
    np.testing.assert_allclose(lam, lam_full[sub], atol=1e-10)
    assert orthogonality_error(V) < GATE
