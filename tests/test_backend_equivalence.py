"""Cross-backend bitwise equivalence and scheduler stress tests.

The paper's task-flow formulation promises that scheduling is invisible
to the numerics: any topological execution order produces bit-identical
results.  These tests pin that promise across the sequential, threaded
(work-stealing) and simulated backends, with and without eigenpair
subsets, extra workspace, and the DAG template cache — plus a randomized
stress test of the work-stealing scheduler itself.
"""

import threading

import numpy as np
import pytest

from repro import dc_eigh, dc_eigh_many
from repro.core import DCOptions
from repro.core.graph_cache import graph_template_cache
from repro.matrices import test_matrix as table3_matrix
from repro.runtime import TaskGraph, ThreadScheduler
from repro.runtime.task import Task


def _solve(d, e, backend, n_workers=None, **kw):
    return dc_eigh(d, e, backend=backend, n_workers=n_workers, **kw)


@pytest.mark.parametrize("mtype", [1, 2, 3, 4, 5])
def test_backends_bitwise_identical_table3(mtype):
    d, e = table3_matrix(mtype, 150, seed=11)
    lam0, V0 = _solve(d, e, "sequential")
    for backend, workers in (("threads", 2), ("threads", 4),
                             ("threads", 8), ("simulated", 4)):
        lam, V = _solve(d, e, backend, workers)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


@pytest.mark.parametrize("mtype", [2, 4])
def test_backends_bitwise_identical_with_subset(mtype):
    d, e = table3_matrix(mtype, 130, seed=12)
    subset = np.arange(20, 55)
    lam0, V0 = _solve(d, e, "sequential", subset=subset)
    assert lam0.shape == (35,) and V0.shape == (130, 35)
    for backend, workers in (("threads", 2), ("threads", 4),
                             ("threads", 8), ("simulated", 4)):
        lam, V = _solve(d, e, backend, workers, subset=subset)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


@pytest.mark.parametrize("extra_workspace", [False, True])
def test_backends_bitwise_identical_workspace_modes(extra_workspace):
    d, e = table3_matrix(3, 140, seed=13)
    opts = DCOptions(extra_workspace=extra_workspace)
    lam0, V0 = _solve(d, e, "sequential", options=opts)
    for backend, workers in (("threads", 4), ("threads", 8),
                             ("simulated", 4)):
        lam, V = _solve(d, e, backend, workers, options=opts)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_merge_stats_deterministic_across_backends():
    # Satellite regression: ctx.merge_stats used to be appended in task
    # completion order, which is nondeterministic under threads.  Now it
    # is keyed by node span and returned sorted by tree level.
    d, e = table3_matrix(4, 200, seed=14)
    res_seq = dc_eigh(d, e, full_result=True)
    res_thr = dc_eigh(d, e, backend="threads", n_workers=8,
                      full_result=True)
    spans_seq = [(s.lo, s.hi) for s in res_seq.info.ctx.merge_stats]
    spans_thr = [(s.lo, s.hi) for s in res_thr.info.ctx.merge_stats]
    assert spans_seq == spans_thr
    # Secular sweep counts are reduced per-panel (race-free) and must
    # agree between backends.
    sweeps_seq = [s.secular_sweeps for s in res_seq.info.ctx.merge_stats]
    sweeps_thr = [s.secular_sweeps for s in res_thr.info.ctx.merge_stats]
    assert sweeps_seq == sweeps_thr
    assert sum(sweeps_seq) > 0


@pytest.mark.parametrize("backend,workers", [("sequential", 1),
                                             ("threads", 4),
                                             ("simulated", 4)])
def test_backends_bitwise_identical_with_service_layer(tmp_path, backend,
                                                       workers):
    # The live-observability layer (flight recorder on, digest-backed
    # telemetry, postmortem_dir configured) must not perturb a single
    # bit of the results on any backend.
    from repro.core.session import SolverSession
    from repro.obs import Collector

    d, e = table3_matrix(4, 150, seed=18)
    lam0, V0 = _solve(d, e, "sequential")
    opts = DCOptions(postmortem_dir=str(tmp_path), telemetry=Collector())
    with SolverSession(backend=backend, n_workers=workers,
                       options=opts) as s:
        lam, V = s.solve(d, e)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)
        # The digest-backed histograms saw the solve...
        col = s.options.telemetry
        assert col.hist_stats("merge.deflation_ratio")["count"] > 0
    # ...and a healthy solve never writes a post-mortem bundle.
    assert not list(tmp_path.glob("*.jsonl"))


# ---------------------------------------------------------------------------
# DAG template cache


def test_reuse_graph_bitwise_identical():
    d, e = table3_matrix(4, 170, seed=15)
    lam0, V0 = dc_eigh(d, e)
    graph_template_cache.clear()
    opts = DCOptions(reuse_graph=True)
    lam1, V1 = dc_eigh(d, e, options=opts)                  # cache miss
    lam2, V2 = dc_eigh(d, e, options=opts)                  # cache hit
    lam3, V3 = dc_eigh(d, e, options=opts, backend="threads",
                       n_workers=4)                         # hit, threaded
    assert graph_template_cache.misses >= 1
    assert graph_template_cache.hits >= 2
    for lam, V in ((lam1, V1), (lam2, V2), (lam3, V3)):
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_reuse_graph_with_subset_bitwise_identical():
    d, e = table3_matrix(2, 150, seed=16)
    subset = np.arange(0, 30)
    lam0, V0 = dc_eigh(d, e, subset=subset)
    graph_template_cache.clear()
    opts = DCOptions(reuse_graph=True)
    for _ in range(2):
        lam, V = dc_eigh(d, e, options=opts, subset=subset)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_dc_eigh_many_matches_individual_solves():
    rng = np.random.default_rng(17)
    problems = []
    for _ in range(4):
        d = rng.normal(size=120)
        e = rng.normal(size=119)
        problems.append((d, e))
    graph_template_cache.clear()
    results = dc_eigh_many(problems)
    assert len(results) == 4
    # Same shape => one template build, three (or more) cache hits.
    assert graph_template_cache.misses == 1
    assert graph_template_cache.hits == 3
    for (d, e), (lam, V) in zip(problems, results):
        lam0, V0 = dc_eigh(d, e)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


# ---------------------------------------------------------------------------
# Work-stealing scheduler stress


def _random_dag(rng, n_tasks, record, lock):
    """A random DAG whose tasks log their own completion order."""
    graph = TaskGraph()
    tasks = []
    for i in range(n_tasks):
        def payload(i=i):
            with lock:
                record.append(i)
        t = Task(payload, (), name=f"t{i}",
                 priority=int(rng.integers(0, 5)))
        graph.submit(t)
        tasks.append(t)
    # Random forward edges (graph.submit gave every task n_deps == 0).
    for i in range(1, n_tasks):
        for j in rng.choice(i, size=min(i, int(rng.integers(0, 4))),
                            replace=False):
            tasks[j].add_successor(tasks[i])
    return graph, tasks


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_work_stealing_respects_topological_order(seed):
    rng = np.random.default_rng(seed)
    for trial in range(50):            # 4 seeds x 50 = 200 random DAGs
        n_tasks = int(rng.integers(1, 60))
        record: list[int] = []
        lock = threading.Lock()
        graph, tasks = _random_dag(rng, n_tasks, record, lock)
        n_workers = int(rng.choice([2, 4, 8]))
        trace = ThreadScheduler(n_workers=n_workers).run(graph)

        assert sorted(record) == list(range(n_tasks))
        pos = {i: p for p, i in enumerate(record)}
        for i, t in enumerate(tasks):
            for s in t.successors:
                si = int(s.name[1:])
                assert pos[i] < pos[si], (
                    f"seed={seed} trial={trial}: task {si} ran before "
                    f"its dependency {i}")
        assert len(trace.events) == n_tasks


def test_thread_scheduler_propagates_task_errors():
    graph = TaskGraph()

    def boom():
        raise RuntimeError("kernel failed")

    graph.submit(Task(boom, (), name="boom"))
    with pytest.raises(RuntimeError, match="kernel failed"):
        ThreadScheduler(n_workers=4).run(graph)
