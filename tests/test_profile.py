"""Task-attributed sampling profiler (repro/obs/profile)."""

import re

import numpy as np
import pytest

from repro.core import DCOptions
from repro.core.session import SolverSession
from repro.matrices import test_matrix as table3_matrix
from repro.obs import SamplingProfiler, SessionMetrics, telemetry_summary


class _FakeTask:
    def __init__(self, name, tag=None):
        self.name, self.tag = name, tag


class _FakeSource:
    """Scriptable stand-in for a scheduler's current-task slots."""

    def __init__(self, frames, depths=None):
        self.frames = list(frames)
        self.depths = depths
        self.i = 0

    def current_tasks(self):
        frame = self.frames[min(self.i, len(self.frames) - 1)]
        self.i += 1
        return frame

    def queue_depths(self):
        if self.depths is None:
            raise AttributeError
        return self.depths


# ---------------------------------------------------------------------------
# Deterministic sampling over a scripted source
# ---------------------------------------------------------------------------

def test_sample_once_counts_and_attribution():
    laed4 = _FakeTask("LAED4", (0, 100))
    stedc = _FakeTask("STEDC")
    src = _FakeSource([[laed4, None], [laed4, stedc], [None, None]])
    p = SamplingProfiler(src, interval_s=0.001)
    for _ in range(3):
        p.sample_once()
    assert p.n_ticks == 3
    assert p.n_samples == 6
    assert p.idle_samples == 3
    assert p.busy_samples == 3
    assert p.kernel_counts() == {"LAED4": 2, "STEDC": 1}
    assert p.attributed_fraction == 1.0


def test_attributed_fraction_none_until_sampled():
    p = SamplingProfiler(_FakeSource([[None]]), interval_s=0.001)
    assert p.attributed_fraction is None
    p.sample_once()
    assert p.attributed_fraction is None        # only idle samples so far


def test_interval_validation():
    with pytest.raises(ValueError):
        SamplingProfiler(_FakeSource([[]]), interval_s=0.0)


def test_queue_depth_feeds_metrics():
    m = SessionMetrics()
    src = _FakeSource([[None, None]], depths=[3, 2])
    p = SamplingProfiler(src, interval_s=0.001, metrics=m)
    p.sample_once()
    st = m.digest_stats()["queue_depth"]
    assert st["count"] == 1 and st["min"] == 5.0


def test_collapsed_stack_levels():
    # Root merge (0, 8) contains (0, 4) contains (0, 2): levels 0/1/2.
    frames = [
        [_FakeTask("UpdateVect", (0, 8))],
        [_FakeTask("UpdateVect", (0, 8))],
        [_FakeTask("LAED4", (0, 4))],
        [_FakeTask("PermuteV", (0, 2))],
        [_FakeTask("STEDC")],
    ]
    p = SamplingProfiler(_FakeSource(frames), interval_s=0.001)
    for _ in range(len(frames)):
        p.sample_once()
    text = p.collapsed()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert "solve;level0;merge[0:8];UpdateVect 2" in lines
    assert "solve;level1;merge[0:4];LAED4 1" in lines
    assert "solve;level2;merge[0:2];PermuteV 1" in lines
    assert "solve;STEDC 1" in lines
    assert lines == sorted(lines)
    # Every line is flamegraph-collapsible: "frame;frame;... count".
    for line in lines:
        assert re.match(r"^solve(;[^; ]+)* \d+$", line)


def test_summary_outputs():
    frames = [[_FakeTask("LAED4", (0, 10)), _FakeTask("STEDC")]]
    p = SamplingProfiler(_FakeSource(frames), interval_s=0.002)
    p.sample_once()
    d = p.summary_dict()
    assert d["ticks"] == 1 and d["samples"] == 2
    assert d["kernels"] == {"LAED4": 1, "STEDC": 1}
    assert d["attributed_fraction"] == 1.0
    text = p.summary()
    assert "sampling profile" in text and "LAED4" in text
    # telemetry_summary appends the profile section even with no
    # collector attached.
    assert "sampling profile" in telemetry_summary(None, profile=p)


def test_start_stop_idempotent():
    p = SamplingProfiler(_FakeSource([[None]]), interval_s=0.001)
    with p as running:
        assert running is p and p.running
        assert p.start() is p                   # second start is a no-op
    assert not p.running
    p.stop()                                    # idempotent


def test_dying_source_is_survivable():
    class Dying:
        def current_tasks(self):
            raise RuntimeError("pool shut down")

    p = SamplingProfiler(Dying(), interval_s=0.001)
    p.sample_once()                             # must not raise
    assert p.n_ticks == 0


# ---------------------------------------------------------------------------
# Live attribution on a real solve (acceptance gate)
# ---------------------------------------------------------------------------

def test_profiler_attributes_samples_on_real_solve():
    d, e = table3_matrix(4, 2500, seed=0)
    with SolverSession(backend="threads", n_workers=4,
                       options=DCOptions(minpart=64),
                       profile_interval_s=0.001) as s:
        lam, V = s.solve(d, e)
        prof = s.profiler
        assert prof is not None and prof.running
        assert np.all(np.diff(lam) >= 0) and V.shape == (2500, 2500)
    assert not prof.running                     # close() stopped it
    assert prof.busy_samples > 0
    # Acceptance: >= 90% of busy samples attribute to a named kernel.
    assert prof.attributed_fraction >= 0.90
    counts = prof.kernel_counts()
    assert counts and all(cnt > 0 for cnt in counts.values())
    # The heavy merge kernels dominate a n=2500 solve.
    assert set(counts) & {"LAED4", "UpdateVect", "ComputeVect", "STEDC",
                          "PermuteV", "ApplyGivens", "CopyBackDeflated",
                          "ComputeLocalW", "ReduceW", "Compute_deflation"}
    text = prof.collapsed()
    assert re.search(r"^solve;level0;merge\[0:2500\];\w+ \d+$", text, re.M)
    # Queue-depth samples landed in the session digest.
    assert "queue_depth" in s.metrics.digest_stats()
