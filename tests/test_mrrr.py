"""Tests for the MRRR solver stack (repro.mrrr)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mrrr import (bisect_eigenvalues, bisect_ldl, dqds_progressive,
                        dstqds, gershgorin, getvec, ldl_factor, mrrr_eigh,
                        sturm_count, sturm_count_ldl, twist_data)
from repro.mrrr.bisect import bisect_ldl_multi, sturm_count_ldl_multi
from repro.mrrr.solver import _split_blocks, _tridiag_solve_shifted


def tridiag(d, e):
    T = np.diag(np.asarray(d, dtype=float))
    e = np.asarray(e, dtype=float)
    if e.size:
        T += np.diag(e, 1) + np.diag(e, -1)
    return T


# ---------------------------------------------------------------------------
# bisection / Sturm counts
# ---------------------------------------------------------------------------

def test_gershgorin_contains_spectrum():
    rng = np.random.default_rng(0)
    d = rng.normal(size=30)
    e = rng.normal(size=29)
    gl, gu = gershgorin(d, e)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    assert gl <= lam[0] and lam[-1] <= gu


def test_sturm_count_matches_dense():
    rng = np.random.default_rng(1)
    d = rng.normal(size=25)
    e = rng.normal(size=24)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    sigmas = np.linspace(lam[0] - 1, lam[-1] + 1, 37)
    counts = sturm_count(d, e, sigmas)
    ref = np.sum(lam[None, :] < sigmas[:, None], axis=1)
    np.testing.assert_array_equal(counts, ref)


def test_bisect_eigenvalues_accuracy():
    rng = np.random.default_rng(2)
    d = rng.normal(size=40)
    e = rng.normal(size=39)
    lam = bisect_eigenvalues(d, e, rtol=1e-13)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    np.testing.assert_allclose(lam, ref, atol=1e-11)


def test_bisect_subset():
    rng = np.random.default_rng(3)
    d = rng.normal(size=30)
    e = rng.normal(size=29)
    idx = np.array([0, 7, 29])
    lam = bisect_eigenvalues(d, e, indices=idx, rtol=1e-13)
    ref = np.linalg.eigvalsh(tridiag(d, e))[idx]
    np.testing.assert_allclose(lam, ref, atol=1e-11)


def test_sturm_count_ldl_matches_plain():
    rng = np.random.default_rng(4)
    d = rng.normal(size=20) + 5.0  # keep T - sigma0 definite at sigma0=0
    e = rng.normal(size=19) * 0.3
    rep = ldl_factor(d, e, 0.0)
    sig = np.linspace(0, 10, 23)
    np.testing.assert_array_equal(sturm_count_ldl(rep.d, rep.l, sig),
                                  sturm_count(d, e, sig))


def test_multi_rep_counts_match_single():
    rng = np.random.default_rng(5)
    d = rng.normal(size=15) + 4.0
    e = rng.normal(size=14) * 0.2
    repA = ldl_factor(d, e, 0.0)
    repB = ldl_factor(d + 1.0, e, 0.0)
    sig = np.array([2.0, 6.0])
    dmat = np.stack([repA.d, repB.d], axis=1)
    lmat = np.stack([repA.l, repB.l], axis=1)
    multi = sturm_count_ldl_multi(dmat, lmat, sig)
    assert multi[0] == sturm_count_ldl(repA.d, repA.l, sig[:1])[0]
    assert multi[1] == sturm_count_ldl(repB.d, repB.l, sig[1:])[0]


def test_bisect_ldl_refines_to_relative_accuracy():
    rng = np.random.default_rng(6)
    d = rng.normal(size=25) + 6.0
    e = rng.normal(size=24) * 0.5
    rep = ldl_factor(d, e, 0.0)
    ref = np.linalg.eigvalsh(tridiag(d, e))
    lam = bisect_ldl(rep.d, rep.l, np.arange(25),
                     np.zeros(25), np.full(25, ref[-1] * 1.5))
    np.testing.assert_allclose(lam, ref, rtol=1e-13)


# ---------------------------------------------------------------------------
# LDL / qds transforms
# ---------------------------------------------------------------------------

def test_ldl_factor_roundtrip():
    rng = np.random.default_rng(7)
    d = rng.normal(size=12) + 8.0
    e = rng.normal(size=11)
    rep = ldl_factor(d, e, 1.5)
    d2, e2 = rep.to_tridiagonal()
    np.testing.assert_allclose(d2, d - 1.5, atol=1e-12)
    np.testing.assert_allclose(e2, e, atol=1e-12)


def test_dstqds_shifts_spectrum():
    rng = np.random.default_rng(8)
    d = rng.normal(size=14) + 8.0
    e = rng.normal(size=13)
    rep = ldl_factor(d, e, 0.0)
    shifted, _ = dstqds(rep, 2.0)
    assert shifted.sigma == 2.0
    d2, e2 = shifted.to_tridiagonal()
    lam_shift = np.linalg.eigvalsh(tridiag(d2, e2))
    lam = np.linalg.eigvalsh(tridiag(d, e))
    np.testing.assert_allclose(lam_shift, lam - 2.0, atol=1e-10)


def test_dqds_progressive_inertia():
    # dminus signs give the same inertia as the stationary transform.
    rng = np.random.default_rng(9)
    d = rng.normal(size=16) + 6.0
    e = rng.normal(size=15)
    rep = ldl_factor(d, e, 0.0)
    for sig in (1.0, 5.0, 9.0):
        dminus, _, _ = dqds_progressive(rep, sig)
        neg = int(np.sum(dminus < 0))
        assert neg == sturm_count(d, e, sig)


def test_twist_gamma_endpoints():
    rng = np.random.default_rng(10)
    d = rng.normal(size=10) + 5.0
    e = rng.normal(size=9)
    rep = ldl_factor(d, e, 0.0)
    lam = float(np.linalg.eigvalsh(tridiag(d, e))[3])
    plus, dminus, uminus, gamma = twist_data(rep, lam)
    # At an exact eigenvalue some gamma must be ~0 relative to the scale.
    assert np.min(np.abs(gamma)) < 1e-10 * np.max(np.abs(d))


def test_getvec_single_eigenpair():
    rng = np.random.default_rng(11)
    d = rng.normal(size=20) + 9.0
    e = rng.normal(size=19)
    T = tridiag(d, e)
    lam_all = np.linalg.eigvalsh(T)
    rep = ldl_factor(d, e, 0.0)
    j = 7
    gap = min(lam_all[j] - lam_all[j - 1], lam_all[j + 1] - lam_all[j])
    z, lam_ref, _ = getvec(rep, float(lam_all[j]), gap)
    assert np.linalg.norm(T @ z - lam_ref * z) < 1e-11 * np.max(np.abs(d))


# ---------------------------------------------------------------------------
# tridiagonal solver used by the BI fallback
# ---------------------------------------------------------------------------

def test_tridiag_solve_shifted():
    rng = np.random.default_rng(12)
    for n in (2, 3, 10, 40):
        d = rng.normal(size=n)
        e = rng.normal(size=n - 1)
        b = rng.normal(size=n)
        sig = 0.37
        x = _tridiag_solve_shifted(d, e, sig, b)
        np.testing.assert_allclose((tridiag(d, e) - sig * np.eye(n)) @ x, b,
                                   atol=1e-9 * max(1, np.max(np.abs(b))))


def test_split_blocks():
    d = np.ones(6)
    e = np.array([0.5, 0.0, 0.5, 1e-20, 0.5])
    blocks = _split_blocks(d, e)
    assert blocks == [(0, 2), (2, 4), (4, 6)]


# ---------------------------------------------------------------------------
# full solver
# ---------------------------------------------------------------------------

def check(d, e, lam, V, tol=5e-12):
    n = len(d)
    T = tridiag(d, e)
    scale = max(1.0, np.max(np.abs(T)))
    assert np.all(np.diff(lam) >= -1e-300)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < tol * n
    assert np.max(np.abs(T @ V - V * lam[None, :])) < tol * n * scale


@pytest.mark.parametrize("n", [1, 2, 3, 8, 60, 200])
def test_random_matrices(n):
    rng = np.random.default_rng(n)
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam, V = mrrr_eigh(d, e)
    check(d, e, lam, V)
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(tridiag(d, e)),
                               atol=1e-10 * max(1, n))


def test_wilkinson_near_duplicates():
    m = 25
    d = np.abs(np.arange(-m, m + 1)).astype(float)
    e = np.ones(2 * m)
    res = mrrr_eigh(d, e, full_result=True)
    check(d, e, res.lam, res.V)
    assert res.n_clusters > 0


def test_identical_eigenvalues_type2():
    n = 80
    d = np.ones(n)
    e = np.full(n - 1, 1e-13)
    lam, V = mrrr_eigh(d, e)
    check(d, e, lam, V)


def test_decoupled_blocks():
    rng = np.random.default_rng(13)
    d = rng.normal(size=50)
    e = rng.normal(size=49)
    e[24] = 0.0
    lam, V = mrrr_eigh(d, e)
    check(d, e, lam, V)


def test_work_records_form_a_forest():
    rng = np.random.default_rng(14)
    d = rng.normal(size=100)
    e = rng.normal(size=99)
    res = mrrr_eigh(d, e, full_result=True)
    assert len(res.records) > 0
    uids = {r.uid for r in res.records}
    for r in res.records:
        assert r.parent == -1 or (r.parent in uids and r.parent < r.uid)
        assert r.cost.flops >= 0
    names = {r.name for r in res.records}
    assert "Getvec" in names and "RefineInit" in names


def test_scaling_extreme():
    rng = np.random.default_rng(15)
    n = 40
    d = rng.normal(size=n) * 1e300
    e = rng.normal(size=n - 1) * 1e300
    lam, V = mrrr_eigh(d, e)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-11
    ref = np.linalg.eigvalsh(tridiag(d / 1e300, e / 1e300)) * 1e300
    np.testing.assert_allclose(lam, ref, rtol=1e-9)


def test_bad_inputs():
    with pytest.raises(ValueError):
        mrrr_eigh(np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        mrrr_eigh(np.ones(3), np.ones(3))


@settings(max_examples=12, deadline=None)
@given(st.integers(2, 60), st.integers(0, 2 ** 31 - 1))
def test_property_mrrr_random(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.uniform(-5, 5, size=n)
    e = rng.uniform(-5, 5, size=n - 1)
    lam, V = mrrr_eigh(d, e)
    check(d, e, lam, V)
    assert np.sum(lam) == pytest.approx(np.sum(d), abs=1e-8 * n * 5)
