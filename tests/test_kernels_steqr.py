"""Tests for the QR-iteration leaf eigensolver (repro.kernels.steqr)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import steqr, sterf


def tridiag(d, e):
    T = np.diag(np.asarray(d, dtype=float))
    e = np.asarray(e, dtype=float)
    if e.size:
        T += np.diag(e, 1) + np.diag(e, -1)
    return T


def assert_valid_eig(d, e, lam, V, tol=5e-13):
    T = tridiag(d, e)
    n = len(d)
    scale = max(1.0, np.max(np.abs(T)))
    assert np.all(np.diff(lam) >= -1e-300), "eigenvalues not ascending"
    assert np.max(np.abs(V.T @ V - np.eye(n))) < tol * n
    assert np.max(np.abs(T @ V - V * lam[None, :])) < tol * n * scale


def test_sizes_one_and_two():
    lam, V = steqr([3.0], [])
    assert lam[0] == 3.0 and V[0, 0] == 1.0
    lam, V = steqr([1.0, 2.0], [0.5])
    assert_valid_eig([1.0, 2.0], [0.5], lam, V)


def test_diagonal_matrix():
    d = np.array([3.0, -1.0, 2.0, 0.0])
    lam, V = steqr(d, np.zeros(3))
    np.testing.assert_allclose(lam, np.sort(d))
    # Permutation matrix expected.
    assert np.allclose(np.abs(V) @ np.abs(V.T), np.eye(4))


def test_random_matrices_match_numpy():
    rng = np.random.default_rng(7)
    for n in (3, 10, 64, 150):
        d = rng.normal(size=n)
        e = rng.normal(size=n - 1)
        lam, V = steqr(d, e)
        lam_ref = np.linalg.eigvalsh(tridiag(d, e))
        np.testing.assert_allclose(lam, lam_ref, atol=1e-12 * n)
        assert_valid_eig(d, e, lam, V)


def test_wilkinson_matrix_pair_clusters():
    # W21+ has pairs of nearly equal eigenvalues — a classic QR stress.
    m = 10
    d = np.abs(np.arange(-m, m + 1)).astype(float)
    e = np.ones(2 * m)
    lam, V = steqr(d, e)
    assert_valid_eig(d, e, lam, V)


def test_122_toeplitz_known_eigenvalues():
    n = 40
    d = 2.0 * np.ones(n)
    e = np.ones(n - 1)
    lam, _ = steqr(d, e)
    ref = 2.0 - 2.0 * np.cos(np.pi * np.arange(1, n + 1) / (n + 1))
    np.testing.assert_allclose(lam, np.sort(ref), atol=1e-12)


def test_eigenvalues_only_matches_full():
    rng = np.random.default_rng(3)
    d = rng.normal(size=30)
    e = rng.normal(size=29)
    np.testing.assert_allclose(sterf(d, e), steqr(d, e)[0], atol=1e-13)


def test_zero_offdiagonal_splitting():
    # e contains exact zeros: the matrix splits into independent blocks.
    d = np.array([1.0, 5.0, 2.0, -3.0, 0.5])
    e = np.array([0.3, 0.0, 0.1, 0.0])
    lam, V = steqr(d, e)
    assert_valid_eig(d, e, lam, V)


def test_graded_matrix():
    # Strongly graded entries exercise shift/underflow paths.
    n = 24
    d = 10.0 ** (-np.arange(n, dtype=float))
    e = 10.0 ** (-np.arange(1, n, dtype=float))
    lam, V = steqr(d, e)
    assert_valid_eig(d, e, lam, V, tol=1e-12)


def test_input_not_mutated():
    d = np.ones(5)
    e = 0.5 * np.ones(4)
    d0, e0 = d.copy(), e.copy()
    steqr(d, e)
    np.testing.assert_array_equal(d, d0)
    np.testing.assert_array_equal(e, e0)


def test_wrong_e_length_raises():
    with pytest.raises(ValueError):
        steqr(np.ones(4), np.ones(4))


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 24), st.integers(0, 2 ** 31 - 1))
def test_property_spectral_decomposition(n, seed):
    rng = np.random.default_rng(seed)
    d = rng.uniform(-5, 5, size=n)
    e = rng.uniform(-5, 5, size=n - 1)
    lam, V = steqr(d, e)
    assert_valid_eig(d, e, lam, V)
    # Trace and Frobenius norm are invariants of the spectrum.
    assert np.sum(lam) == pytest.approx(np.sum(d), abs=1e-10 * n)
    assert np.sum(lam ** 2) == pytest.approx(np.sum(d ** 2) + 2 * np.sum(e ** 2),
                                             rel=1e-10)


def test_graded_matrix_needs_reversed_sweeps():
    """Regression: Table III type 1 leaves (one large + many tiny
    eigenvalues, graded downward) stall the QL sweep direction; steqr
    must fall back to solving the reversed matrix (QR direction)."""
    from repro.matrices import test_matrix as make_matrix
    from repro.kernels.scaling import scale_tridiagonal

    d, e = make_matrix(1, 256)
    ds, es, _ = scale_tridiagonal(d, e)
    # The first D&C leaf of this matrix is the historical failure.
    dl, el = ds[:64].copy(), es[:63].copy()
    dl[-1] -= abs(es[63])
    lam, V = steqr(dl, el)
    assert_valid_eig(dl, el, lam, V, tol=1e-12)
