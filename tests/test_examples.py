"""Smoke tests: every example script must import and expose main(), and
the fast ones must run clean (keeps the examples from bit-rotting)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

ALL_EXAMPLES = sorted(f for f in os.listdir(EXAMPLES) if f.endswith(".py"))


def load(name):
    path = os.path.join(EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_example_inventory():
    # The brief requires >= 3 runnable examples; we ship more.
    assert len(ALL_EXAMPLES) >= 5
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_examples_import_and_have_main(name):
    mod = load(name)
    assert callable(getattr(mod, "main", None)), f"{name} lacks main()"
    assert mod.__doc__ and "Run:" in mod.__doc__


def test_run_spectral_partitioning(capsys):
    load("spectral_partitioning.py").main()
    out = capsys.readouterr().out
    assert "partition recovers" in out
    assert "100%" in out


def test_run_svd_compression(capsys):
    load("svd_compression.py").main()
    out = capsys.readouterr().out
    assert "rank" in out and "relative error" in out
