"""Tests for the observability subsystem (repro/obs).

Recorder semantics, zero-impact-on-results guarantee, scheduler/cache
counters, numeric-health metrics, the exporters, and the CLI dump path.
"""

import io
import json

import numpy as np
import pytest

from repro.core import DCOptions, dc_eigh, graph_template_cache, template_key
from repro.matrices import test_matrix as make_test_matrix
from repro.obs import (NULL_RECORDER, Collector, NullRecorder, chrome_trace,
                       prometheus_text, telemetry_block, telemetry_summary,
                       write_jsonl)


@pytest.fixture(scope="module")
def problem():
    return make_test_matrix(4, 120, seed=0)


def _solve(d, e, collector=None, **kw):
    opts = DCOptions(minpart=32, telemetry=collector)
    return dc_eigh(d, e, options=opts, full_result=True, **kw)


# -- recorders --------------------------------------------------------------

def test_null_recorder_is_inert():
    r = NullRecorder()
    assert r.enabled is False
    with r.span("solve", n=5) as s:
        assert s is not None
    r.add("x")
    r.observe("x", 1.0)
    r.observe_many("x", [1.0, 2.0])
    r.gauge_max("x", 3.0)
    r.sample("x", 1.0)
    r.bulk_samples("x", 0, [(0.0, 1.0)])
    r.event("x")
    assert not hasattr(r, "__dict__")        # __slots__: truly stateless


def test_null_recorder_singleton_span_reused():
    a = NULL_RECORDER.span("a")
    b = NULL_RECORDER.span("b")
    assert a is b                            # no per-call allocation


def test_collector_counters_hists_gauges():
    c = Collector()
    assert c.enabled is True
    c.add("n")
    c.add("n", 2.0)
    assert c.counter("n") == 3.0
    assert c.counter("missing", -1.0) == -1.0
    c.observe("h", 4.0)
    c.observe_many("h", [1.0, 2.0, 3.0])
    st = c.hist_stats("h")
    assert st["count"] == 4 and st["min"] == 1.0 and st["max"] == 4.0
    assert st["sum"] == 10.0
    assert c.hist_stats("missing") is None
    c.gauge_max("g", 5.0)
    c.gauge_max("g", 2.0)
    assert c.gauges["g"] == 5.0
    c.bulk_samples("s", 1, [(0.0, 1.0), (1.0, 2.0)])
    # Series are bounded deques now (SERIES_MAXLEN); content is intact.
    assert list(c.series[("s", 1)]) == [(0.0, 1.0), (1.0, 2.0)]


def test_collector_span_nesting():
    c = Collector()
    with c.span("outer", n=3):
        with c.span("inner"):
            pass
        with c.span("inner2"):
            pass
    spans = c.span_tree()
    assert [s.name for s in spans] == ["outer", "inner", "inner2"]
    outer = spans[0]
    assert outer.parent == -1 and outer.attrs == {"n": 3}
    assert all(s.parent == outer.sid for s in spans[1:])
    assert all(s.t1 >= s.t0 for s in spans)


# -- zero impact on results -------------------------------------------------

@pytest.mark.parametrize("backend", ["sequential", "threads"])
def test_results_bitwise_identical_with_telemetry(problem, backend):
    d, e = problem
    kw = {"n_workers": 3} if backend == "threads" else {}
    base = _solve(d, e, backend=backend, **kw)
    inst = _solve(d, e, collector=Collector(), backend=backend, **kw)
    assert np.array_equal(base.lam, inst.lam)
    assert np.array_equal(base.V, inst.V)


def test_telemetry_excluded_from_options_identity(problem):
    assert DCOptions() == DCOptions(telemetry=Collector())
    n = 256
    opts = DCOptions(telemetry=Collector())
    assert template_key(n, opts) == template_key(n, DCOptions())


# -- instrumentation sites --------------------------------------------------

def test_solver_spans_and_counters(problem):
    d, e = problem
    col = Collector()
    _solve(d, e, collector=col)
    names = [s.name for s in col.span_tree()]
    assert names[0] == "solve"
    assert "graph.build" in names and "execute" in names
    assert "finalize" in names
    assert col.counter("solve.count") == 1
    assert col.counter("solve.tasks_submitted") > 0
    assert col.counter("scheduler.tasks") == col.counter(
        "solve.tasks_submitted")


def test_thread_scheduler_counters(problem):
    d, e = problem
    col = Collector()
    res = _solve(d, e, collector=col, backend="threads", n_workers=3)
    c = col.counters
    assert c["scheduler.tasks"] == len(res.graph.tasks)
    assert c.get("scheduler.steal.attempts", 0) >= c.get(
        "scheduler.steal.successes", 0)
    assert "scheduler.park.count" in c
    assert c.get("scheduler.dep_resolve.time_s", -1) >= 0
    qd = col.hist_stats("scheduler.queue_depth")
    assert qd is not None and qd["count"] == len(res.graph.tasks)
    # Satellite: park intervals are measured into the trace.
    for w, a, b in res.trace.idle_intervals:
        assert 0 <= w < 3 and b > a


def test_simulator_counters(problem):
    d, e = problem
    col = Collector()
    res = _solve(d, e, collector=col, backend="simulated", n_workers=4)
    assert col.counter("scheduler.tasks") == len(res.graph.tasks)
    assert col.hist_stats("scheduler.ready_depth")["count"] > 0
    assert ("scheduler.ready_depth", 0) in col.series


def test_graph_cache_counters(problem):
    d, e = problem
    graph_template_cache.clear()
    col = Collector()
    opts = DCOptions(minpart=32, reuse_graph=True, telemetry=col)
    dc_eigh(d, e, options=opts)
    dc_eigh(d, e, options=opts)
    assert col.counter("graph_cache.misses") == 1
    assert col.counter("graph_cache.hits") == 1
    assert col.hist_stats("graph_cache.build_s")["count"] == 1
    assert col.hist_stats("graph_cache.instantiate_s")["count"] == 1
    graph_template_cache.clear()


def test_numeric_health_metrics(problem):
    d, e = problem
    col = Collector()
    _solve(d, e, collector=col)
    dr = col.hist_stats("merge.deflation_ratio")
    assert dr is not None and dr["count"] == col.counter("merge.count")
    assert 0.0 <= dr["max"] <= 1.0
    g = col.hist_stats("merge.deflation_ratio.givens")
    z = col.hist_stats("merge.deflation_ratio.smallz")
    assert g["count"] == z["count"] == dr["count"]
    it = col.hist_stats("secular.iterations")
    assert it is not None and it["count"] == col.counter("secular.roots")
    assert it["min"] >= 0
    assert col.gauges["workspace.high_water_bytes"] > 0
    assert col.gauges["workspace.x_block_bytes"] > 0


# -- exporters --------------------------------------------------------------

@pytest.fixture(scope="module")
def instrumented(problem):
    d, e = problem
    col = Collector()
    opts = DCOptions(minpart=32, telemetry=col)
    res = dc_eigh(d, e, options=opts, backend="threads", n_workers=3,
                  full_result=True)
    return col, res.trace


def test_write_jsonl(instrumented):
    col, trace = instrumented
    buf = io.StringIO()
    n = write_jsonl(buf, col, trace)
    lines = [json.loads(ln) for ln in buf.getvalue().splitlines()]
    assert len(lines) == n > 0
    assert lines[0]["type"] == "meta" and lines[0]["version"] == 1
    assert lines[0]["n_workers"] == 3
    types = {ln["type"] for ln in lines}
    assert {"meta", "task", "span", "counter", "hist",
            "gauge", "sample"} <= types


def test_chrome_trace_document(instrumented):
    col, trace = instrumented
    doc = chrome_trace(trace, col)
    assert json.loads(json.dumps(doc)) == doc
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "C", "X"} <= phases
    pids = {e["pid"] for e in events}
    assert pids == {0, 1, 2}
    # Solver spans live on pid 1; merge hierarchy rows on pid 2.
    span_names = {e["name"] for e in events
                  if e["ph"] == "X" and e["pid"] == 1}
    assert "solve" in span_names and "execute" in span_names
    merge_rows = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
    assert merge_rows and all(e["name"].startswith("merge[")
                              for e in merge_rows)
    # The root merge is level 0 (contained by nothing); smaller merges
    # nest below it on higher-numbered rows.
    root = max(merge_rows, key=lambda e: e["args"]["hi"] - e["args"]["lo"])
    assert root["tid"] == 0
    assert max(e["tid"] for e in merge_rows) > 0


def test_prometheus_text(instrumented):
    col, trace = instrumented
    text = prometheus_text(col, trace)
    assert "# TYPE repro_scheduler_tasks_total counter" in text
    assert "repro_trace_makespan_seconds" in text
    assert 'quantile="0.9"' in text
    for line in text.splitlines():
        assert line.startswith("#") or len(line.split(" ")) == 2


def test_exporters_on_empty_collector():
    # Edge case: a Collector that never saw a solve must still export
    # valid documents from every format.
    empty = Collector()
    buf = io.StringIO()
    n = write_jsonl(buf, empty)
    lines = [json.loads(ln) for ln in buf.getvalue().splitlines()]
    assert len(lines) == n == 1 and lines[0]["type"] == "meta"
    from repro.runtime.trace import Trace
    doc = chrome_trace(Trace(n_workers=0), empty)
    assert json.loads(json.dumps(doc)) == doc
    text = prometheus_text(empty)
    assert text == "\n"
    from tests.test_live_obs import assert_prometheus_grammar
    empty.add("x")
    assert_prometheus_grammar(prometheus_text(empty))


def test_telemetry_block_deterministic_across_identical_solves(problem):
    # Two identical simulated solves must produce identical telemetry
    # blocks (virtual time is deterministic, digests included).
    d, e = problem

    def block():
        col = Collector()
        res = _solve(d, e, collector=col, backend="simulated", n_workers=4)
        return telemetry_block(col, res.trace)

    a, b = block(), block()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["merge_deflation_ratio"]["count"] > 0


def test_prometheus_hostile_names_escaped():
    # Regression: metric names with format-illegal characters and label
    # values with quotes/newlines/backslashes must not corrupt the
    # exposition output.
    from repro.obs import prom_label_value, prom_name

    assert prom_name('merge.deflation%ratio{x="y"}') == \
        "repro_merge_deflation_ratio_x__y__"
    assert prom_name("9lives") == "repro_9lives"
    assert prom_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    col = Collector()
    col.add('hostile metric{say="hi"}')
    col.observe('also.bad-name percentile', 1.0)
    col.gauge_max("trailing.dot.", 2.0)
    text = prometheus_text(col)
    from tests.test_live_obs import assert_prometheus_grammar
    assert_prometheus_grammar(text)
    assert "repro_hostile_metric_say__hi___total 1" in text
    assert "repro_also_bad_name_percentile_count 1" in text
    assert "repro_trailing_dot_ 2" in text


def test_digest_backed_hists_in_collector():
    # The high-cardinality histograms stream through digests: exact
    # counts/min/max/sum, bounded memory, and hist_stats-compatible.
    col = Collector()
    col.observe_many("merge.deflation_ratio", [0.1, 0.2, 0.3])
    col.observe("secular.iterations", 4.0)
    col.observe("some.small.hist", 1.0)          # stays a plain list
    assert "merge.deflation_ratio" in col.digests
    assert "some.small.hist" not in col.digests
    st = col.hist_stats("merge.deflation_ratio")
    assert st["count"] == 3 and st["min"] == 0.1 and st["max"] == 0.3
    assert st["sum"] == pytest.approx(0.6)
    assert set(col.hist_names()) == {"merge.deflation_ratio",
                                     "secular.iterations",
                                     "some.small.hist"}


def test_telemetry_block_and_summary(instrumented):
    col, trace = instrumented
    block = telemetry_block(col, trace)
    assert block["n_tasks"] == len(trace.events)
    assert 0.0 <= block["idle_fraction"] <= 1.0
    assert block["steal_attempts"] >= block["steal_successes"]
    assert block["merge_deflation_ratio"]["count"] > 0
    assert block["secular_iterations"]["count"] > 0
    assert block["workspace_high_water_bytes"] > 0
    text = telemetry_summary(col, trace)
    for needle in ("steal attempts", "deflation ratio", "LAED4 iterations",
                   "solve phases", "workspace peak"):
        assert needle in text
    # Degenerate inputs stay usable.
    assert telemetry_block(None) == {}
    assert telemetry_summary(None) == ""
    empty = Collector()
    assert "deflation ratio  : (none)" in telemetry_summary(empty)


def test_pool_trace_worker_thread_names(problem):
    # Satellite: WorkerPool traces carry pool-worker-N thread_name
    # metadata so Perfetto rows are identifiable in long-lived sessions.
    from repro.core.session import SolverSession

    d, e = problem
    with SolverSession(backend="threads", n_workers=3) as s:
        res = s.solve(d, e, full_result=True)
    doc = chrome_trace(res.trace)
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "thread_name" and e["pid"] == 0}
    assert names == {"pool-worker-0", "pool-worker-1", "pool-worker-2"}


# -- CLI --------------------------------------------------------------------

def test_cli_trace_out(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "artifacts"
    assert main(["trace", "--size", "150", "--backend", "threads",
                 "--cores", "3", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "steal attempts" in text and "LAED4 iterations" in text
    for fname in ("trace.jsonl", "trace_chrome.json", "gantt.txt",
                  "summary.txt", "telemetry.prom"):
        assert (out / fname).exists(), fname
    with open(out / "trace_chrome.json") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    with open(out / "trace.jsonl") as fh:
        assert all(json.loads(ln) for ln in fh)
