"""Unit tests for the merge internals (repro.core.merge / costs / options)."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, FIG3_CONFIGS, build_tree, submit_dc
from repro.core.costs import (cost_compute_deflation, cost_laed4,
                              cost_permute, cost_stedc, cost_update_vect)
from repro.core.merge import panel_ranges
from repro.runtime import SequentialScheduler, TaskGraph


def solved_context(n=120, minpart=40, nb=32, seed=0, **kw):
    rng = np.random.default_rng(seed)
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    ctx = DCContext(d, e, DCOptions(minpart=minpart, nb=nb, **kw))
    g = TaskGraph()
    info = submit_dc(g, ctx)
    SequentialScheduler().run(g)
    return ctx, info


def test_panel_ranges():
    assert panel_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert panel_ranges(4, 4) == [(0, 4)]
    assert panel_ranges(3, 100) == [(0, 3)]
    assert panel_ranges(0, 4) == [(0, 0)]


def test_effective_nb_auto():
    opts = DCOptions()
    assert opts.effective_nb(100) == 32          # floor
    assert opts.effective_nb(6400) == 100        # n/64
    assert opts.effective_nb(10 ** 6) == 256     # cap
    assert DCOptions(nb=77).effective_nb(123456) == 77


def test_options_validation():
    with pytest.raises(ValueError):
        DCOptions(minpart=0)
    with pytest.raises(ValueError):
        DCOptions(nb=0)
    # with_ preserves other fields.
    o = DCOptions(minpart=10).with_(nb=5)
    assert o.minpart == 10 and o.nb == 5


def test_fig3_configs_cover_paper_variants():
    assert set(FIG3_CONFIGS) == {"sequential", "parallel-gemm",
                                 "parallel-merge", "full-taskflow"}
    assert FIG3_CONFIGS["parallel-gemm"].fork_join
    assert FIG3_CONFIGS["parallel-merge"].level_barrier
    assert not FIG3_CONFIGS["full-taskflow"].level_barrier


def test_context_validation():
    with pytest.raises(ValueError):
        DCContext(np.empty(0), np.empty(0), DCOptions())
    with pytest.raises(ValueError):
        DCContext(np.ones(4), np.ones(4), DCOptions())
    with pytest.raises(ValueError):
        DCContext(np.ones(4), np.ones(3), DCOptions(), subset=np.array([9]))


def test_merge_state_accounting():
    ctx, info = solved_context()
    st = info.states[(0, 120)]
    n = st.n
    k = st.k
    # Permute accounting covers exactly the nonzero structure.
    total_rows = sum(st.permute_rows_moved(p0, p1)
                     for (p0, p1) in panel_ranges(n, 32))
    k1, k2, k3 = st.defl.ctot
    expected = (k1 * st.n1 + k2 * n + k3 * (n - st.n1)
                + (n - k) * n)
    assert total_rows == expected
    # Copy-back covers the deflated columns only.
    cb = sum(st.copyback_rows_moved(p0, p1)
             for (p0, p1) in panel_ranges(n, 32))
    assert cb == (n - k) * n
    # update_vect_shape clips to the non-deflated range.
    n1, n2, k12, k23, m = st.update_vect_shape(0, 32)
    assert n1 == st.n1 and n1 + n2 == n
    assert m == min(32, k)
    assert st.update_vect_shape(n - 1, n)[4] <= 1


def test_merge_stats_recorded():
    ctx, info = solved_context()
    stats = ctx.merge_stats
    assert len(stats) == info.tree.count_leaves() - 1
    for s in stats:
        assert 0 <= s.k <= s.n
        assert 0.0 <= s.deflation_ratio <= 1.0
    # The root merge is the largest.
    assert stats[-1].n == 120


def test_cost_functions_scale():
    assert cost_stedc(64).flops == 9.0 * 64 ** 3
    assert cost_permute(100).bytes_moved == 1600
    assert cost_laed4(100, 10).flops == pytest.approx(
        cost_laed4(100, 20).flops / 2)
    c = cost_update_vect(50, 50, 30, 40, 10)
    assert c.flops == 2.0 * 10 * (50 * 30 + 50 * 40)
    assert cost_compute_deflation(1000).flops > 0


def test_clip_roots_noop_panels():
    """Panels entirely past k are no-ops — the matrix-independent DAG."""
    n = 128
    d = np.ones(n)
    e = np.full(n - 1, 1e-15)       # nearly everything deflates
    ctx = DCContext(d, e, DCOptions(minpart=64, nb=16))
    g = TaskGraph()
    info = submit_dc(g, ctx)
    SequentialScheduler().run(g)
    st = info.states[(0, n)]
    assert st.k <= 2
    assert st.clip_roots(16, 32).size == 0
    assert st.update_cols(16, 32).size == 0
    lam, V = ctx.result()
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-12


def test_vws_reuse_across_merges_is_safe():
    """The shared workspace is reused by every merge; dependencies must
    make that safe (verified by numerics on a deep tree)."""
    ctx, info = solved_context(n=160, minpart=10, nb=8)
    lam, V = ctx.result()
    d, e = ctx.d_in, ctx.e_in
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 2e-12
