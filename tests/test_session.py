"""SolverSession: bitwise equivalence, fused-batch isolation, pooling.

The session layer must be invisible to the numerics: results obtained
through a persistent session — concurrent submissions fused into one
super-DAG, workspaces recycled dirty across solves — are bitwise
identical to one-shot ``dc_eigh`` solves.  These tests pin that, plus
the service semantics: per-problem fault isolation inside a fused batch,
workspace-arena accounting, LRU template eviction, handle lifecycle and
session shutdown.
"""

import threading
import time

import numpy as np
import pytest

from repro import dc_eigh
from repro.core import DCOptions, SolveFailure, SolverSession, WorkspacePool
from repro.core.graph_cache import graph_template_cache
from repro.errors import InputError, SchedulerError, TaskFailure
from repro.matrices import test_matrix as table3_matrix
from repro.runtime import FaultSpec, TaskGraph, WorkerPool
from repro.runtime.quark import Quark


def _problem(n=150, mtype=4, seed=7):
    return table3_matrix(mtype, n, seed=seed)


# ---------------------------------------------------------------------------
# Bitwise equivalence with one-shot dc_eigh
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend,workers", [("sequential", None),
                                             ("threads", 2),
                                             ("threads", 4)])
def test_session_matches_one_shot_bitwise(backend, workers):
    d, e = _problem()
    lam0, V0 = dc_eigh(d, e)
    with SolverSession(backend=backend, n_workers=workers) as s:
        for _ in range(3):          # repeats exercise dirty-buffer reuse
            lam, V = s.solve(d, e)
            np.testing.assert_array_equal(lam0, lam)
            np.testing.assert_array_equal(V0, V)


def test_concurrent_submissions_bitwise_and_unaliased():
    problems = [_problem(seed=s) for s in range(6)]
    expected = [dc_eigh(d, e) for d, e in problems]
    with SolverSession(backend="threads", n_workers=4) as s:
        handles = [s.submit(d, e) for d, e in problems]
        results = [h.result() for h in handles]
    for (lam0, V0), (lam, V) in zip(expected, results):
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)
    # Pooled workspaces must never leak into returned results.
    for i in range(len(results)):
        for j in range(i + 1, len(results)):
            assert not np.shares_memory(results[i][1], results[j][1])


def test_session_subset_matches_one_shot():
    d, e = _problem(n=120)
    subset = np.arange(15, 40)
    lam0, V0 = dc_eigh(d, e, subset=subset)
    with SolverSession(backend="threads", n_workers=4) as s:
        lam, V = s.solve(d, e, subset=subset)
    assert V.shape == (120, 25)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)


def test_same_matrix_resubmitted_results_identical_not_shared():
    d, e = _problem()
    with SolverSession(backend="sequential") as s:
        lam1, V1 = s.solve(d, e)
        lam2, V2 = s.solve(d, e)
    np.testing.assert_array_equal(lam1, lam2)
    np.testing.assert_array_equal(V1, V2)
    assert not np.shares_memory(V1, V2)


def test_session_full_result_and_latency():
    d, e = _problem(n=100)
    with SolverSession(backend="threads", n_workers=2) as s:
        h = s.submit(d, e, full_result=True)
        res = h.result()
    assert res.trace.makespan > 0
    assert h.done()
    assert h.latency_s is not None and h.latency_s > 0
    lam0, V0 = dc_eigh(d, e)
    np.testing.assert_array_equal(res.lam, lam0)
    np.testing.assert_array_equal(res.V, V0)


def test_session_n1_fast_path():
    with SolverSession(backend="threads") as s:
        lam, V = s.solve(np.array([3.0]), np.array([]))
    assert lam[0] == 3.0 and V.shape == (1, 1)


# ---------------------------------------------------------------------------
# Fault isolation inside a fused batch
# ---------------------------------------------------------------------------

def test_fused_batch_isolates_bad_input():
    good_d, good_e = _problem()
    bad_d = good_d.copy()
    bad_d[7] = np.nan
    with SolverSession(backend="threads", n_workers=4) as s:
        out = s.map([(good_d, good_e), (bad_d, good_e),
                     (good_d, good_e)])
    assert isinstance(out[1], SolveFailure) and out[1].index == 1
    assert isinstance(out[1].error, InputError)
    assert "d[7]" in str(out[1].error)
    lam0, V0 = dc_eigh(good_d, good_e)
    for ok in (out[0], out[2]):
        np.testing.assert_array_equal(ok[0], lam0)
        np.testing.assert_array_equal(ok[1], V0)


def test_fused_batch_isolates_task_failure_to_one_subgraph():
    problems = [_problem(seed=s) for s in range(3)]
    failing = DCOptions(fault_injection=FaultSpec(kernel="ReduceW", nth=0))
    with SolverSession(backend="threads", n_workers=4) as s:
        handles = [s.submit(*problems[0]),
                   s.submit(*problems[1], options=failing),
                   s.submit(*problems[2])]
        with pytest.raises(TaskFailure, match="ReduceW"):
            handles[1].result()
        assert isinstance(handles[1].exception(), TaskFailure)
        # Batch-mates complete bitwise-correct despite the failed peer.
        for h, (d, e) in ((handles[0], problems[0]),
                          (handles[2], problems[2])):
            lam0, V0 = dc_eigh(d, e)
            lam, V = h.result()
            np.testing.assert_array_equal(lam0, lam)
            np.testing.assert_array_equal(V0, V)


def test_map_raise_on_error():
    d, e = _problem()
    bad = d.copy()
    bad[0] = np.inf
    with SolverSession(backend="threads", n_workers=2) as s:
        with pytest.raises(InputError):
            s.map([(d, e), (bad, e)], raise_on_error=True)


# ---------------------------------------------------------------------------
# Workspace pool
# ---------------------------------------------------------------------------

def test_workspace_pool_recycles_and_accounts():
    pool = WorkspacePool(max_free_per_shape=2)
    a = pool.take((4, 4))
    assert pool.misses == 1 and pool.owned_bytes == 128
    a[:] = 7.0
    pool.release(a)
    b = pool.take((4, 4))
    assert b is a and pool.hits == 1      # dirty buffer handed back
    pool.forget(b)
    assert pool.owned_bytes == 0
    assert pool.high_water_bytes == 128


def test_workspace_pool_global_byte_cap_evicts_lru_shapes():
    # Distinct (k,k) shapes model deflation-dependent merge X buffers:
    # without the global cap every k ever seen would retain free lists.
    pool = WorkspacePool(max_free_bytes=300)
    bufs = [pool.take((k, k)) for k in range(2, 7)]
    for b in bufs:
        pool.release(b)
    st = pool.stats()
    assert st["free_bytes"] <= 300
    assert st["evictions"] >= 1
    assert st["owned_bytes"] == st["free_bytes"]
    # The most recently released shape survives eviction (LRU order).
    assert pool.take((6, 6)) is bufs[-1]


def test_workspace_pool_drops_beyond_cap():
    pool = WorkspacePool(max_free_per_shape=1)
    bufs = [pool.take((3, 3)) for _ in range(3)]
    for b in bufs:
        pool.release(b)
    st = pool.stats()
    assert st["free_buffers"] == 1
    assert st["owned_bytes"] == 72        # two of three dropped
    assert st["high_water_bytes"] == 3 * 72


def test_session_pools_workspaces_across_solves():
    d, e = _problem(n=100)
    with SolverSession(backend="sequential") as s:
        s.solve(d, e)
        first = s.stats()["workspace"]
        s.solve(d, e)
        second = s.stats()["workspace"]
    assert first["misses"] >= 2           # V + Vws allocated fresh
    assert second["hits"] > first["hits"]  # second solve recycled buffers


def test_one_shot_dc_eigh_does_not_pool():
    d, e = _problem(n=80)
    s = SolverSession(backend="sequential", _one_shot=True,
                      workspace_pool=False)
    assert s.stats().get("workspace") is None
    lam, V = s.solve(d, e)
    np.testing.assert_array_equal(lam, dc_eigh(d, e)[0])


# ---------------------------------------------------------------------------
# Graph template cache: LRU + counters
# ---------------------------------------------------------------------------

def test_session_reuses_template_per_shape():
    graph_template_cache.clear()
    problems = [_problem(seed=s) for s in range(4)]
    with SolverSession(backend="threads", n_workers=2) as s:
        out = s.map(problems)
    assert len(out) == 4
    assert graph_template_cache.misses == 1
    assert graph_template_cache.hits == 3


def test_template_cache_lru_eviction_order():
    from repro.core.graph_cache import GraphTemplateCache, build_template
    from repro.core.merge import DCContext
    from repro.core.tasks import submit_dc
    from repro.core.tree import build_tree

    cache = GraphTemplateCache(maxsize=2)
    opts = DCOptions()

    def put(n):
        d, e = _problem(n=n)
        ctx = DCContext(d, e, opts)
        graph = TaskGraph()
        info = submit_dc(graph, ctx, build_tree(n, opts.minpart))
        key = (n,)
        cache.put(build_template(graph, info, key))
        return key

    ka, kb = put(70), put(80)
    assert cache.get(ka) is not None      # refresh A: B is now LRU
    put(90)                               # evicts B, not A
    assert cache.evictions == 1
    assert cache.get(ka) is not None
    assert cache.get(kb) is None
    st = cache.stats()
    assert st["evictions"] == 1 and st["size"] == 2


def test_cache_eviction_counter_reaches_telemetry():
    from repro.obs import Collector
    graph_template_cache.clear()
    old = graph_template_cache.maxsize
    graph_template_cache.maxsize = 1
    try:
        col = Collector()
        opts = DCOptions(reuse_graph=True, telemetry=col)
        for n in (60, 70):
            d, e = _problem(n=n)
            dc_eigh(d, e, options=opts)
        assert col.counters.get("graph_cache.evictions") == 1
        from repro.obs import telemetry_block
        assert telemetry_block(col)["cache_evictions"] == 1
    finally:
        graph_template_cache.maxsize = old
        graph_template_cache.clear()


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------

def test_submit_after_close_raises():
    d, e = _problem(n=60)
    s = SolverSession(backend="threads", n_workers=2)
    s.solve(d, e)
    s.close()
    with pytest.raises(SchedulerError, match="closed"):
        s.submit(d, e)
    s.close()                             # idempotent


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_handle_timeout_leaves_handle_reusable(backend):
    """``result(timeout=)``/``exception(timeout=)`` hitting the deadline
    raise ``SchedulerError`` but must not poison the handle — a later
    untimed wait returns the correct result — and must not count as a
    failure in the session metrics (the solve itself never failed)."""
    d, e = _problem(n=600)
    lam0, V0 = dc_eigh(d, e)
    with SolverSession(backend=backend, n_workers=2) as s:
        h = s.submit(d, e)
        with pytest.raises(SchedulerError, match="timed out"):
            h.result(timeout=1e-6)
        with pytest.raises(SchedulerError, match="timed out"):
            h.exception(timeout=1e-9)
        lam, V = h.result()               # untimed: blocks to completion
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)
        assert h.exception() is None
        assert h.done()
        assert s.metrics.failures == 0    # no phantom failure recorded
        assert s.metrics.solves == 1


def test_close_drains_outstanding_solves():
    problems = [_problem(seed=s) for s in range(4)]
    s = SolverSession(backend="threads", n_workers=2)
    handles = [s.submit(d, e) for d, e in problems]
    s.close()                             # waits, then stops the workers
    for h in handles:
        lam, V = h.result()
        assert lam.shape == (150,)


def test_failed_run_defers_completion_until_inflight_tasks_return():
    """A failed run's on_done (which recycles workspace buffers) must not
    fire while a task of that run is still executing on another worker."""
    from repro.runtime.task import DataHandle, OUTPUT
    executing = [0]
    release = threading.Event()

    def slow():
        executing[0] += 1
        try:
            release.wait(5.0)
        finally:
            executing[0] -= 1

    def boom():
        time.sleep(0.05)        # let `slow` get onto the other worker
        raise RuntimeError("boom")

    g = TaskGraph()
    g.insert_task(slow, [(DataHandle(), OUTPUT)], name="slow")
    g.insert_task(boom, [(DataHandle(), OUTPUT)], name="boom")
    inflight_at_done = []
    pool = WorkerPool(n_workers=2)
    try:
        run = pool.submit(
            g, on_done=lambda r: inflight_at_done.append(executing[0]))
        time.sleep(0.3)         # boom failed; slow still holds a worker
        assert not run.wait(0)  # completion deferred, not signalled early
        release.set()
        assert run.wait(5.0)
        assert inflight_at_done == [0]
        with pytest.raises(TaskFailure, match="boom"):
            run.result(timeout=1.0)
    finally:
        release.set()
        pool.shutdown()


def test_shutdown_fails_stranded_runs_instead_of_hanging():
    """Queued-but-never-run tasks at shutdown fail their run with a
    typed error; a waiting result() raises instead of blocking forever."""
    from repro.runtime.task import DataHandle, OUTPUT
    started = threading.Event()
    release = threading.Event()

    def hold():
        started.set()
        release.wait(5.0)

    g1 = TaskGraph()
    g1.insert_task(hold, [(DataHandle(), OUTPUT)], name="hold")
    g2 = TaskGraph()
    g2.insert_task(lambda: None, [(DataHandle(), OUTPUT)], name="never")
    pool = WorkerPool(n_workers=1)
    run1 = pool.submit(g1)
    assert started.wait(5.0)
    run2 = pool.submit(g2)     # queued behind `hold` on the only worker
    closer = threading.Thread(target=pool.shutdown)
    closer.start()
    time.sleep(0.05)           # shutdown flag is set; worker still busy
    release.set()
    closer.join(timeout=10.0)
    assert not closer.is_alive()
    assert run1.result(timeout=5.0) is not None
    with pytest.raises(SchedulerError, match="shut down"):
        run2.result(timeout=5.0)


def test_worker_pool_rejects_submit_after_shutdown():
    pool = WorkerPool(n_workers=2)
    pool.shutdown()
    assert pool.closed
    with pytest.raises(SchedulerError):
        pool.submit(TaskGraph())
    pool.shutdown()                       # idempotent


def test_fuse_preserves_results():
    """TaskGraph.fuse of independent graphs runs like one graph."""
    problems = [_problem(n=90, seed=s) for s in range(3)]
    expected = [dc_eigh(d, e) for d, e in problems]
    from repro.core.merge import DCContext
    from repro.core.tasks import submit_dc
    from repro.core.tree import build_tree
    opts = DCOptions()
    ctxs, graphs = [], []
    for d, e in problems:
        ctx = DCContext(d, e, opts)
        g = TaskGraph()
        submit_dc(g, ctx, build_tree(d.shape[0], opts.minpart))
        ctxs.append(ctx)
        graphs.append(g)
    fused = TaskGraph.fuse(graphs)
    q = Quark("threads", n_workers=4)
    q.graph = fused
    q.barrier()
    for ctx, (lam0, V0) in zip(ctxs, expected):
        lam, V = ctx.result()
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)
