"""Engine conformance: one behavioural contract, seven executors.

Every execution substrate — sequential, threads, worker pool, processes,
and the three virtual machines (simulated / cluster / hetero) — runs on
the shared engine (:mod:`repro.runtime.engine`).  This suite pins the
contract the engine owns, parameterized over all of them:

* priority order on a crafted DAG (single-worker configs so the ready
  order is observable in the trace);
* first-failure cancellation: an injected fault surfaces as
  :class:`~repro.errors.TaskFailure` with the faulted task's ``seq``,
  and no dependent task runs after it;
* ``nth``-match fault determinism: the same :class:`FaultSpec` kills
  the same task on every backend;
* flight-ring occupancy: one ``task`` event per executed task on every
  substrate, including the virtual machines;
* run isolation: two concurrently-submitted pool runs do not share
  failure state;
* the privacy boundary: no runtime module imports another runtime
  module's underscore-private names (engine.py is the only shared
  internals surface).

Payloads are module-level functions so the ``processes`` backend can
pickle them into spawn children.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.errors import TaskFailure
from repro.obs.live import FlightRecorder
from repro.runtime import (
    INOUT, INPUT, ClusterMachine, DataHandle, FaultInjector, FaultSpec,
    HeteroMachine, Machine, ProcScheduler, SequentialScheduler,
    SimulatedMachine, TaskGraph, ThreadScheduler, WorkerPool,
)

RUNTIME_DIR = (Path(__file__).resolve().parents[1]
               / "src" / "repro" / "runtime")


# -- picklable payloads (module-level: the processes backend spawns) ------

_RAN: list[str] = []


def _noop():
    return None


def _record(label):
    # Visible to in-process backends only; spawn children mutate a copy.
    _RAN.append(label)
    return label


# -- one-worker executor per substrate ------------------------------------
#
# Single-worker configs make the dispatch order equal to the engine's
# ready order, so priority handling is observable from the trace.

def _one_core() -> Machine:
    return Machine(n_cores=1, n_sockets=1)


def _run_sequential(graph, injector=None, flight=None):
    return SequentialScheduler(injector=injector, flight=flight).run(graph)


def _run_threads(graph, injector=None, flight=None):
    return ThreadScheduler(1, injector=injector, flight=flight).run(graph)


def _run_pool(graph, injector=None, flight=None):
    pool = WorkerPool(1, flight=flight)
    try:
        run = pool.submit(graph, injector=injector)
        run.wait()
    finally:
        pool.shutdown()
    return run.result()


def _run_processes(graph, injector=None, flight=None):
    return ProcScheduler(1, injector=injector, flight=flight).run(graph)


def _run_simulated(graph, injector=None, flight=None):
    return SimulatedMachine(_one_core(), injector=injector,
                            flight=flight).run(graph)


def _run_cluster(graph, injector=None, flight=None):
    return ClusterMachine(n_nodes=1, machine=_one_core(),
                          injector=injector, flight=flight).run(graph)


def _run_hetero(graph, injector=None, flight=None):
    return HeteroMachine(machine=_one_core(), accelerators=0,
                         injector=injector, flight=flight).run(graph)


EXECUTORS = {
    "sequential": _run_sequential,
    "threads": _run_threads,
    "pool": _run_pool,
    "processes": _run_processes,
    "simulated": _run_simulated,
    "cluster": _run_cluster,
    "hetero": _run_hetero,
}

ALL = sorted(EXECUTORS)


# -- crafted DAGs ----------------------------------------------------------

PRIORITIES = [1, 9, 3, 7, 5]


def _fan_graph() -> TaskGraph:
    """One root, five independent leaves with distinct priorities."""
    g = TaskGraph()
    h = DataHandle("h")
    g.insert_task(_noop, [(h, INOUT)], name="root")
    for p in PRIORITIES:
        g.insert_task(_noop, [(h, INPUT)], name=f"leaf{p}", priority=p)
    return g


def _chain_graph(n: int, func=_noop, name="link") -> TaskGraph:
    """A serial chain: link i must run before link i+1 on any backend."""
    g = TaskGraph()
    h = DataHandle("h")
    for i in range(n):
        args = (f"{name}{i}",) if func is _record else ()
        g.insert_task(func, [(h, INOUT)], args=args, name=f"{name}{i}")
    return g


def _execution_order(trace) -> list[str]:
    return [e.name for e in sorted(trace.events,
                                   key=lambda e: (e.t_start, e.t_end))]


# -- priority order --------------------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_priority_order(name):
    trace = EXECUTORS[name](_fan_graph())
    names = _execution_order(trace)
    assert names[0] == "root"
    if name == "sequential":
        # Documented policy: the sequential substrate runs in submission
        # order (priorities are a concurrency concern).
        expected = [f"leaf{p}" for p in PRIORITIES]
    else:
        expected = [f"leaf{p}" for p in sorted(PRIORITIES, reverse=True)]
    assert names[1:] == expected


# -- first-failure cancellation --------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_first_failure_cancellation(name):
    _RAN.clear()
    g = _chain_graph(6, func=_record)
    target = g.tasks[3].seq
    inj = FaultInjector(FaultSpec(task_seq=target))
    with pytest.raises(TaskFailure) as ei:
        EXECUTORS[name](g, injector=inj)
    assert ei.value.seq == target
    assert inj.injected == 1
    if name != "processes":      # spawn children mutate their own _RAN
        # Everything before the fault ran, nothing after it did.
        assert _RAN == ["link0", "link1", "link2"]


# -- nth-match fault determinism -------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_nth_fault_deterministic(name):
    # Five tasks of the same kernel name in a chain: the chain fixes the
    # execution order, so ``nth=2`` is the same task on every backend.
    g = TaskGraph()
    h = DataHandle("h")
    for _ in range(5):
        g.insert_task(_noop, [(h, INOUT)], name="Kernel")
    expected_seq = g.tasks[2].seq
    inj = FaultInjector(FaultSpec(kernel="Kernel", nth=2))
    with pytest.raises(TaskFailure) as ei:
        EXECUTORS[name](g, injector=inj)
    assert ei.value.seq == expected_seq


# -- flight-ring occupancy -------------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_flight_ring_records_every_task(name):
    g = _fan_graph()
    n_tasks = len(g.tasks)
    expected_names = {t.name for t in g.tasks}
    fr = FlightRecorder(capacity=256)
    EXECUTORS[name](g, flight=fr)
    task_events = [ev for ev in fr.snapshot() if ev["kind"] == "task"]
    assert len(task_events) == n_tasks
    assert {ev["name"] for ev in task_events} == expected_names


# -- run isolation ---------------------------------------------------------

def test_concurrent_runs_isolated():
    """Two fused runs on one pool: a fault in one never leaks into the
    other (per-run countdowns, errors and cancellation state)."""
    good = _chain_graph(8, name="good")
    bad = _chain_graph(8, name="bad")
    inj = FaultInjector(FaultSpec(task_seq=bad.tasks[2].seq))
    pool = WorkerPool(2)
    try:
        r_good = pool.submit(good)
        r_bad = pool.submit(bad, injector=inj)
        assert r_good.wait(timeout=60.0)
        assert r_bad.wait(timeout=60.0)
    finally:
        pool.shutdown()
    assert not r_good.errors
    trace = r_good.result()
    assert sorted(e.name for e in trace.events) \
        == sorted(f"good{i}" for i in range(8))
    assert r_bad.failed
    assert isinstance(r_bad.errors[0], TaskFailure)
    with pytest.raises(TaskFailure):
        r_bad.result()


# -- privacy boundary ------------------------------------------------------

def test_no_private_cross_module_imports():
    """Outside engine.py, no runtime module may import another module's
    underscore-private names (the engine is the one shared-internals
    surface; everything else talks through public APIs)."""
    offenders: list[str] = []
    for path in sorted(RUNTIME_DIR.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level >= 1:
                for alias in node.names:
                    if alias.name.startswith("_"):
                        offenders.append(
                            f"{path.name}:{node.lineno}: "
                            f"from {'.' * node.level}{node.module or ''} "
                            f"import {alias.name}")
    assert not offenders, (
        "private cross-module imports in runtime/:\n" + "\n".join(offenders))
