"""Tests for the heterogeneous machine extension (repro.runtime.hetero)."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, submit_dc
from repro.runtime import (Accelerator, DataHandle, GPU_OFFLOAD_POLICY,
                           HeteroMachine, INPUT, Machine, OUTPUT,
                           SequentialScheduler, SimulatedMachine, TaskCost,
                           TaskGraph)


def test_offload_policy_matches_paper_ref16():
    # [16]: "both the secular equation and the GEMMs are computed on GPUs"
    assert "LAED4" in GPU_OFFLOAD_POLICY
    assert "UpdateVect" in GPU_OFFLOAD_POLICY
    assert "PermuteV" not in GPU_OFFLOAD_POLICY


def test_hetero_respects_dependencies():
    g = TaskGraph()
    h = DataHandle("x", payload=[0])
    order = []
    for i in range(5):
        g.insert_task(lambda i=i: order.append(i), [(h, OUTPUT if i == 0
                                                     else INPUT)],
                      name="UpdateVect" if i % 2 else "PermuteV",
                      cost=TaskCost(flops=1e6))
    HeteroMachine(Machine(), execute=True).run(g)
    assert order[0] == 0          # the writer runs first
    assert sorted(order) == list(range(5))


def test_gpu_accelerates_offloadable_kernels():
    g = TaskGraph()
    for i in range(32):
        g.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                      name="UpdateVect", cost=TaskCost(flops=5e9))
    cpu = SimulatedMachine(Machine(), n_workers=16, execute=False).run(g)
    g2 = TaskGraph()
    for i in range(32):
        g2.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                       name="UpdateVect", cost=TaskCost(flops=5e9))
    het = HeteroMachine(Machine(), accelerators=1,
                        accel=Accelerator(gflops=900, n_streams=4),
                        execute=False).run(g2)
    # A 900-GFlop accelerator plus the host beats 16 18-GFlop cores.
    assert het.makespan < cpu.makespan


def test_transfer_cost_charged_on_crossing():
    slow_pcie = Accelerator(gflops=900, n_streams=2, pcie_bw=1e7)
    fast_pcie = Accelerator(gflops=900, n_streams=2, pcie_bw=1e12)

    def build():
        g = TaskGraph()
        h = DataHandle("V")
        # Host produces data, GPU kernel consumes it, host consumes back.
        g.insert_task(lambda: None, [(h, OUTPUT)], name="PermuteV",
                      cost=TaskCost(bytes_moved=5e8))
        g.insert_task(lambda: None, [(h, INPUT)], name="UpdateVect",
                      cost=TaskCost(flops=1e6))
        return g

    t_slow = HeteroMachine(Machine(), accel=slow_pcie,
                           execute=False).run(build()).makespan
    t_fast = HeteroMachine(Machine(), accel=fast_pcie,
                           execute=False).run(build()).makespan
    assert t_slow > t_fast * 2


def test_dc_on_hetero_machine_correct_and_faster():
    rng = np.random.default_rng(0)
    n = 400
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    ctx = DCContext(d, e, DCOptions(minpart=64, nb=32))
    g = TaskGraph()
    submit_dc(g, ctx)
    SequentialScheduler().run(g)
    t_cpu = SimulatedMachine(Machine(), n_workers=16,
                             execute=False).run(g).makespan
    t_het = HeteroMachine(Machine(), execute=False).run(g).makespan
    assert t_het < t_cpu          # offload helps on GEMM-heavy solves
    lam, V = ctx.result()
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12


def test_hetero_trace_well_formed():
    g = TaskGraph()
    hs = [DataHandle() for _ in range(8)]
    for i, h in enumerate(hs):
        g.insert_task(lambda: None, [(h, OUTPUT)],
                      name="UpdateVect" if i % 2 else "STEDC",
                      cost=TaskCost(flops=1e8 * (i + 1)))
    m = Machine()
    het = HeteroMachine(m, accelerators=1)
    tr = het.run(g)
    assert len(tr.events) == 8
    assert tr.n_workers == m.n_cores + het.n_accel_streams
    for ev in tr.events:
        assert ev.t_end >= ev.t_start >= 0.0
