"""Tests for the D&C SVD extension (repro.core.svd + bidiagonalize)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.svd import svd, svd_bidiagonal, tgk_tridiagonal
from repro.kernels import apply_ql, apply_qr, bidiagonalize


def bidiag(q, r):
    B = np.diag(np.asarray(q, float))
    r = np.asarray(r, float)
    if r.size:
        B += np.diag(r, 1)
    return B


def check_svd(A, U, s, Vt, tol=1e-11):
    m, n = A.shape
    k = s.shape[0]
    scale = max(1.0, float(np.max(np.abs(A))))
    assert np.all(np.diff(s) <= 1e-300)           # descending
    assert np.all(s >= 0)
    assert np.max(np.abs(U.T @ U - np.eye(k))) < tol * max(m, n)
    assert np.max(np.abs(Vt @ Vt.T - np.eye(k))) < tol * max(m, n)
    assert np.max(np.abs((U * s[None, :]) @ Vt - A)) < tol * max(m, n) * scale


# ---------------------------------------------------------------------------
# TGK form
# ---------------------------------------------------------------------------

def test_tgk_structure():
    d, e = tgk_tridiagonal([1.0, 2.0, 3.0], [4.0, 5.0])
    np.testing.assert_array_equal(d, np.zeros(6))
    np.testing.assert_array_equal(e, [1, 4, 2, 5, 3])


def test_tgk_spectrum_is_plus_minus_singular_values():
    rng = np.random.default_rng(0)
    q = rng.normal(size=6)
    r = rng.normal(size=5)
    d, e = tgk_tridiagonal(q, r)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    lam = np.linalg.eigvalsh(T)
    s = np.linalg.svd(bidiag(q, r), compute_uv=False)
    np.testing.assert_allclose(np.sort(np.abs(lam)),
                               np.sort(np.concatenate([s, s])), atol=1e-12)


def test_tgk_bad_shapes():
    with pytest.raises(ValueError):
        tgk_tridiagonal([1.0, 2.0], [1.0, 2.0])


# ---------------------------------------------------------------------------
# bidiagonalization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shape", [(5, 5), (8, 5), (30, 12), (1, 1)])
def test_bidiagonalize_reconstructs(shape):
    rng = np.random.default_rng(shape[0] * 100 + shape[1])
    A = rng.normal(size=shape)
    bid = bidiagonalize(A)
    m, n = shape
    B = np.zeros((m, n))
    B[:n, :n] = bidiag(bid.q, bid.r)
    QL = bid.ql()
    QR = bid.qr()
    assert np.max(np.abs(QL.T @ QL - np.eye(m))) < 1e-13 * m
    assert np.max(np.abs(QR.T @ QR - np.eye(n))) < 1e-13 * n
    assert np.max(np.abs(QL @ B @ QR.T - A)) < 1e-12 * m * max(
        1.0, np.max(np.abs(A)))


def test_bidiagonalize_rejects_wide():
    with pytest.raises(ValueError):
        bidiagonalize(np.ones((2, 5)))


def test_apply_ql_qr_match_materialized():
    rng = np.random.default_rng(3)
    A = rng.normal(size=(10, 6))
    bid = bidiagonalize(A)
    C = rng.normal(size=(10, 3))
    np.testing.assert_allclose(apply_ql(bid, C), bid.ql() @ C, atol=1e-12)
    D = rng.normal(size=(6, 2))
    np.testing.assert_allclose(apply_qr(bid, D), bid.qr() @ D, atol=1e-12)


# ---------------------------------------------------------------------------
# bidiagonal SVD
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 3, 10, 80])
def test_svd_bidiagonal_random(n):
    rng = np.random.default_rng(n)
    q = rng.normal(size=n)
    r = rng.normal(size=n - 1)
    U, s, Vt = svd_bidiagonal(q, r)
    check_svd(bidiag(q, r), U, s, Vt)
    s_ref = np.linalg.svd(bidiag(q, r), compute_uv=False)
    np.testing.assert_allclose(s, s_ref, atol=1e-12 * max(1, n))


def test_svd_bidiagonal_rank_deficient():
    q = np.array([2.0, 0.0, 1.0, 3.0])
    r = np.array([0.3, 0.4, 0.5])
    U, s, Vt = svd_bidiagonal(q, r)
    check_svd(bidiag(q, r), U, s, Vt)
    assert s[-1] < 1e-12


def test_svd_bidiagonal_clustered_singular_values():
    # Equal-magnitude diagonal, tiny coupling -> tight sigma clusters.
    n = 40
    q = np.ones(n)
    r = np.full(n - 1, 1e-13)
    U, s, Vt = svd_bidiagonal(q, r)
    check_svd(bidiag(q, r), U, s, Vt)


def test_svd_bidiagonal_empty():
    with pytest.raises(ValueError):
        svd_bidiagonal(np.empty(0), np.empty(0))


# ---------------------------------------------------------------------------
# dense SVD pipeline
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shape", [(6, 6), (40, 25), (25, 40), (50, 7)])
def test_dense_svd(shape):
    rng = np.random.default_rng(shape[0])
    A = rng.normal(size=shape)
    U, s, Vt = svd(A)
    k = min(shape)
    assert U.shape == (shape[0], k) and Vt.shape == (k, shape[1])
    check_svd(A, U, s, Vt)
    np.testing.assert_allclose(
        s, np.linalg.svd(A, compute_uv=False), atol=1e-11 * max(shape))


def test_dense_svd_low_rank():
    rng = np.random.default_rng(9)
    A = rng.normal(size=(30, 3)) @ rng.normal(size=(3, 20))
    U, s, Vt = svd(A)
    assert np.sum(s > 1e-10) == 3
    check_svd(A, U, s, Vt)


def test_svd_backends_agree():
    rng = np.random.default_rng(11)
    A = rng.normal(size=(25, 15))
    U1, s1, V1 = svd(A, backend="sequential")
    U2, s2, V2 = svd(A, backend="threads", n_workers=3)
    np.testing.assert_array_equal(s1, s2)
    np.testing.assert_array_equal(U1, U2)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 25), st.integers(0, 2 ** 31 - 1))
def test_property_svd_invariants(n, seed):
    rng = np.random.default_rng(seed)
    q = rng.uniform(-3, 3, size=n)
    r = rng.uniform(-3, 3, size=n - 1)
    U, s, Vt = svd_bidiagonal(q, r)
    B = bidiag(q, r)
    check_svd(B, U, s, Vt)
    # Frobenius norm invariant.
    assert np.sum(s ** 2) == pytest.approx(np.sum(B * B), rel=1e-10)
