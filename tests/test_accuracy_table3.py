"""Table III accuracy gate: all 15 test matrix types at n≈300.

The paper's Table III reports ‖I − QQᵀ‖/n and ‖T − QΛQᵀ‖/(‖T‖n) around
1e-16 for every LAPACK test matrix type; this gate pins both metrics an
order of magnitude above that scale, for the sequential and the threads
backend (which must also agree bitwise, since scheduling freedom never
changes the numerics).
"""

import numpy as np
import pytest

from repro import dc_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual
from repro.matrices import MATRIX_TYPES
from repro.matrices import test_matrix as make_test_matrix

N = 300
GATE = 1e-15


@pytest.mark.parametrize("mtype", MATRIX_TYPES)
def test_table3_accuracy(mtype):
    d, e = make_test_matrix(mtype, N, seed=0)
    lam_seq, V_seq = dc_eigh(d, e, backend="sequential")
    assert np.all(np.diff(lam_seq) >= 0)
    assert orthogonality_error(V_seq) < GATE
    assert tridiagonal_residual(d, e, lam_seq, V_seq) < GATE

    lam_thr, V_thr = dc_eigh(d, e, backend="threads")
    np.testing.assert_array_equal(lam_seq, lam_thr)
    np.testing.assert_array_equal(V_seq, V_thr)
