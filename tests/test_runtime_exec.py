"""Execution-backend tests: sequential, threads, and simulator."""

import threading
import time

import pytest

from repro.runtime import (INPUT, OUTPUT, INOUT, GATHERV,
                           DataHandle, Machine, Quark, SequentialScheduler,
                           SimulatedMachine, TaskGraph, TaskCost,
                           ThreadScheduler)


def build_chain_graph(results):
    """out = ((0 + 1) * 3) recorded via a shared list."""
    g = TaskGraph()
    h = DataHandle("x", payload=[0])

    def add1():
        h.payload[0] += 1

    def mul3():
        h.payload[0] *= 3

    def record():
        results.append(h.payload[0])

    g.insert_task(add1, [(h, INOUT)], name="add1")
    g.insert_task(mul3, [(h, INOUT)], name="mul3")
    g.insert_task(record, [(h, INPUT)], name="record")
    return g


@pytest.mark.parametrize("scheduler", [
    SequentialScheduler(),
    ThreadScheduler(1),
    ThreadScheduler(4),
    SimulatedMachine(),
])
def test_chain_semantics(scheduler):
    results = []
    trace = scheduler.run(build_chain_graph(results))
    assert results == [3]
    assert len(trace.events) == 3


def test_thread_scheduler_runs_independent_tasks_concurrently():
    g = TaskGraph()
    barrier = threading.Barrier(2, timeout=5)

    def wait_at_barrier():
        barrier.wait()  # deadlocks unless two tasks run simultaneously

    g.insert_task(wait_at_barrier, [(DataHandle(), OUTPUT)], name="a")
    g.insert_task(wait_at_barrier, [(DataHandle(), OUTPUT)], name="b")
    ThreadScheduler(2).run(g)  # would raise BrokenBarrierError if serialized


def test_thread_scheduler_respects_dependencies_under_contention():
    # A diamond executed many times: failures in dependency resolution
    # would surface as wrong final values.
    for _ in range(20):
        g = TaskGraph()
        h = DataHandle("x", payload=[0])
        a = DataHandle("a", payload=[0])
        b = DataHandle("b", payload=[0])

        def set_x():
            h.payload[0] = 2

        def left():
            a.payload[0] = h.payload[0] + 1

        def right():
            b.payload[0] = h.payload[0] * 5

        out = []

        def join():
            out.append(a.payload[0] + b.payload[0])

        g.insert_task(set_x, [(h, OUTPUT)])
        g.insert_task(left, [(h, INPUT), (a, OUTPUT)])
        g.insert_task(right, [(h, INPUT), (b, OUTPUT)])
        g.insert_task(join, [(a, INPUT), (b, INPUT)])
        ThreadScheduler(4).run(g)
        assert out == [13]


def test_thread_scheduler_propagates_exceptions():
    from repro.errors import TaskFailure

    g = TaskGraph()

    def boom():
        raise ValueError("kernel failed")

    g.insert_task(boom, [(DataHandle(), OUTPUT)], name="boom")
    with pytest.raises(TaskFailure, match="kernel failed") as ei:
        ThreadScheduler(2).run(g)
    # Task context plus the original exception chained as the cause.
    assert ei.value.task_name == "boom"
    assert isinstance(ei.value.__cause__, ValueError)


# ---------------------------------------------------------------------------
# Simulator timing semantics
# ---------------------------------------------------------------------------

def _flops_task(g, flops, name="k", handle=None):
    h = handle or DataHandle()
    return g.insert_task(lambda: None, [(h, OUTPUT)], name=name,
                         cost=TaskCost(flops=flops))


def test_simulator_parallel_speedup_compute_bound():
    m = Machine(n_cores=4, n_sockets=1, core_gflops=1.0,
                kernel_efficiency=1.0, task_overhead=0.0)
    # 8 independent 1-GFlop tasks on 4 cores -> 2 waves -> 2 seconds.
    g = TaskGraph()
    for _ in range(8):
        _flops_task(g, 1e9)
    tr = SimulatedMachine(m).run(g)
    assert tr.makespan == pytest.approx(2.0, rel=1e-9)

    g = TaskGraph()
    for _ in range(8):
        _flops_task(g, 1e9)
    tr1 = SimulatedMachine(m, n_workers=1).run(g)
    assert tr1.makespan == pytest.approx(8.0, rel=1e-9)


def test_simulator_chain_is_serialized():
    m = Machine(n_cores=4, n_sockets=1, core_gflops=1.0,
                kernel_efficiency=1.0, task_overhead=0.0)
    g = TaskGraph()
    h = DataHandle("x")
    for _ in range(5):
        g.insert_task(lambda: None, [(h, INOUT)], cost=TaskCost(flops=1e9))
    tr = SimulatedMachine(m).run(g)
    assert tr.makespan == pytest.approx(5.0, rel=1e-9)


def test_simulator_bandwidth_saturation():
    """Memory-bound tasks share socket bandwidth: with stream_bw = bw/4,
    speedup saturates at 4 per socket (paper Fig. 5, type-2 curve)."""
    m = Machine(n_cores=8, n_sockets=1, core_gflops=1.0,
                kernel_efficiency=1.0, socket_bw=4e9, stream_bw=1e9,
                task_overhead=0.0)
    def run(p):
        g = TaskGraph()
        for _ in range(8):
            g.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                          name="PermuteV", cost=TaskCost(bytes_moved=1e9))
        return SimulatedMachine(m, n_workers=p).run(g).makespan

    t1, t4, t8 = run(1), run(4), run(8)
    assert t1 == pytest.approx(8.0, rel=1e-6)
    assert t4 == pytest.approx(2.0, rel=1e-6)      # 4 streams saturate
    assert t8 == pytest.approx(2.0, rel=1e-6)      # no extra speedup
    # Two sockets recover bandwidth (cores 8..15 on socket 1).
    m2 = Machine(n_cores=16, n_sockets=2, core_gflops=1.0,
                 kernel_efficiency=1.0, socket_bw=4e9, stream_bw=1e9,
                 task_overhead=0.0)
    g = TaskGraph()
    for _ in range(8):
        g.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                      name="PermuteV", cost=TaskCost(bytes_moved=1e9))
    t16 = SimulatedMachine(m2).run(g).makespan
    assert t16 == pytest.approx(1.0, rel=1e-6)


def test_simulator_lazy_costs_see_predecessor_results():
    m = Machine(n_cores=2, n_sockets=1, core_gflops=1.0,
                kernel_efficiency=1.0, task_overhead=0.0)
    g = TaskGraph()
    h = DataHandle("k", payload={})

    def produce():
        h.payload["k"] = 3e9

    g.insert_task(produce, [(h, OUTPUT)], cost=TaskCost(flops=1e9))
    g.insert_task(lambda: None, [(h, INPUT)],
                  cost=lambda: TaskCost(flops=h.payload["k"]))
    tr = SimulatedMachine(m).run(g)
    assert tr.makespan == pytest.approx(4.0, rel=1e-9)


def test_simulator_is_deterministic():
    m = Machine()
    def build():
        g = TaskGraph()
        hs = [DataHandle() for _ in range(6)]
        for i, h in enumerate(hs):
            g.insert_task(lambda: None, [(h, OUTPUT)], name=f"k{i%3}",
                          cost=TaskCost(flops=1e8 * (i + 1)))
        join = DataHandle()
        g.insert_task(lambda: None,
                      [(h, INPUT) for h in hs] + [(join, OUTPUT)],
                      cost=TaskCost(flops=5e8))
        return g
    t1 = SimulatedMachine(m).run(build())
    t2 = SimulatedMachine(m).run(build())
    assert t1.makespan == t2.makespan
    assert [e.name for e in t1.events] == [e.name for e in t2.events]


# ---------------------------------------------------------------------------
# Quark facade
# ---------------------------------------------------------------------------

def test_quark_barrier_executes_and_resets():
    q = Quark("sequential")
    h = q.new_handle("x", payload=[0])
    q.insert_task(lambda: h.payload.__setitem__(0, 7), [(h, OUTPUT)])
    trace = q.barrier()
    assert h.payload[0] == 7
    assert len(trace.events) == 1
    assert q.graph.n_tasks == 0  # fresh graph after barrier


def test_quark_simulated_defaults_to_paper_machine():
    q = Quark("simulated")
    assert q.n_workers == 16
    h = q.new_handle()
    q.insert_task(lambda: None, [(h, OUTPUT)], cost=TaskCost(flops=1.0))
    tr = q.barrier()
    assert tr.n_workers == 16
