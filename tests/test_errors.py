"""Typed error model: hierarchy, boundary validation, edge-case fixes."""

import numpy as np
import pytest

from repro import dc_eigh
from repro.errors import (ConvergenceError, GraphError, InjectedFault,
                          InputError, ReproError, SchedulerError,
                          TaskFailure, validate_subset,
                          validate_tridiagonal, wrap_task_error)


# ---------------------------------------------------------------------------
# Hierarchy: every typed error is a ReproError AND the builtin the
# pre-typed code raised, so old `except` clauses keep working.
# ---------------------------------------------------------------------------

def test_hierarchy_dual_inheritance():
    assert issubclass(InputError, ReproError)
    assert issubclass(InputError, ValueError)
    for cls in (ConvergenceError, TaskFailure, InjectedFault,
                GraphError, SchedulerError):
        assert issubclass(cls, ReproError)
        assert issubclass(cls, RuntimeError)


def test_task_failure_carries_context():
    exc = TaskFailure("boom", task_name="LAED4", seq=17,
                      tag=(0, 100), worker=3)
    assert exc.task_name == "LAED4"
    assert exc.seq == 17
    assert exc.tag == (0, 100)
    assert exc.worker == 3


def test_wrap_task_error_idempotent():
    class T:
        name, seq, tag = "K", 5, None
    inner = ValueError("x")
    wrapped = wrap_task_error(T(), inner)
    assert isinstance(wrapped, TaskFailure)
    assert "'K'" in str(wrapped) and "seq 5" in str(wrapped)
    # Re-wrapping a TaskFailure returns it unchanged.
    assert wrap_task_error(T(), wrapped) is wrapped


# ---------------------------------------------------------------------------
# Boundary validators
# ---------------------------------------------------------------------------

def test_validate_tridiagonal_names_offending_index():
    d = np.ones(20)
    e = np.ones(19)
    d[10] = np.nan
    with pytest.raises(InputError, match=r"d\[10\] is nan"):
        validate_tridiagonal(d, e)
    d[10] = 1.0
    e[3] = np.inf
    with pytest.raises(InputError, match=r"e\[3\] is inf"):
        validate_tridiagonal(d, e)


def test_validate_tridiagonal_shapes():
    with pytest.raises(InputError, match="1-D"):
        validate_tridiagonal(np.ones((3, 3)), np.ones(2))
    with pytest.raises(InputError, match="empty"):
        validate_tridiagonal([], [])
    with pytest.raises(InputError, match="length n-1"):
        validate_tridiagonal(np.ones(5), np.ones(5))


def test_validate_subset():
    assert validate_subset(None, 10) is None
    np.testing.assert_array_equal(validate_subset([3, 1, 3], 10), [1, 3])
    assert validate_subset([], 10).size == 0
    with pytest.raises(InputError, match="-1 is negative"):
        validate_subset([-1], 10)
    with pytest.raises(InputError, match="10 out of range"):
        validate_subset([10], 10)


# ---------------------------------------------------------------------------
# The dc_eigh API boundary: bad input fails fast with a typed error,
# never as a deep kernel RuntimeError.
# ---------------------------------------------------------------------------

def test_nan_input_raises_input_error_not_kernel_failure():
    rng = np.random.default_rng(0)
    d = rng.standard_normal(150)
    e = rng.standard_normal(149)
    d[10] = np.nan
    with pytest.raises(InputError, match=r"d\[10\] is nan"):
        dc_eigh(d, e)
    # InputError is a ValueError: pre-typed callers still catch it.
    with pytest.raises(ValueError):
        dc_eigh(d, e)


def test_inf_offdiag_rejected_on_threads_backend():
    rng = np.random.default_rng(1)
    d = rng.standard_normal(150)
    e = rng.standard_normal(149)
    e[42] = -np.inf
    with pytest.raises(InputError, match=r"e\[42\] is -inf"):
        dc_eigh(d, e, backend="threads")


# ---------------------------------------------------------------------------
# Edge-case bugfix: the n==1 fast path honours `subset`.
# ---------------------------------------------------------------------------

def test_n1_fast_path_honours_subset():
    lam, V = dc_eigh([5.0], [])
    assert lam.shape == (1,) and V.shape == (1, 1)
    lam, V = dc_eigh([5.0], [], subset=[0])
    assert lam.shape == (1,) and V.shape == (1, 1)
    assert lam[0] == 5.0
    lam, V = dc_eigh([5.0], [], subset=[])
    assert lam.shape == (0,)
    assert V.shape == (1, 0)


def test_n1_subset_out_of_range():
    with pytest.raises(InputError):
        dc_eigh([5.0], [], subset=[1])


def test_empty_subset_general_path():
    rng = np.random.default_rng(2)
    d = rng.standard_normal(100)
    e = rng.standard_normal(99)
    lam, V = dc_eigh(d, e, subset=[])
    assert lam.shape == (0,)
    assert V.shape == (100, 0)
