"""Live service observability: flight recorder, streaming digests,
post-mortem bundles, and the /metrics endpoint (repro/obs/live).
"""

import json
import math
import re
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import DCOptions
from repro.core.session import SolverSession
from repro.errors import TaskFailure
from repro.matrices import test_matrix as table3_matrix
from repro.obs import (Digest, FlightRecorder, SessionMetrics,
                       healthz_payload, live_metrics_text, write_postmortem)
from repro.runtime import FaultSpec


def _problem(n=220, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n), rng.standard_normal(n - 1)


# ---------------------------------------------------------------------------
# Prometheus exposition-format grammar (shared checker)
# ---------------------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:\\\\|\\"|\\n|[^"\\\n])*"'
_VALUE = r"-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"
_METRIC_LINE = re.compile(
    rf"^{_NAME}(?:\{{{_LABEL}(?:,{_LABEL})*\}})? {_VALUE}$")
_TYPE_LINE = re.compile(rf"^# TYPE {_NAME} (counter|gauge|summary)$")


def assert_prometheus_grammar(text):
    """Every line must be a valid exposition-format metric or comment."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _TYPE_LINE.match(line), f"bad comment line: {line!r}"
        else:
            assert _METRIC_LINE.match(line), f"bad metric line: {line!r}"


# ---------------------------------------------------------------------------
# Digest (streaming quantile sketch)
# ---------------------------------------------------------------------------

def test_digest_empty():
    d = Digest()
    assert d.stats() is None
    assert math.isnan(d.quantile(0.5))


def test_digest_exact_aggregates():
    d = Digest()
    xs = [3.0, 1.0, 4.0, 1.0, 5.0]
    d.add_many(xs)
    assert d.count == 5 and d.sum == sum(xs)
    assert d.min == 1.0 and d.max == 5.0
    assert d.mean == pytest.approx(sum(xs) / 5)


def test_digest_p99_within_2pct_on_unimodal_stream():
    # Acceptance gate: p50/p90/p99 within 2% of exact on a deterministic
    # 1e4-sample unimodal (latency-like) stream.
    rng = np.random.default_rng(42)
    xs = rng.lognormal(mean=0.0, sigma=0.5, size=10_000)
    d = Digest()
    d.add_many(xs)
    for q in (0.5, 0.9, 0.99):
        exact = float(np.quantile(xs, q))
        est = d.quantile(q)
        assert abs(est - exact) / exact < 0.02, (q, est, exact)


def test_digest_constant_memory():
    d = Digest(delta=200.0, buffer_size=512)
    rng = np.random.default_rng(0)
    d.add_many(rng.normal(size=100_000))
    # Bound: ~delta/2 centroids + the unflushed buffer.
    assert d.n_centroids <= d.delta / 2 + d.buffer_size
    assert d.count == 100_000


def test_digest_merge_matches_single_stream():
    rng = np.random.default_rng(7)
    xs = rng.lognormal(sigma=0.4, size=8000)
    whole = Digest()
    whole.add_many(xs)
    parts = [Digest() for _ in range(4)]
    for i, p in enumerate(parts):
        p.add_many(xs[i::4])
    merged = Digest.merged(parts)
    assert merged.count == whole.count == 8000
    assert merged.sum == pytest.approx(whole.sum)
    assert merged.min == whole.min and merged.max == whole.max
    for q in (0.5, 0.9, 0.99):
        exact = float(np.quantile(xs, q))
        assert abs(merged.quantile(q) - exact) / exact < 0.02


def test_digest_ramp_quantiles():
    d = Digest()
    d.add_many(float(i) for i in range(10_000))
    assert abs(d.quantile(0.5) - 5000.0) < 100.0
    assert abs(d.quantile(0.99) - 9900.0) < 100.0
    assert d.quantile(0.0) == 0.0 and d.quantile(1.0) == 9999.0


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def test_flight_recorder_bounded_and_ordered():
    fr = FlightRecorder(capacity=64, n_stripes=4)
    for i in range(500):
        fr.record("task", f"K{i}", worker=i % 3, task_seq=i)
    occ = fr.occupancy()
    assert occ["capacity"] == 64
    assert occ["size"] <= 64
    assert occ["recorded"] == 500
    assert occ["dropped"] == 500 - occ["size"]
    snap = fr.snapshot()
    seqs = [ev["seq"] for ev in snap]
    assert seqs == sorted(seqs)
    # Round-robin striping: retention stays near full capacity (the
    # oldest retained event is recent).
    assert seqs[0] >= 500 - 64 - 4
    assert fr.snapshot(last=10) == snap[-10:]


def test_flight_recorder_concurrent_appends():
    fr = FlightRecorder(capacity=4096, n_stripes=8)

    def spam(w):
        for i in range(300):
            fr.record("task", "K", worker=w, task_seq=i)

    threads = [threading.Thread(target=spam, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    occ = fr.occupancy()
    assert occ["recorded"] == 1200 and occ["dropped"] == 0
    assert len(fr.snapshot()) == 1200


def test_flight_recorder_task_events():
    class T:
        name, seq, tag = "LAED4", 17, (0, 100)

    fr = FlightRecorder()
    fr.record_task(T(), worker=2, t0=fr.t0_abs + 1.0, t1=fr.t0_abs + 2.0)
    (ev,) = fr.snapshot()
    assert ev["kind"] == "task" and ev["name"] == "LAED4"
    assert ev["worker"] == 2 and ev["task_seq"] == 17
    assert ev["detail"] == "(0, 100)"
    assert ev["t0"] == pytest.approx(1.0) and ev["t1"] == pytest.approx(2.0)


def test_flight_snapshot_trims_to_contiguous_suffix():
    # White-box: per-stripe rings evict independently, so after
    # wraparound a stripe can hold a stale survivor from an older epoch.
    # Craft that state directly: capacity 8, 2 stripes (per-stripe 4),
    # stripe 0 = seqs (8, 10, 12, 14), stripe 1 = (1, 9, 11, 13) — seq 1
    # is a pre-wraparound straggler that a naive sorted union would
    # replay with a 7-event hole after it.
    fr = FlightRecorder(capacity=8, n_stripes=2)

    def ev(seq):
        return (seq, "task", f"K{seq}", -1, -1, 0.0, 0.0, "")

    for seq in (8, 10, 12, 14):
        fr._stripes[0][1].append(ev(seq))
    for seq in (1, 9, 11, 13):
        fr._stripes[1][1].append(ev(seq))
    fr._next_seq = 15

    seqs = [e["seq"] for e in fr.snapshot()]
    assert seqs == [8, 9, 10, 11, 12, 13, 14]   # contiguous, seq 1 trimmed
    occ = fr.occupancy()
    assert occ == {"capacity": 8, "size": 8, "recorded": 15,
                   "dropped": 7, "trimmed": 1, "replayable": 7}


def test_flight_occupancy_is_read_only():
    # Regression: the recorded counter must be observable without being
    # consumed — repeated occupancy() calls agree, and the next event
    # still gets the next sequence number.
    fr = FlightRecorder(capacity=16, n_stripes=2)
    for _ in range(5):
        fr.record("task", "K")
    assert fr.occupancy()["recorded"] == 5
    assert fr.occupancy()["recorded"] == 5
    fr.record("task", "K")
    occ = fr.occupancy()
    assert occ["recorded"] == 6 and occ["dropped"] == 0
    assert [e["seq"] for e in fr.snapshot()] == list(range(6))


# ---------------------------------------------------------------------------
# Session metrics
# ---------------------------------------------------------------------------

def test_session_metrics_merge_across_sessions():
    a, b = SessionMetrics(), SessionMetrics()
    for i in range(100):
        a.note_solve(0.010 + i * 1e-4)
        b.note_solve(0.020 + i * 1e-4, failed=(i == 0), n_tasks=5)
    merged = SessionMetrics.merged([a, b])
    assert merged.solves == 200
    assert merged.failures == 1
    assert merged.tasks == 500
    st = merged.digest_stats()["latency_s"]
    assert st["count"] == 200
    assert st["min"] == pytest.approx(0.010)
    assert st["max"] == pytest.approx(0.020 + 99e-4)
    assert merged.last_solve_age_s() is not None


def test_session_records_metrics_and_flight():
    d, e = _problem(160)
    with SolverSession(backend="threads", n_workers=2,
                       options=DCOptions(minpart=32)) as s:
        lam0, V0 = s.solve(d, e)
        lam1, V1 = s.solve(d, e)
        np.testing.assert_array_equal(lam0, lam1)
        np.testing.assert_array_equal(V0, V1)
        assert s.metrics.solves == 2
        assert s.metrics.failures == 0
        assert s.metrics.tasks > 0
        dig = s.metrics.digest_stats()
        assert dig["latency_s"]["count"] == 2
        assert dig["deflation_ratio"]["count"] > 0
        occ = s.flight.occupancy()
        assert occ["recorded"] >= s.metrics.tasks
        kinds = {ev["kind"] for ev in s.flight.snapshot()}
        assert {"task", "solve.done"} <= kinds
        stats = s.stats()
        assert stats["flight"]["recorded"] == occ["recorded"]
        assert stats["metrics"]["solves"] == 2


def test_session_flight_opt_out():
    d, e = _problem(80)
    with SolverSession(backend="sequential", flight=False) as s:
        s.solve(d, e)
        assert s.flight is None
        assert s.metrics.solves == 1


# ---------------------------------------------------------------------------
# Post-mortem bundles
# ---------------------------------------------------------------------------

def _read_bundle(path):
    lines = [json.loads(ln) for ln in path.read_text().splitlines()]
    head, events = lines[0], lines[1:]
    assert head["type"] == "postmortem" and head["version"] == 1
    assert all(ev["type"] == "event" for ev in events)
    assert head["n_events"] == len(events)
    return head, events


def test_postmortem_bundle_on_task_failure(tmp_path):
    d, e = table3_matrix(4, 420, seed=2)
    with SolverSession(backend="sequential",
                       options=DCOptions(minpart=32)) as s:
        res = s.solve(d, e, full_result=True)        # healthy: count tasks
        n_tasks = len(res.graph.tasks)
        assert n_tasks >= 256
        spec = FaultSpec(task_seq=n_tasks - 1)       # fail the last task
        opts = DCOptions(minpart=32, postmortem_dir=str(tmp_path),
                         fault_injection=spec)
        with pytest.raises(TaskFailure) as ei:
            s.submit(d, e, options=opts).result()
        assert s.metrics.failures == 1

    (bundle,) = sorted(tmp_path.glob("postmortem-*.jsonl"))
    head, events = _read_bundle(bundle)
    assert head["reason"] == "solve-failure"
    # The typed error names the failing task.
    err = head["error"]
    assert err["type"] == "TaskFailure"
    task = err["task"]
    assert task["seq"] == ei.value.seq
    assert task["name"] == ei.value.task_name
    assert "worker" in task                     # None on the seq backend
    # The solve's options and fault spec are replayable from the header.
    assert head["options"]["postmortem_dir"] == str(tmp_path)
    assert head["options"]["fault_injection"]["task_seq"] == n_tasks - 1
    assert head["calibration"]["key"]
    assert head["session"]["metrics"]["solves"] == 2
    assert head["flight"]["capacity"] >= len(events)
    # The ring replays the run-up to the failure, including the failing
    # task itself.
    assert len(events) >= 256
    fails = [ev for ev in events if ev["kind"] == "task.fail"]
    assert any(ev["task_seq"] == ei.value.seq and ev["worker"] >= 0
               for ev in fails)
    assert sum(ev["kind"] == "task" for ev in events) >= 256


def test_postmortem_bundle_on_steqr_fallback(tmp_path, monkeypatch):
    from repro.errors import ConvergenceError

    def boom(*args, **kwargs):
        raise ConvergenceError("synthetic secular failure")

    monkeypatch.setattr("repro.core.merge.solve_secular", boom)
    d, e = _problem(200, seed=1)
    opts = DCOptions(postmortem_dir=str(tmp_path))
    with SolverSession(backend="sequential", options=opts) as s:
        lam, V = s.solve(d, e)                  # succeeds via the fallback
    assert np.isfinite(lam).all()
    (bundle,) = sorted(tmp_path.glob("postmortem-*.jsonl"))
    head, events = _read_bundle(bundle)
    assert head["reason"] == "steqr-fallback"
    assert "error" not in head
    assert head["metrics"]["fallbacks"] > 0
    assert events


def test_postmortem_env_var(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_POSTMORTEM_DIR", str(tmp_path))
    d, e = _problem(150, seed=4)
    spec = FaultSpec(kernel="LAED4", nth=0)
    with SolverSession(backend="threads", n_workers=2) as s:
        with pytest.raises(TaskFailure):
            s.submit(d, e,
                     options=DCOptions(fault_injection=spec)).result()
    assert list(tmp_path.glob("postmortem-*.jsonl"))


def test_write_postmortem_minimal(tmp_path):
    path = write_postmortem(str(tmp_path), reason="test",
                            error=ValueError("boom"))
    head, events = _read_bundle(tmp_path / path.split("/")[-1])
    assert head["reason"] == "test"
    assert head["error"] == {"type": "ValueError", "message": "boom"}
    assert head["options"] is None
    assert events == []


# ---------------------------------------------------------------------------
# Live metrics text + health + /metrics endpoint
# ---------------------------------------------------------------------------

def test_live_metrics_text_grammar_and_counters():
    d, e = _problem(150)
    with SolverSession(backend="threads", n_workers=2) as s:
        s.solve(d, e)
        text = live_metrics_text(s)
    assert_prometheus_grammar(text)
    assert "repro_session_solves_total 1\n" in text
    assert "repro_session_failures_total 0\n" in text
    assert 'repro_session_latency_s{quantile="0.99"}' in text
    assert "repro_pool_workers_alive 2\n" in text
    assert "repro_flight_recorded_total" in text


def test_healthz_transitions():
    s = SolverSession(backend="threads", n_workers=2)
    status, payload = healthz_payload(s)
    assert status == 200 and payload["status"] == "ok"
    s.close()
    status, payload = healthz_payload(s)
    assert status == 503 and payload["status"] == "closed"


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode()


@pytest.fixture()
def served_session():
    with SolverSession(backend="threads", n_workers=2,
                       serve_port=0) as s:
        yield s, s.server.address


def test_metrics_endpoint(served_session):
    s, addr = served_session
    d, e = _problem(150)
    s.solve(d, e)
    status, ctype, body = _get(addr + "/metrics")
    assert status == 200 and ctype.startswith("text/plain")
    assert_prometheus_grammar(body)
    assert "repro_session_solves_total 1\n" in body


def test_healthz_and_debug_endpoints(served_session):
    s, addr = served_session
    status, ctype, body = _get(addr + "/healthz")
    assert status == 200 and ctype == "application/json"
    assert json.loads(body)["status"] == "ok"
    status, _, body = _get(addr + "/debug/state")
    state = json.loads(body)
    assert state["backend"] == "threads"
    assert state["closed"] is False
    assert "flight" in state and "metrics" in state


def test_solve_endpoint_increments_counters(served_session):
    s, addr = served_session
    _, _, before = _get(addr + "/metrics")
    m = re.search(r"^repro_session_solves_total (\d+)", before, re.M)
    n0 = int(m.group(1))
    status, _, body = _get(addr + "/solve?n=200&type=4&seed=0")
    assert status == 200
    out = json.loads(body)
    assert out["n"] == 200 and out["latency_s"] > 0
    assert out["lam_min"] <= out["lam_max"]
    _, _, after = _get(addr + "/metrics")
    m = re.search(r"^repro_session_solves_total (\d+)", after, re.M)
    assert int(m.group(1)) == n0 + 1


def test_unknown_endpoint_404(served_session):
    _, addr = served_session
    with pytest.raises(urllib.error.HTTPError) as ei:
        _get(addr + "/nope")
    assert ei.value.code == 404
    doc = json.loads(ei.value.read().decode())
    assert "/metrics" in doc["endpoints"]


def test_server_closes_with_session():
    s = SolverSession(backend="threads", n_workers=2, serve_port=0)
    addr = s.server.address
    s.close()
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        _get(addr + "/healthz")


# ---------------------------------------------------------------------------
# Bitwise identity with the full service layer on
# ---------------------------------------------------------------------------

def test_results_identical_with_service_layer(tmp_path):
    from repro import dc_eigh

    d, e = table3_matrix(2, 160, seed=5)
    lam0, V0 = dc_eigh(d, e)
    opts = DCOptions(postmortem_dir=str(tmp_path))
    with SolverSession(backend="threads", n_workers=3, options=opts,
                       serve_port=0, profile_interval_s=0.002) as s:
        lam1, V1 = s.solve(d, e)
    np.testing.assert_array_equal(lam0, lam1)
    np.testing.assert_array_equal(V0, V1)
    assert not list(tmp_path.glob("*.jsonl"))    # healthy: no bundle
