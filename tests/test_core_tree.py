"""Tests for the partition tree (repro.core.tree)."""

import pytest

from repro.core import build_tree
from repro.core.tree import Node


def test_paper_example_fig2():
    # n=1000 with minimal partition 300 -> four leaves of 250 (paper Fig. 2).
    t = build_tree(1000, 300)
    leaves = list(t.leaves())
    assert [l.n for l in leaves] == [250, 250, 250, 250]
    assert t.height == 2
    assert len(t.merges_by_level()) == 2


def test_single_leaf_when_small():
    t = build_tree(10, 64)
    assert t.is_leaf
    assert t.n == 10
    assert list(t.post_order()) == [t]
    assert t.cut_points() == []


def test_leaf_sizes_bounded_and_cover():
    for n in (1, 2, 63, 64, 65, 100, 1001):
        t = build_tree(n, 64)
        leaves = list(t.leaves())
        assert all(1 <= l.n <= 64 for l in leaves)
        # Leaves tile [0, n) in order.
        pos = 0
        for l in leaves:
            assert l.lo == pos
            pos = l.hi
        assert pos == n


def test_cut_points_match_merges():
    t = build_tree(1000, 300)
    cuts = t.cut_points()
    merges = [node for node in t.post_order() if not node.is_leaf]
    assert sorted(cuts) == sorted(node.mid for node in merges)
    assert len(cuts) == len(list(t.leaves())) - 1


def test_post_order_children_first():
    t = build_tree(512, 64)
    seen = set()
    for node in t.post_order():
        if not node.is_leaf:
            assert (node.left.lo, node.left.hi) in seen
            assert (node.right.lo, node.right.hi) in seen
        seen.add((node.lo, node.hi))


def test_merges_by_level_bottom_up():
    t = build_tree(512, 64)
    levels = t.merges_by_level()
    sizes = [sorted(nd.n for nd in lev) for lev in levels]
    # Deeper levels have smaller merges; the last level is the root.
    assert levels[-1] == [t]
    for a, b in zip(sizes, sizes[1:]):
        assert max(a) <= min(b)


def test_mid_on_leaf_raises():
    with pytest.raises(ValueError):
        build_tree(5, 10).mid


def test_empty_raises():
    with pytest.raises(ValueError):
        build_tree(0, 10)
