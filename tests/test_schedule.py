"""Critical-path scheduling layer: calibration, b-levels, adaptive nb.

Four promises are pinned here:

1. Scheduling is invisible to the numerics — priorities never change a
   single bit, and any fixed panel-width plan gives bitwise identical
   results on every backend (the bitwise-equivalence matrix).
2. b-level priorities are monotone: a task's priority is never smaller
   than any successor's, so every leaf ``STEDC`` outranks the root
   ``ReduceW`` it (transitively) feeds.  (The issue text asks for "root
   ReduceW >= any leaf STEDC", which is inverted: b-level is the
   *remaining* critical path, which shrinks toward the sink.)
3. The calibration module is deterministic by default, overridable, and
   participates in the DAG template-cache key.
4. On the overhead-calibrated simulated machine the full scheduling
   stack (priorities + adaptive widths) strictly improves the makespan
   of a low-deflation Fig-6 shape.
"""

import numpy as np
import pytest

from repro import dc_eigh
from repro.core import DCContext, DCOptions, submit_dc
from repro.core.calibrate import (DEFAULT_CALIBRATION, Calibration,
                                  from_machine, get_calibration,
                                  set_calibration)
from repro.core.graph_cache import graph_template_cache, template_key
from repro.core.options import _ADAPTIVE_MIN_NB
from repro.matrices import test_matrix as table3_matrix
from repro.runtime import (Machine, SequentialScheduler, SimulatedMachine,
                           TaskGraph)


@pytest.fixture(autouse=True)
def _reset_calibration():
    yield
    set_calibration(None)


def _graph_for(d, e, opts):
    graph = TaskGraph()
    submit_dc(graph, DCContext(d, e, opts))
    return graph


# ---------------------------------------------------------------------------
# calibration


def test_default_calibration_is_deterministic():
    assert DEFAULT_CALIBRATION.source == "default"
    assert DEFAULT_CALIBRATION.task_overhead_s > 0
    assert DEFAULT_CALIBRATION.secular_sweeps > 0
    assert get_calibration() is DEFAULT_CALIBRATION


def test_set_calibration_override_roundtrip():
    cal = Calibration(flop_rate=1e9, source="test")
    set_calibration(cal)
    assert get_calibration() is cal
    set_calibration(None)
    assert get_calibration() is DEFAULT_CALIBRATION


def test_calibration_validates():
    with pytest.raises(ValueError):
        Calibration(flop_rate=0.0)
    with pytest.raises(ValueError):
        Calibration(secular_sweeps=-1.0)


def test_calibration_seconds_uses_gemm_rate_for_updatevect():
    from repro.runtime.task import TaskCost
    cal = Calibration()
    cost = TaskCost(flops=1e9)
    assert cal.seconds(cost, "UpdateVect") < cal.seconds(cost, "LAED4")
    # Memory traffic and overheads are additive.
    slow = TaskCost(flops=1e9, bytes_moved=1e9, serial_overhead=1.0)
    assert cal.seconds(slow, "LAED4") > cal.seconds(cost, "LAED4") + 1.0


def test_from_machine_matches_simulator_rates():
    m = Machine()
    cal = from_machine(m)
    assert cal.source == "machine"
    assert cal.gemm_flop_rate == pytest.approx(m.core_gflops * 1e9)
    assert cal.flop_rate == pytest.approx(
        m.core_gflops * 1e9 * m.kernel_efficiency)
    assert cal.task_overhead_s == pytest.approx(m.task_overhead)


def test_host_calibration_probes_run():
    # Regression: the axpy probe used ``out += y`` on the closed-over
    # buffer, which rebinds ``out`` as a local and crashed the whole
    # host probe with UnboundLocalError before any timing ran.
    from repro.core.calibrate import host_calibration
    cal = host_calibration()
    assert cal.source == "host"
    for v in (cal.flop_rate, cal.gemm_flop_rate, cal.mem_bw,
              cal.task_overhead_s, cal.secular_sweeps):
        assert v > 0 and v == v  # positive, not NaN
    assert cal.givens_crossover >= 1
    assert host_calibration() is cal  # memoized once per process


def test_calibration_key_is_hashable_and_distinct():
    a = Calibration()
    b = Calibration(flop_rate=2 * a.flop_rate)
    assert hash(a.key) is not None
    assert a.key != b.key
    assert a.key == Calibration().key


# ---------------------------------------------------------------------------
# adaptive panel-width policy


def test_node_nb_fixed_when_adaptive_off():
    opts = DCOptions()
    n = 2000
    assert opts.node_nb(125, n) == opts.effective_nb(n)
    assert opts.node_nb(n, n) == opts.effective_nb(n)


def test_node_nb_explicit_nb_wins():
    opts = DCOptions(nb=48, adaptive_nb=True)
    assert opts.node_nb(2000, 2000) == 48
    assert opts.node_nb(100, 2000) == 48


def test_node_nb_deep_levels_get_full_panels():
    opts = DCOptions(adaptive_nb=True, target_parallelism=16)
    n = 4096
    # 32 concurrent merges of 128 saturate 16 workers: one panel each.
    assert opts.node_nb(128, n) == 128


def test_node_nb_spine_splits_into_narrow_panels():
    opts = DCOptions(adaptive_nb=True, target_parallelism=16)
    n = 4096
    root_nb = opts.node_nb(n, n)
    assert root_nb < n
    assert root_nb >= _ADAPTIVE_MIN_NB
    # The root must expose at least one panel per planned worker.
    assert n // root_nb >= 16


def test_node_nb_respects_cost_floor():
    opts = DCOptions(adaptive_nb=True, target_parallelism=16)
    for node_n in (256, 512, 1024, 4096):
        nb = opts.node_nb(node_n, 4096)
        assert nb >= min(node_n, _ADAPTIVE_MIN_NB)


def test_target_parallelism_validation():
    with pytest.raises(ValueError):
        DCOptions(target_parallelism=0)
    with pytest.raises(ValueError):
        DCOptions(priority_mode="bogus")


# ---------------------------------------------------------------------------
# b-level priorities


def test_blevel_monotone_along_every_edge():
    d, e = table3_matrix(4, 300, seed=3)
    graph = _graph_for(d, e, DCOptions())
    assert any(t.priority > 0 for t in graph.tasks)
    for t in graph.tasks:
        for s in t.successors:
            assert t.priority >= s.priority, (
                f"{t.name} (prio {t.priority}) feeds {s.name} "
                f"(prio {s.priority}): b-level must not increase "
                "along an edge")


def test_blevel_leaf_stedc_outranks_root_reduce():
    d, e = table3_matrix(4, 300, seed=3)
    graph = _graph_for(d, e, DCOptions())
    stedc = [t.priority for t in graph.tasks if t.name == "STEDC"]
    reduce_w = [t.priority for t in graph.tasks if t.name == "ReduceW"]
    assert stedc and reduce_w
    # Leaves carry the whole remaining critical path; the root-merge
    # ReduceW only what is left after it.  (See module docstring for
    # why the issue's phrasing is inverted.)
    assert min(stedc) >= min(reduce_w)
    assert max(stedc) >= max(reduce_w)
    # The highest b-level of all belongs to an entry task (a source
    # carries the entire remaining critical path).
    top = max(t.priority for t in graph.tasks)
    assert any(t.priority == top for t in graph.tasks if not t.n_deps)


def test_priority_mode_none_leaves_priorities_flat():
    d, e = table3_matrix(4, 300, seed=3)
    graph = _graph_for(d, e, DCOptions(priority_mode="none"))
    assert all(t.priority == 0 for t in graph.tasks)


def test_blevels_method_matches_longest_path():
    graph = TaskGraph()
    from repro.runtime.task import Task
    a = Task(lambda: None, (), name="a")
    b = Task(lambda: None, (), name="b")
    c = Task(lambda: None, (), name="c")
    for t in (a, b, c):
        graph.submit(t)
    a.add_successor(c)
    b.add_successor(c)
    est = {id(a): 5.0, id(b): 1.0, id(c): 2.0}
    bl = graph.blevels(lambda t: est[id(t)])
    assert bl == [7.0, 3.0, 2.0]


# ---------------------------------------------------------------------------
# bitwise-equivalence matrix


@pytest.mark.parametrize("mtype", [2, 4])
def test_priorities_never_change_bits(mtype):
    d, e = table3_matrix(mtype, 150, seed=21)
    lam0, V0 = dc_eigh(d, e, options=DCOptions(priority_mode="none"))
    lam1, V1 = dc_eigh(d, e, options=DCOptions(priority_mode="blevel"))
    np.testing.assert_array_equal(lam0, lam1)
    np.testing.assert_array_equal(V0, V1)


@pytest.mark.parametrize("priority_mode", ["none", "blevel"])
@pytest.mark.parametrize("adaptive", [False, True])
def test_backends_bitwise_identical_per_plan(priority_mode, adaptive):
    # Each (priority, nb-plan) cell is one fixed DAG shape; within a
    # cell every backend must produce identical bits.  (Different nb
    # plans may differ in the last ulp — panel boundaries change the
    # ReduceW product association — which is why adaptive_nb is opt-in.)
    d, e = table3_matrix(3, 160, seed=22)
    opts = DCOptions(priority_mode=priority_mode, adaptive_nb=adaptive,
                     target_parallelism=8)
    lam0, V0 = dc_eigh(d, e, options=opts)
    for backend, workers in (("threads", 4), ("threads", 8),
                             ("simulated", 4)):
        lam, V = dc_eigh(d, e, options=opts, backend=backend,
                         n_workers=workers)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_session_fused_batches_bitwise_with_priorities():
    from repro import SolverSession
    d, e = table3_matrix(2, 140, seed=23)
    opts = DCOptions(priority_mode="blevel")
    lam0, V0 = dc_eigh(d, e, options=opts)
    with SolverSession(backend="threads", n_workers=4,
                       options=opts) as session:
        handles = [session.submit(d, e) for _ in range(3)]
        for h in handles:
            lam, V = h.result()
            np.testing.assert_array_equal(lam0, lam)
            np.testing.assert_array_equal(V0, V)


def test_graph_cache_reuse_preserves_priorities_and_bits():
    d, e = table3_matrix(4, 170, seed=24)
    opts = DCOptions(priority_mode="blevel", reuse_graph=True)
    graph_template_cache.clear()
    lam0, V0 = dc_eigh(d, e, options=opts)          # miss: builds template
    lam1, V1 = dc_eigh(d, e, options=opts)          # hit: instantiates
    assert graph_template_cache.hits >= 1
    np.testing.assert_array_equal(lam0, lam1)
    np.testing.assert_array_equal(V0, V1)

    # The instantiated graph re-creates the b-levels of a fresh build.
    fresh = _graph_for(d, e, DCOptions(priority_mode="blevel"))
    ctx = DCContext(d, e, DCOptions(priority_mode="blevel",
                                    reuse_graph=True))
    cached, _ = graph_template_cache.get_or_build(
        ctx, template_key(ctx.n, ctx.opts))
    assert [t.priority for t in cached.tasks] \
        == [t.priority for t in fresh.tasks]


def test_template_key_separates_scheduling_plans():
    n = 512
    keys = {template_key(n, DCOptions(priority_mode="none")),
            template_key(n, DCOptions(priority_mode="blevel")),
            template_key(n, DCOptions(priority_mode="blevel",
                                      adaptive_nb=True)),
            template_key(n, DCOptions(priority_mode="blevel",
                                      adaptive_nb=True,
                                      target_parallelism=4))}
    assert len(keys) == 4
    # The calibration is part of the plan: changing it must miss.
    base = template_key(n, DCOptions())
    set_calibration(Calibration(flop_rate=1e9, source="test"))
    assert template_key(n, DCOptions()) != base


# ---------------------------------------------------------------------------
# observability


def test_schedule_counters_recorded():
    from repro.obs import Collector
    col = Collector()
    d, e = table3_matrix(4, 500, seed=25)
    dc_eigh(d, e, options=DCOptions(telemetry=col))
    assert col.counter("schedule.blevel_tasks") > 0
    assert col.counter("schedule.blevel_s") > 0
    assert col.gauges.get("schedule.priority_span", 0) > 0
    assert col.hist_stats("schedule.level_nb")["count"] > 0


def test_trace_events_carry_priorities():
    from repro.obs import chrome_trace
    d, e = table3_matrix(4, 500, seed=25)
    res = dc_eigh(d, e, backend="simulated", n_workers=4,
                  full_result=True)
    prios = [ev.priority for ev in res.trace.events]
    assert any(p > 0 for p in prios)
    doc = chrome_trace(res.trace, None)
    rows = [ev for ev in doc["traceEvents"]
            if ev.get("ph") == "X" and ev.get("cat") == "task"]
    assert rows and all("priority" in ev["args"] for ev in rows)


# ---------------------------------------------------------------------------
# deterministic makespan improvement (small-scale mirror of the
# BENCH_schedule gate; virtual time, so stable on any host)


def test_scheduling_stack_improves_simulated_makespan():
    d, e = table3_matrix(4, 1200, seed=0)
    machine = Machine(task_overhead=DEFAULT_CALIBRATION.task_overhead_s)

    def makespan(opts):
        graph = _graph_for(d, e, opts)
        SequentialScheduler().run(graph)
        sim = SimulatedMachine(machine, n_workers=16, execute=False)
        return sim.run(graph).makespan

    base = makespan(DCOptions(priority_mode="none"))
    full = makespan(DCOptions(priority_mode="blevel", adaptive_nb=True,
                              target_parallelism=16))
    assert full < base * 0.95, (
        f"expected >= 5% improvement, got {100 * (1 - full / base):.2f}%")
