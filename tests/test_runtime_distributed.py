"""Tests for the distributed-memory prototype (repro.runtime.distributed)."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, submit_dc
from repro.runtime import (ClusterMachine, DataHandle, INPUT, Machine,
                           Network, OUTPUT, SequentialScheduler, TaskCost,
                           TaskGraph, tree_placement)


def test_single_node_matches_basic_expectations():
    g = TaskGraph()
    for _ in range(8):
        g.insert_task(lambda: None, [(DataHandle(), OUTPUT)],
                      cost=TaskCost(flops=1e9))
    m = Machine(n_cores=4, n_sockets=1, core_gflops=1.0,
                kernel_efficiency=1.0, task_overhead=0.0)
    cm = ClusterMachine(n_nodes=1, machine=m)
    tr = cm.run(g)
    assert tr.makespan == pytest.approx(2.0, rel=1e-9)
    assert cm.n_messages == 0


def test_remote_reads_charge_the_network():
    def build():
        g = TaskGraph()
        h = DataHandle("x")
        g.insert_task(lambda: None, [(h, OUTPUT)], name="produce",
                      cost=TaskCost(bytes_moved=8e8), tag=(0, 10))
        g.insert_task(lambda: None, [(h, INPUT)], name="consume",
                      cost=TaskCost(flops=1e6), tag=(900, 1000))
        return g

    m = Machine(task_overhead=0.0)
    slow = Network(alpha=0.0, beta=1.0 / 1e8)
    fast = Network(alpha=0.0, beta=1.0 / 1e13)
    place = tree_placement(1000, 2)
    cm_slow = ClusterMachine(2, m, slow, placement=place)
    t_slow = cm_slow.run(build()).makespan
    cm_fast = ClusterMachine(2, m, fast, placement=place)
    t_fast = cm_fast.run(build()).makespan
    assert cm_slow.n_messages == 1
    assert cm_slow.bytes_on_wire == pytest.approx(8e8)
    assert t_slow > t_fast * 2


def test_affinity_placement_avoids_communication():
    # Without forced placement the consumer runs where the data lives.
    g = TaskGraph()
    h = DataHandle("x")
    g.insert_task(lambda: None, [(h, OUTPUT)],
                  cost=TaskCost(bytes_moved=8e8))
    g.insert_task(lambda: None, [(h, INPUT)], cost=TaskCost(flops=1e6))
    cm = ClusterMachine(2, Machine())
    cm.run(g)
    assert cm.n_messages == 0


def test_dependencies_respected_across_nodes():
    order = []
    g = TaskGraph()
    h = DataHandle("x")
    for i in range(6):
        g.insert_task(lambda i=i: order.append(i),
                      [(h, INPUT if i else OUTPUT)],
                      cost=TaskCost(flops=1e6), tag=(i * 100, 600))
    ClusterMachine(3, Machine(), placement=tree_placement(600, 3)).run(g)
    assert order[0] == 0
    assert sorted(order) == list(range(6))


def test_dc_solve_on_cluster_correct():
    rng = np.random.default_rng(0)
    n = 300
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    ctx = DCContext(d, e, DCOptions(minpart=64, nb=32))
    g = TaskGraph()
    submit_dc(g, ctx)
    cm = ClusterMachine(2, Machine(), placement=tree_placement(n, 2))
    cm.run(g)
    lam, V = ctx.result()
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12
    # The merge tree forces real inter-node traffic at the top merges.
    assert cm.n_messages > 0


def test_invalid_nodes():
    with pytest.raises(ValueError):
        ClusterMachine(0)
