"""Tests for MRRR subset computation (paper Sec. I: MRRR's main asset)."""

import numpy as np
import pytest

from repro import mrrr_eigh
from repro.matrices import test_matrix as make_matrix


def tridiag(d, e):
    return np.diag(np.asarray(d, float)) + np.diag(e, 1) + np.diag(e, -1)


def check_subset(d, e, sub, tol=1e-11):
    n = len(d)
    T = tridiag(d, e)
    lam, V = mrrr_eigh(d, e, subset=sub)
    assert lam.shape == (len(sub),)
    assert V.shape == (n, len(sub))
    scale = max(1.0, np.max(np.abs(T)))
    ref = np.linalg.eigvalsh(T)[sub]
    np.testing.assert_allclose(lam, ref, atol=tol * n * scale)
    assert np.max(np.abs(V.T @ V - np.eye(len(sub)))) < tol * n
    assert np.max(np.abs(T @ V - V * lam[None, :])) < tol * n * scale


def test_subset_random():
    rng = np.random.default_rng(0)
    n = 200
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    check_subset(d, e, np.array([0, 17, 100, 199]))


def test_subset_extreme_ends():
    rng = np.random.default_rng(1)
    n = 120
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    check_subset(d, e, np.array([0]))
    check_subset(d, e, np.array([n - 1]))


def test_subset_window():
    rng = np.random.default_rng(2)
    n = 150
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    check_subset(d, e, np.arange(50, 70))


def test_subset_inside_cluster():
    # Wanted eigenvalue living inside a tight cluster: the whole cluster
    # must still be processed for orthogonality.
    m = 20
    d = np.abs(np.arange(-m, m + 1)).astype(float)
    e = np.ones(2 * m)
    check_subset(d, e, np.array([2 * m - 1]))   # upper near-duplicate pair


def test_subset_skips_unwanted_clusters_work():
    rng = np.random.default_rng(3)
    n = 250
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    res_full = mrrr_eigh(d, e, full_result=True)
    res_sub = mrrr_eigh(d, e, subset=np.array([0, 1, 2]), full_result=True)
    # Fewer Getvec work records -> the Θ(nk) claim.
    count = lambda r, name: sum(1 for w in r.records if w.name == name)
    assert count(res_sub, "Getvec") < count(res_full, "Getvec") / 5


def test_subset_multiblock():
    rng = np.random.default_rng(4)
    n = 160
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    e[53] = 0.0
    e[101] = 0.0
    check_subset(d, e, np.array([0, 60, 110, 159]))


def test_subset_matches_full_columns():
    rng = np.random.default_rng(5)
    n = 130
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam_f, V_f = mrrr_eigh(d, e)
    sub = np.array([3, 50, 90])
    lam_s, V_s = mrrr_eigh(d, e, subset=sub)
    np.testing.assert_allclose(lam_s, lam_f[sub], atol=1e-13)
    for i, j in enumerate(sub):
        dot = abs(np.dot(V_s[:, i], V_f[:, j]))
        assert dot == pytest.approx(1.0, abs=1e-10)


def test_subset_on_table3_types():
    for mtype in (3, 4, 13):
        d, e = make_matrix(mtype, 120)
        check_subset(d, e, np.array([0, 60, 119]))


def test_subset_bad_input():
    d = np.ones(5)
    e = np.zeros(4)
    with pytest.raises(ValueError):
        mrrr_eigh(d, e, subset=[5])
    with pytest.raises(ValueError):
        mrrr_eigh(d, e, subset=[])
