"""Eigenvalue-only mode (``jobz='N'``): reduced DAG, bitwise parity.

The mode-parameterized pipeline promises that ``jobz='N'`` runs a
reduced boundary-row-strip DAG with O(n) auxiliary state while
producing *bitwise identical* eigenvalues to the full ``jobz='V'``
solve — both modes source every merge's rank-one z from the same strip
kernels, so the secular spine never sees the difference.  These tests
pin that contract across the Table III matrix types, all four runtime
backends, subsets, sessions/batches, fault injection, the STEQR
fallback, the graph-template cache, and the memory telemetry.
"""

import numpy as np
import pytest

from repro import dc_eigh, dc_eigh_many
from repro.analysis import solve_high_water_bytes
from repro.core import DCOptions, SolverSession
from repro.core.graph_cache import graph_template_cache, template_key
from repro.errors import ConvergenceError, InjectedFault, TaskFailure
from repro.matrices import MATRIX_TYPES
from repro.matrices import test_matrix as table3_matrix
from repro.obs import Collector
from repro.runtime import FaultSpec

N_OPTS = DCOptions(jobz="N")

# Kernels that exist only to build / move eigenvector columns; none may
# appear in an eigenvalue-only DAG.
VECTOR_KERNELS = {"LASET", "ApplyGivens", "PermuteV", "CopyBackDeflated",
                  "ComputeVect", "UpdateVect", "ScaleV"}


def _names(graph):
    return [t.name.split("(")[0] for t in graph.tasks]


# ---------------------------------------------------------------------------
# Options surface
# ---------------------------------------------------------------------------

def test_jobz_validation():
    assert DCOptions().jobz == "V"
    assert DCOptions(jobz="N").jobz == "N"
    with pytest.raises(ValueError):
        DCOptions(jobz="X")
    with pytest.raises(ValueError):
        DCOptions(jobz="n")     # case-sensitive, like LAPACK's dstedc


# ---------------------------------------------------------------------------
# Bitwise parity: all Table III types x all four backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mtype", MATRIX_TYPES)
def test_eigenvalues_bitwise_all_types(mtype):
    d, e = table3_matrix(mtype, 150, seed=11)
    lam_v, V = dc_eigh(d, e)
    assert V is not None
    for backend, workers in (("sequential", None), ("threads", 4),
                             ("simulated", 4)):
        lam_n, Vn = dc_eigh(d, e, options=N_OPTS, backend=backend,
                            n_workers=workers)
        assert Vn is None
        np.testing.assert_array_equal(lam_v, lam_n)


def test_eigenvalues_bitwise_processes():
    # Worker processes take ~a second to spawn: one session, all types.
    with SolverSession(backend="processes", n_workers=2,
                       options=N_OPTS.with_(reuse_graph=True)) as s:
        for mtype in MATRIX_TYPES:
            d, e = table3_matrix(mtype, 150, seed=11)
            lam_v, _ = dc_eigh(d, e)
            lam_n, Vn = s.solve(d, e)
            assert Vn is None
            np.testing.assert_array_equal(lam_v, lam_n)


# ---------------------------------------------------------------------------
# Reduced DAG shape
# ---------------------------------------------------------------------------

def test_reduced_dag_has_no_eigenvector_kernels():
    d, e = table3_matrix(4, 300, seed=3)
    res = dc_eigh(d, e, options=N_OPTS, full_result=True)
    names = _names(res.graph)
    assert not (set(names) & VECTOR_KERNELS)
    assert "UpdateStrip" in names and "UpdateEig" in names
    assert res.V is None
    # The V-mode DAG keeps the eigenvector kernels and (for parity of
    # the z vector) the same strip kernels.
    res_v = dc_eigh(d, e, full_result=True)
    names_v = _names(res_v.graph)
    assert "UpdateVect" in names_v and "GivensStrip" in names_v
    assert len(res.graph.tasks) < len(res_v.graph.tasks)


def test_subset_with_jobz_n():
    d, e = table3_matrix(2, 240, seed=5)
    lam_full, _ = dc_eigh(d, e)
    sub = np.arange(30, 80)
    lam, V = dc_eigh(d, e, options=N_OPTS, subset=sub)
    assert V is None
    np.testing.assert_array_equal(lam, lam_full[sub])


# ---------------------------------------------------------------------------
# Sessions, batches
# ---------------------------------------------------------------------------

def test_batch_and_session_jobz_n():
    problems = [table3_matrix(4, 120, seed=s) for s in range(3)]
    ref = [dc_eigh(d, e)[0] for d, e in problems]
    out = dc_eigh_many(problems, options=N_OPTS, backend="threads",
                       n_workers=2)
    for (lam, V), lam_ref in zip(out, ref):
        assert V is None
        np.testing.assert_array_equal(lam, lam_ref)


def test_session_mixes_modes_and_counts_them():
    d, e = table3_matrix(4, 120, seed=1)
    with SolverSession(backend="sequential") as s:
        lam_v, V = s.solve(d, e)
        lam_n, Vn = s.solve(d, e, options=s.options.with_(jobz="N"))
        metrics = s.metrics.to_dict()
    assert V is not None and Vn is None
    np.testing.assert_array_equal(lam_v, lam_n)
    assert metrics["solves_by_jobz"] == {"V": 1, "N": 1}


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------

def test_fault_injection_in_strip_kernel():
    d, e = table3_matrix(4, 160, seed=2)
    opts = N_OPTS.with_(fault_injection=FaultSpec(kernel="UpdateEig"))
    with pytest.raises(TaskFailure) as ei:
        dc_eigh(d, e, options=opts)
    assert isinstance(ei.value.__cause__, InjectedFault)
    # The mode is recoverable after a failure: a clean solve still works.
    lam, V = dc_eigh(d, e, options=N_OPTS)
    np.testing.assert_array_equal(lam, dc_eigh(d, e)[0])


def test_steqr_fallback_bitwise_parity(monkeypatch):
    def boom(*args, **kwargs):
        raise ConvergenceError("synthetic secular failure")
    monkeypatch.setattr("repro.core.merge.solve_secular", boom)
    d, e = table3_matrix(4, 150, seed=6)
    res_v = dc_eigh(d, e, full_result=True)
    res_n = dc_eigh(d, e, options=N_OPTS, full_result=True)
    assert all(s.fallback for s in res_n.info.ctx.merge_stats)
    assert res_n.V is None
    np.testing.assert_array_equal(res_v.lam, res_n.lam)


# ---------------------------------------------------------------------------
# Graph-template cache
# ---------------------------------------------------------------------------

def test_template_keys_never_collide_across_modes():
    n = 150
    kv = template_key(n, DCOptions())
    kn = template_key(n, N_OPTS)
    assert kv != kn
    assert kn[1] == "N"


def test_cache_keeps_separate_templates_per_mode():
    graph_template_cache.clear()
    d, e = table3_matrix(4, 140, seed=9)
    lam_ref, _ = dc_eigh(d, e)
    try:
        for _ in range(2):          # second pass must hit, not rebuild
            for jobz in ("V", "N"):
                opts = DCOptions(jobz=jobz, reuse_graph=True)
                lam, V = dc_eigh(d, e, options=opts)
                np.testing.assert_array_equal(lam, lam_ref)
                assert (V is None) == (jobz == "N")
        st = graph_template_cache.stats()
        assert st["misses"] == 2    # one template per mode, no collision
        assert st["hits"] == 2
        assert st["size"] == 2
    finally:
        graph_template_cache.clear()


def test_cache_eviction_separates_modes():
    graph_template_cache.clear()
    old = graph_template_cache.maxsize
    graph_template_cache.maxsize = 1
    d, e = table3_matrix(4, 130, seed=10)
    try:
        for jobz in ("V", "N", "V"):
            opts = DCOptions(jobz=jobz, reuse_graph=True)
            dc_eigh(d, e, options=opts)
        st = graph_template_cache.stats()
        # Same n, alternating modes, one slot: every solve is a miss and
        # the two earlier templates were evicted (never silently shared).
        assert st["misses"] == 3 and st["evictions"] == 2
    finally:
        graph_template_cache.maxsize = old
        graph_template_cache.clear()


# ---------------------------------------------------------------------------
# Memory telemetry
# ---------------------------------------------------------------------------

def test_high_water_gauge_collapses_in_n_mode():
    d, e = table3_matrix(4, 400, seed=4)

    def high_water(jobz):
        col = Collector()
        dc_eigh(d, e, options=DCOptions(jobz=jobz, telemetry=col))
        return col.gauges["workspace.high_water_bytes"]

    hw_v, hw_n = high_water("V"), high_water("N")
    assert hw_n < 0.10 * hw_v
    # And the model itself: O(n) vs O(n^2) at the issue's gate size.
    assert solve_high_water_bytes(5000, 2500, jobz="N") <= \
        0.10 * solve_high_water_bytes(5000, 2500, jobz="V")


def test_solve_jobz_counter_reaches_telemetry():
    d, e = table3_matrix(4, 120, seed=8)
    col = Collector()
    dc_eigh(d, e, options=DCOptions(jobz="N", telemetry=col))
    assert col.counters.get("solve.jobz.N") == 1
