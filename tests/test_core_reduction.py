"""Tests for the task-flow tridiagonalization (repro.core.reduction)."""

import numpy as np
import pytest

from repro.core import taskflow_tridiagonalize
from repro.kernels import apply_q, tridiagonalize


def sym(rng, n):
    A = rng.normal(size=(n, n))
    return 0.5 * (A + A.T)


@pytest.mark.parametrize("backend", ["sequential", "threads", "simulated"])
def test_reduction_backends(backend):
    rng = np.random.default_rng(1)
    n = 100
    A = sym(rng, n)
    tri = taskflow_tridiagonalize(A, backend=backend, n_workers=4, tile=32)
    T = np.diag(tri.d) + np.diag(tri.e, 1) + np.diag(tri.e, -1)
    Q = tri.q()
    assert np.max(np.abs(Q @ T @ Q.T - A)) < 1e-12 * n
    assert np.max(np.abs(Q.T @ Q - np.eye(n))) < 1e-13 * n


def test_matches_sequential_kernel():
    rng = np.random.default_rng(2)
    A = sym(rng, 70)
    t1 = taskflow_tridiagonalize(A, tile=16)
    t2 = tridiagonalize(A)
    np.testing.assert_allclose(t1.d, t2.d, atol=1e-12)
    np.testing.assert_allclose(np.abs(t1.e), np.abs(t2.e), atol=1e-12)


def test_apply_q_contract():
    rng = np.random.default_rng(3)
    n = 60
    A = sym(rng, n)
    tri = taskflow_tridiagonalize(A, tile=20)
    C = rng.normal(size=(n, 3))
    np.testing.assert_allclose(apply_q(tri, C), tri.q() @ C, atol=1e-12)


def test_task_census_and_trace():
    rng = np.random.default_rng(4)
    n = 64
    A = sym(rng, n)
    tri, trace, graph = taskflow_tridiagonalize(
        A, backend="simulated", tile=16, full_result=True)
    counts = graph.kernel_counts()
    assert counts["PanelFactor"] == n - 2
    assert counts["SymvFinish"] == n - 2
    assert counts["SymvPart"] == counts["Rank2Update"]
    graph.validate_acyclic()
    assert trace.makespan > 0


def test_reduction_parallelizes_on_simulator():
    rng = np.random.default_rng(5)
    n = 160
    A = sym(rng, n)
    _, tr16, g = taskflow_tridiagonalize(A, backend="simulated",
                                         tile=16, full_result=True)
    from repro.runtime import Machine, SimulatedMachine
    t1 = SimulatedMachine(Machine(), n_workers=1,
                          execute=False).run(g).makespan
    # The panel chain is serial but the symv/update work parallelizes.
    assert t1 / tr16.makespan > 2.0


def test_small_and_invalid():
    lam = taskflow_tridiagonalize(np.array([[3.0]]))
    assert lam.d[0] == 3.0
    with pytest.raises(ValueError):
        taskflow_tridiagonalize(np.ones((2, 3)))
    with pytest.raises(ValueError):
        taskflow_tridiagonalize(np.array([[1.0, 2.0], [0.0, 1.0]]))
