"""Fault injection, first-failure cancellation, batch error isolation."""

import threading
import time

import numpy as np
import pytest

from repro import dc_eigh, dc_eigh_many
from repro.core.options import DCOptions
from repro.core.solver import SolveFailure
from repro.errors import InjectedFault, InputError, TaskFailure
from repro.obs import Collector
from repro.runtime import (TaskGraph, SequentialScheduler, ThreadScheduler,
                           SimulatedMachine, FaultInjector, FaultSpec)
from repro.runtime.task import DataHandle, OUTPUT

BACKENDS = ["sequential", "threads", "simulated"]


def _problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n), rng.standard_normal(n - 1)


# ---------------------------------------------------------------------------
# FaultSpec / FaultInjector
# ---------------------------------------------------------------------------

def test_fault_spec_parse():
    assert FaultSpec.parse("task:17") == FaultSpec(task_seq=17)
    assert FaultSpec.parse("kernel:LAED4") == FaultSpec(kernel="LAED4")
    assert FaultSpec.parse("kernel:LAED4:2") == FaultSpec(kernel="LAED4",
                                                          nth=2)
    assert FaultSpec.parse("p:0.5:9") == FaultSpec(probability=0.5, seed=9)
    with pytest.raises(InputError):
        FaultSpec.parse("nope:1")
    with pytest.raises(InputError):
        FaultSpec.parse("task:xyz")


def test_fault_spec_validation():
    with pytest.raises(InputError):
        FaultSpec(probability=1.5)
    with pytest.raises(InputError):
        FaultSpec()        # empty spec selects nothing


def test_probability_roll_is_deterministic():
    class T:
        def __init__(self, seq):
            self.name, self.seq = "K", seq

    def fired(seed):
        inj = FaultInjector(FaultSpec(probability=0.3, seed=seed))
        out = []
        for s in range(200):
            try:
                inj.maybe_fail(T(s))
            except InjectedFault:
                out.append(s)
        return out

    a, b = fired(7), fired(7)
    assert a == b and 20 < len(a) < 100   # ~60 expected
    assert fired(8) != a                  # seed changes the draw


# ---------------------------------------------------------------------------
# Combined selectors are ANDed (regression: kernel/task_seq used to
# bypass the probability roll entirely, and roll-vetoed tasks consumed
# the nth counter)
# ---------------------------------------------------------------------------

class _T:
    def __init__(self, name, seq):
        self.name, self.seq = name, seq


def _fired(inj, tasks):
    out = []
    for t in tasks:
        try:
            inj.maybe_fail(t)
        except InjectedFault:
            out.append(t.seq)
    return out


def test_and_semantics_kernel_plus_probability():
    # kernel AND probability: only tasks of the kernel whose roll fires
    # fail — the kernel match must not short-circuit past the roll.
    spec = FaultSpec(kernel="K", probability=0.5, seed=11)
    ref = FaultInjector(spec)
    rolls = {s for s in range(100) if ref._roll(s)}
    assert rolls and len(rolls) < 100   # both outcomes present

    inj = FaultInjector(spec)
    tasks = [_T("K" if s % 2 else "J", s) for s in range(100)]
    fired = _fired(inj, tasks)
    assert fired == [s for s in range(100) if s % 2 and s in rolls]


def test_and_semantics_task_seq_plus_probability():
    ref = FaultInjector(FaultSpec(probability=0.5, seed=11))
    hit = next(s for s in range(100) if ref._roll(s))
    miss = next(s for s in range(100) if not ref._roll(s))

    # Roll fires at the selected seq -> fault.
    inj = FaultInjector(FaultSpec(task_seq=hit, probability=0.5, seed=11))
    with pytest.raises(InjectedFault):
        inj.maybe_fail(_T("K", hit))
    # Roll misses at the selected seq -> no fault, ever.
    inj = FaultInjector(FaultSpec(task_seq=miss, probability=0.5, seed=11))
    inj.maybe_fail(_T("K", miss))
    assert inj.injected == 0


def test_nth_counter_ignores_roll_vetoed_tasks():
    # nth counts *eligible* matches: a task vetoed by the probability
    # roll must not advance the counter.
    spec = FaultSpec(kernel="K", nth=1, probability=0.5, seed=11)
    ref = FaultInjector(spec)
    rolls = [s for s in range(100) if ref._roll(s)]
    assert len(rolls) >= 2

    inj = FaultInjector(spec)
    fired = _fired(inj, [_T("K", s) for s in range(100)])
    # The second roll-surviving seq fails — not plain seq 1.
    assert fired == [rolls[1]]


def test_nth_counter_ignores_other_kernels():
    inj = FaultInjector(FaultSpec(kernel="K", nth=2))
    tasks = [_T("J", 0), _T("K", 1), _T("J", 2), _T("K", 3), _T("J", 4),
             _T("K", 5)]
    assert _fired(inj, tasks) == [5]   # third "K", not seq 2


# ---------------------------------------------------------------------------
# Scheduler-level injection: same typed failure on every backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_injected_failure_is_typed_and_named(backend):
    d, e = _problem()
    opts = DCOptions(fault_injection=FaultSpec(kernel="LAED4", nth=0))
    with pytest.raises(TaskFailure) as ei:
        dc_eigh(d, e, options=opts, backend=backend)
    exc = ei.value
    assert exc.task_name == "LAED4"
    assert exc.seq >= 0
    assert "LAED4" in str(exc)
    assert isinstance(exc.__cause__, InjectedFault)


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_task_fails_on_every_backend(backend):
    # The probability roll hashes (seed, task.seq): a pure function of
    # the spec and the DAG, independent of backend and schedule.
    d, e = _problem()
    opts = DCOptions(fault_injection=FaultSpec(probability=0.02, seed=3))
    with pytest.raises(TaskFailure) as ei:
        dc_eigh(d, e, options=opts, backend=backend)
    # Sequential order makes the *first* matching seq fail; out-of-order
    # backends may hit another match first, but it must be a match of
    # the same deterministic draw.
    inj = FaultInjector(FaultSpec(probability=0.02, seed=3))
    assert inj._roll(ei.value.seq)


def test_thread_cancellation_drains_and_joins_quickly():
    """First failure cancels the run: pending tasks drain as no-ops and
    the workers join within bounded time."""
    g = TaskGraph()
    ran = []

    def work(i):
        time.sleep(0.001)
        ran.append(i)

    for i in range(300):
        g.insert_task(work, [(DataHandle(), OUTPUT)], args=(i,),
                      name=f"w{i}")
    inj = FaultInjector(FaultSpec(task_seq=5))
    n_before = threading.active_count()
    t0 = time.perf_counter()
    with pytest.raises(TaskFailure, match="'w5'"):
        ThreadScheduler(4, injector=inj).run(g)
    dt = time.perf_counter() - t0
    # 300 × 1 ms of work exists; cancellation must cut it short.
    assert dt < 2.0
    assert len(ran) < 300
    # All workers joined: no thread leak.
    deadline = time.time() + 5.0
    while threading.active_count() > n_before and time.time() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= n_before


def test_cancellation_counters():
    d, e = _problem()
    col = Collector()
    opts = DCOptions(telemetry=col,
                     fault_injection=FaultSpec(kernel="LAED4", nth=0))
    with pytest.raises(TaskFailure):
        dc_eigh(d, e, options=opts, backend="threads")
    assert col.counters.get("scheduler.failures", 0) >= 1
    assert col.counters.get("scheduler.cancelled_tasks", 0) >= 1


def test_sequential_cancellation_counters():
    g = TaskGraph()
    for i in range(10):
        g.insert_task(lambda: None, [(DataHandle(), OUTPUT)], name=f"t{i}")
    col = Collector()
    inj = FaultInjector(FaultSpec(task_seq=4))
    with pytest.raises(TaskFailure, match="'t4'"):
        SequentialScheduler(recorder=col, injector=inj).run(g)
    assert col.counters["scheduler.failures"] == 1
    assert col.counters["scheduler.cancelled_tasks"] == 5


def test_simulated_injection():
    g = TaskGraph()
    g.insert_task(lambda: None, [(DataHandle(), OUTPUT)], name="only")
    inj = FaultInjector(FaultSpec(task_seq=0))
    from repro.runtime import Machine
    with pytest.raises(TaskFailure, match="'only'"):
        SimulatedMachine(Machine(), injector=inj).run(g)


# ---------------------------------------------------------------------------
# AND-selectors behave identically on all four backends (incl. processes)
# ---------------------------------------------------------------------------

def _laed4_seqs(d, e):
    res = dc_eigh(d, e, full_result=True)
    return [t.seq for t in res.graph.tasks if t.name == "LAED4"]


def _find_seeds(seqs, p=0.2):
    """A seed where no LAED4 task rolls, and one where some do."""
    quiet = noisy = None
    for seed in range(200):
        inj = FaultInjector(FaultSpec(probability=p, seed=seed))
        n = sum(inj._roll(s) for s in seqs)
        if n == 0 and quiet is None:
            quiet = seed
        if n > 0 and noisy is None:
            noisy = seed
        if quiet is not None and noisy is not None:
            return quiet, noisy
    raise AssertionError("no suitable seeds in range")


@pytest.mark.parametrize("backend", BACKENDS + ["processes"])
def test_kernel_and_probability_identical_on_every_backend(backend):
    # Regression: kernel= used to make the spec fire unconditionally,
    # ignoring the probability roll.  With a seed whose roll misses all
    # LAED4 tasks the solve must SUCCEED; with a seed that hits, it must
    # fail in a roll-matching LAED4 task — on every backend.
    d, e = _problem(120, seed=6)
    seqs = _laed4_seqs(d, e)
    quiet, noisy = _find_seeds(seqs)
    lam0, V0 = dc_eigh(d, e)

    kw = {"backend": backend}
    if backend == "processes":
        kw["n_workers"] = 2
    lam, V = dc_eigh(d, e, options=DCOptions(fault_injection=FaultSpec(
        kernel="LAED4", probability=0.2, seed=quiet)), **kw)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)

    spec = FaultSpec(kernel="LAED4", probability=0.2, seed=noisy)
    with pytest.raises(TaskFailure) as ei:
        dc_eigh(d, e, options=DCOptions(fault_injection=spec), **kw)
    assert ei.value.task_name == "LAED4"
    assert FaultInjector(spec)._roll(ei.value.seq)


@pytest.mark.parametrize("backend", BACKENDS + ["processes"])
def test_kernel_and_nth_identical_on_every_backend(backend):
    # nth with kernel selects one deterministic match; with an
    # out-of-order schedule the *set* of eligible tasks is fixed even if
    # which one hits the counter first is not.
    d, e = _problem(120, seed=6)
    kw = {"backend": backend}
    if backend == "processes":
        kw["n_workers"] = 2
    spec = FaultSpec(kernel="PermuteV", nth=1)
    with pytest.raises(TaskFailure) as ei:
        dc_eigh(d, e, options=DCOptions(fault_injection=spec), **kw)
    assert ei.value.task_name == "PermuteV"
    assert isinstance(ei.value.__cause__, InjectedFault)


# ---------------------------------------------------------------------------
# Batch isolation: dc_eigh_many keeps going around failed problems
# ---------------------------------------------------------------------------

def test_batch_isolates_failures_good_bad_good():
    d, e = _problem(120, seed=1)
    dbad = d.copy()
    dbad[7] = np.nan
    out = dc_eigh_many([(d, e), (dbad, e), (d, e)])
    assert len(out) == 3
    lam0, V0 = out[0]
    lam2, V2 = out[2]
    np.testing.assert_array_equal(lam0, lam2)
    assert isinstance(out[1], SolveFailure)
    assert out[1].index == 1
    assert isinstance(out[1].error, InputError)
    assert "d[7]" in str(out[1].error)


def test_batch_raise_on_error_restores_old_behavior():
    d, e = _problem(120, seed=1)
    dbad = d.copy()
    dbad[7] = np.inf
    with pytest.raises(InputError):
        dc_eigh_many([(d, e), (dbad, e)], raise_on_error=True)


def test_batch_isolates_task_failures():
    # A mid-solve TaskFailure (not just boundary rejection) is isolated
    # too: injection fails every solve, results are all records.
    d, e = _problem(120, seed=2)
    opts = DCOptions(fault_injection=FaultSpec(kernel="ReduceW", nth=0))
    out = dc_eigh_many([(d, e), (d, e)], options=opts, backend="threads")
    assert all(isinstance(r, SolveFailure) for r in out)
    assert [r.index for r in out] == [0, 1]
    assert all(isinstance(r.error, TaskFailure) for r in out)


# ---------------------------------------------------------------------------
# Stress: many random single-task faults, all backends, clean every time
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_injection_stress(backend):
    """50 random tasks across the DAG each made to fail once: every run
    raises a typed TaskFailure naming the task, workers always join."""
    d, e = _problem(150, seed=4)
    n_tasks = len(dc_eigh(d, e, full_result=True).graph.tasks)
    rng = np.random.default_rng(11)
    seqs = rng.choice(n_tasks, size=50, replace=False)
    n_before = threading.active_count()
    for seq in seqs:
        opts = DCOptions(fault_injection=FaultSpec(task_seq=int(seq)))
        with pytest.raises(TaskFailure) as ei:
            dc_eigh(d, e, options=opts, backend=backend)
        assert ei.value.seq == int(seq)
        assert ei.value.task_name
    deadline = time.time() + 5.0
    while threading.active_count() > n_before and time.time() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= n_before
