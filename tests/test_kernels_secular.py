"""Tests for the secular-equation solver (repro.kernels.secular)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (solve_secular, secular_function, delta_matrix,
                           eigenvalues_from_roots)


def random_system(rng, k, min_gap=1e-3):
    d = np.sort(rng.normal(size=k))
    d += np.arange(k) * min_gap
    z = rng.normal(size=k)
    z[z == 0.0] = 1.0
    z /= np.linalg.norm(z)
    rho = float(np.abs(rng.normal()) + 0.1)
    return d, z, rho


def reference_eigs(d, z, rho):
    return np.linalg.eigvalsh(np.diag(d) + rho * np.outer(z, z))


def test_k1_closed_form():
    r = solve_secular(np.array([2.0]), np.array([1.0]), 0.5)
    assert r.lam[0] == pytest.approx(2.5)
    assert r.tau[0] == pytest.approx(0.5)


def test_k2_exact():
    d = np.array([0.0, 1.0])
    z = np.array([1.0, 1.0]) / np.sqrt(2)
    r = solve_secular(d, z, 1.0)
    ref = reference_eigs(d, z, 1.0)
    np.testing.assert_allclose(r.lam, ref, atol=1e-15)


@pytest.mark.parametrize("k", [3, 7, 50, 300])
def test_matches_dense_reference(k):
    rng = np.random.default_rng(k)
    d, z, rho = random_system(rng, k)
    r = solve_secular(d, z, rho)
    ref = reference_eigs(d, z, rho)
    scale = np.abs(d).max() + rho
    np.testing.assert_allclose(r.lam, ref, atol=5e-14 * scale * k)


def test_interlacing_invariant():
    rng = np.random.default_rng(11)
    d, z, rho = random_system(rng, 80)
    r = solve_secular(d, z, rho)
    assert np.all(r.lam[:-1] > d[:-1])
    assert np.all(r.lam[:-1] < d[1:])
    assert d[-1] < r.lam[-1] < d[-1] + rho + 1e-14


def test_origin_is_nearest_pole():
    rng = np.random.default_rng(5)
    d, z, rho = random_system(rng, 40)
    r = solve_secular(d, z, rho)
    ext = np.concatenate([d, [d[-1] + rho]])
    for j in range(40):
        dist_orig = abs(r.lam[j] - d[r.orig[j]])
        dist_other = np.min(np.abs(np.delete(d, r.orig[j]) - r.lam[j]))
        # Origin is within a factor ~1 of the true nearest pole (the
        # midpoint test puts the root in the origin's half interval).
        assert dist_orig <= dist_other + 1e-12


def test_subset_index_solve_matches_full():
    rng = np.random.default_rng(9)
    d, z, rho = random_system(rng, 60)
    full = solve_secular(d, z, rho)
    idx = np.array([0, 5, 17, 42, 59])
    part = solve_secular(d, z, rho, index=idx)
    np.testing.assert_allclose(part.lam, full.lam[idx], rtol=0, atol=1e-14)
    np.testing.assert_array_equal(part.orig, full.orig[idx])


def test_tau_relative_accuracy_near_pole():
    # A root hugging its pole: τ must retain high *relative* accuracy.
    d = np.array([0.0, 1.0, 2.0])
    z = np.array([1e-9, 1.0, 1.0])
    z /= np.linalg.norm(z)
    rho = 1.0
    r = solve_secular(d, z, rho)
    # Residual in the secular function at the stable representation:
    dm = delta_matrix(d, r.orig, r.tau)
    w = 1.0 + rho * np.sum((z * z)[:, None] / dm, axis=0)
    assert np.max(np.abs(w)) < 1e-10
    # First root barely moves off d_0: τ_0 ≈ rho*z_0² (tiny but nonzero).
    assert 0 < r.tau[0] if r.orig[0] == 0 else r.tau[0] < 0


def test_clustered_poles():
    rng = np.random.default_rng(2)
    d = np.sort(np.concatenate([1e-10 * np.arange(10),
                                1.0 + 1e-10 * np.arange(10)]))
    z = rng.normal(size=20)
    z /= np.linalg.norm(z)
    r = solve_secular(d, z, 0.7)
    ref = reference_eigs(d, z, 0.7)
    np.testing.assert_allclose(r.lam, ref, atol=1e-12)


def test_rho_must_be_positive():
    with pytest.raises(ValueError):
        solve_secular(np.array([0.0, 1.0]), np.array([0.7, 0.7]), -1.0)


def test_delta_matrix_consistency():
    rng = np.random.default_rng(4)
    d, z, rho = random_system(rng, 30)
    r = solve_secular(d, z, rho)
    dm = delta_matrix(d, r.orig, r.tau)
    lam = eigenvalues_from_roots(d, r.orig, r.tau)
    np.testing.assert_allclose(dm, d[:, None] - lam[None, :],
                               rtol=0, atol=1e-9)
    # Exactness at the origin pole: Δ[orig_j, j] == −τ_j bit for bit.
    for j in range(30):
        assert dm[r.orig[j], j] == -r.tau[j]


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.integers(0, 2 ** 31 - 1),
       st.floats(0.01, 100.0))
def test_property_roots_solve_secular_equation(k, seed, rho):
    rng = np.random.default_rng(seed)
    d = np.sort(rng.uniform(-10, 10, size=k))
    d += np.arange(k) * 1e-2
    z = rng.uniform(0.1, 1.0, size=k) * rng.choice([-1.0, 1.0], size=k)
    z /= np.linalg.norm(z)
    r = solve_secular(d, z, rho)
    dm = delta_matrix(d, r.orig, r.tau)
    w = 1.0 + rho * np.sum((z * z)[:, None] / dm, axis=0)
    wp = rho * np.sum((z * z)[:, None] / (dm * dm), axis=0)
    # Residual small relative to the local derivative scale.
    assert np.all(np.abs(w) <= 1e-8 * np.maximum(1.0, wp * np.abs(r.tau)))
    # Interlacing.
    assert np.all(r.lam[:-1] > d[:-1]) and np.all(r.lam[:-1] < d[1:])
    assert d[-1] < r.lam[-1] <= d[-1] + rho * 1.0000001
    # Sum rule: trace(D + rho z zᵀ) = Σλ.
    assert np.sum(r.lam) == pytest.approx(np.sum(d) + rho, rel=1e-9)
