"""Property-based and stress tests of the task-flow runtime: random DAGs
must execute respecting every dependency on every backend, and the
simulator must conserve work."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (DataHandle, GATHERV, INOUT, INPUT, Machine,
                           OUTPUT, SequentialScheduler, SimulatedMachine,
                           TaskCost, TaskGraph, ThreadScheduler)


def random_graph(rng, n_tasks=30, n_handles=8, log=None):
    """A random sequential task flow over a small set of handles.

    Every task appends its seq to `log` when run, so execution order can
    be checked against the dependence order.
    """
    g = TaskGraph()
    handles = [DataHandle(f"h{i}") for i in range(n_handles)]
    modes = [INPUT, OUTPUT, INOUT, GATHERV]
    for t in range(n_tasks):
        k = rng.integers(1, 4)
        hs = rng.choice(n_handles, size=k, replace=False)
        acc = [(handles[h], modes[rng.integers(0, 4)]) for h in hs]

        def work(seq=t):
            if log is not None:
                log.append(seq)

        g.insert_task(work, acc, name=f"t{t % 5}",
                      cost=TaskCost(flops=float(rng.integers(1, 100)) * 1e6))
    return g


def check_order_respects_dag(graph, order):
    pos = {seq: i for i, seq in enumerate(order)}
    for t in graph.tasks:
        for s in t.successors:
            assert pos[t.seq] < pos[s.seq], \
                f"task {s.seq} ran before its dependency {t.seq}"


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_property_thread_scheduler_respects_random_dags(seed):
    rng = np.random.default_rng(seed)
    log = []
    g = random_graph(rng, log=log)
    ThreadScheduler(4).run(g)
    assert sorted(log) == list(range(g.n_tasks))
    check_order_respects_dag(g, log)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_property_simulator_respects_random_dags(seed):
    rng = np.random.default_rng(seed)
    log = []
    g = random_graph(rng, log=log)
    trace = SimulatedMachine(Machine(), n_workers=5).run(g)
    assert sorted(log) == list(range(g.n_tasks))
    check_order_respects_dag(g, log)
    # Trace events never overlap on the same worker.
    for w, evs in enumerate(trace.worker_events()):
        for a, b in zip(evs, evs[1:]):
            assert a.t_end <= b.t_start + 1e-12
    # Start times respect the DAG too.
    start = {e.task_uid: e.t_start for e in trace.events}
    end = {e.task_uid: e.t_end for e in trace.events}
    for t in g.tasks:
        for s in t.successors:
            assert end[t.uid] <= start[s.uid] + 1e-12


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31 - 1), st.integers(1, 12))
def test_property_simulator_work_conservation(seed, workers):
    """Busy time is independent of the worker count (compute-bound) and
    the makespan is bounded by [work/P, work] and at least the critical
    path."""
    rng = np.random.default_rng(seed)
    g = random_graph(rng)
    m = Machine(n_cores=16, n_sockets=1, task_overhead=0.0,
                kernel_efficiency=1.0)
    tr = SimulatedMachine(m, n_workers=workers).run(g)
    total_work = sum(m.duration_solo(t.resolved_cost(), t.name)
                     for t in g.tasks)
    assert tr.busy_time == pytest.approx(total_work, rel=1e-9)
    assert tr.makespan <= total_work * (1 + 1e-9)
    assert tr.makespan >= total_work / workers * (1 - 1e-9)
    cp = g.critical_path_cost(
        lambda t: m.duration_solo(t.resolved_cost(), t.name))
    assert tr.makespan >= cp * (1 - 1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_property_more_workers_never_slower(seed):
    """The simulator's greedy schedule is monotone in workers for these
    compute-bound graphs (no bandwidth effects)."""
    rng = np.random.default_rng(seed)
    g = random_graph(rng, n_tasks=40)
    m = Machine(n_cores=16, n_sockets=1, task_overhead=0.0,
                kernel_efficiency=1.0)
    times = [SimulatedMachine(m, n_workers=p).run(g).makespan
             for p in (1, 2, 4, 8)]
    for a, b in zip(times, times[1:]):
        assert b <= a * 1.15   # greedy scheduling anomalies are bounded


def test_gantt_renders_nonempty():
    rng = np.random.default_rng(0)
    g = random_graph(rng, n_tasks=12)
    tr = SimulatedMachine(Machine(), n_workers=4).run(g)
    art = tr.gantt(width=50)
    assert "w00 |" in art and "legend:" in art
    assert len(art.splitlines()) == tr.n_workers + 1  # rows + legend


def test_to_dot_output():
    g = TaskGraph()
    h = DataHandle("x")
    g.insert_task(lambda: None, [(h, OUTPUT)], name="a")
    g.insert_task(lambda: None, [(h, INPUT)], name="b")
    dot = g.to_dot()
    assert dot.startswith("digraph")
    assert "->" in dot and '"a' in dot


def test_empty_graph_runs():
    g = TaskGraph()
    tr = SequentialScheduler().run(g)
    assert tr.makespan == 0.0
    tr = SimulatedMachine(Machine()).run(g)
    assert tr.makespan == 0.0
    assert tr.gantt() == "(empty trace)"
