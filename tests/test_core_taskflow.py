"""Structural tests of the D&C task DAG (repro.core.tasks): the properties
the paper claims in Sec. IV — matrix-independent DAG, O(1) dependencies
per panel task via GATHERV, level overlap, Fig. 2 structure."""

import numpy as np
import pytest

from repro.core import DCContext, DCOptions, build_tree, submit_dc
from repro.runtime import TaskGraph, SequentialScheduler


def build_graph(n=1000, minpart=300, nb=500, seed=0, d=None, e=None, **kw):
    rng = np.random.default_rng(seed)
    d = rng.normal(size=n) if d is None else d
    e = rng.normal(size=n - 1) if e is None else e
    ctx = DCContext(d, e, DCOptions(minpart=minpart, nb=nb, **kw))
    g = TaskGraph()
    info = submit_dc(g, ctx)
    return g, ctx, info


def test_fig2_task_census():
    """The Fig. 2 scenario: n=1000, minpart=300, nb=500."""
    g, ctx, info = build_graph()
    counts = g.kernel_counts()
    # Four leaves of 250.
    assert counts["STEDC"] == 4
    assert counts["LASET"] == 4
    # Three merges: two of 500 (1 panel each) and the root 1000 (2 panels).
    assert counts["Compute_deflation"] == 3
    assert counts["ReduceW"] == 3
    assert counts["LAED4"] == 1 + 1 + 2
    assert counts["PermuteV"] == 4
    assert counts["UpdateVect"] == 4
    assert counts["ComputeVect"] == 4
    assert counts["ComputeLocalW"] == 4
    assert counts["CopyBackDeflated"] == 4
    assert counts["ScaleT"] == 1 and counts["ScaleBack"] == 1
    # SortEigenvectors: 1 join + ceil(1000/500) panels.
    assert counts["SortEigenvectors"] == 3
    g.validate_acyclic()


def test_dag_is_matrix_independent():
    """Same sizes, wildly different matrices -> identical task DAG."""
    g1, _, _ = build_graph(seed=1)
    d = np.ones(1000)
    e = np.full(999, 1e-15)  # near-total deflation
    g2, _, _ = build_graph(d=d, e=e)
    assert g1.kernel_counts() == g2.kernel_counts()
    assert g1.n_edges == g2.n_edges
    assert [t.name for t in g1.tasks] == [t.name for t in g2.tasks]
    assert [[s.seq for s in t.successors] for t in g1.tasks] == \
           [[s.seq for s in t.successors] for t in g2.tasks]


def test_panel_tasks_have_constant_declared_dependencies():
    """The point of GATHERV (paper Sec. IV): the number of *declared*
    data accesses the runtime must track per task is constant in n/nb —
    panel handles plus one GATHERV on the full matrix — instead of one
    dependency per panel (Θ(n/nb) tracking complexity)."""
    for nb, n in ((16, 512), (8, 512)):
        g, _, _ = build_graph(n=n, minpart=256, nb=nb)
        for t in g.tasks:
            if t.name in ("PermuteV", "LAED4", "ComputeLocalW",
                          "ComputeVect", "UpdateVect",
                          "CopyBackDeflated", "ApplyGivens"):
                assert len(t.accesses) <= 5, (t.name, len(t.accesses))
            if t.name in ("Compute_deflation", "ReduceW"):
                assert len(t.accesses) <= 3, (t.name, len(t.accesses))
        # Producer-side panel tasks additionally have O(1) incoming edges.
        for t in g.tasks:
            if t.name in ("PermuteV", "LAED4", "ComputeLocalW"):
                assert t.n_deps <= 8, (t.name, t.n_deps)


def test_join_tasks_wait_for_all_panels():
    g, _, _ = build_graph(n=512, minpart=256, nb=16)
    npan = 512 // 16
    reduce_ws = [t for t in g.tasks if t.name == "ReduceW"
                 and t.tag == (0, 512)]
    assert len(reduce_ws) == 1
    # ReduceW of the root waits for all of its ComputeLocalW panels.
    assert reduce_ws[0].n_deps >= npan


def test_independent_merges_overlap_without_barrier():
    """Merges of different branches share no path (Fig. 3(c) freedom)."""
    g, _, _ = build_graph(n=1000, minpart=300, nb=500)
    # Collect per-merge Compute_deflation tasks.
    defl = {t.tag: t for t in g.tasks if t.name == "Compute_deflation"}
    left, right = defl[(0, 500)], defl[(500, 1000)]

    def reachable(a, b):
        seen, stack = set(), [a]
        while stack:
            t = stack.pop()
            if t is b:
                return True
            for s in t.successors:
                if s.uid not in seen:
                    seen.add(s.uid)
                    stack.append(s)
        return False

    assert not reachable(left, right)
    assert not reachable(right, left)
    # But both reach the root merge.
    root = defl[(0, 1000)]
    assert reachable(left, root) and reachable(right, root)


def test_level_barrier_serializes_levels():
    g, _, _ = build_graph(n=1000, minpart=150, nb=500, level_barrier=True)
    assert g.kernel_counts()["LevelBarrier"] == 3
    defl = {t.tag: t for t in g.tasks if t.name == "Compute_deflation"}

    def reachable(a, b):
        seen, stack = set(), [a]
        while stack:
            t = stack.pop()
            if t is b:
                return True
            for s in t.successors:
                if s.uid not in seen:
                    seen.add(s.uid)
                    stack.append(s)
        return False

    # With the barrier, a level-0 merge of the LEFT branch now reaches the
    # level-1 merge of the RIGHT branch.
    assert reachable(defl[(0, 250)], defl[(500, 1000)])


def test_fork_join_serializes_non_gemm():
    g, _, _ = build_graph(n=400, minpart=100, nb=50, fork_join=True,
                          level_barrier=True)
    def reachable(a, b):
        seen, stack = set(), [a]
        while stack:
            t = stack.pop()
            if t is b:
                return True
            for s in t.successors:
                if s.uid not in seen:
                    seen.add(s.uid)
                    stack.append(s)
        return False

    # In fork/join mode LAED4 panels of the same merge are serialized
    # (through the serial token, possibly via intermediate tasks).
    laed4 = [t for t in g.tasks if t.name == "LAED4" and t.tag == (0, 400)]
    assert len(laed4) == 8
    for a, b in zip(laed4, laed4[1:]):
        assert reachable(a, b)
    # UpdateVect panels of one merge are NOT chained to each other: the
    # GEMMs are the parallel-BLAS region of the fork/join model.
    upd = [t for t in g.tasks if t.name == "UpdateVect" and t.tag == (0, 400)]
    assert len(upd) == 8
    assert not any(reachable(a, b) for a in upd for b in upd if a is not b)


def test_extra_workspace_removes_join_edges():
    g_no, _, _ = build_graph(n=400, minpart=200, nb=50,
                             extra_workspace=False)
    g_yes, _, _ = build_graph(n=400, minpart=200, nb=50,
                              extra_workspace=True)
    deps_no = {t.seq: t.n_deps for t in g_no.tasks if t.name == "LAED4"}
    deps_yes = {t.seq: t.n_deps for t in g_yes.tasks if t.name == "LAED4"}
    # Without extra workspace LAED4 additionally waits on all PermuteV.
    assert sum(deps_no.values()) > sum(deps_yes.values())
    assert g_no.n_edges > g_yes.n_edges


def test_graph_executes_and_matches_reference():
    g, ctx, info = build_graph(n=300, minpart=80, nb=64, seed=42)
    SequentialScheduler().run(g)
    lam, V = ctx.result()
    T = np.diag(ctx.d_in) + np.diag(ctx.e_in, 1) + np.diag(ctx.e_in, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(T), atol=1e-12)


def test_deflation_dependent_work_but_fixed_tasks():
    """High deflation turns surplus panel tasks into no-ops, not fewer
    tasks (execution check of the matrix-independent DAG)."""
    n = 256
    d = np.ones(n)
    e = np.full(n - 1, 1e-15)
    g, ctx, info = build_graph(n=n, d=d, e=e, minpart=64, nb=32)
    SequentialScheduler().run(g)
    st = info.states[(0, n)]
    assert st.defl.k <= 2   # near-total deflation
    lam, V = ctx.result()
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-12
