"""Dependency-analysis tests for the task-flow runtime (repro.runtime.dag)."""

import pytest

from repro.runtime import (INPUT, OUTPUT, INOUT, GATHERV,
                           DataHandle, TaskGraph)


def edges(graph):
    return {(t.uid, s.uid) for t in graph.tasks for s in t.successors}


def noop():
    return None


def test_raw_dependency():
    g = TaskGraph()
    h = DataHandle("x")
    w = g.insert_task(noop, [(h, OUTPUT)], name="w")
    r = g.insert_task(noop, [(h, INPUT)], name="r")
    assert (w.uid, r.uid) in edges(g)
    assert r.n_deps == 1


def test_war_and_waw_dependencies():
    g = TaskGraph()
    h = DataHandle("x")
    w1 = g.insert_task(noop, [(h, OUTPUT)])
    r1 = g.insert_task(noop, [(h, INPUT)])
    r2 = g.insert_task(noop, [(h, INPUT)])
    w2 = g.insert_task(noop, [(h, INOUT)])
    e = edges(g)
    assert (w1.uid, w2.uid) in e  # WAW
    assert (r1.uid, w2.uid) in e and (r2.uid, w2.uid) in e  # WAR
    assert (r1.uid, r2.uid) not in e  # readers are concurrent


def test_independent_handles_no_edges():
    g = TaskGraph()
    a, b = DataHandle("a"), DataHandle("b")
    g.insert_task(noop, [(a, INOUT)])
    g.insert_task(noop, [(b, INOUT)])
    assert g.n_edges == 0


def test_gatherv_writers_are_concurrent():
    g = TaskGraph()
    h = DataHandle("V")
    pre = g.insert_task(noop, [(h, OUTPUT)], name="init")
    g1 = g.insert_task(noop, [(h, GATHERV)], name="p0")
    g2 = g.insert_task(noop, [(h, GATHERV)], name="p1")
    g3 = g.insert_task(noop, [(h, GATHERV)], name="p2")
    join = g.insert_task(noop, [(h, INOUT)], name="join")
    e = edges(g)
    # Every GATHERV writer depends on the pre-group writer...
    for gt in (g1, g2, g3):
        assert (pre.uid, gt.uid) in e
    # ...but not on each other...
    assert not any((a.uid, b.uid) in e
                   for a in (g1, g2, g3) for b in (g1, g2, g3))
    # ...and the join waits for the whole group.
    for gt in (g1, g2, g3):
        assert (gt.uid, join.uid) in e
    assert join.n_deps == 3


def test_gatherv_group_closed_by_reader():
    g = TaskGraph()
    h = DataHandle("V")
    g1 = g.insert_task(noop, [(h, GATHERV)])
    g2 = g.insert_task(noop, [(h, GATHERV)])
    r = g.insert_task(noop, [(h, INPUT)])
    # A new GATHERV after the reader starts a fresh group that must wait
    # for the reader (WAR) and for the previous group (WAW).
    g3 = g.insert_task(noop, [(h, GATHERV)])
    e = edges(g)
    assert (g1.uid, r.uid) in e and (g2.uid, r.uid) in e
    assert (r.uid, g3.uid) in e
    assert (g1.uid, g3.uid) in e and (g2.uid, g3.uid) in e


def test_gatherv_keeps_join_dependency_count_constant():
    """The point of GATHERV (paper Sec. IV): panel tasks have O(1) deps."""
    g = TaskGraph()
    V = DataHandle("V")
    defl = DataHandle("defl")
    d = g.insert_task(noop, [(defl, OUTPUT), (V, INOUT)], name="deflate")
    panels = [g.insert_task(noop, [(defl, INPUT), (V, GATHERV)], name="p")
              for _ in range(64)]
    join = g.insert_task(noop, [(V, INOUT)], name="reduce")
    for p in panels:
        assert p.n_deps == 1  # only the deflation task (dedup across handles)
    assert join.n_deps == 64


def test_duplicate_edges_are_collapsed():
    g = TaskGraph()
    a, b = DataHandle("a"), DataHandle("b")
    t1 = g.insert_task(noop, [(a, OUTPUT), (b, OUTPUT)])
    t2 = g.insert_task(noop, [(a, INPUT), (b, INPUT)])
    assert t2.n_deps == 1
    assert len(t1.successors) == 1


def test_levels_and_counts():
    g = TaskGraph()
    h = DataHandle("x")
    t1 = g.insert_task(noop, [(h, OUTPUT)], name="a")
    t2 = g.insert_task(noop, [(h, INOUT)], name="b")
    t3 = g.insert_task(noop, [(h, INPUT)], name="c")
    t4 = g.insert_task(noop, [(h, INPUT)], name="c")
    levels = g.levels()
    assert [len(l) for l in levels] == [1, 1, 2]
    assert g.kernel_counts() == {"a": 1, "b": 1, "c": 2}


def test_critical_path_cost():
    g = TaskGraph()
    h = DataHandle("x")
    g.insert_task(noop, [(h, OUTPUT)], name="a")
    g.insert_task(noop, [(h, INOUT)], name="b")
    # An independent task that is longer than the chain.
    g.insert_task(noop, [(DataHandle(), OUTPUT)], name="long")
    dur = {"a": 1.0, "b": 2.0, "long": 10.0}
    assert g.critical_path_cost(lambda t: dur[t.name]) == 10.0
    dur["long"] = 0.5
    assert g.critical_path_cost(lambda t: dur[t.name]) == 3.0


def test_handle_reuse_across_graphs():
    h = DataHandle("x")
    g1 = TaskGraph()
    g1.insert_task(noop, [(h, OUTPUT)])
    g2 = TaskGraph()
    t = g2.insert_task(noop, [(h, INPUT)])
    # Fresh graph resets tracking: no dangling dependency on the old task.
    assert t.n_deps == 0
