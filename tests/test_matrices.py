"""Tests for the Table III / application matrix generators."""

import numpy as np
import pytest

from repro.matrices import (MATRIX_TYPES, application_matrices,
                            clustered_spectrum, glued_wilkinson,
                            graded_matrix, lanczos_laplacian_1d,
                            matrix_description, spectrum_of_type,
                            tridiagonal_from_spectrum)
from repro.matrices import test_matrix as make_matrix  # avoid pytest collection


def tridiag(d, e):
    return np.diag(np.asarray(d, float)) + np.diag(e, 1) + np.diag(e, -1)


@pytest.mark.parametrize("mtype", MATRIX_TYPES)
def test_shapes_and_finiteness(mtype):
    d, e = make_matrix(mtype, 60)
    assert d.shape == (60,) and e.shape == (59,)
    assert np.all(np.isfinite(d)) and np.all(np.isfinite(e))
    assert matrix_description(mtype)


@pytest.mark.parametrize("mtype", range(1, 10))
def test_spectrum_types_have_prescribed_eigenvalues(mtype):
    n = 50
    lam_target = np.sort(spectrum_of_type(mtype, n))
    d, e = make_matrix(mtype, n)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    scale = max(1.0, np.max(np.abs(lam_target)))
    np.testing.assert_allclose(lam, lam_target, atol=1e-12 * n * scale)


def test_generation_is_deterministic():
    d1, e1 = make_matrix(6, 40, seed=7)
    d2, e2 = make_matrix(6, 40, seed=7)
    np.testing.assert_array_equal(d1, d2)
    np.testing.assert_array_equal(e1, e2)
    d3, _ = make_matrix(6, 40, seed=8)
    assert not np.array_equal(d1, d3)


def test_type2_spectrum_near_identity():
    lam = spectrum_of_type(2, 30)
    assert np.sum(lam == 1.0) == 29
    assert lam[-1] == 1e-6


def test_direct_types_formulas():
    d, e = make_matrix(10, 5)
    np.testing.assert_array_equal(d, 2 * np.ones(5))
    np.testing.assert_array_equal(e, np.ones(4))
    d, e = make_matrix(11, 7)   # Wilkinson: |i - (n-1)/2|
    np.testing.assert_array_equal(d, [3, 2, 1, 0, 1, 2, 3])
    # Clement: spectrum is symmetric +-(n-1), +-(n-3), ...
    d, e = make_matrix(12, 6)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    np.testing.assert_allclose(lam, [-5, -3, -1, 1, 3, 5], atol=1e-12)
    # Hermite Jacobi matrix eigenvalues are Gauss-Hermite nodes (sym).
    d, e = make_matrix(15, 9)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    np.testing.assert_allclose(lam, -lam[::-1], atol=1e-12)
    # Laguerre nodes are positive.
    d, e = make_matrix(14, 9)
    assert np.all(np.linalg.eigvalsh(tridiag(d, e)) > 0)


def test_tridiagonal_from_spectrum_exact():
    lam = np.array([-3.0, -1.0, 0.5, 2.0, 7.0])
    d, e = tridiagonal_from_spectrum(lam, seed=3)
    got = np.linalg.eigvalsh(tridiag(d, e))
    np.testing.assert_allclose(got, lam, atol=1e-13 * 10)


def test_size_one():
    d, e = make_matrix(6, 1)
    assert d.shape == (1,) and e.shape == (0,)


def test_invalid_type_raises():
    with pytest.raises(ValueError):
        make_matrix(16, 10)
    with pytest.raises(ValueError):
        make_matrix(4, 0)


def test_glued_wilkinson_structure():
    d, e = glued_wilkinson(n_blocks=3, block=21, glue=1e-5)
    assert len(d) == 63 and len(e) == 62
    assert np.sum(e == 1e-5) == 2          # two glue entries
    lam = np.linalg.eigvalsh(tridiag(d, e))
    # Blocks produce near-triplicate eigenvalues at the glue scale.
    gaps = np.diff(lam)
    assert np.min(gaps) < 1e-4


def test_lanczos_laplacian_spectrum_inside_operator_range():
    d, e = lanczos_laplacian_1d(40)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    assert np.all(lam > -1e-8) and np.all(lam < 4.0 + 1e-8)


def test_clustered_spectrum_clusters():
    d, e = clustered_spectrum(60, n_clusters=4, spread=1e-10, seed=1)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    big_gaps = np.sum(np.diff(lam) > 1e-3)
    assert big_gaps == 3                    # 4 clusters → 3 large gaps


def test_graded_matrix_condition():
    d, e = graded_matrix(40, ratio=1e10)
    lam = np.linalg.eigvalsh(tridiag(d, e))
    assert lam[-1] / max(lam[0], 1e-300) > 1e8


def test_application_set_contents():
    mats = application_matrices(max_n=200)
    assert len(mats) >= 5
    names = [m[0] for m in mats]
    assert any("glued" in s for s in names)
    assert any("lanczos" in s for s in names)
    for name, d, e in mats:
        assert len(e) == len(d) - 1
        assert np.all(np.isfinite(d))
