"""Tests for the comparison baselines (repro.baselines)."""

import numpy as np
import pytest

from repro import dc_eigh
from repro.baselines import (bisect_invit_eigh, lapack_dc_eigh,
                             lapack_dc_makespan, scalapack_dc_eigh,
                             scalapack_dc_makespan, CommModel)
from repro.runtime import Machine


def tridiag(d, e):
    return np.diag(np.asarray(d, float)) + np.diag(e, 1) + np.diag(e, -1)


def test_lapack_dc_matches_taskflow_numerics():
    rng = np.random.default_rng(0)
    n = 150
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam_ref, V_ref = dc_eigh(d, e)
    lam, V = lapack_dc_eigh(d, e)
    np.testing.assert_array_equal(lam, lam_ref)
    np.testing.assert_array_equal(V, V_ref)


def test_lapack_dc_slower_than_taskflow_on_simulator():
    rng = np.random.default_rng(1)
    n = 600
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    t_mkl = lapack_dc_makespan(d, e, n_workers=16)
    res = dc_eigh(d, e, backend="simulated", full_result=True)
    # The task-flow variant must win (paper Fig. 6: 2-6x).
    assert res.makespan < t_mkl
    assert t_mkl / res.makespan > 1.3


def test_scalapack_numerics_and_model():
    rng = np.random.default_rng(2)
    n = 300
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam, V = scalapack_dc_eigh(d, e)
    lam_ref, _ = dc_eigh(d, e)
    np.testing.assert_array_equal(lam, lam_ref)
    t16 = scalapack_dc_makespan(d, e, n_ranks=16)
    t1 = scalapack_dc_makespan(d, e, n_ranks=1)
    assert 0 < t16 < t1       # distributed model does scale
    # The paper's task-flow beats the ScaLAPACK model (Fig. 7: ~2x).
    res = dc_eigh(d, e, backend="simulated", full_result=True)
    assert res.makespan < t16


def test_scalapack_comm_model_monotone():
    rng = np.random.default_rng(3)
    n = 200
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    slow_net = CommModel(alpha=1e-3, beta=1e-6)
    fast_net = CommModel(alpha=1e-7, beta=1e-11)
    assert scalapack_dc_makespan(d, e, comm=slow_net) > \
        scalapack_dc_makespan(d, e, comm=fast_net)


def test_bisect_invit_full_spectrum():
    rng = np.random.default_rng(4)
    n = 120
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    lam, V = bisect_invit_eigh(d, e)
    T = tridiag(d, e)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-10 * n
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-9 * n
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(T), atol=1e-10)


def test_bisect_invit_subset():
    rng = np.random.default_rng(5)
    n = 80
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    idx = np.array([0, 10, 41, 79])
    lam, V = bisect_invit_eigh(d, e, indices=idx)
    T = tridiag(d, e)
    ref = np.linalg.eigvalsh(T)[idx]
    np.testing.assert_allclose(lam, ref, atol=1e-10)
    assert V.shape == (n, 4)
    assert np.max(np.abs(T @ V - V * lam[None, :])) < 1e-9 * n


def test_bisect_invit_clustered():
    # Close eigenvalues must still give orthogonal vectors (MGS groups).
    m = 20
    d = np.abs(np.arange(-m, m + 1)).astype(float)
    e = np.ones(2 * m)
    lam, V = bisect_invit_eigh(d, e)
    n = 2 * m + 1
    assert np.max(np.abs(V.T @ V - np.eye(n))) < 1e-8 * n


def test_bisect_invit_bad_inputs():
    with pytest.raises(ValueError):
        bisect_invit_eigh(np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        bisect_invit_eigh(np.ones(3), np.ones(3))
