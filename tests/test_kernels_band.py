"""Tests for the two-stage reduction substrate (repro.kernels.band)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import dc_eigh
from repro.kernels import (band_to_tridiagonal, bandwidth_of,
                           dense_to_band, two_stage_tridiagonalize)


def sym(rng, n):
    A = rng.normal(size=(n, n))
    return 0.5 * (A + A.T)


def test_bandwidth_of():
    A = np.diag(np.ones(5))
    assert bandwidth_of(A) == 0
    A += np.diag(np.ones(4), 1) + np.diag(np.ones(4), -1)
    assert bandwidth_of(A) == 1
    A[0, 3] = A[3, 0] = 2.0
    assert bandwidth_of(A) == 3


@pytest.mark.parametrize("n,b", [(20, 2), (30, 4), (50, 8), (37, 5)])
def test_dense_to_band(n, b):
    rng = np.random.default_rng(n * 10 + b)
    A = sym(rng, n)
    band, q = dense_to_band(A, b)
    assert bandwidth_of(band, tol=1e-12) <= b
    assert np.max(np.abs(q.T @ q - np.eye(n))) < 1e-13 * n
    assert np.max(np.abs(q.T @ A @ q - band)) < 1e-12 * n * max(
        1.0, np.max(np.abs(A)))


def test_dense_to_band_invalid():
    with pytest.raises(ValueError):
        dense_to_band(np.ones((3, 4)), 1)
    with pytest.raises(ValueError):
        dense_to_band(np.eye(4), 0)
    with pytest.raises(ValueError):
        dense_to_band(np.array([[1.0, 2.0], [0.0, 1.0]]), 1)


@pytest.mark.parametrize("n,b", [(20, 2), (40, 4), (31, 6)])
def test_band_to_tridiagonal(n, b):
    rng = np.random.default_rng(n + b)
    A = sym(rng, n)
    band, _ = dense_to_band(A, b)
    d, e, q = band_to_tridiagonal(band, b)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(q.T @ band @ q - T)) < 1e-12 * n
    assert np.max(np.abs(q.T @ q - np.eye(n))) < 1e-13 * n


def test_two_stage_matches_spectrum():
    rng = np.random.default_rng(7)
    n = 48
    A = sym(rng, n)
    d, e, Q = two_stage_tridiagonalize(A, 6)
    lam_ref = np.linalg.eigvalsh(A)
    lam, V = dc_eigh(d, e)
    np.testing.assert_allclose(lam, lam_ref, atol=1e-11 * n)
    # Full pipeline eigenvectors via the accumulated Q.
    W = Q @ V
    assert np.max(np.abs(A @ W - W * lam[None, :])) < 1e-11 * n
    assert np.max(np.abs(W.T @ W - np.eye(n))) < 1e-12 * n


def test_two_stage_default_bandwidth_and_small_sizes():
    rng = np.random.default_rng(8)
    for n in (1, 2, 3, 9):
        A = sym(rng, n)
        d, e, Q = two_stage_tridiagonalize(A)
        T = np.diag(d)
        if n > 1:
            T = T + np.diag(e, 1) + np.diag(e, -1)
        assert np.max(np.abs(Q.T @ A @ Q - T)) < 1e-12 * max(n, 1)


def test_band_stage_is_already_tridiagonal_when_b1():
    rng = np.random.default_rng(9)
    A = sym(rng, 16)
    d, e, Q = two_stage_tridiagonalize(A, 1)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    assert np.max(np.abs(Q.T @ A @ Q - T)) < 1e-12 * 16


@settings(max_examples=10, deadline=None)
@given(st.integers(6, 30), st.integers(2, 6), st.integers(0, 2 ** 31 - 1))
def test_property_two_stage_preserves_spectrum(n, b, seed):
    rng = np.random.default_rng(seed)
    A = sym(rng, n)
    b = min(b, n - 1)
    d, e, Q = two_stage_tridiagonalize(A, b)
    T = np.diag(d) + np.diag(e, 1) + np.diag(e, -1)
    scale = max(1.0, float(np.max(np.abs(A))))
    assert np.max(np.abs(Q.T @ A @ Q - T)) < 1e-11 * n * scale
    np.testing.assert_allclose(np.linalg.eigvalsh(T),
                               np.linalg.eigvalsh(A),
                               atol=1e-11 * n * scale)
