"""Process-parallel backend: bitwise equivalence, faults, crash recovery.

The processes backend runs the identical task flow on spawned worker
processes with shared-memory workspaces.  These tests pin the backend
contract: results bitwise identical to the sequential reference (across
matrix types, graph-cache reuse, sessions and subsets), typed failure
semantics matching the other backends (injected faults, first-failure
cancellation, batch isolation), crash containment (a killed worker
degrades to a typed ``TaskFailure`` and the pool respawns), and the
observability surface (``proc-worker-N`` trace lanes, flight recorder,
session metrics).

Worker processes take ~a second to spawn, so most tests share one
module-scoped session; tests that kill workers or tear down the pool
build their own.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import dc_eigh, dc_eigh_many
from repro.core import DCOptions, SolverSession
from repro.errors import InjectedFault, ReproError, SchedulerError, \
    TaskFailure
from repro.matrices import test_matrix as table3_matrix
from repro.runtime import FaultSpec


def _problem(n=150, mtype=4, seed=7):
    return table3_matrix(mtype, n, seed=seed)


@pytest.fixture(scope="module")
def procs_session():
    with SolverSession(backend="processes", n_workers=2,
                       options=DCOptions(reuse_graph=True)) as s:
        yield s


# ---------------------------------------------------------------------------
# Bitwise equivalence with the sequential reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mtype", list(range(1, 16)))
def test_processes_bitwise_identical_table3(procs_session, mtype):
    d, e = table3_matrix(mtype, 300, seed=mtype)
    lam0, V0 = dc_eigh(d, e, backend="sequential")
    lam, V = procs_session.solve(d, e)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)


def test_processes_one_shot_dc_eigh_bitwise(tmp_path):
    # dc_eigh(..., backend="processes") spins a transient pool per call
    # and must still match, with no leaked worker processes after.
    d, e = _problem()
    lam0, V0 = dc_eigh(d, e, backend="sequential")
    lam, V = dc_eigh(d, e, backend="processes", n_workers=2)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)


def test_processes_subset_bitwise(procs_session):
    d, e = _problem(seed=3)
    subset = np.arange(20, 60)
    lam0, V0 = dc_eigh(d, e, backend="sequential", subset=subset)
    lam, V = procs_session.solve(d, e, subset=subset)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)


def test_processes_graph_cache_reuse_bitwise(procs_session):
    # Same shape solved repeatedly: children instantiate from their own
    # template caches; dirty workspace reuse must stay invisible.
    for seed in range(4):
        d, e = _problem(seed=seed)
        lam0, V0 = dc_eigh(d, e, backend="sequential")
        lam, V = procs_session.solve(d, e)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_processes_concurrent_submissions_bitwise_unaliased(procs_session):
    problems = [_problem(seed=s) for s in range(5)]
    expected = [dc_eigh(d, e) for d, e in problems]
    handles = [procs_session.submit(d, e) for d, e in problems]
    results = [h.result() for h in handles]
    for (lam0, V0), (lam, V) in zip(expected, results):
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)
    # Results are copies out of shared memory: never aliased.
    for i in range(len(results)):
        for j in range(i + 1, len(results)):
            assert not np.shares_memory(results[i][1], results[j][1])


def test_processes_dc_eigh_many_uses_session():
    problems = [_problem(seed=s) for s in range(3)]
    expected = [dc_eigh(d, e) for d, e in problems]
    out = dc_eigh_many(problems, backend="processes", n_workers=2)
    for (lam0, V0), (lam, V) in zip(expected, out):
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


# ---------------------------------------------------------------------------
# Fault semantics: identical to the other backends
# ---------------------------------------------------------------------------

def test_processes_injected_fault_typed_and_session_survives(procs_session):
    d, e = _problem()
    h = procs_session.submit(d, e, options=DCOptions(
        reuse_graph=True,
        fault_injection=FaultSpec(kernel="LAED4", nth=1)))
    with pytest.raises(TaskFailure) as ei:
        h.result()
    assert ei.value.task_name == "LAED4"
    assert isinstance(ei.value.__cause__, InjectedFault)
    # The pool drained the failed run; the session keeps serving.
    lam0, V0 = dc_eigh(d, e)
    lam, V = procs_session.solve(d, e)
    np.testing.assert_array_equal(lam0, lam)
    np.testing.assert_array_equal(V0, V)


def test_processes_batch_isolates_failures(procs_session):
    d, e = _problem(seed=2)
    good = [procs_session.submit(d, e) for _ in range(3)]
    bad = procs_session.submit(d, e, options=DCOptions(
        reuse_graph=True,
        fault_injection=FaultSpec(kernel="Compute_deflation", nth=0)))
    assert isinstance(bad.exception(), ReproError)
    lam0, V0 = dc_eigh(d, e)
    for h in good:
        assert h.exception() is None
        lam, V = h.result()
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_processes_fault_in_state_delta_kernel(procs_session):
    # ReduceW ships its result back as a state delta rather than a
    # shared-array write; failing it exercises the failure path for
    # delta-carrying kernels too.
    d, e = _problem(seed=5)
    with pytest.raises(TaskFailure) as ei:
        procs_session.solve(d, e, options=DCOptions(
            reuse_graph=True,
            fault_injection=FaultSpec(kernel="ReduceW", nth=0)))
    assert ei.value.task_name == "ReduceW"


# ---------------------------------------------------------------------------
# Worker-crash containment
# ---------------------------------------------------------------------------

def test_processes_worker_crash_fails_run_and_respawns():
    d_small, e_small = _problem()
    with SolverSession(backend="processes", n_workers=2) as s:
        np.testing.assert_array_equal(dc_eigh(d_small, e_small)[0],
                                      s.solve(d_small, e_small)[0])
        pool = s._pool
        victim = pool._workers[0].proc.pid
        h = s.submit(*table3_matrix(4, 900, seed=1))
        time.sleep(0.05)
        os.kill(victim, signal.SIGKILL)
        exc = h.exception()
        assert isinstance(exc, (TaskFailure, SchedulerError))
        if isinstance(exc, TaskFailure):
            assert "died" in str(exc)
        # The pool respawned a replacement; later solves succeed.
        deadline = time.time() + 10.0
        while pool.workers_alive < 2 and time.time() < deadline:
            time.sleep(0.05)
        assert pool.workers_alive == 2
        lam0, V0 = dc_eigh(d_small, e_small)
        lam, V = s.solve(d_small, e_small)
        np.testing.assert_array_equal(lam0, lam)
        np.testing.assert_array_equal(V0, V)


def test_processes_shutdown_fails_stranded_runs():
    d, e = table3_matrix(4, 900, seed=2)
    s = SolverSession(backend="processes", n_workers=2)
    try:
        h = s.submit(d, e)
    finally:
        s.close(wait=False)
    with pytest.raises((SchedulerError, TaskFailure)):
        h.result(timeout=30)


# ---------------------------------------------------------------------------
# Observability surface
# ---------------------------------------------------------------------------

def test_processes_trace_has_proc_worker_lanes(procs_session):
    d, e = _problem()
    res = procs_session.solve(d, e, full_result=True)
    assert res.trace.worker_names == ["proc-worker-0", "proc-worker-1"]
    workers = {ev.worker for ev in res.trace.events}
    assert workers <= {0, 1}
    assert len(res.trace.events) == len(res.graph.tasks)
    names = {ev.name for ev in res.trace.events}
    assert {"STEDC", "LAED4", "PermuteV"} <= names


def test_processes_flight_recorder_and_metrics(procs_session):
    d, e = _problem()
    before = procs_session.flight.occupancy()["recorded"]
    procs_session.solve(d, e)
    occ = procs_session.flight.occupancy()
    assert occ["recorded"] > before
    kinds = {ev["kind"] for ev in procs_session.flight.snapshot()}
    assert "task" in kinds
    snap = procs_session.metrics.to_dict()
    assert snap["solves"] >= 1
    stats = procs_session.stats()
    assert stats["backend"] == "processes"


def test_processes_telemetry_counters(procs_session):
    from repro.obs import Collector
    col = Collector()
    d, e = _problem()
    lam, V = procs_session.solve(d, e, options=DCOptions(
        reuse_graph=True, telemetry=col))
    assert col.counters.get("scheduler.tasks", 0) > 0
    assert col.counters.get("merge.count", 0) > 0
    assert col.hist_stats("merge.deflation_ratio")["count"] > 0


def test_processes_pool_introspection(procs_session):
    pool = procs_session._pool
    assert pool.n_workers == 2
    assert pool.workers_alive == 2
    assert not pool.closed
    assert isinstance(pool.queue_depths(), list)
    assert len(pool.current_tasks()) == 2
    assert 0 <= pool.parked <= 2
