"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Wilkinson" in out and "Clement" in out
    assert out.count("\n") >= 15


@pytest.mark.parametrize("solver", ["dc", "mrrr", "qr", "bi", "lapack-dc"])
def test_solve_all_solvers(solver, capsys):
    assert main(["solve", "--type", "6", "--n", "60",
                 "--solver", solver]) == 0
    out = capsys.readouterr().out
    assert "orth" in out and "resid" in out
    # Accuracy lines report small numbers (no blow-ups).
    for line in out.splitlines():
        if line.startswith(("orth", "resid")):
            assert float(line.split(":")[1]) < 1e-8


def test_solve_simulated_backend(capsys):
    assert main(["solve", "--type", "4", "--n", "80",
                 "--backend", "simulated", "--workers", "8"]) == 0


def test_trace(capsys):
    assert main(["trace", "--type", "4", "--n", "200", "--cores", "4",
                 "--config", "full-taskflow", "--width", "60"]) == 0
    out = capsys.readouterr().out
    assert "w00 |" in out
    assert "makespan" in out


def test_trace_fig3_configs(capsys):
    for cfg in ("parallel-gemm", "parallel-merge"):
        assert main(["trace", "--type", "4", "--n", "150",
                     "--config", cfg]) == 0


def test_bad_arguments():
    with pytest.raises(SystemExit):
        main(["solve", "--type", "99"])
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_solve_with_subset(capsys):
    assert main(["solve", "--type", "6", "--n", "80",
                 "--subset", "0:5"]) == 0
    out = capsys.readouterr().out
    assert "orth" in out


def test_solve_mrrr_subset(capsys):
    assert main(["solve", "--type", "6", "--n", "80", "--solver", "mrrr",
                 "--subset", "10:12"]) == 0


def test_svd_command(capsys):
    assert main(["svd", "--m", "40", "--n", "25"]) == 0
    out = capsys.readouterr().out
    assert "sigma" in out
    for line in out.splitlines():
        if line.startswith("resid"):
            assert float(line.split(":")[1]) < 1e-9


def test_workspace_command(capsys):
    assert main(["workspace", "--n", "2000"]) == 0
    out = capsys.readouterr().out
    assert "D&C workspace" in out and "MRRR" in out
