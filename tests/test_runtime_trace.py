"""Tests for runtime/trace.py and analysis/traces.py.

Gantt letter assignment (satellite regression: >26 kernel names used to
loop forever), Chrome-trace metadata, empty/degenerate traces, measured
idle accounting, and the speedup-curve helper.
"""

import json
import re

from repro.analysis.traces import speedup_curve
from repro.runtime.trace import Trace, TraceEvent


def _trace(events, n_workers=2):
    tr = Trace(n_workers)
    for i, (name, w, t0, t1) in enumerate(events):
        tr.record(TraceEvent(i, name, w, t0, t1))
    return tr


# -- gantt ------------------------------------------------------------------

def test_gantt_terminates_with_30_names():
    # Regression: the letter-collision loop never terminated once the
    # alphabet ran out.  30 synthetic kernels all share the initial 'K'.
    names = [f"Kernel{i:02d}" for i in range(30)]
    tr = _trace([(n, i % 2, i * 1.0, i * 1.0 + 0.5)
                 for i, n in enumerate(names)])
    out = tr.gantt(width=60)
    assert "w00 |" in out and "legend:" in out
    # Every kernel got a legend entry.
    for n in names:
        assert f"={n}" in out


def test_gantt_letters_deterministic_and_unique():
    names = [f"Kernel{i:02d}" for i in range(30)]
    tr = _trace([(n, 0, i * 1.0, i * 1.0 + 0.5)
                 for i, n in enumerate(names)])
    assert tr.gantt(width=40) == tr.gantt(width=40)
    legend = tr.gantt(width=40).splitlines()[-1]
    letters = re.findall(r"(\S)=Kernel\d\d", legend)
    # 30 names <= 36-symbol pool: all distinct, none fell back to '#'.
    assert len(set(letters)) == len(letters) == 30
    assert "#" not in letters


def test_gantt_over_pool_shares_hash():
    # 40 colliding names exhaust letters+digits; the overflow shares '#'
    # instead of looping.
    names = [f"Kernel{i:02d}" for i in range(40)]
    tr = _trace([(n, 0, i * 1.0, i * 1.0 + 0.5)
                 for i, n in enumerate(names)])
    out = tr.gantt(width=40)
    assert "#=" in out


def test_gantt_prefers_own_initial():
    tr = _trace([("LAED4", 0, 0.0, 1.0), ("STEDC", 1, 0.0, 1.0)])
    legend = tr.gantt(width=20).splitlines()[-1]
    assert "L=LAED4" in legend and "S=STEDC" in legend


# -- chrome trace -----------------------------------------------------------

def test_chrome_trace_metadata_and_monotone_ts():
    tr = _trace([("A", 0, 0.0, 1.0), ("B", 1, 0.5, 2.0),
                 ("C", 0, 1.0, 1.5)], n_workers=2)
    events = tr.to_chrome_trace()
    # Valid JSON round-trip.
    assert json.loads(json.dumps(events)) == events
    meta = [e for e in events if e["ph"] == "M"]
    assert {"name": "repro-eig workers"} in [m["args"] for m in meta
                                             if m["name"] == "process_name"]
    thread_names = {m["tid"]: m["args"]["name"] for m in meta
                    if m["name"] == "thread_name"}
    assert thread_names == {0: "worker 0", 1: "worker 1"}
    sort_idx = {m["tid"]: m["args"]["sort_index"] for m in meta
                if m["name"] == "thread_sort_index"}
    assert sort_idx == {0: 0, 1: 1}
    xs = [e for e in events if e["ph"] == "X"]
    ts = [e["ts"] for e in xs]
    assert ts == sorted(ts)
    assert all(e["dur"] > 0 for e in xs)


def test_chrome_trace_ts_shift():
    tr = _trace([("A", 0, 1.0, 2.0)], n_workers=1)
    (x,) = [e for e in tr.to_chrome_trace(ts_shift=3.0) if e["ph"] == "X"]
    assert x["ts"] == (1.0 + 3.0) * 1e6


def test_chrome_trace_zero_duration_event():
    tr = _trace([("A", 0, 1.0, 1.0)], n_workers=1)
    (x,) = [e for e in tr.to_chrome_trace() if e["ph"] == "X"]
    assert x["dur"] == 0.01          # clamped so viewers render it


# -- degenerate traces ------------------------------------------------------

def test_empty_trace():
    tr = Trace(4)
    assert tr.makespan == 0.0
    assert tr.idle_fraction == 0.0
    assert tr.inferred_idle_fraction == 0.0
    assert tr.gantt() == "(empty trace)"
    assert "makespan" in tr.summary()
    assert all(e["ph"] == "M" for e in tr.to_chrome_trace())


def test_single_event_trace():
    tr = _trace([("Solo", 0, 2.0, 5.0)], n_workers=1)
    assert tr.makespan == 3.0
    assert tr.idle_fraction == 0.0
    assert tr.kernel_counts() == {"Solo": 1}
    assert "Solo" in tr.gantt(width=10)


# -- measured idle ----------------------------------------------------------

def test_idle_fraction_measured_vs_inferred():
    # One worker busy [0,4], the other busy [0,1] then parked [1,3].
    tr = _trace([("A", 0, 0.0, 4.0), ("B", 1, 0.0, 1.0)], n_workers=2)
    assert tr.inferred_idle_fraction == (8.0 - 5.0) / 8.0
    tr.record_idle(1, 1.0, 3.0)
    assert tr.idle_fraction == 2.0 / 8.0
    # Parking outside the event window is clipped.
    tr.record_idle(1, 4.0, 10.0)
    assert tr.idle_fraction == 2.0 / 8.0
    assert "measured parking" in tr.summary()


def test_record_idle_ignores_empty_interval():
    tr = Trace(1)
    tr.record_idle(0, 2.0, 2.0)
    tr.record_idle(0, 3.0, 2.0)
    assert tr.idle_intervals == []


# -- speedup curve ----------------------------------------------------------

def test_speedup_curve_non_contiguous_workers():
    curve = speedup_curve({1: 12.0, 3: 4.0, 8: 2.0, 16: 1.5})
    assert curve[1] == 1.0
    assert curve[3] == 3.0
    assert curve[8] == 6.0
    assert curve[16] == 8.0


def test_speedup_curve_base_is_smallest_worker_count():
    # No 1-worker entry: the smallest recorded count is the baseline.
    curve = speedup_curve({4: 6.0, 12: 2.0})
    assert curve[4] == 1.0
    assert curve[12] == 3.0
