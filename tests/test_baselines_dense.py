"""Tests for the dense related-work baselines (Jacobi, QDWH — paper
Sec. II)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import jacobi_eigh, qdwh_eigh, qdwh_polar


def sym(rng, n):
    A = rng.normal(size=(n, n))
    return 0.5 * (A + A.T)


def check_eig(A, lam, V, tol):
    n = A.shape[0]
    scale = max(1.0, np.max(np.abs(A)))
    assert np.all(np.diff(lam) >= -1e-300)
    assert np.max(np.abs(V.T @ V - np.eye(n))) < tol * n
    assert np.max(np.abs(A @ V - V * lam[None, :])) < tol * n * scale
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(A),
                               atol=tol * n * scale)


# ---------------------------------------------------------------------------
# Jacobi
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 5, 40])
def test_jacobi_random(n):
    rng = np.random.default_rng(n)
    A = sym(rng, n)
    lam, V = jacobi_eigh(A)
    check_eig(A, lam, V, 1e-13)


def test_jacobi_diagonal_is_instant():
    d = np.array([3.0, -1.0, 2.0])
    lam, V = jacobi_eigh(np.diag(d))
    np.testing.assert_allclose(lam, np.sort(d))


def test_jacobi_high_relative_accuracy():
    # Jacobi's specialty: tiny eigenvalues of graded matrices keep
    # relative accuracy.
    D = np.diag(10.0 ** -np.arange(8, dtype=float))
    rng = np.random.default_rng(0)
    Q, _ = np.linalg.qr(rng.normal(size=(8, 8)))
    A = D  # already diagonal: exact case
    lam, V = jacobi_eigh(A)
    np.testing.assert_allclose(lam, np.sort(np.diag(D)), rtol=1e-14)


def test_jacobi_errors():
    with pytest.raises(ValueError):
        jacobi_eigh(np.ones((2, 3)))
    with pytest.raises(ValueError):
        jacobi_eigh(np.array([[1.0, 2.0], [0.0, 1.0]]))


# ---------------------------------------------------------------------------
# QDWH
# ---------------------------------------------------------------------------

def test_qdwh_polar_orthogonal_factor():
    rng = np.random.default_rng(1)
    for n in (5, 25, 60):
        A = sym(rng, n)
        U = qdwh_polar(A)
        assert np.max(np.abs(U.T @ U - np.eye(n))) < 1e-12 * n
        # H = Uᵀ A is the symmetric positive-semidefinite polar part.
        H = U.T @ A
        assert np.max(np.abs(H - H.T)) < 1e-11 * n
        assert np.min(np.linalg.eigvalsh(0.5 * (H + H.T))) > -1e-10


def test_qdwh_polar_of_orthogonal_is_identity_map():
    rng = np.random.default_rng(2)
    Q, _ = np.linalg.qr(rng.normal(size=(20, 20)))
    U = qdwh_polar(Q)
    np.testing.assert_allclose(U, Q, atol=1e-12)


def test_qdwh_polar_ill_conditioned():
    rng = np.random.default_rng(3)
    n = 30
    Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    A = (Q * np.geomspace(1e-8, 1.0, n)[None, :]) @ Q.T
    U = qdwh_polar(A)
    assert np.max(np.abs(U.T @ U - np.eye(n))) < 1e-10 * n


@pytest.mark.parametrize("n", [4, 20, 60])
def test_qdwh_eigh_random(n):
    rng = np.random.default_rng(n + 100)
    A = sym(rng, n)
    lam, V = qdwh_eigh(A)
    check_eig(A, lam, V, 5e-12)


def test_qdwh_eigh_multiple_eigenvalues():
    # Degenerate split path: repeated eigenvalues around the median.
    rng = np.random.default_rng(4)
    Q, _ = np.linalg.qr(rng.normal(size=(24, 24)))
    lam_true = np.repeat([-1.0, 0.0, 2.0], 8)
    A = (Q * lam_true[None, :]) @ Q.T
    lam, V = qdwh_eigh(A)
    check_eig(0.5 * (A + A.T), lam, V, 1e-10)


def test_qdwh_errors():
    with pytest.raises(ValueError):
        qdwh_eigh(np.ones((2, 3)))


@settings(max_examples=8, deadline=None)
@given(st.integers(2, 30), st.integers(0, 2 ** 31 - 1))
def test_property_qdwh_polar_unitary(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n)) + np.eye(n) * 0.1
    U = qdwh_polar(A)
    assert np.max(np.abs(U.T @ U - np.eye(n))) < 1e-10 * n
