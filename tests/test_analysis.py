"""Tests for the analysis utilities (repro.analysis)."""

import numpy as np
import pytest

from repro import dc_eigh, mrrr_eigh
from repro.analysis import (deflation_summary, eigenvalue_error,
                            merge_step_costs, mrrr_makespan,
                            mrrr_task_graph, orthogonality_error,
                            speedup_curve, total_merge_flops,
                            tridiagonal_residual, worst_case_flops)
from repro.runtime import Machine


def test_orthogonality_error_identity():
    assert orthogonality_error(np.eye(5)) == 0.0
    V = np.eye(4)
    V[0, 1] = 1e-8
    assert orthogonality_error(V) == pytest.approx(1e-8 / 4, rel=1e-6)


def test_tridiagonal_residual_exact_eigendecomposition():
    rng = np.random.default_rng(0)
    d = rng.normal(size=30)
    e = rng.normal(size=29)
    lam, V = dc_eigh(d, e)
    assert tridiagonal_residual(d, e, lam, V) < 1e-15
    # Perturbed eigenvalues raise the residual.
    assert tridiagonal_residual(d, e, lam + 1e-6, V) > 1e-9


def test_eigenvalue_error():
    assert eigenvalue_error([1.0, 2.0], [1.0, 2.0]) == 0.0
    assert eigenvalue_error([1.0, 2.1], [1.0, 2.0]) == pytest.approx(0.05)


def test_merge_step_costs_table1_shape():
    costs = merge_step_costs(1000, 600)
    assert costs["Compute the number of deflated eigenvalues"] == 1000
    assert costs["Permute eigenvectors (copy)"] == 1000 ** 2
    assert costs["Solve the secular equation"] == 600 ** 2
    assert costs["Permute eigenvectors (copy-back)"] == 1000 * 400
    assert costs["Compute eigenvectors V = V~X"] == 1000 * 600 ** 2
    assert len(costs) == 7     # the seven rows of Table I


def test_worst_case_flops_eq8():
    # Eq. 8: the final merge is ~n^3 of the 4n^3/3 total.
    n = 4096
    assert worst_case_flops(n) == pytest.approx(4 * n ** 3 / 3)
    assert n ** 3 / worst_case_flops(n) == pytest.approx(0.75)


def test_total_merge_flops_reflects_deflation():
    rng = np.random.default_rng(1)
    n = 200
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    res = dc_eigh(d, e, full_result=True)
    flops = total_merge_flops(res.info.ctx.merge_stats)
    assert 0 < flops < worst_case_flops(n) * 2
    # A fully deflating matrix does almost no merge flops.
    d2 = np.ones(n)
    e2 = np.full(n - 1, 1e-15)
    res2 = dc_eigh(d2, e2, full_result=True)
    assert total_merge_flops(res2.info.ctx.merge_stats) < flops / 10


def test_deflation_summary():
    rng = np.random.default_rng(2)
    n = 150
    res = dc_eigh(rng.normal(size=n), rng.normal(size=n - 1),
                  full_result=True)
    s = deflation_summary(res.info.ctx.merge_stats)
    assert 0.0 <= s["mean_deflation"] <= 1.0
    assert s["total_secular_sweeps"] > 0
    assert deflation_summary([])["mean_deflation"] == 0.0


def test_mrrr_task_graph_replay():
    rng = np.random.default_rng(3)
    n = 120
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)
    res = mrrr_eigh(d, e, full_result=True)
    g = mrrr_task_graph(res.records)
    assert g.n_tasks == len(res.records)
    g.validate_acyclic()
    t16 = mrrr_makespan(d, e, n_workers=16)
    t1 = mrrr_makespan(d, e, n_workers=1)
    assert 0 < t16 <= t1
    assert t1 / t16 > 1.5     # MR3-SMP-style task pool does scale


def test_speedup_curve():
    sp = speedup_curve({1: 8.0, 2: 4.0, 8: 1.0})
    assert sp[1] == 1.0 and sp[2] == 2.0 and sp[8] == 8.0
