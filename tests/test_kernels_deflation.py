"""Tests for the deflation kernel (repro.kernels.deflation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import deflate, rotation_chains
from repro.kernels.deflation import GivensRotation


def random_inputs(rng, n, n1):
    d1 = np.sort(rng.normal(size=n1))
    d2 = np.sort(rng.normal(size=n - n1))
    d = np.concatenate([d1, d2])
    z = rng.normal(size=n)
    z[np.abs(z) < 1e-3] = 1e-3
    rho = float(rng.normal())
    if rho == 0:
        rho = 0.5
    return d, z, rho


def rebuild_rank_one(d, z, rho, n1):
    """Dense reference of the merged system in source-column order."""
    zz = z.copy()
    r = rho
    if r < 0:
        zz[n1:] = -zz[n1:]
        r = -r
    return np.diag(d) + r * np.outer(zz, zz)


def apply_rotations_dense(M, rotations):
    """Apply recorded rotations as a similarity transform on M."""
    G = np.eye(M.shape[0])
    for rr in rotations:
        gi = G[:, rr.i].copy()
        gj = G[:, rr.j].copy()
        G[:, rr.i] = rr.c * gi + rr.s * gj
        G[:, rr.j] = rr.c * gj - rr.s * gi
    return G.T @ M @ G, G


def test_basic_shapes_and_partition():
    rng = np.random.default_rng(0)
    d, z, rho = random_inputs(rng, 40, 17)
    res = deflate(d, z, rho, 17)
    assert res.k + res.d_defl.shape[0] == 40
    assert res.dlamda.shape == (res.k,)
    assert res.zsec.shape == (res.k,)
    assert sorted(res.perm.tolist()) == list(range(40))
    assert sum(res.ctot) == res.k
    assert np.all(np.diff(res.dlamda) >= 0)
    assert res.rho > 0


def test_no_deflation_on_well_separated_system():
    rng = np.random.default_rng(1)
    n, n1 = 30, 15
    d = np.concatenate([np.sort(rng.uniform(-10, 0, n1)),
                        np.sort(rng.uniform(1, 10, n - n1))])
    z = rng.uniform(0.3, 1.0, size=n)
    res = deflate(d, z, 2.0, n1)
    assert res.k == n
    assert len(res.rotations) == 0


def test_small_z_deflates():
    n, n1 = 10, 5
    d = np.concatenate([np.sort(np.arange(n1, dtype=float)),
                        np.sort(10.0 + np.arange(n - n1))])
    z = np.ones(n)
    z[3] = 1e-300    # effectively decoupled
    res = deflate(d, z, 1.0, n1)
    assert res.k == n - 1
    # The deflated eigenvalue is d[3], unchanged.
    assert np.any(np.isclose(res.d_defl, d[3]))


def test_identical_eigenvalues_rotate_away():
    # Equal d with sizeable z: a Givens rotation must deflate one of them.
    d = np.array([0.0, 1.0, 1.0, 2.0])
    z = np.full(4, 0.5)
    res = deflate(d, z, 1.0, 2)
    assert res.k == 3
    assert len(res.rotations) == 1
    rot = res.rotations[0]
    assert rot.c ** 2 + rot.s ** 2 == pytest.approx(1.0)


def test_rotation_preserves_spectrum():
    rng = np.random.default_rng(5)
    n, n1 = 24, 12
    base = np.sort(rng.normal(size=n1))
    # Force coincident pairs across the two halves.
    d = np.concatenate([base, base])
    z = rng.uniform(0.2, 1.0, size=n)
    rho = 1.3
    res = deflate(d, z, rho, n1)
    assert len(res.rotations) > 0
    M = rebuild_rank_one(d, z, rho, n1)
    Mr, G = apply_rotations_dense(M, res.rotations)
    np.testing.assert_allclose(np.sort(np.linalg.eigvalsh(Mr)),
                               np.sort(np.linalg.eigvalsh(M)), atol=1e-10)
    # The reduced secular system + deflated values reproduce the spectrum.
    lam_sec = np.linalg.eigvalsh(np.diag(res.dlamda)
                                 + res.rho * np.outer(res.zsec, res.zsec))
    lam_all = np.sort(np.concatenate([lam_sec, res.d_defl]))
    np.testing.assert_allclose(lam_all, np.linalg.eigvalsh(M), atol=1e-8)


def test_negative_rho_flips_z_tail():
    rng = np.random.default_rng(8)
    d, z, _ = random_inputs(rng, 20, 9)
    res_pos = deflate(d, z, 1.0, 9)
    zf = z.copy()
    zf[9:] = -zf[9:]
    res_neg = deflate(d, zf, -1.0, 9)
    np.testing.assert_allclose(res_neg.dlamda, res_pos.dlamda)
    np.testing.assert_allclose(res_neg.zsec, res_pos.zsec)
    assert res_neg.rho == pytest.approx(res_pos.rho)


def test_coltype_grouping_orders_1_2_3():
    rng = np.random.default_rng(13)
    d, z, rho = random_inputs(rng, 50, 25)
    res = deflate(d, z, rho, 25)
    k1, k2, k3 = res.ctot
    # Group 1 columns come from the first child, group 3 from the second.
    assert np.all(res.perm[:k1] < 25)
    assert np.all(res.perm[k1 + k2:res.k] >= 25)
    # rowidx must be a valid permutation of secular rows.
    assert sorted(res.rowidx.tolist()) == list(range(res.k))
    # dlamda ascending within each type group.
    for sl in (slice(0, k1), slice(k1, k1 + k2), slice(k1 + k2, res.k)):
        rows = res.rowidx[sl]
        assert np.all(np.diff(res.dlamda[rows]) >= 0)


def test_full_deflation_identity_like():
    # rho so tiny every z entry deflates: k == 0, pure permutation merge.
    n, n1 = 12, 6
    d = np.concatenate([np.arange(n1, dtype=float),
                        100.0 + np.arange(n - n1)])
    z = np.ones(n)
    res = deflate(d, z, 1e-300, n1)
    assert res.k == 0
    assert res.d_defl.shape == (n,)


def test_zero_rho_fully_deflates():
    # β = 0 means the blocks are exactly decoupled: sort-only merge.
    d = np.array([3.0, 5.0, 1.0, 4.0])
    res = deflate(d, np.ones(4), 0.0, 2)
    assert res.k == 0
    np.testing.assert_array_equal(res.d_defl, np.sort(d))
    np.testing.assert_array_equal(np.sort(res.perm), np.arange(4))


def test_errors():
    with pytest.raises(ValueError):
        deflate(np.ones(4), np.ones(4), 1.0, 0)
    with pytest.raises(ValueError):
        deflate(np.ones(4), np.zeros(4), 1.0, 2)


def test_rotation_chains_partition():
    rots = [GivensRotation(0, 1, 1.0, 0.0),
            GivensRotation(1, 2, 1.0, 0.0),   # chains with previous
            GivensRotation(5, 6, 1.0, 0.0),   # new chain
            GivensRotation(6, 7, 1.0, 0.0)]
    chains = rotation_chains(rots)
    assert [len(c) for c in chains] == [2, 2]
    # Chains cover disjoint column sets.
    cols = [set()
            for _ in chains]
    for ci, ch in enumerate(chains):
        for r in ch:
            cols[ci] |= {r.i, r.j}
    assert not (cols[0] & cols[1])
    assert rotation_chains([]) == []


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 40), st.integers(0, 2 ** 31 - 1))
def test_property_deflation_preserves_spectrum(n, seed):
    rng = np.random.default_rng(seed)
    n1 = n // 2
    d, z, rho = random_inputs(rng, n, n1)
    res = deflate(d, z, rho, n1)
    M = rebuild_rank_one(d, z, rho, n1)
    lam_sec = (np.linalg.eigvalsh(np.diag(res.dlamda)
                                  + res.rho * np.outer(res.zsec, res.zsec))
               if res.k else np.empty(0))
    lam_all = np.sort(np.concatenate([lam_sec, res.d_defl]))
    scale = max(1.0, np.max(np.abs(d)) + abs(rho))
    np.testing.assert_allclose(lam_all, np.linalg.eigvalsh(M),
                               atol=5e-13 * n * scale)
    # Permutation property and k-consistency.
    assert sorted(res.perm.tolist()) == list(range(n))
    assert res.k + len(res.d_defl) == n
