#!/usr/bin/env python3
"""Scalability of the task-flow D&C on the simulated machine (Fig. 5).

Sweeps 1-16 virtual cores for the three deflation regimes the paper
uses (types 2, 3, 4 — about 100%, 50% and 20% deflation): low-deflation
matrices scale nearly linearly (compute-bound GEMMs); high-deflation
matrices saturate near 4 cores on one socket (memory-bound permutes)
and only recover with the second socket.

Run:  python examples/scalability_study.py
"""

import numpy as np

from repro import dc_eigh
from repro.core import DCOptions
from repro.matrices import test_matrix

THREADS = (1, 2, 4, 8, 12, 16)


def main() -> None:
    n = 1200
    opts = DCOptions(minpart=128, nb=48)
    print(f"n={n}, simulated dual-socket 16-core machine")
    print(f"{'type':>6s} " + "".join(f"{p:>8d}" for p in THREADS)
          + "   (threads)")
    for mtype in (2, 3, 4):
        d, e = test_matrix(mtype, n)
        t1 = None
        speed = []
        for p in THREADS:
            res = dc_eigh(d, e, options=opts, backend="simulated",
                          n_workers=p, full_result=True)
            if t1 is None:
                t1 = res.makespan
            speed.append(t1 / res.makespan)
        defl = dc_eigh(d, e, options=opts, full_result=True).total_deflation
        print(f"type {mtype:>2d} "
              + "".join(f"{s:>8.2f}" for s in speed)
              + f"   ({defl:.0%} deflation at final merge)")


if __name__ == "__main__":
    main()
