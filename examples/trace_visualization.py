#!/usr/bin/env python3
"""Execution traces on the simulated 16-core machine (paper Figs. 3-4).

Renders ASCII Gantt charts of the same solve under the paper's three
optimization levels:

  (a) fork/join: only the UpdateVect GEMMs are parallel (MKL model);
  (b) + parallel merge kernels, but levels synchronized;
  (c) full task-flow: independent subproblems overlap (the contribution);

and, like Fig. 4, the trace of a ~100%-deflation matrix where the merge
degenerates to memory-bound permutations.

Run:  python examples/trace_visualization.py
"""

import numpy as np

from repro import dc_eigh
from repro.core import DCOptions
from repro.matrices import test_matrix

CONFIGS = [
    ("(a) fork/join (parallel GEMM only)",
     DCOptions(minpart=128, nb=64, fork_join=True, level_barrier=True)),
    ("(b) parallel merge kernels, level barrier",
     DCOptions(minpart=128, nb=64, level_barrier=True)),
    ("(c) full task-flow (paper)",
     DCOptions(minpart=128, nb=64)),
]


def show(title: str, d, e, opts: DCOptions) -> float:
    res = dc_eigh(d, e, options=opts, backend="simulated", full_result=True)
    print(f"\n=== {title} ===")
    print(res.trace.gantt(width=96))
    print(f"makespan {res.makespan * 1e3:.2f} ms, "
          f"idle {res.trace.idle_fraction:.0%}")
    return res.makespan


def main() -> None:
    n = 1200
    print(f"type 4 matrix (low deflation), n={n}, simulated 16 cores")
    d, e = test_matrix(4, n)
    times = [show(t, d, e, o) for t, o in CONFIGS]
    print(f"\nspeedup (a)->(c): {times[0] / times[2]:.1f}x "
          f"(paper: 4.3s -> 1.5s per Fig. 3)")

    print("\n" + "=" * 72)
    print(f"type 2 matrix (~100% deflation), n={n} — permute-dominated "
          f"(Fig. 4)")
    d, e = test_matrix(2, n)
    show("full task-flow", d, e, CONFIGS[2][1])


if __name__ == "__main__":
    main()
