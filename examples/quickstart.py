#!/usr/bin/env python3
"""Quickstart: solve a symmetric tridiagonal eigenproblem with the
task-flow Divide & Conquer solver.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import dc_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual


def main() -> None:
    # A 1000x1000 symmetric tridiagonal matrix: diagonal d, off-diagonal e.
    rng = np.random.default_rng(42)
    n = 1000
    d = rng.normal(size=n)
    e = rng.normal(size=n - 1)

    # All eigenpairs: lam ascending, columns of V orthonormal.
    lam, V = dc_eigh(d, e)

    print(f"n = {n}")
    print(f"smallest eigenvalue : {lam[0]: .6f}")
    print(f"largest  eigenvalue : {lam[-1]: .6f}")
    print(f"orthogonality  |I - V'V|/n     : {orthogonality_error(V):.2e}")
    print(f"residual       |TV - VL|/(|T|n): "
          f"{tridiagonal_residual(d, e, lam, V):.2e}")

    # The same call with solver diagnostics: deflation drives D&C's speed.
    res = dc_eigh(d, e, full_result=True)
    print(f"merges              : {len(res.deflation_ratios())}")
    print(f"final-merge deflation: {res.total_deflation:.1%}")


if __name__ == "__main__":
    main()
