#!/usr/bin/env python3
"""Spectral graph partitioning with subset computation.

A realistic subset-computation workload (the capability discussed in the
paper's Sec. I): partitioning a mesh only needs the Fiedler vector — the
eigenvector of the second-smallest Laplacian eigenvalue — so computing
the full spectrum is wasted work.  The graph Laplacian is reduced by
Lanczos to tridiagonal form and the task-flow D&C computes just the two
lowest eigenpairs.

Run:  python examples/spectral_partitioning.py
"""

import numpy as np

from repro import dc_eigh


def barbell_graph(m: int = 40) -> tuple[np.ndarray, int]:
    """Two dense-ish communities joined by a thin bridge."""
    n = 2 * m
    rng = np.random.default_rng(0)
    A = np.zeros((n, n))
    for block in (slice(0, m), slice(m, n)):
        B = rng.random((m, m)) < 0.35
        B = np.triu(B, 1)
        A[block, block] = B + B.T
    # Thin bridge.
    A[m - 1, m] = A[m, m - 1] = 1.0
    A[m - 3, m + 2] = A[m + 2, m - 3] = 1.0
    return A, m


def lanczos_tridiagonal(L: np.ndarray, k: int, seed: int = 1):
    """k-step Lanczos with full reorthogonalization on the Laplacian."""
    n = L.shape[0]
    rng = np.random.default_rng(seed)
    q = rng.normal(size=n)
    q /= np.linalg.norm(q)
    Q = [q]
    alpha = np.zeros(k)
    beta = np.zeros(k - 1)
    for j in range(k):
        w = L @ Q[j]
        alpha[j] = Q[j] @ w
        w -= alpha[j] * Q[j]
        if j:
            w -= beta[j - 1] * Q[j - 1]
        for qq in Q:                      # full reorthogonalization
            w -= (qq @ w) * qq
        if j < k - 1:
            beta[j] = np.linalg.norm(w)
            Q.append(w / beta[j])
    return alpha, beta, np.column_stack(Q)


def main() -> None:
    A, m = barbell_graph()
    n = A.shape[0]
    L = np.diag(A.sum(axis=1)) - A
    print(f"graph: {n} vertices, {int(A.sum() // 2)} edges, "
          f"true communities of {m}+{m}")

    k = min(n, 60)
    alpha, beta, Q = lanczos_tridiagonal(L, k)

    # Subset computation: only the 2 smallest Ritz pairs are needed.
    lam, V = dc_eigh(alpha, beta, subset=np.array([0, 1]))
    fiedler = Q @ V[:, 1]
    print(f"lambda_1 (should be ~0): {lam[0]:.2e}")
    print(f"lambda_2 (algebraic connectivity): {lam[1]:.4f}")

    part = fiedler >= np.median(fiedler)
    left = set(np.where(~part)[0])
    acc = max(len(left & set(range(m))), len(left & set(range(m, n)))) / m
    print(f"partition recovers the planted communities: {acc:.0%}")
    cut = int(sum(A[i, j] for i in np.where(part)[0]
                  for j in np.where(~part)[0]))
    print(f"cut edges: {cut} (bridge has 2)")


if __name__ == "__main__":
    main()
