#!/usr/bin/env python3
"""Compare the four tridiagonal eigensolvers of the paper's related work
on Table III matrices: task-flow D&C, MRRR (MR3-SMP style), QR iteration
and Bisection+Inverse-Iteration.

Reports wall-clock time and the paper's two accuracy metrics per solver,
illustrating the D&C-vs-MRRR trade-off (Figs. 8-9): D&C wins on clustered
/ high-deflation spectra and is consistently 1-2 digits more accurate;
MRRR can win when eigenvalues are well separated.

Run:  python examples/compare_solvers.py
"""

import time

import numpy as np

from repro import dc_eigh, mrrr_eigh
from repro.analysis import orthogonality_error, tridiagonal_residual
from repro.baselines import bisect_invit_eigh
from repro.kernels import steqr
from repro.matrices import matrix_description, test_matrix

SOLVERS = {
    "D&C (task-flow)": lambda d, e: dc_eigh(d, e),
    "MRRR": lambda d, e: mrrr_eigh(d, e),
    "QR iteration": lambda d, e: steqr(d, e),
    "Bisection+InvIt": lambda d, e: bisect_invit_eigh(d, e),
}


def main() -> None:
    n = 300
    for mtype in (2, 4, 6, 11):
        d, e = test_matrix(mtype, n)
        print(f"\ntype {mtype:2d} (n={n}): {matrix_description(mtype)}")
        print(f"  {'solver':<17s} {'time':>8s} {'orth':>9s} {'resid':>9s}")
        for name, solver in SOLVERS.items():
            t0 = time.perf_counter()
            lam, V = solver(d, e)
            dt = time.perf_counter() - t0
            print(f"  {name:<17s} {dt:>7.2f}s "
                  f"{orthogonality_error(V):>9.1e} "
                  f"{tridiagonal_residual(d, e, lam, V):>9.1e}")


if __name__ == "__main__":
    main()
